//! Criterion microbenchmarks for the computational (non-oracle) costs.
//!
//! The paper argues the bootstrap's CPU cost is negligible next to oracle
//! invocations (§3.1: 1,000 bootstrap trials ≈ the cost of 2,500 oracle
//! calls on a T4); `bootstrap_1000_trials` measures our implementation.
//! The other benches cover the per-query computational path: proxy-quantile
//! stratification, WOR sampling, the Nelder–Mead group-by solve, logistic
//! training for proxy combination, and an end-to-end SQL query with a free
//! (zero-cost) oracle.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use abae_core::bootstrap::stratified_bootstrap_ci;
use abae_core::config::{AbaeConfig, Aggregate, BootstrapConfig};
use abae_core::strata::Stratification;
use abae_core::two_stage::run_two_stage;
use abae_data::{FnOracle, Labeled, Table};
use abae_ml::logistic::{LogisticRegression, TrainOptions};
use abae_optim::simplex::{minimize_on_simplex, SimplexOptions};
use abae_query::Engine;
use abae_sampling::pool::IndexPool;
use abae_sampling::wor::sample_without_replacement;

fn bench_stratification(c: &mut Criterion) {
    let mut group = c.benchmark_group("stratification");
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let mut rng = StdRng::seed_from_u64(1);
        let scores: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &scores, |b, scores| {
            b.iter(|| Stratification::by_proxy_quantile(black_box(scores), 5));
        });
    }
    group.finish();
}

fn bench_wor_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("wor_sampling");
    // Sparse draw (Floyd) and dense draw (Fisher-Yates).
    group.bench_function("floyd_1k_of_1M", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| sample_without_replacement(black_box(1_000_000), 1000, &mut rng));
    });
    group.bench_function("fisher_yates_500k_of_1M", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| sample_without_replacement(black_box(1_000_000), 500_000, &mut rng));
    });
    group.bench_function("index_pool_two_stage_10k", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let mut pool = IndexPool::new(black_box(100_000));
            pool.draw(5_000, &mut rng);
            pool.draw(5_000, &mut rng);
            pool.drawn()
        });
    });
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    // 5 strata x 2,000 draws each: the paper's default configuration at
    // budget 10,000.
    let mut rng = StdRng::seed_from_u64(5);
    let samples: Vec<Vec<Labeled>> = (0..5)
        .map(|_| {
            (0..2000)
                .map(|_| Labeled { matches: rng.gen::<f64>() < 0.3, value: rng.gen::<f64>() * 10.0 })
                .collect()
        })
        .collect();
    let sizes = vec![100_000usize; 5];
    c.bench_function("bootstrap_1000_trials", |b| {
        b.iter(|| {
            stratified_bootstrap_ci(
                black_box(&samples),
                &sizes,
                Aggregate::Avg,
                &BootstrapConfig { trials: 1000, alpha: 0.05 },
                &mut rng,
            )
        });
    });
}

fn bench_two_stage(c: &mut Criterion) {
    let n = 200_000;
    let mut rng = StdRng::seed_from_u64(6);
    let scores: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
    let labels: Vec<bool> = scores.iter().map(|&s| rng.gen::<f64>() < s).collect();
    let values: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
    let strat = Stratification::by_proxy_quantile(&scores, 5);
    let cfg = AbaeConfig { budget: 10_000, ..Default::default() };
    c.bench_function("two_stage_budget_10k", |b| {
        b.iter(|| {
            let oracle =
                FnOracle::new(|i| Labeled { matches: labels[i], value: values[i] });
            run_two_stage(black_box(&strat), &oracle, &cfg, Aggregate::Avg, &mut rng)
                .expect("valid config")
                .estimate
        });
    });
}

fn bench_nelder_mead(c: &mut Criterion) {
    // The Eq. 11 diagonal objective for 4 groups.
    let err = [4.0, 1.0, 2.0, 0.5];
    c.bench_function("nelder_mead_eq11_4groups", |b| {
        b.iter(|| {
            minimize_on_simplex(
                |l| {
                    err.iter()
                        .zip(l)
                        .map(|(e, li)| e / li.max(1e-12))
                        .fold(f64::NEG_INFINITY, f64::max)
                },
                black_box(4),
                SimplexOptions::default(),
            )
        });
    });
}

fn bench_logistic(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let x: Vec<Vec<f64>> = (0..2000)
        .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
        .collect();
    let y: Vec<bool> = x.iter().map(|row| row[0] + row[1] > 1.0).collect();
    c.bench_function("logistic_train_2k_x_3", |b| {
        b.iter(|| {
            LogisticRegression::fit(
                black_box(&x),
                &y,
                TrainOptions { max_iters: 200, ..Default::default() },
            )
            .expect("valid inputs")
        });
    });
}

fn bench_query_end_to_end(c: &mut Criterion) {
    let n = 100_000;
    let mut rng = StdRng::seed_from_u64(8);
    let labels: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < 0.3).collect();
    let proxy: Vec<f64> = labels
        .iter()
        .map(|&l| if l { rng.gen_range(0.5..1.0) } else { rng.gen_range(0.0..0.5) })
        .collect();
    let values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let table =
        Table::builder("emails", values).predicate("is_spam", labels, proxy).build().unwrap();
    let engine = Engine::builder().table(table).bootstrap_trials(100).seed(8).build();
    let mut session = engine.session();
    c.bench_function("query_end_to_end_budget_2k", |b| {
        b.iter(|| {
            session
                .execute(black_box(
                    "SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT 2000 \
                     WITH PROBABILITY 0.95",
                ))
                .expect("valid query")
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stratification,
        bench_wor_sampling,
        bench_bootstrap,
        bench_two_stage,
        bench_nelder_mead,
        bench_logistic,
        bench_query_end_to_end
);
criterion_main!(benches);
