//! Machine-readable benchmark artifacts.
//!
//! Every serving-oriented bench (`anytime`, `qps`, `throughput`,
//! `cache_hits`) writes its measurements to a `BENCH_<name>.json` file at
//! the repository root in addition to its human-readable stdout report, so
//! CI and plotting scripts can diff runs without scraping tables. The
//! artifact is one JSON object per bench (points as an array), rebuilt in
//! full on every run.

use std::path::{Path, PathBuf};

/// Absolute path of the `BENCH_<name>.json` artifact at the repository
/// root (two levels above this crate's manifest).
pub fn artifact_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join(format!("BENCH_{name}.json"))
}

/// Writes `json` (plus a trailing newline) to `BENCH_<name>.json` at the
/// repository root, returning the path written.
pub fn write_artifact(name: &str, json: &str) -> std::io::Result<PathBuf> {
    let path = artifact_path(name);
    std::fs::write(&path, format!("{json}\n"))?;
    Ok(path)
}

/// Writes the artifact and reports the outcome on stderr; benches call
/// this last so a read-only filesystem degrades to a warning, not a crash.
pub fn emit_artifact(name: &str, json: &str) {
    match write_artifact(name, json) {
        Ok(path) => eprintln!("# artifact: {}", path.display()),
        Err(e) => eprintln!("# artifact write failed ({name}): {e}"),
    }
}

/// Renders an `f64` as JSON: finite values print plainly, non-finite
/// values become `null` (JSON has no NaN/Infinity literals).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_path_lands_at_the_repo_root() {
        let p = artifact_path("anytime");
        assert!(p.ends_with("BENCH_anytime.json"), "{}", p.display());
        // Two levels above crates/bench is the workspace root, which holds
        // the top-level Cargo.toml.
        assert!(p.parent().unwrap().join("Cargo.toml").exists());
    }

    #[test]
    fn json_f64_handles_non_finite() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
