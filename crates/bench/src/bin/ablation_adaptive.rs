//! Ablation (§4.6 future work): the paper's two-stage algorithm vs a
//! sequential (bandit-style) variant that reallocates every batch.
//!
//! Measured shape: the sequential variant is competitive but trails the
//! two-stage algorithm on the emulated datasets — early reallocations
//! committed before `σ̂_k` stabilizes cost more than the pilot they
//! replace, and sample reuse already amortizes the pilot. This matches
//! the paper's framing of the bandit variant as an open direction.

use abae_bench::datasets::paper_datasets;
use abae_bench::report::{print_series_table, Series};
use abae_bench::runner::run_trials;
use abae_bench::sweep::{abae_estimates, SweepKnobs};
use abae_bench::ExpConfig;
use abae_core::adaptive::{run_adaptive, AdaptiveConfig};
use abae_core::config::Aggregate;
use abae_data::PredicateOracle;
use abae_stats::metrics::rmse;

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Ablation: sequential ABae", "two-stage vs per-batch reallocation (§4.6)");
    let budgets = [500usize, 1000, 2000, 5000, 10_000];
    let xs: Vec<f64> = budgets.iter().map(|&b| b as f64).collect();

    for ds in paper_datasets(&cfg) {
        let two_stage = abae_estimates(
            &ds.table,
            ds.info.predicate_column,
            &budgets,
            cfg.trials,
            cfg.seed,
            SweepKnobs::default(),
        );
        let adaptive: Vec<Vec<f64>> = budgets
            .iter()
            .map(|&budget| {
                run_trials(cfg.trials, cfg.seed ^ budget as u64 ^ 0x77, |_, rng| {
                    let oracle = PredicateOracle::new(&ds.table, ds.info.predicate_column)
                        .expect("predicate exists");
                    let scores = &ds
                        .table
                        .predicate(ds.info.predicate_column)
                        .expect("predicate exists")
                        .proxy();
                    let acfg = AdaptiveConfig { budget, ..Default::default() };
                    run_adaptive(scores, &oracle, &acfg, Aggregate::Avg, rng)
                        .expect("valid config")
                        .estimate
                })
            })
            .collect();
        print_series_table(
            &format!("{} (exact = {:.4})", ds.info.name, ds.exact),
            "budget",
            &xs,
            &[
                Series::new("TwoStage", two_stage.iter().map(|e| rmse(e, ds.exact)).collect()),
                Series::new("Sequential", adaptive.iter().map(|e| rmse(e, ds.exact)).collect()),
            ],
        );
    }
}
