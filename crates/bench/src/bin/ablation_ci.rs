//! Ablation: bootstrap (Algorithm 2) vs closed-form delta-method CIs.
//!
//! Expected shape: comparable widths and coverage at the paper's default
//! configuration — the bootstrap's value is robustness at awkward sample
//! sizes, the closed form's value is ~1000× less CPU.

use abae_bench::datasets::paper_datasets;
use abae_bench::report::{print_series_table, Series};
use abae_bench::runner::run_trials;
use abae_bench::ExpConfig;
use abae_core::bootstrap::stratified_bootstrap_ci;
use abae_core::config::{AbaeConfig, Aggregate, BootstrapConfig};
use abae_core::normal_ci::closed_form_ci;
use abae_core::strata::Stratification;
use abae_core::two_stage::run_two_stage;
use abae_data::PredicateOracle;
use abae_stats::bootstrap::ConfidenceInterval;
use abae_stats::metrics::{coverage, mean_width};

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Ablation: CI method", "bootstrap (Algorithm 2) vs closed-form delta method");
    let budgets = [2000usize, 4000, 6000, 8000, 10_000];
    let xs: Vec<f64> = budgets.iter().map(|&b| b as f64).collect();
    let bs = BootstrapConfig { trials: 1000, alpha: 0.05 };

    for ds in paper_datasets(&cfg).into_iter().take(2) {
        let scores =
            &ds.table.predicate(ds.info.predicate_column).expect("predicate exists").proxy();
        let strat = Stratification::by_proxy_quantile(scores, 5);
        let sizes = strat.sizes();

        let per_budget: Vec<Vec<(ConfidenceInterval, ConfidenceInterval)>> = budgets
            .iter()
            .map(|&budget| {
                let run_cfg = AbaeConfig { budget, ..Default::default() };
                run_trials(cfg.trials, cfg.seed ^ budget as u64, |_, rng| {
                    let oracle = PredicateOracle::new(&ds.table, ds.info.predicate_column)
                        .expect("predicate exists");
                    let run = run_two_stage(&strat, &oracle, &run_cfg, Aggregate::Avg, rng)
                        .expect("valid config");
                    let boot = stratified_bootstrap_ci(
                        &run.samples,
                        &sizes,
                        Aggregate::Avg,
                        &bs,
                        rng,
                    )
                    .expect("non-empty samples");
                    let clt = closed_form_ci(Aggregate::Avg, &run.strata, bs.alpha)
                        .unwrap_or(boot);
                    (boot, clt)
                })
            })
            .collect();

        let boot_cis: Vec<Vec<ConfidenceInterval>> =
            per_budget.iter().map(|v| v.iter().map(|(b, _)| *b).collect()).collect();
        let clt_cis: Vec<Vec<ConfidenceInterval>> =
            per_budget.iter().map(|v| v.iter().map(|(_, c)| *c).collect()).collect();

        print_series_table(
            &format!("{} — mean CI width", ds.info.name),
            "budget",
            &xs,
            &[
                Series::new("Bootstrap", boot_cis.iter().map(|c| mean_width(c)).collect()),
                Series::new("ClosedForm", clt_cis.iter().map(|c| mean_width(c)).collect()),
            ],
        );
        print_series_table(
            &format!("{} — coverage (nominal 0.95)", ds.info.name),
            "budget",
            &xs,
            &[
                Series::new(
                    "Bootstrap",
                    boot_cis.iter().map(|c| coverage(c, ds.exact)).collect(),
                ),
                Series::new(
                    "ClosedForm",
                    clt_cis.iter().map(|c| coverage(c, ds.exact)).collect(),
                ),
            ],
        );
    }
}
