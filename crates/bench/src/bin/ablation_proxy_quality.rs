//! Ablation: ABae's gain as proxy quality degrades (§2.3's claim that
//! "proxy correlation will only affect performance, not correctness").
//!
//! We sweep logit-space proxy noise from 0 (near-perfect) to 8
//! (near-useless), report the proxy's AUC, and compare ABae vs uniform
//! RMSE. Expected shape: the gain shrinks toward 1× as AUC → 0.5, and
//! never turns into a substantial loss.

use abae_bench::report::{print_series_table, Series};
use abae_bench::sweep::{abae_estimates, uniform_estimates, SweepKnobs};
use abae_bench::ExpConfig;
use abae_data::synthetic::{PredicateModel, StatisticModel, SyntheticSpec};
use abae_ml::metrics::auc;
use abae_stats::metrics::rmse;

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Ablation: proxy quality", "ABae gain vs proxy AUC (noise sweep)");
    let noises = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];
    let budget = [4000usize];

    let mut aucs = Vec::new();
    let mut abae_rmse = Vec::new();
    let mut uniform_rmse = Vec::new();
    for (i, &noise) in noises.iter().enumerate() {
        let table = SyntheticSpec {
            name: format!("noise-{noise}"),
            n: (200_000.0 * cfg.scale).max(30_000.0) as usize,
            predicates: vec![PredicateModel::new("p", 0.25, 1.0, noise)],
            statistic: StatisticModel::Normal { mean: 3.0, sd: 1.0, coupling: 3.0 },
            seed: cfg.seed ^ i as u64,
        }
        .generate()
        .expect("valid spec");
        let exact = table.exact_avg("p").expect("predicate exists");
        let pred = table.predicate("p").expect("predicate exists");
        aucs.push(auc(pred.proxy(), &pred.labels_vec()).unwrap_or(0.5));

        let a = abae_estimates(&table, "p", &budget, cfg.trials, cfg.seed, SweepKnobs::default());
        let u = uniform_estimates(&table, "p", &budget, cfg.trials, cfg.seed);
        abae_rmse.push(rmse(&a[0], exact));
        uniform_rmse.push(rmse(&u[0], exact));
    }

    print_series_table(
        "proxy AUC per noise level",
        "noise",
        &noises,
        &[Series::new("AUC", aucs)],
    );
    print_series_table(
        "RMSE at budget 4000",
        "noise",
        &noises,
        &[Series::new("ABae", abae_rmse.clone()), Series::new("Uniform", uniform_rmse.clone())],
    );
    let gains: Vec<f64> =
        abae_rmse.iter().zip(&uniform_rmse).map(|(a, u)| u / a).collect();
    print_series_table(
        "ABae gain (uniform RMSE / ABae RMSE)",
        "noise",
        &noises,
        &[Series::new("gain", gains)],
    );
}
