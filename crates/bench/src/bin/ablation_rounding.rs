//! Ablation: the paper's floor rounding `⌊N2·T̂_k⌋` (which discards
//! leftover draws, §4.4.2) vs largest-remainder rounding (which spends the
//! full budget).
//!
//! Expected shape: the difference is marginal — consistent with the
//! paper's analysis that rounding does not affect the rate — with
//! largest-remainder very slightly ahead at small budgets.

use abae_bench::datasets::paper_datasets;
use abae_bench::report::{print_series_table, Series};
use abae_bench::sweep::{abae_estimates, SweepKnobs};
use abae_bench::ExpConfig;
use abae_core::config::Rounding;
use abae_stats::metrics::rmse;

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Ablation: rounding", "floor (paper) vs largest-remainder Stage-2 rounding");
    let budgets = [500usize, 1000, 2000, 5000, 10_000];
    let xs: Vec<f64> = budgets.iter().map(|&b| b as f64).collect();

    for ds in paper_datasets(&cfg) {
        let floor = abae_estimates(
            &ds.table,
            ds.info.predicate_column,
            &budgets,
            cfg.trials,
            cfg.seed,
            SweepKnobs { rounding: Rounding::Floor, ..Default::default() },
        );
        let lr = abae_estimates(
            &ds.table,
            ds.info.predicate_column,
            &budgets,
            cfg.trials,
            cfg.seed ^ 0x22,
            SweepKnobs { rounding: Rounding::LargestRemainder, ..Default::default() },
        );
        print_series_table(
            &format!("{} (exact = {:.4})", ds.info.name, ds.exact),
            "budget",
            &xs,
            &[
                Series::new("Floor", floor.iter().map(|e| rmse(e, ds.exact)).collect()),
                Series::new("LargestRem", lr.iter().map(|e| rmse(e, ds.exact)).collect()),
            ],
        );
    }
}
