//! `anytime` — CI width vs oracle budget through progressive snapshots,
//! plus the budget saved by `UNTIL CI WIDTH` early stopping.
//!
//! The paper's cost model (§5.1) counts oracle invocations; the anytime
//! executor makes that spend *interruptible* by labeling in chunks and
//! emitting a statistically valid answer (estimate + bootstrap CI) after
//! every chunk. This bench traces one full-budget progressive run over the
//! trec05p emulator — the budget → (estimate, CI width, wall-clock) curve —
//! then replays the same session stream with an `UNTIL CI WIDTH < x MAX`
//! stopping rule and reports how much of the budget the early stop leaves
//! unspent for the same answer quality.
//!
//! Output: a human table on stdout and a machine-readable
//! `BENCH_anytime.json` at the repository root.
//!
//! ```sh
//! cargo run --release -p abae_bench --bin anytime
//! ABAE_BUDGET=20000 ABAE_SCALE=0.2 cargo run --release -p abae_bench --bin anytime
//! ```

use abae_bench::artifact::{emit_artifact, json_f64};
use abae_bench::config::ExpConfig;
use abae_data::emulators::{trec05p, EmulatorOptions};
use abae_query::Engine;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One point on the anytime curve: the state of the answer at a chunk
/// boundary.
struct Point {
    budget_spent: u64,
    estimate: f64,
    ci_width: f64,
    wall_ms: f64,
}

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner(
        "anytime — CI width vs budget, and UNTIL CI WIDTH savings",
        "§4 Algorithm 2 CIs, anytime execution (beyond the paper)",
    );
    let budget = env_usize("ABAE_BUDGET", 8_000);

    let table = trec05p(&EmulatorOptions { scale: cfg.scale.max(0.02), seed: cfg.seed });
    let records = table.len();
    let engine = Engine::builder().table(table).seed(cfg.seed).build();
    let chunk = engine.options().exec.batch_size;
    let sql = format!("SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT {budget}");

    // The full-budget progressive run: one labeling pass, one snapshot per
    // chunk boundary, wall-clock stamped as each snapshot arrives.
    let mut curve: Vec<Point> = Vec::new();
    let start = Instant::now();
    let progressive = engine
        .session_with_id(1)
        .execute_progressive(&sql, |snap| {
            curve.push(Point {
                budget_spent: snap.budget_spent,
                estimate: snap.estimate().unwrap_or(f64::NAN),
                ci_width: snap.ci().map(|ci| ci.width()).unwrap_or(f64::NAN),
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
            });
        })
        .expect("progressive query executes");

    // The anytime guarantee: the final snapshot IS the blocking answer.
    let blocking = engine.session_with_id(1).execute(&sql).expect("blocking query executes");
    let bit_identical =
        progressive.rows == blocking.rows && progressive.oracle_calls == blocking.oracle_calls;

    println!("dataset    : trec05p emulator, {records} records");
    println!("query      : {sql}");
    println!("chunk size : {chunk} labels/snapshot ({} snapshots)\n", curve.len());
    println!("{:>12} {:>14} {:>12} {:>12}", "budget", "estimate", "ci_width", "wall_ms");
    for p in &curve {
        println!(
            "{:>12} {:>14.4} {:>12.4} {:>12.2}",
            p.budget_spent, p.estimate, p.ci_width, p.wall_ms
        );
    }

    // Early stop: target the CI width the full run reached halfway through
    // its budget, so the stopping rule provably fires before the cap.
    let mid = &curve[curve.len() / 2];
    let target = mid.ci_width;
    let until_sql = format!(
        "SELECT AVG(links) FROM trec05p WHERE is_spam \
         UNTIL CI WIDTH < {target} MAX ORACLE LIMIT {budget}"
    );
    let stop_start = Instant::now();
    let stopped = engine.session_with_id(1).execute(&until_sql).expect("UNTIL query executes");
    let stop_ms = stop_start.elapsed().as_secs_f64() * 1e3;
    let full_spent = progressive.oracle_calls;
    let savings = 1.0 - stopped.oracle_calls as f64 / full_spent.max(1) as f64;
    let stopped_width = stopped.ci().map(|ci| ci.width()).unwrap_or(f64::NAN);

    println!("\nearly stop : UNTIL CI WIDTH < {target:.4} MAX ORACLE LIMIT {budget}");
    println!(
        "             spent {} of {} labels ({:.1}% saved), ci_width {:.4}, wall {:.2}ms",
        stopped.oracle_calls,
        full_spent,
        100.0 * savings,
        stopped_width,
        stop_ms
    );
    println!(
        "final snapshot bit-identical to blocking run: {}",
        if bit_identical { "yes" } else { "NO — INVARIANT VIOLATED" }
    );

    let curve_json: Vec<String> = curve
        .iter()
        .map(|p| {
            format!(
                "{{\"budget\":{},\"estimate\":{},\"ci_width\":{},\"wall_ms\":{}}}",
                p.budget_spent,
                json_f64(p.estimate),
                json_f64(p.ci_width),
                json_f64(p.wall_ms)
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"anytime\",\"dataset\":\"trec05p\",\"records\":{records},\
         \"budget\":{budget},\"chunk\":{chunk},\"seed\":{},\
         \"curve\":[{}],\
         \"early_stop\":{{\"target_ci_width\":{},\"budget_spent\":{},\
         \"full_budget_spent\":{full_spent},\"savings_pct\":{},\
         \"estimate\":{},\"ci_width\":{},\"wall_ms\":{}}},\
         \"final_bit_identical\":{bit_identical}}}",
        cfg.seed,
        curve_json.join(","),
        json_f64(target),
        stopped.oracle_calls,
        json_f64(100.0 * savings),
        json_f64(stopped.estimate()),
        json_f64(stopped_width),
        json_f64(stop_ms),
    );
    emit_artifact("anytime", &json);

    assert!(bit_identical, "progressive final answer must equal the blocking answer");
    assert!(
        stopped.oracle_calls <= full_spent,
        "the stopping rule must never spend more than the cap"
    );
}
