//! Extra baseline: proxy-weighted importance sampling (Hansen–Hurwitz)
//! vs uniform vs ABae.
//!
//! §4.2 contrasts ABae's `√p_k σ_k` allocation with "the standard
//! importance sampling allocation"; this bench makes that comparison
//! concrete. Expected shape: importance sampling helps over uniform when
//! the statistic correlates with the proxy, but ABae's variance-aware
//! stratification wins overall — the `√p` downweighting matters.

use abae_bench::datasets::paper_datasets;
use abae_bench::report::{print_series_table, Series};
use abae_bench::runner::run_trials;
use abae_bench::sweep::{abae_estimates, uniform_estimates, SweepKnobs};
use abae_bench::ExpConfig;
use abae_core::config::Aggregate;
use abae_core::importance::run_importance;
use abae_data::PredicateOracle;
use abae_stats::metrics::rmse;

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Baseline: importance sampling", "uniform vs Hansen-Hurwitz vs ABae");
    let budgets = [2000usize, 4000, 6000, 8000, 10_000];
    let xs: Vec<f64> = budgets.iter().map(|&b| b as f64).collect();

    for ds in paper_datasets(&cfg) {
        let abae = abae_estimates(
            &ds.table,
            ds.info.predicate_column,
            &budgets,
            cfg.trials,
            cfg.seed,
            SweepKnobs::default(),
        );
        let uniform =
            uniform_estimates(&ds.table, ds.info.predicate_column, &budgets, cfg.trials, cfg.seed);
        let importance: Vec<Vec<f64>> = budgets
            .iter()
            .map(|&budget| {
                run_trials(cfg.trials, cfg.seed ^ budget as u64 ^ 0x99, |_, rng| {
                    let oracle = PredicateOracle::new(&ds.table, ds.info.predicate_column)
                        .expect("predicate exists");
                    let scores = &ds
                        .table
                        .predicate(ds.info.predicate_column)
                        .expect("predicate exists")
                        .proxy();
                    run_importance(scores, &oracle, budget, Aggregate::Avg, 0.1, rng)
                        .expect("valid weights")
                        .estimate
                })
            })
            .collect();

        print_series_table(
            &format!("{} (exact = {:.4})", ds.info.name, ds.exact),
            "budget",
            &xs,
            &[
                Series::new("ABae", abae.iter().map(|e| rmse(e, ds.exact)).collect()),
                Series::new("Importance", importance.iter().map(|e| rmse(e, ds.exact)).collect()),
                Series::new("Uniform", uniform.iter().map(|e| rmse(e, ds.exact)).collect()),
            ],
        );
    }
}
