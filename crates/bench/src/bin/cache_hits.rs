//! Cross-query label-cache hit-rate sweep (beyond the paper's figures).
//!
//! A Figure-1-style dashboard issues several aggregates over the same
//! table and predicate; the paper's cost model says every one of those
//! oracle invocations is the dominant expense. With the catalog's
//! `LabelStore` enabled, each round of queries reuses the verdicts bought
//! by earlier rounds, so the marginal cost of a repeated dashboard decays
//! toward zero. This binary measures that decay: per round, the oracle
//! calls actually spent, the cache hits, and the cumulative hit rate.
//!
//! Each round runs in a fresh session (its own deterministic RNG stream
//! derived from the engine seed), so the sampled records differ between
//! rounds — the hit rate measured here is the realistic partial-overlap
//! case, not the trivial identical-replay case (which
//! `tests/label_store.rs` pins at exactly 0 extra calls).

use abae_bench::artifact::emit_artifact;
use abae_bench::config::ExpConfig;
use abae_data::emulators::{trec05p, EmulatorOptions};
use abae_query::Engine;

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner(
        "cache_hits — cross-query label-cache hit-rate sweep",
        "beyond the paper: LabelStore (cf. §5.1 oracle-dominated cost)",
    );

    let table = trec05p(&EmulatorOptions { scale: cfg.scale.max(0.02), seed: cfg.seed });
    let records = table.len();
    let engine = Engine::builder().table(table).label_cache(true).seed(cfg.seed).build();

    // The dashboard: one multi-aggregate query (one labeling pass answers
    // all three) plus a narrower follow-up at a smaller budget.
    let dashboard = [
        "SELECT COUNT(*), SUM(links), AVG(links) FROM trec05p WHERE is_spam \
         ORACLE LIMIT 4000 WITH PROBABILITY 0.95",
        "SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT 2000",
    ];

    let rounds = cfg.trials.clamp(2, 25);
    println!("dataset    : trec05p emulator, {records} records");
    println!("dashboard  : {} statements/round, {rounds} rounds\n", dashboard.len());
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>15} {:>15}",
        "round", "oracle", "hits", "misses", "round hit%", "cumulative hit%"
    );

    let store = engine.label_store().expect("cache enabled above");
    let mut points: Vec<String> = Vec::new();
    for round in 0..rounds {
        // A fresh session per round = a fresh deterministic RNG stream,
        // so the sampled records differ between rounds.
        let mut session = engine.session();
        let (mut calls, mut hits, mut misses) = (0u64, 0u64, 0u64);
        for sql in &dashboard {
            let r = session.execute(sql).expect("dashboard query executes");
            calls += r.oracle_calls;
            hits += r.cache_hits;
            misses += r.cache_misses;
        }
        let lifetime = store.hits() + store.misses();
        let round_pct = 100.0 * hits as f64 / (hits + misses).max(1) as f64;
        let cumulative_pct = 100.0 * store.hits() as f64 / lifetime.max(1) as f64;
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>14.1}% {:>14.1}%",
            round + 1,
            calls,
            hits,
            misses,
            round_pct,
            cumulative_pct,
        );
        points.push(format!(
            "{{\"round\":{},\"oracle_calls\":{calls},\"hits\":{hits},\"misses\":{misses},\
             \"round_hit_pct\":{round_pct:.2},\"cumulative_hit_pct\":{cumulative_pct:.2}}}",
            round + 1,
        ));
    }
    emit_artifact(
        "cache_hits",
        &format!(
            "{{\"bench\":\"cache_hits\",\"records\":{records},\"rounds\":{rounds},\
             \"seed\":{},\"verdicts_cached\":{},\"points\":[{}]}}",
            cfg.seed,
            store.misses(),
            points.join(",")
        ),
    );

    println!(
        "\nverdicts cached: {} distinct records ({:.1}% of the table) — every one paid for once",
        store.misses(),
        100.0 * store.misses() as f64 / records as f64
    );
    println!("expected shape : round 1 hits come only from intra-round reuse (the second");
    println!("                 statement re-draws records the first already labeled); later");
    println!("                 rounds climb as the store covers the proxy-favored strata,");
    println!("                 and oracle spend per round decays.");
}
