//! Exports the emulated datasets to CSV (the `abae::data::csvio` layout),
//! so external tools — or the authors' original Python implementation —
//! can run on exactly the data this reproduction evaluates.
//!
//! ```sh
//! ABAE_SCALE=0.05 cargo run --release -p abae-bench --bin export_datasets -- out_dir
//! ```

use abae_bench::datasets::paper_datasets;
use abae_bench::ExpConfig;
use abae_data::csvio::write_table;
use abae_data::emulators::{celeba_groupby, EmulatorOptions};
use std::io::BufWriter;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let cfg = ExpConfig::from_env();
    cfg.banner("Dataset export", "emulated datasets as CSV");
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "datasets_csv".to_string());
    std::fs::create_dir_all(&out_dir)?;

    for ds in paper_datasets(&cfg) {
        let path = Path::new(&out_dir).join(format!("{}.csv", ds.info.name));
        let file = BufWriter::new(std::fs::File::create(&path)?);
        write_table(&ds.table, file)?;
        println!("wrote {:<40} ({} records)", path.display().to_string(), ds.table.len());
    }

    // The group-by variant as well.
    let grouped = celeba_groupby(&EmulatorOptions { scale: cfg.scale, seed: cfg.seed });
    let path = Path::new(&out_dir).join("celeba-groupby.csv");
    let file = BufWriter::new(std::fs::File::create(&path)?);
    write_table(&grouped, file)?;
    println!("wrote {:<40} ({} records)", path.display().to_string(), grouped.len());
    Ok(())
}
