//! Figure 2: sampling budget vs RMSE, ABae vs uniform, six datasets.
//!
//! Paper setting: budgets 2,000–10,000 in steps of 2,000; K = 5; half the
//! budget in each stage; 1,000 trials. Expected shape: ABae wins on every
//! dataset and budget, by up to ~2× on RMSE.

use abae_bench::datasets::paper_datasets;
use abae_bench::report::{print_max_gain, print_series_table, Series};
use abae_bench::sweep::{abae_estimates, uniform_estimates, SweepKnobs};
use abae_bench::ExpConfig;
use abae_stats::metrics::rmse;

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Figure 2", "budget vs RMSE for ABae and uniform sampling, 6 datasets");
    let budgets = [2000usize, 4000, 6000, 8000, 10_000];
    let xs: Vec<f64> = budgets.iter().map(|&b| b as f64).collect();

    for ds in paper_datasets(&cfg) {
        let abae = abae_estimates(
            &ds.table,
            ds.info.predicate_column,
            &budgets,
            cfg.trials,
            cfg.seed,
            SweepKnobs::default(),
        );
        let uniform =
            uniform_estimates(&ds.table, ds.info.predicate_column, &budgets, cfg.trials, cfg.seed);
        let abae_rmse: Vec<f64> = abae.iter().map(|e| rmse(e, ds.exact)).collect();
        let uniform_rmse: Vec<f64> = uniform.iter().map(|e| rmse(e, ds.exact)).collect();
        let s_abae = Series::new("ABae", abae_rmse);
        let s_uni = Series::new("Uniform", uniform_rmse);
        print_series_table(
            &format!("{} (exact = {:.4})", ds.info.name, ds.exact),
            "budget",
            &xs,
            &[s_abae.clone(), s_uni.clone()],
        );
        print_max_gain(&format!("fig2/{}", ds.info.name), &s_abae, &s_uni);
    }
}
