//! Figure 3: *low* sampling budgets (500–1,000) vs RMSE.
//!
//! Expected shape: even at small sample sizes ABae outperforms or matches
//! uniform sampling on every dataset.

use abae_bench::datasets::paper_datasets;
use abae_bench::report::{print_max_gain, print_series_table, Series};
use abae_bench::sweep::{abae_estimates, uniform_estimates, SweepKnobs};
use abae_bench::ExpConfig;
use abae_stats::metrics::rmse;

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Figure 3", "low budgets (500-1000) vs RMSE, 6 datasets");
    let budgets = [500usize, 750, 1000];
    let xs: Vec<f64> = budgets.iter().map(|&b| b as f64).collect();

    // Low budgets need fewer strata so each keeps a meaningful pilot
    // (paper's K-maximal-with-100-pilot-samples rule gives K = 2..5 here).
    let knobs = SweepKnobs { strata: 2, ..Default::default() };

    for ds in paper_datasets(&cfg) {
        let abae = abae_estimates(
            &ds.table,
            ds.info.predicate_column,
            &budgets,
            cfg.trials,
            cfg.seed,
            knobs,
        );
        let uniform =
            uniform_estimates(&ds.table, ds.info.predicate_column, &budgets, cfg.trials, cfg.seed);
        let s_abae = Series::new("ABae", abae.iter().map(|e| rmse(e, ds.exact)).collect());
        let s_uni = Series::new("Uniform", uniform.iter().map(|e| rmse(e, ds.exact)).collect());
        print_series_table(
            &format!("{} (exact = {:.4})", ds.info.name, ds.exact),
            "budget",
            &xs,
            &[s_abae.clone(), s_uni.clone()],
        );
        print_max_gain(&format!("fig3/{}", ds.info.name), &s_abae, &s_uni);
    }
}
