//! Figure 4: budget vs normalized Q-error (`100·(q − 1)`).
//!
//! The paper plots night-street and trec05p and reports that the same
//! trends hold elsewhere (14–70% improvements); we print all six datasets.

use abae_bench::datasets::paper_datasets;
use abae_bench::report::{print_series_table, Series};
use abae_bench::sweep::{abae_estimates, uniform_estimates, SweepKnobs};
use abae_bench::ExpConfig;
use abae_stats::metrics::normalized_q_error;

fn mean_nqe(estimates: &[f64], truth: f64) -> f64 {
    if estimates.is_empty() {
        return f64::NAN;
    }
    estimates.iter().map(|&e| normalized_q_error(e, truth)).sum::<f64>() / estimates.len() as f64
}

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Figure 4", "budget vs normalized Q-error (paper shows night-street, trec05p)");
    let budgets = [2000usize, 4000, 6000, 8000, 10_000];
    let xs: Vec<f64> = budgets.iter().map(|&b| b as f64).collect();

    for ds in paper_datasets(&cfg) {
        let abae = abae_estimates(
            &ds.table,
            ds.info.predicate_column,
            &budgets,
            cfg.trials,
            cfg.seed,
            SweepKnobs::default(),
        );
        let uniform =
            uniform_estimates(&ds.table, ds.info.predicate_column, &budgets, cfg.trials, cfg.seed);
        print_series_table(
            &format!("{} — normalized Q-error (%)", ds.info.name),
            "budget",
            &xs,
            &[
                Series::new("ABae", abae.iter().map(|e| mean_nqe(e, ds.exact)).collect()),
                Series::new("Uniform", uniform.iter().map(|e| mean_nqe(e, ds.exact)).collect()),
            ],
        );
    }
}
