//! Figure 5: budget vs confidence-interval width, plus the nominal
//! coverage check (§5.2: "ABae satisfies the nominal coverage across all
//! datasets and settings").
//!
//! Expected shape: ABae's CIs are up to ~1.5× narrower at fixed budget and
//! both methods cover the truth at ≈ the nominal 95%.

use abae_bench::datasets::paper_datasets;
use abae_bench::report::{print_max_gain, print_series_table, Series};
use abae_bench::sweep::{abae_cis, uniform_cis, SweepKnobs};
use abae_bench::ExpConfig;
use abae_core::config::BootstrapConfig;
use abae_stats::bootstrap::ConfidenceInterval;
use abae_stats::metrics::{coverage, mean_width};

fn split(all: &[(f64, ConfidenceInterval)]) -> Vec<ConfidenceInterval> {
    all.iter().map(|(_, ci)| *ci).collect()
}

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Figure 5", "budget vs bootstrap CI width + nominal coverage");
    let budgets = [2000usize, 4000, 6000, 8000, 10_000];
    let xs: Vec<f64> = budgets.iter().map(|&b| b as f64).collect();
    let bootstrap = BootstrapConfig { trials: 1000, alpha: 0.05 };

    for ds in paper_datasets(&cfg) {
        let abae = abae_cis(
            &ds.table,
            ds.info.predicate_column,
            &budgets,
            cfg.trials,
            cfg.seed,
            SweepKnobs::default(),
            bootstrap,
        );
        let uniform = uniform_cis(
            &ds.table,
            ds.info.predicate_column,
            &budgets,
            cfg.trials,
            cfg.seed,
            bootstrap,
        );
        let abae_cis_only: Vec<Vec<ConfidenceInterval>> = abae.iter().map(|v| split(v)).collect();
        let uni_cis_only: Vec<Vec<ConfidenceInterval>> = uniform.iter().map(|v| split(v)).collect();

        let s_abae =
            Series::new("ABae", abae_cis_only.iter().map(|cis| mean_width(cis)).collect());
        let s_uni =
            Series::new("Uniform", uni_cis_only.iter().map(|cis| mean_width(cis)).collect());
        print_series_table(
            &format!("{} — mean CI width", ds.info.name),
            "budget",
            &xs,
            &[s_abae.clone(), s_uni.clone()],
        );
        print_series_table(
            &format!("{} — empirical coverage (nominal 0.95)", ds.info.name),
            "budget",
            &xs,
            &[
                Series::new(
                    "ABae",
                    abae_cis_only.iter().map(|cis| coverage(cis, ds.exact)).collect(),
                ),
                Series::new(
                    "Uniform",
                    uni_cis_only.iter().map(|cis| coverage(cis, ds.exact)).collect(),
                ),
            ],
        );
        print_max_gain(&format!("fig5/{}", ds.info.name), &s_abae, &s_uni);
    }
}
