//! Figure 6: ABae-MultiPred vs single-proxy ABae vs uniform.
//!
//! Panel (a): the night-street query `count_cars > 0 AND red_light`
//! (conjunction positive rate ≈ 0.17, §5.2). Panel (b): a synthetic
//! dataset with two predicates whose per-stratum positive rates are drawn
//! from Beta distributions. Expected shape: the combined proxy beats both
//! single proxies and uniform at every budget.

use abae_bench::datasets::paper_dataset;
use abae_bench::report::{print_max_gain, print_series_table, Series};
use abae_bench::runner::run_trials;
use abae_bench::ExpConfig;
use abae_core::config::{AbaeConfig, Aggregate};
use abae_core::multipred::{expression_oracle, table_combined_scores, PredExpr};
use abae_core::strata::Stratification;
use abae_core::two_stage::run_two_stage;
use abae_core::uniform::run_uniform;
use abae_data::synthetic::{PredicateModel, StatisticModel, SyntheticSpec};
use abae_data::{Oracle as _, Table};
use abae_stats::metrics::rmse;

/// Runs the conjunction query with a given stratification-score vector.
fn rmse_with_scores(
    table: &Table,
    expr: &PredExpr,
    scores: &[f64],
    budgets: &[usize],
    trials: usize,
    seed: u64,
    exact: f64,
) -> Vec<f64> {
    let strat = Stratification::by_proxy_quantile(scores, 5);
    budgets
        .iter()
        .map(|&budget| {
            let cfg = AbaeConfig { budget, ..Default::default() };
            let ests = run_trials(trials, seed ^ budget as u64, |_, rng| {
                let oracle = expression_oracle(table, expr).expect("valid expr");
                run_two_stage(&strat, &oracle, &cfg, Aggregate::Avg, rng)
                    .expect("valid config")
                    .estimate
            });
            rmse(&ests, exact)
        })
        .collect()
}

fn run_panel(name: &str, table: &Table, expr: &PredExpr, cfg: &ExpConfig, budgets: &[usize]) {
    // Exact answer over the conjunction.
    let oracle = expression_oracle(table, expr).expect("valid expr");
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut positives = 0usize;
    for i in 0..table.len() {
        let l = oracle.label(i);
        if l.matches {
            sum += l.value;
            positives += 1;
        }
        count += 1;
    }
    let exact = if positives > 0 { sum / positives as f64 } else { 0.0 };
    println!(
        "{name}: conjunction positive rate = {:.3}, exact = {:.4}",
        positives as f64 / count as f64,
        exact
    );

    let combined = table_combined_scores(table, expr).expect("valid expr");
    let proxy1 = table.predicates()[0].proxy();
    let proxy2 = table.predicates()[1].proxy();

    let xs: Vec<f64> = budgets.iter().map(|&b| b as f64).collect();
    let multi =
        rmse_with_scores(table, expr, &combined, budgets, cfg.trials, cfg.seed, exact);
    let p1 = rmse_with_scores(table, expr, proxy1, budgets, cfg.trials, cfg.seed ^ 1, exact);
    let p2 = rmse_with_scores(table, expr, proxy2, budgets, cfg.trials, cfg.seed ^ 2, exact);
    let uniform: Vec<f64> = budgets
        .iter()
        .map(|&budget| {
            let ests = run_trials(cfg.trials, cfg.seed ^ budget as u64 ^ 0xFFFF, |_, rng| {
                let oracle = expression_oracle(table, expr).expect("valid expr");
                run_uniform(table.len(), &oracle, budget, Aggregate::Avg, rng).estimate
            });
            rmse(&ests, exact)
        })
        .collect();

    let s_multi = Series::new("ABae-Multi", multi);
    let s_uni = Series::new("Uniform", uniform);
    print_series_table(
        name,
        "budget",
        &xs,
        &[s_multi.clone(), Series::new("Proxy 1", p1), Series::new("Proxy 2", p2), s_uni.clone()],
    );
    print_max_gain(&format!("fig6/{name}"), &s_multi, &s_uni);
}

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Figure 6", "multi-predicate queries: combined proxies vs single proxies vs uniform");
    let budgets = [2000usize, 4000, 6000, 8000, 10_000];

    // Panel (a): night-street, cars AND red light.
    let ns = paper_dataset(&cfg, "night-street");
    let expr = PredExpr::and(PredExpr::pred(0), PredExpr::pred(1));
    run_panel("night-street (cars AND red_light)", &ns.table, &expr, &cfg, &budgets);

    // Panel (b): synthetic two-predicate dataset, Beta-distributed rates.
    let synth = SyntheticSpec {
        name: "synthetic-2pred".to_string(),
        n: (200_000.0 * cfg.scale).max(20_000.0) as usize,
        predicates: vec![
            PredicateModel::new("p1", 0.3, 1.0, 0.4),
            PredicateModel::new("p2", 0.5, 1.0, 0.4),
        ],
        statistic: StatisticModel::Normal { mean: 2.0, sd: 1.0, coupling: 2.0 },
        seed: cfg.seed ^ 0x5959,
    }
    .generate()
    .expect("valid spec");
    run_panel("synthetic (p1 AND p2)", &synth, &expr, &cfg, &budgets);
}
