//! Figure 8: group-by queries with *multiple* per-group oracles — max-RMSE
//! over groups vs normalized budget (log-scale in the paper).
//!
//! Panel (a): celeba. Panel (b): synthetic four groups at positive rates
//! 16%, 12%, 9%, 5% (§5.2). Expected shape: Minimax ≤ Equal < Uniform.

use abae_bench::report::{print_series_table, Series};
use abae_bench::runner::run_trials;
use abae_bench::ExpConfig;
use abae_core::groupby::{
    groupby_multi_oracle, groupby_uniform_multi, GroupAllocation, GroupByConfig,
};
use abae_data::emulators::{celeba_groupby, EmulatorOptions};
use abae_data::synthetic::{GroupSpec, StatisticModel};
use abae_data::{PredicateOracle, Table};
use abae_stats::metrics::rmse;

fn max_group_rmse(table: &Table, per_trial: &[Vec<f64>]) -> f64 {
    let groups = table.group_key().expect("grouped table").names().len();
    (0..groups)
        .map(|g| {
            let exact = table.exact_group_avg(g as u16).expect("group exists");
            let ests: Vec<f64> = per_trial.iter().map(|t| t[g]).collect();
            rmse(&ests, exact)
        })
        .fold(0.0, f64::max)
}

fn run_panel(name: &str, table: &Table, cfg: &ExpConfig, budgets_per_group: &[usize]) {
    let groups = table.group_key().expect("grouped table").names().len();
    let proxies: Vec<&[f64]> = table.predicates().iter().map(|p| p.proxy()).collect();
    let pred_names: Vec<String> =
        table.predicates().iter().map(|p| p.name().to_string()).collect();
    let xs: Vec<f64> = budgets_per_group.iter().map(|&b| b as f64).collect();

    let mut series = Vec::new();
    for (label, alloc) in
        [("Equal", Some(GroupAllocation::Equal)), ("Minimax", Some(GroupAllocation::Minimax)), ("Uniform", None)]
    {
        let values: Vec<f64> = budgets_per_group
            .iter()
            .map(|&per_group| {
                let total = per_group * groups;
                let per_trial = run_trials(cfg.trials, cfg.seed ^ total as u64, |_, rng| {
                    let oracles: Vec<PredicateOracle<'_>> = pred_names
                        .iter()
                        .map(|nm| PredicateOracle::new(table, nm).expect("predicate exists"))
                        .collect();
                    let refs: Vec<&PredicateOracle<'_>> = oracles.iter().collect();
                    match alloc {
                        Some(a) => {
                            let gcfg = GroupByConfig {
                                budget: total,
                                allocation: a,
                                ..Default::default()
                            };
                            groupby_multi_oracle(&proxies, &refs, &gcfg, rng)
                                .expect("valid config")
                                .iter()
                                .map(|e| e.estimate)
                                .collect::<Vec<f64>>()
                        }
                        None => groupby_uniform_multi(table.len(), &refs, total, rng)
                            .iter()
                            .map(|e| e.estimate)
                            .collect(),
                    }
                });
                max_group_rmse(table, &per_trial)
            })
            .collect();
        series.push(Series::new(label, values));
    }
    print_series_table(&format!("{name} — max per-group RMSE"), "budget/group", &xs, &series);
}

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Figure 8", "group-by with per-group oracles: Equal vs Minimax vs Uniform");
    let budgets_per_group = [1000usize, 2000, 3000, 4000, 5000];

    let celeba = celeba_groupby(&EmulatorOptions { scale: cfg.scale, seed: cfg.seed });
    run_panel("celeba (gray/blond)", &celeba, &cfg, &budgets_per_group);

    let stat = |mean: f64| StatisticModel::Normal { mean, sd: 1.0, coupling: 0.0 };
    let synth = GroupSpec {
        name: "synthetic-4grp-multi".to_string(),
        n: (400_000.0 * cfg.scale).max(30_000.0) as usize,
        group_names: (0..4).map(|g| format!("g{g}")).collect(),
        rates: vec![0.16, 0.12, 0.09, 0.05],
        concentration: 1.0,
        proxy_noise: 0.0,
        group_stats: vec![stat(1.0), stat(3.0), stat(5.0), stat(7.0)],
        background_stat: stat(0.0),
        seed: cfg.seed ^ 0x48,
    }
    .generate()
    .expect("valid spec");
    run_panel("synthetic (4 groups @ 16/12/9/5%)", &synth, &cfg, &budgets_per_group);
}
