//! Figure 9: lesion study — full ABae vs ABae-without-sample-reuse vs
//! uniform sampling, budgets 2,000–10,000, all six datasets.
//!
//! Expected shape: removing sample reuse substantially hurts (it degrades
//! the `p̂_k` estimates), and removing everything (uniform) is worst.

use abae_bench::datasets::paper_datasets;
use abae_bench::report::{print_series_table, Series};
use abae_bench::sweep::{abae_estimates, uniform_estimates, SweepKnobs};
use abae_bench::ExpConfig;
use abae_core::config::SampleReuse;
use abae_stats::metrics::rmse;

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Figure 9", "lesion: ABae vs no-sample-reuse vs uniform");
    let budgets = [2000usize, 4000, 6000, 8000, 10_000];
    let xs: Vec<f64> = budgets.iter().map(|&b| b as f64).collect();

    for ds in paper_datasets(&cfg) {
        let full = abae_estimates(
            &ds.table,
            ds.info.predicate_column,
            &budgets,
            cfg.trials,
            cfg.seed,
            SweepKnobs::default(),
        );
        let no_reuse = abae_estimates(
            &ds.table,
            ds.info.predicate_column,
            &budgets,
            cfg.trials,
            cfg.seed ^ 0x11,
            SweepKnobs { reuse: SampleReuse::Disabled, ..Default::default() },
        );
        let uniform =
            uniform_estimates(&ds.table, ds.info.predicate_column, &budgets, cfg.trials, cfg.seed);
        print_series_table(
            &format!("{} (exact = {:.4})", ds.info.name, ds.exact),
            "budget",
            &xs,
            &[
                Series::new("ABae", full.iter().map(|e| rmse(e, ds.exact)).collect()),
                Series::new("NoReuse", no_reuse.iter().map(|e| rmse(e, ds.exact)).collect()),
                Series::new("Uniform", uniform.iter().map(|e| rmse(e, ds.exact)).collect()),
            ],
        );
    }
}
