//! Figure 10: sensitivity to the number of strata `K` (2–10) at budget
//! 10,000.
//!
//! Expected shape: ABae beats uniform at *every* K; more strata tend to do
//! slightly better, but the choice is not critical.

use abae_bench::datasets::paper_datasets;
use abae_bench::report::{print_series_table, Series};
use abae_bench::sweep::{abae_estimates, uniform_estimates, SweepKnobs};
use abae_bench::ExpConfig;
use abae_stats::metrics::rmse;

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Figure 10", "sensitivity to strata count K at budget 10,000");
    let budget = [10_000usize];
    let ks: Vec<usize> = (2..=10).collect();
    let xs: Vec<f64> = ks.iter().map(|&k| k as f64).collect();

    for ds in paper_datasets(&cfg) {
        let abae: Vec<f64> = ks
            .iter()
            .map(|&k| {
                let ests = abae_estimates(
                    &ds.table,
                    ds.info.predicate_column,
                    &budget,
                    cfg.trials,
                    cfg.seed ^ k as u64,
                    SweepKnobs { strata: k, ..Default::default() },
                );
                rmse(&ests[0], ds.exact)
            })
            .collect();
        let uniform_ests = uniform_estimates(
            &ds.table,
            ds.info.predicate_column,
            &budget,
            cfg.trials,
            cfg.seed,
        );
        let uniform_rmse = rmse(&uniform_ests[0], ds.exact);
        print_series_table(
            &format!("{} (exact = {:.4})", ds.info.name, ds.exact),
            "strata K",
            &xs,
            &[
                Series::new("ABae", abae),
                Series::new("Uniform", vec![uniform_rmse; ks.len()]),
            ],
        );
    }
}
