//! Figure 11: sensitivity to the Stage-1 fraction `C` (0.1–0.9) at budget
//! 10,000.
//!
//! Expected shape: ABae outperforms uniform for C in 0.3–0.7; extreme
//! values (0.1, 0.9) can underperform — they starve one of the two stages.

use abae_bench::datasets::paper_datasets;
use abae_bench::report::{print_series_table, Series};
use abae_bench::sweep::{abae_estimates, uniform_estimates, SweepKnobs};
use abae_bench::ExpConfig;
use abae_stats::metrics::rmse;

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Figure 11", "sensitivity to stage-1 fraction C at budget 10,000");
    let budget = [10_000usize];
    let cs = [0.1, 0.3, 0.5, 0.7, 0.9];

    for ds in paper_datasets(&cfg) {
        let abae: Vec<f64> = cs
            .iter()
            .map(|&c| {
                let ests = abae_estimates(
                    &ds.table,
                    ds.info.predicate_column,
                    &budget,
                    cfg.trials,
                    cfg.seed ^ (c * 100.0) as u64,
                    SweepKnobs { stage1_fraction: c, ..Default::default() },
                );
                rmse(&ests[0], ds.exact)
            })
            .collect();
        let uniform_ests = uniform_estimates(
            &ds.table,
            ds.info.predicate_column,
            &budget,
            cfg.trials,
            cfg.seed,
        );
        let uniform_rmse = rmse(&uniform_ests[0], ds.exact);
        print_series_table(
            &format!("{} (exact = {:.4})", ds.info.name, ds.exact),
            "C",
            &cs,
            &[
                Series::new("ABae", abae),
                Series::new("Uniform", vec![uniform_rmse; cs.len()]),
            ],
        );
    }
}
