//! Figure 12: combining proxies via logistic regression — ABae-logistic vs
//! single-proxy ABae vs uniform, on trec05p and a synthetic dataset.
//!
//! Budget accounting: the logistic combiner trains on a uniform pilot that
//! *is charged against the budget* (25%); the remaining 75% runs ABae on
//! the combined proxy. Expected shape: the combination matches or beats
//! the best single proxy — it effectively ignores low-quality candidates.

use abae_bench::datasets::paper_dataset;
use abae_bench::report::{print_max_gain, print_series_table, Series};
use abae_bench::runner::run_trials;
use abae_bench::ExpConfig;
use abae_core::config::{AbaeConfig, Aggregate};
use abae_core::proxy_combine::combine_proxies;
use abae_core::proxy_select::draw_pilot;
use abae_core::two_stage::run_abae;
use abae_core::uniform::run_uniform;
use abae_data::{PredicateOracle, Table};
use abae_stats::dist::{Beta, Normal};
use abae_stats::metrics::rmse;
use rand::distributions::Distribution;
use rand::Rng;

fn run_panel(name: &str, table: &Table, pred: &str, cfg: &ExpConfig, budgets: &[usize]) {
    let exact = table.exact_avg(pred).expect("predicate exists");
    // Every predicate column in the table shares the same labels; their
    // proxies are the candidates.
    let candidates: Vec<&[f64]> =
        table.predicates().iter().map(|p| p.proxy()).collect();
    let xs: Vec<f64> = budgets.iter().map(|&b| b as f64).collect();

    let logistic: Vec<f64> = budgets
        .iter()
        .map(|&budget| {
            let ests = run_trials(cfg.trials, cfg.seed ^ budget as u64, |_, rng| {
                let oracle = PredicateOracle::new(table, pred).expect("predicate exists");
                let pilot_budget = budget / 4;
                let pilot = draw_pilot(table.len(), &oracle, pilot_budget, rng);
                let combined = match combine_proxies(&candidates, &pilot) {
                    Ok(scores) => scores,
                    Err(_) => candidates[0].to_vec(),
                };
                let cfg_run = AbaeConfig { budget: budget - pilot_budget, ..Default::default() };
                run_abae(&combined, &oracle, &cfg_run, Aggregate::Avg, rng)
                    .expect("valid config")
                    .estimate
            });
            rmse(&ests, exact)
        })
        .collect();

    let single: Vec<f64> = budgets
        .iter()
        .map(|&budget| {
            let ests = run_trials(cfg.trials, cfg.seed ^ budget as u64 ^ 0x1, |_, rng| {
                let oracle = PredicateOracle::new(table, pred).expect("predicate exists");
                let cfg_run = AbaeConfig { budget, ..Default::default() };
                run_abae(candidates[0], &oracle, &cfg_run, Aggregate::Avg, rng)
                    .expect("valid config")
                    .estimate
            });
            rmse(&ests, exact)
        })
        .collect();

    let uniform: Vec<f64> = budgets
        .iter()
        .map(|&budget| {
            let ests = run_trials(cfg.trials, cfg.seed ^ budget as u64 ^ 0xFFFF, |_, rng| {
                let oracle = PredicateOracle::new(table, pred).expect("predicate exists");
                run_uniform(table.len(), &oracle, budget, Aggregate::Avg, rng).estimate
            });
            rmse(&ests, exact)
        })
        .collect();

    let s_log = Series::new("ABae-logistic", logistic);
    let s_uni = Series::new("Uniform", uniform);
    print_series_table(
        &format!("{name} (exact = {exact:.4})"),
        "budget",
        &xs,
        &[s_log.clone(), Series::new("ABae-single", single), s_uni.clone()],
    );
    print_max_gain(&format!("fig12/{name}"), &s_log, &s_uni);
}

/// Synthetic panel: Bernoulli labels whose parameter is observed by three
/// proxies with different noise levels (§5.3 "the proxies were the
/// Bernoulli parameters with noise").
fn synthetic_table(n: usize, seed: u64) -> Table {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    use rand::SeedableRng;
    let base = Beta::new(0.4 * 1.2, 0.6 * 1.2).expect("valid");
    let noise = |sd: f64| Normal::new(0.0, sd).expect("valid");
    let (n1, n2, n3) = (noise(0.4), noise(1.0), noise(3.0));
    let logit = |q: f64| {
        let q = q.clamp(1e-9, 1.0 - 1e-9);
        (q / (1.0 - q)).ln()
    };
    let sigmoid = |z: f64| 1.0 / (1.0 + (-z).exp());

    let mut labels = Vec::with_capacity(n);
    let mut p1 = Vec::with_capacity(n);
    let mut p2 = Vec::with_capacity(n);
    let mut p3 = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let q = base.sample(&mut rng);
        labels.push(rng.gen::<f64>() < q);
        p1.push(sigmoid(logit(q) + n1.sample(&mut rng)));
        p2.push(sigmoid(logit(q) + n2.sample(&mut rng)));
        p3.push(sigmoid(logit(q) + n3.sample(&mut rng)));
        values.push(3.0 * q + Normal::new(0.0, 0.5).expect("valid").sample(&mut rng));
    }
    Table::builder("synthetic-multi-proxy", values)
        .predicate("label", labels.clone(), p1)
        .predicate("label_noisier", labels.clone(), p2)
        .predicate("label_noisiest", labels, p3)
        .build()
        .expect("valid construction")
}

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Figure 12", "proxy combination via logistic regression");
    let budgets = [2000usize, 4000, 6000, 8000, 10_000];

    let trec = paper_dataset(&cfg, "trec05p");
    run_panel("trec05p (3 keyword proxies)", &trec.table, "is_spam", &cfg, &budgets);

    let synth = synthetic_table((200_000.0 * cfg.scale).max(20_000.0) as usize, cfg.seed ^ 0x12);
    run_panel("synthetic (3 noisy proxies)", &synth, "label", &cfg, &budgets);
}
