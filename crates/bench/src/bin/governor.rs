//! `governor` — multi-session labeling throughput, oracle batcher off vs
//! on, under a simulated per-invocation device cost.
//!
//! The paper's cost model charges per oracle *invocation*: the expensive
//! predicate is a DNN served in batches (§5.1), so every dispatch pays a
//! fixed overhead (kernel launch, RPC round-trip) regardless of how many
//! records ride in it. Single-session ABae already amortizes that cost by
//! batching its own draws; this bench measures the next layer — the
//! engine's cross-session **oracle batcher** coalescing concurrent
//! sessions' requests for the same `(table, predicate)` into shared
//! invocations.
//!
//! Both modes charge the identical per-invocation overhead (default
//! 100µs), serialized the way one accelerator serializes dispatches; the
//! only difference is coalescing. The sweep runs 1/2/4/8 concurrent
//! sessions twice — governor off, then on — and reports aggregate
//! labeled-records/sec. Two claims are checked every run:
//!
//! * **bit-identity** — each session's `QueryResult`s (estimates, CIs,
//!   oracle-call accounting) are `assert_eq!`-identical between modes:
//!   the batcher changes invocation grouping and timing only.
//! * **throughput** — at 8 concurrent sessions, coalescing must deliver
//!   ≥ 2× the no-batching aggregate throughput (skipped with
//!   `ABAE_GOVERNOR_RELAX=1` for reduced-scale smoke runs on loaded CI
//!   hosts, where estimation CPU time can drown the simulated device).
//!
//! ```sh
//! cargo run --release -p abae_bench --bin governor
//! ABAE_GOVERNOR_QUERIES=2 ABAE_GOVERNOR_RELAX=1 \
//!     cargo run --release -p abae_bench --bin governor
//! ```

use abae_bench::artifact::emit_artifact;
use abae_bench::config::ExpConfig;
use abae_core::pipeline::ExecOptions;
use abae_data::Table;
use abae_query::{Engine, QueryResult};
use std::time::{Duration, Instant};

const SESSION_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Deterministic synthetic corpus: 25% positives, an informative proxy,
/// values cycling 0..9 — the same shape the query-layer tests use, sized
/// so stratification is non-trivial but table setup is instant.
fn table(n: usize) -> Table {
    let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
    let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
    let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
    Table::builder("emails", values).predicate("is_spam", labels, proxy).build().unwrap()
}

/// One engine per (mode, sweep point) so the batcher counters in the
/// artifact are that point's alone. A small pipeline batch size keeps the
/// invocation count high — the regime where per-invocation overhead is
/// the bottleneck and coalescing has something to amortize.
fn build_engine(n: usize, seed: u64, coalesce: bool, overhead: Duration, batch: usize) -> Engine {
    Engine::builder()
        .table(table(n))
        .seed(seed)
        .bootstrap_trials(20)
        .exec(ExecOptions::default().with_batch_size(batch))
        .governor(coalesce)
        .oracle_overhead(overhead)
        .build()
}

/// Runs `queries` per session across `sessions` concurrent threads
/// (session ids 1..=sessions, so the same ids replay in both modes) and
/// returns (elapsed, per-session result sequences).
fn run_mode(
    engine: &Engine,
    sessions: usize,
    queries: usize,
    sql: &str,
) -> (Duration, Vec<Vec<QueryResult>>) {
    let mut handles: Vec<_> =
        (0..sessions).map(|i| engine.session_with_id(i as u64 + 1)).collect();
    let start = Instant::now();
    let results = std::thread::scope(|scope| {
        let join: Vec<_> = handles
            .iter_mut()
            .map(|session| {
                scope.spawn(move || {
                    (0..queries)
                        .map(|_| session.execute(sql).expect("query runs"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        join.into_iter().map(|h| h.join().expect("session thread")).collect::<Vec<_>>()
    });
    (start.elapsed(), results)
}

fn labeled_records(results: &[Vec<QueryResult>]) -> u64 {
    results.iter().flatten().map(|r| r.oracle_calls).sum()
}

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner(
        "governor — aggregate labeled-records/sec, oracle batcher off vs on",
        "beyond the paper: cross-session invocation coalescing (§5.1 cost model)",
    );
    let records = (20_000.0 * cfg.scale.max(0.05)) as usize;
    let queries = env_u64("ABAE_GOVERNOR_QUERIES", 6) as usize;
    let budget = env_u64("ABAE_GOVERNOR_BUDGET", 1500);
    let overhead_us = env_u64("ABAE_GOVERNOR_OVERHEAD_US", 100);
    let batch = env_u64("ABAE_GOVERNOR_BATCH", 20) as usize;
    let relax = std::env::var("ABAE_GOVERNOR_RELAX").is_ok_and(|v| v == "1");
    let overhead = Duration::from_micros(overhead_us);
    let sql =
        format!("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT {budget}");
    eprintln!(
        "# {records} records, {queries} queries/session at budget {budget}, \
         {overhead_us}µs serialized overhead per invocation, pipeline batch {batch}"
    );

    let mut points = Vec::new();
    let mut speedup_at_8 = 0.0_f64;
    for &sessions in &SESSION_COUNTS {
        let off = build_engine(records, cfg.seed, false, overhead, batch);
        let (off_elapsed, off_results) = run_mode(&off, sessions, queries, &sql);
        let off_stats = off.stats();

        let on = build_engine(records, cfg.seed, true, overhead, batch);
        let (on_elapsed, on_results) = run_mode(&on, sessions, queries, &sql);
        let on_stats = on.stats();

        // The determinism contract, checked on every sweep point: same
        // session id + same seed → the same answers to the last bit,
        // whatever the invocation grouping did to the clock.
        assert_eq!(
            off_results, on_results,
            "per-session results must be bit-identical with the governor on"
        );

        let labeled = labeled_records(&on_results);
        let off_rps = labeled as f64 / off_elapsed.as_secs_f64();
        let on_rps = labeled as f64 / on_elapsed.as_secs_f64();
        let speedup = on_rps / off_rps;
        if sessions == 8 {
            speedup_at_8 = speedup;
        }
        let spend: Vec<String> = on_stats
            .per_session_spend
            .iter()
            .map(|(id, records)| format!("{{\"session\":{id},\"records\":{records}}}"))
            .collect();
        let point = format!(
            "{{\"bench\":\"governor\",\"sessions\":{sessions},\
             \"labeled_records\":{labeled},\
             \"off_elapsed_ms\":{:.3},\"on_elapsed_ms\":{:.3},\
             \"off_records_per_sec\":{off_rps:.1},\"on_records_per_sec\":{on_rps:.1},\
             \"speedup\":{speedup:.3},\
             \"off_invocations\":{},\"on_invocations\":{},\
             \"shared_batches\":{},\"coalesced_requests\":{},\
             \"bit_identical\":true,\
             \"per_session_spend\":[{}]}}",
            off_elapsed.as_secs_f64() * 1e3,
            on_elapsed.as_secs_f64() * 1e3,
            off_stats.batcher.invocations,
            on_stats.batcher.invocations,
            on_stats.batcher.shared_batches,
            on_stats.batcher.coalesced_requests,
            spend.join(",")
        );
        println!("{point}");
        points.push(point);
    }

    emit_artifact(
        "governor",
        &format!(
            "{{\"bench\":\"governor\",\"records\":{records},\"budget\":{budget},\
             \"queries_per_session\":{queries},\"overhead_us\":{overhead_us},\
             \"pipeline_batch\":{batch},\"seed\":{},\
             \"speedup_at_8_sessions\":{speedup_at_8:.3},\
             \"points\":[{}]}}",
            cfg.seed,
            points.join(",")
        ),
    );
    eprintln!(
        "# expected shape: off-mode throughput is flat (the serialized device charges \
         every session's every batch), on-mode throughput grows with session count as \
         concurrent requests share invocations; the 8-session speedup is the headline."
    );
    if relax {
        eprintln!("# ABAE_GOVERNOR_RELAX=1: skipping the ≥2x speedup assertion");
    } else {
        assert!(
            speedup_at_8 >= 2.0,
            "coalescing must deliver >=2x aggregate throughput at 8 sessions \
             (measured {speedup_at_8:.3}x)"
        );
    }
}
