//! Runs `abae-lint` over the workspace and records its coverage as a
//! `BENCH_lint.json` artifact (per-rule counts, files scanned, wall time),
//! so the invariant checker's reach is visible in the same perf/trajectory
//! tooling as the throughput benches.
//!
//! ```sh
//! cargo run --release -p abae_bench --bin lint
//! ```
//!
//! Exits non-zero when the tree has denied diagnostics — the artifact is
//! still written first, so a failing run leaves evidence behind.

use abae_bench::artifact::{emit_artifact, json_f64};
use abae_lint::{lint_root, workspace_root};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let root = workspace_root();
    let started = Instant::now();
    let report = match lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint bench: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let denied = report.denied().count();
    let allowed = report.allowed().count();
    println!("abae-lint coverage: {} files scanned in {wall_ms:.1} ms", report.files_scanned);
    println!("{:<24} {:>8} {:>8}", "rule", "denied", "allowed");
    let mut rules = String::new();
    for (rule, (den, alw)) in report.rule_counts() {
        println!("{rule:<24} {den:>8} {alw:>8}");
        if !rules.is_empty() {
            rules.push(',');
        }
        rules.push_str(&format!("\"{rule}\":{{\"denied\":{den},\"allowed\":{alw}}}"));
    }

    let json = format!(
        "{{\"bench\":\"lint\",\"files_scanned\":{},\"denied\":{denied},\"allowed\":{allowed},\
         \"wall_ms\":{},\"rule_counts\":{{{rules}}}}}",
        report.files_scanned,
        json_f64(wall_ms),
    );
    emit_artifact("lint", &json);

    if denied > 0 {
        eprintln!("lint bench: {denied} denied diagnostics — run `cargo run -p abae-lint -- --workspace --deny-all`");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
