//! Propositions 1 & 2 numeric check (§4.2).
//!
//! With *known* per-stratum `p_k, σ_k` and deterministic draws, we verify:
//! 1. The closed-form MSE (Prop. 2) matches the simulated MSE of the
//!    unbiased estimator under the optimal allocation `T*_k ∝ √p_k σ_k`.
//! 2. The optimal allocation beats perturbed and uniform allocations.

use abae_bench::runner::run_trials;
use abae_bench::ExpConfig;
use abae_core::allocation::optimal_allocation;
use abae_core::error_model::{allocation_mse, optimal_mse};
use abae_stats::dist::Normal;
use rand::distributions::Distribution;

/// Simulates the deterministic-draw estimator: stratum `k` yields exactly
/// `⌈p_k·T_k·N⌉` i.i.d. positives from `N(μ_k, σ_k)`.
fn simulate_mse(
    p: &[f64],
    mu: &[f64],
    sigma: &[f64],
    t: &[f64],
    n: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    let p_all: f64 = p.iter().sum();
    let mu_all: f64 = p.iter().zip(mu).map(|(&pk, &mk)| pk * mk).sum::<f64>() / p_all;
    let errs = run_trials(trials, seed, |_, rng| {
        let mut weighted = 0.0;
        for k in 0..p.len() {
            let draws = ((p[k] * t[k] * n as f64).ceil() as usize).max(1);
            let dist = Normal::new(mu[k], sigma[k]).expect("valid");
            let mean: f64 =
                (0..draws).map(|_| dist.sample(rng)).sum::<f64>() / draws as f64;
            weighted += p[k] * mean;
        }
        let est = weighted / p_all;
        (est - mu_all) * (est - mu_all)
    });
    errs.iter().sum::<f64>() / errs.len() as f64
}

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Propositions 1 & 2", "closed-form vs simulated MSE under known p_k, sigma_k");

    let p = [0.05, 0.2, 0.5, 0.8, 0.95];
    let mu = [1.0, 2.0, 3.0, 4.0, 5.0];
    let sigma = [2.0, 1.5, 1.0, 0.8, 0.5];
    let n = 2000usize;
    let trials = cfg.trials.max(500);

    let t_star = optimal_allocation(&p, &sigma);
    println!("optimal allocation T* = {t_star:?}");
    println!();
    println!("{:<28} {:>14} {:>14}", "allocation", "closed form", "simulated");

    let closed = optimal_mse(&p, &sigma, n);
    let simulated = simulate_mse(&p, &mu, &sigma, &t_star, n, trials, cfg.seed);
    println!("{:<28} {:>14.8} {:>14.8}", "T* (Prop 1)", closed, simulated);

    let uniform = vec![1.0 / p.len() as f64; p.len()];
    let closed_u = allocation_mse(&p, &sigma, &uniform, n);
    let simulated_u = simulate_mse(&p, &mu, &sigma, &uniform, n, trials, cfg.seed ^ 1);
    println!("{:<28} {:>14.8} {:>14.8}", "uniform 1/K", closed_u, simulated_u);

    // Perturbations of T* must not beat it (closed form).
    let mut all_worse = true;
    for shift in [0.05, 0.1, 0.2] {
        let mut perturbed = t_star.clone();
        perturbed[0] = (perturbed[0] + shift).min(1.0);
        let total: f64 = perturbed.iter().sum();
        for v in perturbed.iter_mut() {
            *v /= total;
        }
        let m = allocation_mse(&p, &sigma, &perturbed, n);
        println!("{:<28} {:>14.8} {:>14}", format!("T* + {shift} on stratum 0"), m, "-");
        all_worse &= m >= closed;
    }
    println!();
    println!(
        "closed-form vs simulated agreement at T*: {:.2}%",
        100.0 * (1.0 - (closed - simulated).abs() / closed)
    );
    println!("optimal allocation dominates perturbations: {all_worse}");
}
