//! §3.4 proxy selection: rank candidate proxies by the Proposition 2
//! plug-in MSE, then verify the prediction against realized RMSE.
//!
//! Expected shape: predicted ordering matches the realized ordering (the
//! formula "is a good predictor of relative performance", §3.4).

use abae_bench::datasets::paper_dataset;
use abae_bench::runner::run_trials;
use abae_bench::ExpConfig;
use abae_core::config::{AbaeConfig, Aggregate};
use abae_core::proxy_select::{draw_pilot, rank_proxies};
use abae_core::two_stage::run_abae;
use abae_data::PredicateOracle;
use abae_stats::metrics::rmse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Proxy selection (§3.4)", "predicted vs realized MSE for candidate proxies");
    let budget = 4000usize;

    let trec = paper_dataset(&cfg, "trec05p");
    let table = &trec.table;
    let exact = trec.exact;
    let candidates: Vec<&[f64]> =
        table.predicates().iter().map(|p| p.proxy()).collect();
    let names: Vec<&str> = table.predicates().iter().map(|p| p.name()).collect();

    // One pilot, shared across candidates (selection adds no oracle cost).
    let oracle = PredicateOracle::new(table, "is_spam").expect("predicate exists");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pilot = draw_pilot(table.len(), &oracle, 2000, &mut rng);
    let ranking = rank_proxies(&candidates, &pilot, 5, budget);

    println!(
        "{:<18} {:>16} {:>16} {:>8}",
        "proxy", "predicted MSE", "realized RMSE", "rank"
    );
    let mut realized = Vec::new();
    for (j, name) in names.iter().enumerate() {
        let ests = run_trials(cfg.trials, cfg.seed ^ j as u64, |_, rng| {
            let oracle = PredicateOracle::new(table, "is_spam").expect("predicate exists");
            let cfg_run = AbaeConfig { budget, ..Default::default() };
            run_abae(candidates[j], &oracle, &cfg_run, Aggregate::Avg, rng)
                .expect("valid config")
                .estimate
        });
        let r = rmse(&ests, exact);
        realized.push(r);
        let rank = ranking.order.iter().position(|&o| o == j).expect("ranked") + 1;
        println!("{:<18} {:>16.6} {:>16.6} {:>8}", name, ranking.predicted_mse[j], r, rank);
    }
    println!();
    let predicted_best = ranking.best();
    let realized_best = (0..realized.len())
        .min_by(|&a, &b| realized[a].total_cmp(&realized[b]))
        .expect("non-empty");
    println!(
        "predicted best = {} | realized best = {} | agree = {}",
        names[predicted_best],
        names[realized_best],
        predicted_best == realized_best
    );
}
