//! `proxy_train` — in-engine proxy training and scoring throughput vs a
//! precomputed proxy column.
//!
//! The `CREATE PROXY` path pays three costs a precomputed column never
//! does: an oracle-labeled training draw, the model fit, and a full-table
//! scoring pass. This sweep measures each of them — per family, per
//! training size, and per thread count (full-table scoring runs through
//! `core::pipeline`, so it should scale with `--threads` while staying
//! bit-identical) — and then checks what the trained artifact *buys*: the
//! CI width of a query `USING` the trained proxy vs the shipped keyword
//! column vs proxy-free uniform sampling, all on the same oracle budget.
//!
//! Output: one JSON object per line after the banner.
//!
//! ```text
//! {"bench":"proxy_train","family":"logistic","train":2000,"threads":8,...}
//! {"bench":"proxy_train_ci","source":"trained logistic","ci_width":0.38,...}
//! ```
//!
//! ```sh
//! cargo run --release -p abae_bench --bin proxy_train
//! ABAE_SCALE=1.0 cargo run --release -p abae_bench --bin proxy_train
//! ```

use abae_bench::config::ExpConfig;
use abae_core::pipeline::ExecOptions;
use abae_data::emulators::{trec05p, EmulatorOptions};
use abae_query::{Engine, EngineOptions, StatementOutcome};
use std::time::Instant;

/// Builds a fresh engine over the corpus with the given labeling knobs.
fn engine(scale: f64, seed: u64, exec: ExecOptions) -> Engine {
    let table = trec05p(&EmulatorOptions { scale, seed });
    Engine::builder()
        .table(table)
        .seed(seed)
        .options(EngineOptions { exec, ..EngineOptions::default() })
        .build()
}

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner(
        "proxy_train — train+score throughput vs precomputed proxy columns",
        "beyond the paper: in-engine proxy training (cf. §3.4, Table 2 proxies)",
    );
    let scale = cfg.scale.max(0.2);

    // Part 1: training + full-table scoring throughput. A precomputed
    // column's cost at this point is zero — the sweep quantifies what the
    // in-engine path pays instead, and how scoring scales with threads.
    for family in ["keyword", "logistic"] {
        for train in [500usize, 2_000] {
            for threads in [1usize, 4, 8] {
                let engine = engine(scale, cfg.seed, ExecOptions::new(threads, 256));
                let records = engine.catalog().table("trec05p").unwrap().len();
                let mut session = engine.session();
                let sql = format!(
                    "CREATE PROXY bench ON trec05p(is_spam) USING {family} CALIBRATED \
                     TRAIN LIMIT {train}"
                );
                let start = Instant::now();
                let outcome = session.run(&sql).expect("training succeeds");
                let elapsed = start.elapsed();
                let proxy = match outcome {
                    StatementOutcome::ProxyCreated(p) => p,
                    other => panic!("unexpected outcome {other:?}"),
                };
                println!(
                    "{{\"bench\":\"proxy_train\",\"family\":\"{family}\",\
                     \"train\":{train},\"threads\":{threads},\
                     \"records\":{records},\"elapsed_ms\":{:.3},\
                     \"records_per_sec\":{:.0},\"oracle_spend\":{},\
                     \"ece\":{:.4}}}",
                    elapsed.as_secs_f64() * 1e3,
                    records as f64 / elapsed.as_secs_f64(),
                    proxy.oracle_spend,
                    proxy.ece,
                );
            }
        }
    }

    // Part 2: what the artifact buys. Same oracle budget, three score
    // sources: the trained model, the shipped keyword column, and no
    // proxy at all (uniform ≈ the flat combined score of a fresh engine
    // without USING — measured through the engine to keep the comparison
    // inside one code path).
    let budget = 5 * ((2_000.0 * scale) as usize).max(400);
    let engine = engine(scale, cfg.seed, ExecOptions::new(1, 256));
    let mut session = engine.session();
    session
        .run("CREATE PROXY trained ON trec05p(is_spam) USING logistic CALIBRATED TRAIN LIMIT 2,000")
        .expect("training succeeds");
    for (source, using) in [
        ("trained logistic", "USING trained"),
        ("precomputed keyword column", "USING is_spam"),
        ("weak precomputed column", "USING is_spam_kw3"),
    ] {
        let sql = format!(
            "SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT {budget} {using}"
        );
        let start = Instant::now();
        let r = session.execute(&sql).expect("query executes");
        let elapsed = start.elapsed();
        let ci = r.ci().expect("scalar CI");
        println!(
            "{{\"bench\":\"proxy_train_ci\",\"source\":\"{source}\",\
             \"budget\":{budget},\"estimate\":{:.4},\"ci_width\":{:.4},\
             \"query_ms\":{:.3}}}",
            r.estimate(),
            ci.hi - ci.lo,
            elapsed.as_secs_f64() * 1e3,
        );
    }
    eprintln!(
        "# expected shape: per-statement throughput is dominated by the serial model \
         fit at small ABAE_SCALE (it grows with TRAIN LIMIT, not the table); at full \
         scale the batched full-table scoring pass dominates and tracks --threads. \
         Either way a precomputed column costs zero here — the CI sweep shows what \
         the training spend buys: the trained logistic proxy's CI width beats the \
         weak column and is competitive with the hand-written keyword column, i.e. \
         the engine can now build its proxy from nothing but the oracle."
    );
}
