//! `qps` — query throughput vs concurrent session count, in-process and
//! over the Postgres wire.
//!
//! The ROADMAP's north star is a serving system, so the interesting
//! number is not records/sec through one labeling pipeline (see the
//! `throughput` bin) but **queries/sec across many clients sharing one
//! engine and one label cache**. This sweep opens N sessions, hands each
//! its own OS thread, and measures the dashboard-refresh workload four
//! ways:
//!
//! * **prepared** — each session prepares one statement and re-runs it
//!   (the fastest in-process path; no re-parsing or re-planning).
//! * **execute** — each session re-parses and re-plans per query via
//!   `Session::run`, which is exactly the work a wire query triggers —
//!   the apples-to-apples in-process baseline for the wire mode.
//! * **wire** — N real TCP connections to an in-process `abae-server`,
//!   each a `WireClient` sending the same SQL; quantifies the serving
//!   overhead (framing + socket round-trip) the ROADMAP asks to track.
//! * **tenants** — a fairness scenario rather than a sweep: one greedy
//!   tenant running double-budget queries shares a *governed* engine
//!   (oracle batcher coalescing on, simulated invocation cost, bounded
//!   batches, the greedy session quota-capped) with three fair tenants;
//!   records per-tenant oracle spend and p50/p95 query latency, and
//!   asserts the batcher's spend ledger matches each tenant's own accounting
//!   with nobody starved.
//! * **isolated** — each thread gets its own *private* engine (own
//!   catalog, own label store, zero shared state). This is the control
//!   for the scaling diagnosis: if shared-engine qps matches
//!   isolated-engine qps at every session count, the scaling ceiling is
//!   hardware parallelism, not a shared-lock serialization point.
//!
//! A warm-up query seeds each label store, so all modes are dominated by
//! real estimation work (stratification + bootstrap), not simulated
//! oracle latency.
//!
//! Output: one JSON object per line (machine-readable, like a metrics
//! scrape), after the human banner; the artifact gains a
//! `wire_overhead` series comparing wire qps to the execute baseline at
//! each session count.
//!
//! ```sh
//! cargo run --release -p abae_bench --bin qps
//! ABAE_QPS_QUERIES=100 ABAE_SCALE=0.2 cargo run --release -p abae_bench --bin qps
//! ABAE_QPS_MODES=prepared,wire cargo run --release -p abae_bench --bin qps
//! ```

use abae_bench::artifact::emit_artifact;
use abae_bench::config::ExpConfig;
use abae_data::emulators::{trec05p, EmulatorOptions};
use abae_query::Engine;
use abae_server::{Server, WireClient};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

const SESSION_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// (oracle_calls, cache_hits, cache_misses) summed over one thread's runs.
type Accounting = (u64, u64, u64);

fn add(a: Accounting, b: Accounting) -> Accounting {
    (a.0 + b.0, a.1 + b.1, a.2 + b.2)
}

/// One sweep over [`SESSION_COUNTS`]: `run(n)` performs `n × queries` and
/// returns per-thread accounting; this wrapper times it and renders the
/// per-point JSON (speedup is relative to the sweep's own 1-session
/// point). Returns (points, qps-by-session-count).
fn run_sweep(
    mode: &str,
    queries_per_session: usize,
    mut run: impl FnMut(usize) -> Vec<Accounting>,
) -> (Vec<String>, Vec<f64>) {
    let mut baseline_qps: Option<f64> = None;
    let mut points = Vec::new();
    let mut qps_series = Vec::new();
    for &sessions in &SESSION_COUNTS {
        let start = Instant::now();
        let per_session = run(sessions);
        let elapsed = start.elapsed();
        let queries = (sessions * queries_per_session) as f64;
        let qps = queries / elapsed.as_secs_f64();
        let speedup = qps / *baseline_qps.get_or_insert(qps);
        let (calls, hits, misses) =
            per_session.into_iter().fold((0, 0, 0), add);
        let point = format!(
            "{{\"bench\":\"qps\",\"mode\":\"{mode}\",\"sessions\":{sessions},\
             \"queries\":{},\"elapsed_ms\":{:.3},\"qps\":{:.1},\
             \"speedup\":{:.3},\"oracle_calls\":{calls},\
             \"cache_hits\":{hits},\"cache_misses\":{misses}}}",
            sessions * queries_per_session,
            elapsed.as_secs_f64() * 1e3,
            qps,
            speedup,
        );
        println!("{point}");
        points.push(point);
        qps_series.push(qps);
    }
    (points, qps_series)
}

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner(
        "qps — queries/sec vs concurrent session count (in-process and over the wire)",
        "beyond the paper: Engine/Session serving (cf. ROADMAP north star)",
    );
    let queries_per_session = env_usize("ABAE_QPS_QUERIES", 20);
    let budget = env_usize("ABAE_QPS_BUDGET", 2000);
    let modes = std::env::var("ABAE_QPS_MODES")
        .unwrap_or_else(|_| "prepared,execute,wire,isolated,tenants".to_string());
    let enabled = |m: &str| modes.split(',').any(|s| s.trim() == m);
    let nproc = std::thread::available_parallelism().map_or(0, usize::from);

    let scale = cfg.scale.max(0.02);
    let table = trec05p(&EmulatorOptions { scale, seed: cfg.seed });
    let records = table.len();
    let engine = Engine::builder().table(table).label_cache(true).seed(cfg.seed).build();
    let sql = format!(
        "SELECT COUNT(*), AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT {budget}"
    );

    // Warm the label store once so the sweep measures serving throughput,
    // not first-touch oracle labeling.
    let warm = engine.session().execute(&sql).expect("warm-up query executes");
    eprintln!(
        "# warm-up: {} oracle calls over {records} records; \
         {queries_per_session} queries/session at budget {budget}; {nproc} cores",
        warm.oracle_calls
    );

    // Shared-engine sweep on the prepared path (the historical series).
    let mut prepared_points = Vec::new();
    if enabled("prepared") {
        (prepared_points, _) = run_sweep("prepared", queries_per_session, |n| {
            let mut handles: Vec<_> = (0..n).map(|_| engine.session()).collect();
            std::thread::scope(|scope| {
                let join: Vec<_> = handles
                    .iter_mut()
                    .map(|session| {
                        let sql = &sql;
                        scope.spawn(move || {
                            let stmt = session.prepare(sql).expect("statement plans");
                            let mut acct = (0, 0, 0);
                            for _ in 0..queries_per_session {
                                let r = stmt.run().expect("prepared statement runs");
                                acct = add(acct, (r.oracle_calls, r.cache_hits, r.cache_misses));
                            }
                            acct
                        })
                    })
                    .collect();
                join.into_iter().map(|h| h.join().expect("session thread")).collect()
            })
        });
    }

    // Shared-engine sweep on the parse-per-query path — what one wire
    // query costs minus the network, so the wire overhead is attributable.
    let mut execute_points = Vec::new();
    let mut execute_qps = Vec::new();
    if enabled("execute") {
        (execute_points, execute_qps) = run_sweep("execute", queries_per_session, |n| {
            let mut handles: Vec<_> = (0..n).map(|_| engine.session()).collect();
            std::thread::scope(|scope| {
                let join: Vec<_> = handles
                    .iter_mut()
                    .map(|session| {
                        let sql = &sql;
                        scope.spawn(move || {
                            let mut acct = (0, 0, 0);
                            for _ in 0..queries_per_session {
                                let r = session.execute(sql).expect("query runs");
                                acct = add(acct, (r.oracle_calls, r.cache_hits, r.cache_misses));
                            }
                            acct
                        })
                    })
                    .collect();
                join.into_iter().map(|h| h.join().expect("session thread")).collect()
            })
        });
    }

    // Over-the-wire sweep: same engine, but every query crosses a real
    // TCP socket through the pgwire server. Connection setup happens
    // outside the timed region — the series prices the per-query serving
    // overhead, not the handshake.
    let mut wire_points = Vec::new();
    let mut wire_qps = Vec::new();
    if enabled("wire") {
        let server = Server::bind(engine.clone(), "127.0.0.1:0")
            .expect("bind ephemeral port")
            .spawn()
            .expect("spawn pgwire server");
        let addr = server.addr();
        (wire_points, wire_qps) = run_sweep("wire", queries_per_session, |n| {
            let mut clients: Vec<_> = (0..n)
                .map(|_| WireClient::connect(addr).expect("wire client connects"))
                .collect();
            std::thread::scope(|scope| {
                let join: Vec<_> = clients
                    .iter_mut()
                    .map(|client| {
                        let sql = &sql;
                        scope.spawn(move || {
                            let mut acct = (0, 0, 0);
                            for _ in 0..queries_per_session {
                                let out = client.query(sql).expect("wire query runs");
                                assert!(out.error.is_none(), "wire query failed: {:?}", out.error);
                                // Accounting rides in the result columns.
                                let col = |i| {
                                    out.text(0, i)
                                        .and_then(|v| v.parse::<u64>().ok())
                                        .unwrap_or(0)
                                };
                                acct = add(acct, (col(5), col(6), col(7)));
                            }
                            acct
                        })
                    })
                    .collect();
                join.into_iter().map(|h| h.join().expect("client thread")).collect()
            })
        });
        server.shutdown();
    }

    // Isolated control: one *private* engine per thread — no shared label
    // store, no shared catalog, no shared anything — on the prepared
    // path, warmed before the clock so every measured run replays cached
    // draws exactly like the shared `prepared` sweep's repeat runs. The
    // only remaining difference from `prepared` is whether the label
    // store's locks are shared across threads; if this curve matches the
    // shared-engine curve, the scaling ceiling is hardware parallelism,
    // not a shared-lock serialization point.
    let mut isolated_points = Vec::new();
    if enabled("isolated") {
        // All setup — private table generation, engine build, warm-up run —
        // happens before the sweep so the timed region measures nothing
        // but `stmt.run()` (re-runs are deterministic replays, so reusing
        // the statements across sweep points changes nothing).
        let max_sessions = SESSION_COUNTS.iter().copied().max().unwrap_or(1);
        let mut stmts: Vec<_> = (0..max_sessions)
            .map(|_| {
                let table = trec05p(&EmulatorOptions { scale, seed: cfg.seed });
                let private = Engine::builder()
                    .table(table)
                    .label_cache(true)
                    .seed(cfg.seed)
                    .build();
                let stmt = private
                    .session()
                    .prepare(&sql)
                    .expect("private statement plans");
                stmt.run().expect("private warm-up");
                stmt
            })
            .collect();
        (isolated_points, _) = run_sweep("isolated", queries_per_session, |n| {
            std::thread::scope(|scope| {
                let join: Vec<_> = stmts[..n]
                    .iter_mut()
                    .map(|stmt| {
                        scope.spawn(move || {
                            let mut acct = (0, 0, 0);
                            for _ in 0..queries_per_session {
                                let r = stmt.run().expect("prepared statement runs");
                                acct = add(acct, (r.oracle_calls, r.cache_hits, r.cache_misses));
                            }
                            acct
                        })
                    })
                    .collect();
                join.into_iter().map(|h| h.join().expect("session thread")).collect()
            })
        });
    }

    // Multi-tenant fairness scenario: one greedy tenant hammering
    // double-budget queries shares a *governed* oracle (coalescing on,
    // 100µs serialized cost per invocation, bounded batches) with three
    // fair tenants refreshing small dashboards. The batcher's fair-share
    // admission — FIFO order, front ticket always admitted, the greedy
    // session quota-capped per contended batch — must keep the fair
    // tenants flowing while every tenant's oracle spend stays exactly
    // attributable. Recorded: per-tenant spend and p50/p95 query latency.
    let mut tenants_json = String::new();
    if enabled("tenants") {
        use abae_query::BatcherOptions;
        use std::time::Duration;

        let greedy_id: u64 = 1000;
        let fair_ids: [u64; 3] = [1, 2, 3];
        let greedy_queries = env_usize("ABAE_QPS_GREEDY_QUERIES", 4);
        let fair_queries = env_usize("ABAE_QPS_FAIR_QUERIES", 8);
        let greedy_budget = budget * 2;
        let fair_budget = (budget / 5).max(100);

        let table = trec05p(&EmulatorOptions { scale, seed: cfg.seed });
        // Pipeline chunks of 32 records keep every ticket within the
        // 64-record batch cap, so contended batches actually carry more
        // than one tenant and the greedy quota has something to cap.
        let tenant_engine = Engine::builder()
            .table(table)
            .seed(cfg.seed)
            .bootstrap_trials(50)
            .exec(abae_core::pipeline::ExecOptions::default().with_batch_size(32))
            .batcher(
                BatcherOptions::default()
                    .with_coalesce(true)
                    .with_invocation_overhead(Duration::from_micros(100))
                    .with_max_batch_records(64),
            )
            .build();
        // The priority knob: cap the greedy tenant's guaranteed share of
        // every contended batch so it cannot crowd the fair tenants out.
        tenant_engine.set_session_quota(greedy_id, 16);

        let tenant_sql = |tenant_budget: usize| {
            format!(
                "SELECT COUNT(*), AVG(links) FROM trec05p WHERE is_spam \
                 ORACLE LIMIT {tenant_budget}"
            )
        };
        // Per-tenant run: latency per query plus the tenant's own
        // oracle-call accounting, to check against the batcher's ledger.
        let drive = |mut session: abae_query::Session, sql: String, queries: usize| {
            let mut latencies = Vec::with_capacity(queries);
            let mut spend = 0u64;
            for _ in 0..queries {
                let start = Instant::now();
                let r = session.execute(&sql).expect("tenant query runs");
                latencies.push(start.elapsed());
                spend += r.oracle_calls;
            }
            latencies.sort_unstable();
            (latencies, spend)
        };
        let pct = |sorted: &[std::time::Duration], p: usize| {
            sorted[(sorted.len() * p / 100).min(sorted.len() - 1)].as_secs_f64() * 1e3
        };

        let (greedy_run, fair_runs) = std::thread::scope(|scope| {
            let greedy = {
                let session = tenant_engine.session_with_id(greedy_id);
                let sql = tenant_sql(greedy_budget);
                scope.spawn(move || drive(session, sql, greedy_queries))
            };
            let fair: Vec<_> = fair_ids
                .iter()
                .map(|&id| {
                    let session = tenant_engine.session_with_id(id);
                    let sql = tenant_sql(fair_budget);
                    scope.spawn(move || drive(session, sql, fair_queries))
                })
                .collect();
            (
                greedy.join().expect("greedy tenant thread"),
                fair.into_iter()
                    .map(|h| h.join().expect("fair tenant thread"))
                    .collect::<Vec<_>>(),
            )
        });

        // The batcher's per-session ledger must agree exactly with each
        // tenant's own accounting — spend attribution survives coalescing.
        let stats = tenant_engine.stats();
        let ledger: std::collections::BTreeMap<u64, u64> =
            stats.per_session_spend.iter().copied().collect();
        assert_eq!(ledger.get(&greedy_id), Some(&greedy_run.1), "greedy spend ledger");
        for (&id, run) in fair_ids.iter().zip(&fair_runs) {
            assert_eq!(ledger.get(&id), Some(&run.1), "fair tenant {id} spend ledger");
            assert!(run.1 > 0, "fair tenant {id} starved: zero oracle spend");
            assert_eq!(run.0.len(), fair_queries, "fair tenant {id} dropped queries");
        }

        let fair_points: Vec<String> = fair_ids
            .iter()
            .zip(&fair_runs)
            .map(|(&id, (lat, spend))| {
                format!(
                    "{{\"session\":{id},\"queries\":{fair_queries},\
                     \"budget\":{fair_budget},\"oracle_spend\":{spend},\
                     \"p50_ms\":{:.3},\"p95_ms\":{:.3}}}",
                    pct(lat, 50),
                    pct(lat, 95)
                )
            })
            .collect();
        tenants_json = format!(
            "{{\"greedy\":{{\"session\":{greedy_id},\"queries\":{greedy_queries},\
             \"budget\":{greedy_budget},\"quota_records\":16,\"oracle_spend\":{},\
             \"p50_ms\":{:.3},\"p95_ms\":{:.3}}},\
             \"fair\":[{}],\
             \"invocations\":{},\"shared_batches\":{},\"coalesced_requests\":{},\
             \"no_starvation\":true}}",
            greedy_run.1,
            pct(&greedy_run.0, 50),
            pct(&greedy_run.0, 95),
            fair_points.join(","),
            stats.batcher.invocations,
            stats.batcher.shared_batches,
            stats.batcher.coalesced_requests,
        );
        println!("{{\"bench\":\"qps\",\"mode\":\"tenants\",\"tenants\":{tenants_json}}}");
    }

    // Wire overhead per session count: execute (in-process, parse per
    // query) vs wire (same work over TCP).
    let mut overhead = Vec::new();
    for (i, &sessions) in SESSION_COUNTS.iter().enumerate() {
        if let (Some(&ip), Some(&w)) = (execute_qps.get(i), wire_qps.get(i)) {
            let point = format!(
                "{{\"sessions\":{sessions},\"in_process_qps\":{ip:.1},\
                 \"wire_qps\":{w:.1},\"overhead\":{:.3}}}",
                ip / w
            );
            println!("{point}");
            overhead.push(point);
        }
    }

    emit_artifact(
        "qps",
        &format!(
            "{{\"bench\":\"qps\",\"records\":{records},\"budget\":{budget},\
             \"queries_per_session\":{queries_per_session},\"seed\":{},\
             \"nproc\":{nproc},\
             \"points\":[{}],\
             \"execute_points\":[{}],\
             \"wire_points\":[{}],\
             \"isolated_points\":[{}],\
             \"wire_overhead\":[{}],\
             \"tenants\":{}}}",
            cfg.seed,
            prepared_points.join(","),
            execute_points.join(","),
            wire_points.join(","),
            isolated_points.join(","),
            overhead.join(","),
            if tenants_json.is_empty() { "null".to_string() } else { tenants_json }
        ),
    );
    eprintln!(
        "# expected shape: qps tracks min(sessions, cores) — on a multi-core box the \
         curves grow to the core count; on a 1-core box every curve is flat at \
         speedup ~1.0, and the isolated-engines control matching the shared-engine \
         curves is the proof that the ceiling is hardware parallelism, not a shared \
         lock. Wire overhead prices pgwire framing + TCP round-trip against the \
         identical in-process call."
    );
}
