//! `qps` — query throughput vs concurrent session count, in-process and
//! over the Postgres wire.
//!
//! The ROADMAP's north star is a serving system, so the interesting
//! number is not records/sec through one labeling pipeline (see the
//! `throughput` bin) but **queries/sec across many clients sharing one
//! engine and one label cache**. This sweep opens N sessions, hands each
//! its own OS thread, and measures the dashboard-refresh workload four
//! ways:
//!
//! * **prepared** — each session prepares one statement and re-runs it
//!   (the fastest in-process path; no re-parsing or re-planning).
//! * **execute** — each session re-parses and re-plans per query via
//!   `Session::run`, which is exactly the work a wire query triggers —
//!   the apples-to-apples in-process baseline for the wire mode.
//! * **wire** — N real TCP connections to an in-process `abae-server`,
//!   each a `WireClient` sending the same SQL; quantifies the serving
//!   overhead (framing + socket round-trip) the ROADMAP asks to track.
//! * **isolated** — each thread gets its own *private* engine (own
//!   catalog, own label store, zero shared state). This is the control
//!   for the scaling diagnosis: if shared-engine qps matches
//!   isolated-engine qps at every session count, the scaling ceiling is
//!   hardware parallelism, not a shared-lock serialization point.
//!
//! A warm-up query seeds each label store, so all modes are dominated by
//! real estimation work (stratification + bootstrap), not simulated
//! oracle latency.
//!
//! Output: one JSON object per line (machine-readable, like a metrics
//! scrape), after the human banner; the artifact gains a
//! `wire_overhead` series comparing wire qps to the execute baseline at
//! each session count.
//!
//! ```sh
//! cargo run --release -p abae_bench --bin qps
//! ABAE_QPS_QUERIES=100 ABAE_SCALE=0.2 cargo run --release -p abae_bench --bin qps
//! ABAE_QPS_MODES=prepared,wire cargo run --release -p abae_bench --bin qps
//! ```

use abae_bench::artifact::emit_artifact;
use abae_bench::config::ExpConfig;
use abae_data::emulators::{trec05p, EmulatorOptions};
use abae_query::Engine;
use abae_server::{Server, WireClient};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

const SESSION_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// (oracle_calls, cache_hits, cache_misses) summed over one thread's runs.
type Accounting = (u64, u64, u64);

fn add(a: Accounting, b: Accounting) -> Accounting {
    (a.0 + b.0, a.1 + b.1, a.2 + b.2)
}

/// One sweep over [`SESSION_COUNTS`]: `run(n)` performs `n × queries` and
/// returns per-thread accounting; this wrapper times it and renders the
/// per-point JSON (speedup is relative to the sweep's own 1-session
/// point). Returns (points, qps-by-session-count).
fn run_sweep(
    mode: &str,
    queries_per_session: usize,
    mut run: impl FnMut(usize) -> Vec<Accounting>,
) -> (Vec<String>, Vec<f64>) {
    let mut baseline_qps: Option<f64> = None;
    let mut points = Vec::new();
    let mut qps_series = Vec::new();
    for &sessions in &SESSION_COUNTS {
        let start = Instant::now();
        let per_session = run(sessions);
        let elapsed = start.elapsed();
        let queries = (sessions * queries_per_session) as f64;
        let qps = queries / elapsed.as_secs_f64();
        let speedup = qps / *baseline_qps.get_or_insert(qps);
        let (calls, hits, misses) =
            per_session.into_iter().fold((0, 0, 0), add);
        let point = format!(
            "{{\"bench\":\"qps\",\"mode\":\"{mode}\",\"sessions\":{sessions},\
             \"queries\":{},\"elapsed_ms\":{:.3},\"qps\":{:.1},\
             \"speedup\":{:.3},\"oracle_calls\":{calls},\
             \"cache_hits\":{hits},\"cache_misses\":{misses}}}",
            sessions * queries_per_session,
            elapsed.as_secs_f64() * 1e3,
            qps,
            speedup,
        );
        println!("{point}");
        points.push(point);
        qps_series.push(qps);
    }
    (points, qps_series)
}

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner(
        "qps — queries/sec vs concurrent session count (in-process and over the wire)",
        "beyond the paper: Engine/Session serving (cf. ROADMAP north star)",
    );
    let queries_per_session = env_usize("ABAE_QPS_QUERIES", 20);
    let budget = env_usize("ABAE_QPS_BUDGET", 2000);
    let modes = std::env::var("ABAE_QPS_MODES")
        .unwrap_or_else(|_| "prepared,execute,wire,isolated".to_string());
    let enabled = |m: &str| modes.split(',').any(|s| s.trim() == m);
    let nproc = std::thread::available_parallelism().map_or(0, usize::from);

    let scale = cfg.scale.max(0.02);
    let table = trec05p(&EmulatorOptions { scale, seed: cfg.seed });
    let records = table.len();
    let engine = Engine::builder().table(table).label_cache(true).seed(cfg.seed).build();
    let sql = format!(
        "SELECT COUNT(*), AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT {budget}"
    );

    // Warm the label store once so the sweep measures serving throughput,
    // not first-touch oracle labeling.
    let warm = engine.session().execute(&sql).expect("warm-up query executes");
    eprintln!(
        "# warm-up: {} oracle calls over {records} records; \
         {queries_per_session} queries/session at budget {budget}; {nproc} cores",
        warm.oracle_calls
    );

    // Shared-engine sweep on the prepared path (the historical series).
    let mut prepared_points = Vec::new();
    if enabled("prepared") {
        (prepared_points, _) = run_sweep("prepared", queries_per_session, |n| {
            let mut handles: Vec<_> = (0..n).map(|_| engine.session()).collect();
            std::thread::scope(|scope| {
                let join: Vec<_> = handles
                    .iter_mut()
                    .map(|session| {
                        let sql = &sql;
                        scope.spawn(move || {
                            let stmt = session.prepare(sql).expect("statement plans");
                            let mut acct = (0, 0, 0);
                            for _ in 0..queries_per_session {
                                let r = stmt.run().expect("prepared statement runs");
                                acct = add(acct, (r.oracle_calls, r.cache_hits, r.cache_misses));
                            }
                            acct
                        })
                    })
                    .collect();
                join.into_iter().map(|h| h.join().expect("session thread")).collect()
            })
        });
    }

    // Shared-engine sweep on the parse-per-query path — what one wire
    // query costs minus the network, so the wire overhead is attributable.
    let mut execute_points = Vec::new();
    let mut execute_qps = Vec::new();
    if enabled("execute") {
        (execute_points, execute_qps) = run_sweep("execute", queries_per_session, |n| {
            let mut handles: Vec<_> = (0..n).map(|_| engine.session()).collect();
            std::thread::scope(|scope| {
                let join: Vec<_> = handles
                    .iter_mut()
                    .map(|session| {
                        let sql = &sql;
                        scope.spawn(move || {
                            let mut acct = (0, 0, 0);
                            for _ in 0..queries_per_session {
                                let r = session.execute(sql).expect("query runs");
                                acct = add(acct, (r.oracle_calls, r.cache_hits, r.cache_misses));
                            }
                            acct
                        })
                    })
                    .collect();
                join.into_iter().map(|h| h.join().expect("session thread")).collect()
            })
        });
    }

    // Over-the-wire sweep: same engine, but every query crosses a real
    // TCP socket through the pgwire server. Connection setup happens
    // outside the timed region — the series prices the per-query serving
    // overhead, not the handshake.
    let mut wire_points = Vec::new();
    let mut wire_qps = Vec::new();
    if enabled("wire") {
        let server = Server::bind(engine.clone(), "127.0.0.1:0")
            .expect("bind ephemeral port")
            .spawn()
            .expect("spawn pgwire server");
        let addr = server.addr();
        (wire_points, wire_qps) = run_sweep("wire", queries_per_session, |n| {
            let mut clients: Vec<_> = (0..n)
                .map(|_| WireClient::connect(addr).expect("wire client connects"))
                .collect();
            std::thread::scope(|scope| {
                let join: Vec<_> = clients
                    .iter_mut()
                    .map(|client| {
                        let sql = &sql;
                        scope.spawn(move || {
                            let mut acct = (0, 0, 0);
                            for _ in 0..queries_per_session {
                                let out = client.query(sql).expect("wire query runs");
                                assert!(out.error.is_none(), "wire query failed: {:?}", out.error);
                                // Accounting rides in the result columns.
                                let col = |i| {
                                    out.text(0, i)
                                        .and_then(|v| v.parse::<u64>().ok())
                                        .unwrap_or(0)
                                };
                                acct = add(acct, (col(5), col(6), col(7)));
                            }
                            acct
                        })
                    })
                    .collect();
                join.into_iter().map(|h| h.join().expect("client thread")).collect()
            })
        });
        server.shutdown();
    }

    // Isolated control: one *private* engine per thread — no shared label
    // store, no shared catalog, no shared anything — on the prepared
    // path, warmed before the clock so every measured run replays cached
    // draws exactly like the shared `prepared` sweep's repeat runs. The
    // only remaining difference from `prepared` is whether the label
    // store's locks are shared across threads; if this curve matches the
    // shared-engine curve, the scaling ceiling is hardware parallelism,
    // not a shared-lock serialization point.
    let mut isolated_points = Vec::new();
    if enabled("isolated") {
        // All setup — private table generation, engine build, warm-up run —
        // happens before the sweep so the timed region measures nothing
        // but `stmt.run()` (re-runs are deterministic replays, so reusing
        // the statements across sweep points changes nothing).
        let max_sessions = SESSION_COUNTS.iter().copied().max().unwrap_or(1);
        let mut stmts: Vec<_> = (0..max_sessions)
            .map(|_| {
                let table = trec05p(&EmulatorOptions { scale, seed: cfg.seed });
                let private = Engine::builder()
                    .table(table)
                    .label_cache(true)
                    .seed(cfg.seed)
                    .build();
                let stmt = private
                    .session()
                    .prepare(&sql)
                    .expect("private statement plans");
                stmt.run().expect("private warm-up");
                stmt
            })
            .collect();
        (isolated_points, _) = run_sweep("isolated", queries_per_session, |n| {
            std::thread::scope(|scope| {
                let join: Vec<_> = stmts[..n]
                    .iter_mut()
                    .map(|stmt| {
                        scope.spawn(move || {
                            let mut acct = (0, 0, 0);
                            for _ in 0..queries_per_session {
                                let r = stmt.run().expect("prepared statement runs");
                                acct = add(acct, (r.oracle_calls, r.cache_hits, r.cache_misses));
                            }
                            acct
                        })
                    })
                    .collect();
                join.into_iter().map(|h| h.join().expect("session thread")).collect()
            })
        });
    }

    // Wire overhead per session count: execute (in-process, parse per
    // query) vs wire (same work over TCP).
    let mut overhead = Vec::new();
    for (i, &sessions) in SESSION_COUNTS.iter().enumerate() {
        if let (Some(&ip), Some(&w)) = (execute_qps.get(i), wire_qps.get(i)) {
            let point = format!(
                "{{\"sessions\":{sessions},\"in_process_qps\":{ip:.1},\
                 \"wire_qps\":{w:.1},\"overhead\":{:.3}}}",
                ip / w
            );
            println!("{point}");
            overhead.push(point);
        }
    }

    emit_artifact(
        "qps",
        &format!(
            "{{\"bench\":\"qps\",\"records\":{records},\"budget\":{budget},\
             \"queries_per_session\":{queries_per_session},\"seed\":{},\
             \"nproc\":{nproc},\
             \"points\":[{}],\
             \"execute_points\":[{}],\
             \"wire_points\":[{}],\
             \"isolated_points\":[{}],\
             \"wire_overhead\":[{}]}}",
            cfg.seed,
            prepared_points.join(","),
            execute_points.join(","),
            wire_points.join(","),
            isolated_points.join(","),
            overhead.join(",")
        ),
    );
    eprintln!(
        "# expected shape: qps tracks min(sessions, cores) — on a multi-core box the \
         curves grow to the core count; on a 1-core box every curve is flat at \
         speedup ~1.0, and the isolated-engines control matching the shared-engine \
         curves is the proof that the ceiling is hardware parallelism, not a shared \
         lock. Wire overhead prices pgwire framing + TCP round-trip against the \
         identical in-process call."
    );
}
