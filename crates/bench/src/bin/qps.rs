//! `qps` — query throughput vs concurrent session count on one shared
//! [`Engine`].
//!
//! The ROADMAP's north star is a serving system, so the interesting
//! number is not records/sec through one labeling pipeline (see the
//! `throughput` bin) but **queries/sec across many clients sharing one
//! engine and one label cache**. This sweep opens N sessions, hands each
//! its own OS thread, and has every session prepare one statement and run
//! it repeatedly — the dashboard-refresh workload the prepared-statement
//! API exists for. A warm-up query seeds the label store and each
//! session's repeat runs replay their own cached draws, so the sweep is
//! dominated by real estimation work (stratification + bootstrap), not
//! simulated oracle latency.
//!
//! Output: one JSON object per line (machine-readable, like a metrics
//! scrape), after the human banner:
//!
//! ```text
//! {"bench":"qps","sessions":2,"queries":40,"elapsed_ms":12.3,"qps":3252.0,...}
//! ```
//!
//! ```sh
//! cargo run --release -p abae_bench --bin qps
//! ABAE_QPS_QUERIES=100 ABAE_SCALE=0.2 cargo run --release -p abae_bench --bin qps
//! ```

use abae_bench::artifact::emit_artifact;
use abae_bench::config::ExpConfig;
use abae_data::emulators::{trec05p, EmulatorOptions};
use abae_query::Engine;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner(
        "qps — queries/sec vs concurrent session count",
        "beyond the paper: Engine/Session serving (cf. ROADMAP north star)",
    );
    let queries_per_session = env_usize("ABAE_QPS_QUERIES", 20);
    let budget = env_usize("ABAE_QPS_BUDGET", 2000);

    let table = trec05p(&EmulatorOptions { scale: cfg.scale.max(0.02), seed: cfg.seed });
    let records = table.len();
    let engine = Engine::builder().table(table).label_cache(true).seed(cfg.seed).build();
    let sql = format!(
        "SELECT COUNT(*), AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT {budget}"
    );

    // Warm the label store once so the sweep measures serving throughput,
    // not first-touch oracle labeling.
    let warm = engine.session().execute(&sql).expect("warm-up query executes");
    eprintln!(
        "# warm-up: {} oracle calls over {records} records; \
         {queries_per_session} queries/session at budget {budget}",
        warm.oracle_calls
    );

    let mut baseline_qps: Option<f64> = None;
    let mut points: Vec<String> = Vec::new();
    for &sessions in &[1usize, 2, 4, 8] {
        // Sessions are created up front (deterministic ids), then each
        // runs on its own thread against the shared engine.
        let mut handles: Vec<_> = (0..sessions).map(|_| engine.session()).collect();
        let start = Instant::now();
        let per_session: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
            let join: Vec<_> = handles
                .iter_mut()
                .map(|session| {
                    let sql = &sql;
                    scope.spawn(move || {
                        let stmt = session.prepare(sql).expect("statement plans");
                        let (mut calls, mut hits, mut misses) = (0u64, 0u64, 0u64);
                        for _ in 0..queries_per_session {
                            let r = stmt.run().expect("prepared statement runs");
                            calls += r.oracle_calls;
                            hits += r.cache_hits;
                            misses += r.cache_misses;
                        }
                        (calls, hits, misses)
                    })
                })
                .collect();
            join.into_iter().map(|h| h.join().expect("session thread")).collect()
        });
        let elapsed = start.elapsed();
        let queries = (sessions * queries_per_session) as f64;
        let qps = queries / elapsed.as_secs_f64();
        let speedup = qps / *baseline_qps.get_or_insert(qps);
        let calls: u64 = per_session.iter().map(|r| r.0).sum();
        let hits: u64 = per_session.iter().map(|r| r.1).sum();
        let misses: u64 = per_session.iter().map(|r| r.2).sum();
        let point = format!(
            "{{\"bench\":\"qps\",\"sessions\":{sessions},\
             \"queries\":{},\"elapsed_ms\":{:.3},\"qps\":{:.1},\
             \"speedup\":{:.3},\"oracle_calls\":{calls},\
             \"cache_hits\":{hits},\"cache_misses\":{misses}}}",
            sessions * queries_per_session,
            elapsed.as_secs_f64() * 1e3,
            qps,
            speedup,
        );
        println!("{point}");
        points.push(point);
    }
    emit_artifact(
        "qps",
        &format!(
            "{{\"bench\":\"qps\",\"records\":{records},\"budget\":{budget},\
             \"queries_per_session\":{queries_per_session},\"seed\":{},\
             \"points\":[{}]}}",
            cfg.seed,
            points.join(",")
        ),
    );
    eprintln!(
        "# expected shape: qps tracks the core count — it grows with sessions up to \
         the hardware's parallelism, and stays flat (rather than degrading) beyond \
         it, because sessions share no hot-path lock. Each session's first run pays \
         for its stream's unseen records; every repeat run of a prepared statement \
         replays cached verdicts for free."
    );
}
