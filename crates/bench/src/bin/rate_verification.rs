//! Theorem 4.1 verification: ABae's MSE decays as O(1/N).
//!
//! We sweep the budget and report `N·MSE`; under the theorem this product
//! should be roughly flat (and it should match the Proposition 2 constant
//! as N grows). Uniform sampling's `N·MSE` is flat too but at a higher
//! constant — the gap is the proxy's value.

use abae_bench::report::{print_series_table, Series};
use abae_bench::sweep::{abae_estimates, uniform_estimates, SweepKnobs};
use abae_bench::ExpConfig;
use abae_core::error_model::optimal_mse;
use abae_core::strata::Stratification;
use abae_data::synthetic::{PredicateModel, StatisticModel, SyntheticSpec};
use abae_stats::metrics::mse;

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Theorem 4.1", "O(1/N) rate: N*MSE should be flat in N");
    let budgets = [1000usize, 2000, 4000, 8000, 16_000, 32_000];
    let xs: Vec<f64> = budgets.iter().map(|&b| b as f64).collect();

    let table = SyntheticSpec {
        name: "rate-check".to_string(),
        // Keep the largest budget a small fraction of the dataset so
        // finite-population effects do not bend the curve.
        n: (400_000.0 * cfg.scale * 4.0).max(320_000.0) as usize,
        predicates: vec![PredicateModel::new("p", 0.2, 1.0, 0.3)],
        statistic: StatisticModel::Normal { mean: 5.0, sd: 2.0, coupling: 4.0 },
        seed: cfg.seed ^ 0x41,
    }
    .generate()
    .expect("valid spec");
    let exact = table.exact_avg("p").expect("predicate exists");
    println!("dataset n = {}, exact = {exact:.4}", table.len());

    let knobs = SweepKnobs::default();
    let abae = abae_estimates(&table, "p", &budgets, cfg.trials, cfg.seed, knobs);
    let uniform = uniform_estimates(&table, "p", &budgets, cfg.trials, cfg.seed);

    let abae_nmse: Vec<f64> = abae
        .iter()
        .zip(&budgets)
        .map(|(e, &n)| n as f64 * mse(e, exact))
        .collect();
    let uniform_nmse: Vec<f64> = uniform
        .iter()
        .zip(&budgets)
        .map(|(e, &n)| n as f64 * mse(e, exact))
        .collect();

    print_series_table(
        "N * MSE (flat = O(1/N) rate holds)",
        "budget N",
        &xs,
        &[Series::new("ABae", abae_nmse.clone()), Series::new("Uniform", uniform_nmse)],
    );

    // Compare against the Proposition 2 constant computed from the exact
    // per-stratum quantities.
    let pred = table.predicate("p").expect("predicate exists");
    let strat = Stratification::by_proxy_quantile(pred.proxy(), knobs.strata);
    let gt = strat.ground_truth(&pred.labels_vec(), table.statistics());
    let p: Vec<f64> = gt.iter().map(|s| s.p).collect();
    let sigma: Vec<f64> = gt.iter().map(|s| s.sigma).collect();
    let prop2_constant = optimal_mse(&p, &sigma, 1);
    println!("Proposition 2 constant (N*MSE at optimal allocation): {prop2_constant:.4}");
    println!(
        "measured ABae N*MSE at the largest budget:               {:.4}",
        abae_nmse.last().expect("non-empty")
    );
    let flatness = abae_nmse.last().expect("non-empty")
        / abae_nmse.first().expect("non-empty");
    println!("flatness ratio (last/first, ~1 means O(1/N) verified): {flatness:.3}");
}
