//! Scan/score throughput: row-materializing path vs columnar hot path.
//!
//! The columnar refactor exists for exactly one reason — the pre-oracle
//! phases (proxy scoring, predicate evaluation, stratification, exact
//! baselines) touch every record, and a path that materializes an owned
//! `RowRecord` per record (heap-allocated label/proxy vectors, cloned
//! group and text strings) pays allocator traffic the kernels never need.
//! This bench pins the gap per column type:
//!
//! * `f64_sum`    — sum of the statistic column (exact-baseline kernel).
//! * `bool_and`   — conjunction count of two predicates' labels
//!   (row: branchy per-record `&&`; columnar: word-wise bitmap AND).
//! * `score_max`  — combined proxy score for `p0 ∨ p1`
//!   (row: per-record `score_at`; columnar: `combined_scores_vec`).
//! * `dict_count` — per-group record counts
//!   (row: `Option<String>` clone + compare; columnar: u32 code scan).
//! * `str_bytes`  — total text byte length
//!   (row: `Option<String>` clone; columnar: arena offsets).
//!
//! Both paths compute identical answers (asserted); only the storage
//! traversal differs. The tracked `BENCH_scan.json` must show ≥5× on the
//! geometric-mean speedup — the differential suite in `tests/columnar.rs`
//! pins that the fast path is also the *same* path, bit for bit.
//!
//! ```sh
//! cargo run --release -p abae_bench --bin scan
//! ABAE_RECORDS=20000 ABAE_REPS=2 cargo run --release -p abae_bench --bin scan
//! ```

use abae_bench::artifact::{emit_artifact, json_f64};
use abae_bench::ExpConfig;
use abae_core::multipred::PredExpr;
use abae_data::emulators::EmulatorOptions;
use abae_data::registry::build_dataset;
use abae_data::table::Table;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Measured throughput of one workload under both storage paths.
struct Measurement {
    name: &'static str,
    row_recs_per_sec: f64,
    col_recs_per_sec: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.col_recs_per_sec / self.row_recs_per_sec
    }
}

/// Times `f` over `reps` repetitions and returns records/sec, folding the
/// checksum into a black box so the work is not optimized away.
fn time_path(n: usize, reps: usize, mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut checksum = 0.0;
    let start = Instant::now();
    for _ in 0..reps {
        checksum += std::hint::black_box(f());
    }
    let secs = start.elapsed().as_secs_f64();
    ((n * reps) as f64 / secs, checksum / reps as f64)
}

fn measure(
    name: &'static str,
    n: usize,
    reps: usize,
    row: impl FnMut() -> f64,
    col: impl FnMut() -> f64,
) -> Measurement {
    let (row_rate, row_check) = time_path(n, reps, row);
    let (col_rate, col_check) = time_path(n, reps, col);
    assert_eq!(
        row_check.to_bits(),
        col_check.to_bits(),
        "{name}: row and columnar paths disagree"
    );
    Measurement { name, row_recs_per_sec: row_rate, col_recs_per_sec: col_rate }
}

fn main() {
    let exp = ExpConfig::from_env();
    exp.banner("scan", "columnar hot path: pre-oracle phases touch every record");
    let n = env_usize("ABAE_RECORDS", 200_000);
    let reps = env_usize("ABAE_REPS", 20);

    // trec05p carries every column type: f64 statistic, three predicates
    // (bool labels + f64 proxies), and a text column. A synthetic two-group
    // key is attached for the dict workload.
    let base = build_dataset(
        "trec05p",
        &EmulatorOptions { scale: n as f64 / 52_578.0, seed: exp.seed },
    )
    .expect("known dataset");
    let table = with_groups(&base);
    let n = table.len();
    println!("# scan — records/sec, row-materializing vs columnar ({n} records, {reps} reps)");

    let expr = PredExpr::or(PredExpr::pred(0), PredExpr::pred(1));
    let proxies: Vec<&[f64]> = table.predicates().iter().map(|p| p.proxy()).collect();
    let labels: Vec<_> = table.predicates().iter().map(|p| p.labels().bitmap()).collect();
    let gk = table.group_key().expect("group key attached");
    let group0 = gk.names()[0].clone();
    let texts = table.texts().expect("trec05p carries texts");

    let results = vec![
        measure(
            "f64_sum",
            n,
            reps,
            || (0..n).map(|i| table.row(i).statistic).sum(),
            || table.statistics().iter().sum(),
        ),
        measure(
            "bool_and",
            n,
            reps,
            || (0..n).map(|i| table.row(i)).filter(|r| r.labels[0] && r.labels[1]).count() as f64,
            || labels[0].and(labels[1]).count_ones() as f64,
        ),
        measure(
            "score_max",
            n,
            reps,
            || {
                (0..n)
                    .map(|i| {
                        let r = table.row(i);
                        let views: Vec<&[f64]> =
                            vec![std::slice::from_ref(&r.proxies[0]), std::slice::from_ref(&r.proxies[1])];
                        expr.score_at(&views, 0)
                    })
                    .sum()
            },
            || expr.combined_scores_vec(&proxies).iter().sum(),
        ),
        measure(
            "dict_count",
            n,
            reps,
            || (0..n).map(|i| table.row(i)).filter(|r| r.group.as_deref() == Some(&group0)).count()
                as f64,
            || gk.dict().count_code(0) as f64,
        ),
        measure(
            "str_bytes",
            n,
            reps,
            || (0..n).map(|i| table.row(i).text.map_or(0, |t| t.len())).sum::<usize>() as f64,
            // Per-record byte lengths come straight off the offsets array —
            // no need to touch (or re-validate) the UTF-8 arena.
            || texts.offsets().windows(2).map(|w| (w[1] - w[0]) as usize).sum::<usize>() as f64,
        ),
    ];

    println!("# {:<12} {:>14} {:>14} {:>9}", "workload", "row rec/s", "columnar rec/s", "speedup");
    for m in &results {
        println!(
            "  {:<12} {:>14.0} {:>14.0} {:>8.1}x",
            m.name, m.row_recs_per_sec, m.col_recs_per_sec, m.speedup()
        );
    }
    let geomean =
        (results.iter().map(|m| m.speedup().ln()).sum::<f64>() / results.len() as f64).exp();
    println!("# geometric-mean speedup: {geomean:.1}x (target ≥5x)");

    let points: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "{{\"workload\":\"{}\",\"row_recs_per_sec\":{},\"columnar_recs_per_sec\":{},\"speedup\":{}}}",
                m.name,
                json_f64(m.row_recs_per_sec),
                json_f64(m.col_recs_per_sec),
                json_f64(m.speedup())
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"scan\",\"records\":{n},\"reps\":{reps},\"geomean_speedup\":{},\"workloads\":[{}]}}",
        json_f64(geomean),
        points.join(",")
    );
    emit_artifact("scan", &json);
}

/// Attaches a deterministic two-group key (by statistic parity) so the
/// dict workload has something to scan; every other column is untouched.
fn with_groups(base: &Table) -> Table {
    let names = vec!["even".to_string(), "odd".to_string()];
    let key: Vec<Option<u16>> =
        base.statistics().iter().map(|&v| Some((v as u64 % 2) as u16)).collect();
    let mut b = Table::builder(base.name(), base.statistics().to_vec());
    for p in base.predicates() {
        b = b.predicate_columns(p.name(), p.labels().clone(), p.proxy_column().clone());
    }
    b = b.group_key(names, key);
    if let Some(t) = base.texts() {
        b = b.texts_column(t.clone());
    }
    b.build().expect("valid table")
}
