//! Table 2: summary of datasets, predicates, target DNNs, and proxies —
//! paper metadata side by side with the emulators' measured
//! characteristics (size, positive rate, proxy AUC, exact query answer).

use abae_bench::datasets::paper_datasets;
use abae_bench::ExpConfig;
use abae_data::registry::summarize;

fn main() {
    let cfg = ExpConfig::from_env();
    cfg.banner("Table 2", "dataset inventory (paper Table 2)");

    println!(
        "{:<16} {:>10} {:>10} {:<28} {:>9} {:>9} {:>12}",
        "dataset", "paper n", "built n", "predicate", "pos rate", "proxy AUC", "exact answer"
    );
    for ds in paper_datasets(&cfg) {
        let s = summarize(&ds.table, ds.info.predicate_column);
        println!(
            "{:<16} {:>10} {:>10} {:<28} {:>9.4} {:>9.4} {:>12.4}",
            ds.info.name,
            ds.info.paper_size,
            s.size,
            ds.info.predicate,
            s.positive_rate,
            s.proxy_auc,
            s.exact_answer,
        );
    }
    println!();
    println!("oracle/proxy substitutions (paper -> this reproduction):");
    for ds in paper_datasets(&cfg) {
        println!("  {:<16} oracle: {}", ds.info.name, ds.info.oracle);
        println!("  {:<16} proxy : {}", "", ds.info.proxy);
    }
}
