//! Oracle-labeling throughput sweep: records/sec vs threads × batch size.
//!
//! The paper counts cost in oracle invocations because the oracle (a DNN
//! served in batches) dominates wall-clock time by orders of magnitude
//! (§5.1). This sweep makes that wall-clock dimension visible offline: a
//! [`FnOracle`] simulates a fixed per-invocation inference latency
//! (default 100µs, the ballpark of an amortized batched GPU invocation),
//! and the full two-stage algorithm runs under every (threads, batch size)
//! combination of the `core::pipeline` executor.
//!
//! What to expect: records/sec scales near-linearly with threads until the
//! batch count per stratum-stage stops covering the workers; at 8 threads
//! the speedup over 1 thread should exceed 4× (asserted by
//! `tests/parallel_determinism.rs` at test scale). The estimate column is
//! constant down the table — scheduling never changes results.
//!
//! ```sh
//! cargo run --release -p abae_bench --bin throughput
//! ABAE_LATENCY_US=500 ABAE_BUDGET=2000 cargo run --release -p abae_bench --bin throughput
//! ```

use abae_bench::artifact::emit_artifact;
use abae_bench::ExpConfig;
use abae_core::pipeline::ExecOptions;
use abae_core::{run_abae, AbaeConfig, Aggregate};
use abae_data::{FnOracle, Labeled, Oracle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let exp = ExpConfig::from_env();
    exp.banner("throughput", "§5.1 cost model: the oracle is a batched DNN");
    let n = env_usize("ABAE_RECORDS", 50_000);
    let budget = env_usize("ABAE_BUDGET", 4_000);
    let latency = Duration::from_micros(env_usize("ABAE_LATENCY_US", 100) as u64);
    let seed = exp.seed;

    // The population from the two-stage doctest: proxy orders positives
    // perfectly, statistic rises with the index.
    let scores: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
    let half = n / 2;

    println!("# throughput — records/sec vs threads x batch size");
    println!(
        "# {n} records, budget {budget}, simulated oracle latency {}µs/invocation \
         (override: ABAE_RECORDS/ABAE_BUDGET/ABAE_LATENCY_US)",
        latency.as_micros()
    );
    println!(
        "{:>8} {:>8} {:>12} {:>14} {:>10} {:>14}",
        "threads", "batch", "elapsed_ms", "records/sec", "speedup", "estimate"
    );

    let mut baseline_rate: Option<f64> = None;
    let mut points: Vec<String> = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        for &batch in &[32usize, 128, 512] {
            let oracle = FnOracle::new(move |i: usize| Labeled {
                matches: i >= half,
                value: i as f64,
            })
            .with_latency(latency);
            let cfg = AbaeConfig {
                budget,
                exec: ExecOptions::new(threads, batch),
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let start = Instant::now();
            let result =
                run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).expect("valid config");
            let elapsed = start.elapsed();
            assert_eq!(oracle.calls(), result.oracle_calls, "atomic accounting must agree");

            let rate = result.oracle_calls as f64 / elapsed.as_secs_f64();
            let speedup = match baseline_rate {
                Some(b) => rate / b,
                None => {
                    baseline_rate = Some(rate);
                    1.0
                }
            };
            println!(
                "{threads:>8} {batch:>8} {:>12.1} {:>14.0} {:>9.2}x {:>14.2}",
                elapsed.as_secs_f64() * 1e3,
                rate,
                speedup,
                result.estimate,
            );
            points.push(format!(
                "{{\"threads\":{threads},\"batch\":{batch},\"elapsed_ms\":{:.3},\
                 \"records_per_sec\":{:.1},\"speedup\":{:.3},\"estimate\":{}}}",
                elapsed.as_secs_f64() * 1e3,
                rate,
                speedup,
                result.estimate,
            ));
        }
    }
    println!("# speedup is relative to the first row (threads=1, batch=32)");
    emit_artifact(
        "throughput",
        &format!(
            "{{\"bench\":\"throughput\",\"records\":{n},\"budget\":{budget},\
             \"latency_us\":{},\"seed\":{seed},\"points\":[{}]}}",
            latency.as_micros(),
            points.join(",")
        ),
    );
}
