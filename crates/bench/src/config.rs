//! Experiment configuration from the environment.

/// Shared experiment knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpConfig {
    /// Trials per condition (the paper runs 1000; default here is 200 for
    /// tractable wall-clock, overridable with `ABAE_TRIALS`).
    pub trials: usize,
    /// Dataset scale relative to the paper's record counts
    /// (`ABAE_SCALE`, default 0.05 — the distributions are scale-free, so
    /// shapes are unchanged).
    pub scale: f64,
    /// Master seed (`ABAE_SEED`); per-trial seeds derive from it.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self { trials: 200, scale: 0.05, seed: 0xABAE_2021 }
    }
}

impl ExpConfig {
    /// Reads the configuration from the environment, falling back to the
    /// defaults for missing or malformed variables.
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            trials: std::env::var("ABAE_TRIALS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d.trials),
            scale: std::env::var("ABAE_SCALE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d.scale),
            seed: std::env::var("ABAE_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d.seed),
        }
    }

    /// Prints the configuration banner every binary emits.
    pub fn banner(&self, experiment: &str, paper_ref: &str) {
        println!("=== {experiment} ===");
        println!("reproduces : {paper_ref}");
        println!(
            "config     : trials={} scale={} seed={:#x} (override: ABAE_TRIALS/ABAE_SCALE/ABAE_SEED)",
            self.trials, self.scale, self.seed
        );
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ExpConfig::default();
        assert!(c.trials > 0);
        assert!(c.scale > 0.0 && c.scale <= 1.0);
    }

    #[test]
    fn from_env_falls_back_on_missing_vars() {
        // The test environment does not define the variables; from_env
        // must equal the default.
        let c = ExpConfig::from_env();
        let d = ExpConfig::default();
        if std::env::var("ABAE_TRIALS").is_err() {
            assert_eq!(c.trials, d.trials);
        }
    }
}
