//! Cached construction of the emulated datasets used by the experiments.

use abae_data::emulators::EmulatorOptions;
use abae_data::registry::{build_dataset, DatasetInfo, PAPER_DATASETS};
use abae_data::Table;

use crate::config::ExpConfig;

/// A dataset prepared for experimentation: the emulated table plus its
/// registry metadata.
pub struct PreparedDataset {
    /// Registry metadata (paper name, predicate column, ...).
    pub info: DatasetInfo,
    /// The emulated table at the configured scale.
    pub table: Table,
    /// Exact answer of the paper's query over this instantiation.
    pub exact: f64,
}

/// Builds all six paper datasets at the experiment scale.
pub fn paper_datasets(cfg: &ExpConfig) -> Vec<PreparedDataset> {
    PAPER_DATASETS
        .iter()
        .map(|info| {
            let opts = EmulatorOptions { scale: cfg.scale, seed: cfg.seed };
            let table = build_dataset(info.name, &opts).expect("registry name");
            let exact = table.exact_avg(info.predicate_column).expect("registry predicate");
            PreparedDataset { info: *info, table, exact }
        })
        .collect()
}

/// Builds a single paper dataset by name.
pub fn paper_dataset(cfg: &ExpConfig, name: &str) -> PreparedDataset {
    let info = *PAPER_DATASETS
        .iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown dataset {name}"));
    let opts = EmulatorOptions { scale: cfg.scale, seed: cfg.seed };
    let table = build_dataset(name, &opts).expect("registry name");
    let exact = table.exact_avg(info.predicate_column).expect("registry predicate");
    PreparedDataset { info, table, exact }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_six() {
        let cfg = ExpConfig { trials: 1, scale: 0.005, seed: 1 };
        let ds = paper_datasets(&cfg);
        assert_eq!(ds.len(), 6);
        for d in &ds {
            assert!(d.table.len() >= 1000);
            assert!(d.exact.is_finite());
        }
    }

    #[test]
    fn single_lookup_matches_bulk() {
        let cfg = ExpConfig { trials: 1, scale: 0.005, seed: 1 };
        let one = paper_dataset(&cfg, "celeba");
        assert_eq!(one.info.name, "celeba");
        assert!(one.table.predicate("blonde_hair").is_ok());
    }
}
