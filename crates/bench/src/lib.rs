//! Experiment harness for the ABae reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§5); this library provides the shared machinery:
//!
//! * [`config::ExpConfig`] — trial count, dataset scale, and master seed,
//!   overridable via `ABAE_TRIALS`, `ABAE_SCALE`, `ABAE_SEED` so the same
//!   binaries serve quick shape checks and full paper-scale runs.
//! * [`runner`] — deterministic, multi-threaded trial execution (one
//!   seeded RNG per trial).
//! * [`report`] — aligned text tables matching the series the paper plots.
//! * [`datasets`] — cached construction of the six emulated datasets.
//! * [`artifact`] — `BENCH_<name>.json` artifacts at the repository root
//!   for the serving-oriented benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
pub mod config;
pub mod datasets;
pub mod report;
pub mod runner;
pub mod sweep;

pub use artifact::{emit_artifact, write_artifact};
pub use config::ExpConfig;
pub use report::{print_series_table, Series};
pub use runner::run_trials;
