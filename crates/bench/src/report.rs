//! Text-table reporting matching the paper's plotted series.

/// One plotted series: a method's y-values over the sweep's x-values.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Method label, e.g. `"ABae"` or `"Uniform"`.
    pub label: String,
    /// y-values aligned with the sweep's x-values.
    pub values: Vec<f64>,
}

impl Series {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Self { label: label.into(), values }
    }
}

/// Prints one figure-panel table: x-column plus one column per series, and
/// a final `ratio` column of `series[1] / series[0]` when exactly two
/// series are given (the paper's "ABae outperforms by up to …" factor).
pub fn print_series_table(title: &str, x_label: &str, xs: &[f64], series: &[Series]) {
    println!("--- {title} ---");
    let mut header = format!("{x_label:>12}");
    for s in series {
        header.push_str(&format!(" {:>14}", s.label));
    }
    if series.len() == 2 {
        header.push_str(&format!(" {:>10}", "ratio"));
    }
    println!("{header}");
    for (i, &x) in xs.iter().enumerate() {
        let mut row = format!("{x:>12.4}");
        for s in series {
            row.push_str(&format!(" {:>14.6}", s.values.get(i).copied().unwrap_or(f64::NAN)));
        }
        if series.len() == 2 {
            let a = series[0].values.get(i).copied().unwrap_or(f64::NAN);
            let b = series[1].values.get(i).copied().unwrap_or(f64::NAN);
            row.push_str(&format!(" {:>10.3}", b / a));
        }
        println!("{row}");
    }
    println!();
}

/// Prints a summary line of the max advantage of series 0 over series 1
/// (the paper reports "up to N× improvement").
pub fn print_max_gain(figure: &str, abae: &Series, baseline: &Series) {
    let gain = abae
        .values
        .iter()
        .zip(&baseline.values)
        .map(|(a, b)| b / a)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("{figure}: max {}-over-{} improvement = {gain:.2}x", abae.label, baseline.label);
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_constructor_and_table_smoke() {
        let s1 = Series::new("ABae", vec![0.01, 0.005]);
        let s2 = Series::new("Uniform", vec![0.02, 0.011]);
        // Smoke: printing must not panic on ragged/NaN-free data.
        print_series_table("test", "budget", &[1000.0, 2000.0], &[s1.clone(), s2.clone()]);
        print_max_gain("test", &s1, &s2);
    }

    #[test]
    fn table_handles_ragged_series() {
        let s = Series::new("short", vec![1.0]);
        print_series_table("ragged", "x", &[1.0, 2.0], &[s]);
    }
}
