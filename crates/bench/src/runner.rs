//! Deterministic multi-threaded trial execution.
//!
//! Every trial gets its own `StdRng` seeded as
//! `master ^ (trial · 0x9E37_79B9_7F4A_7C15)`, so results are reproducible
//! regardless of thread scheduling, and trials parallelize across a fixed
//! worker pool with `std::thread::scope`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `trials` independent trials of `f`, each with a deterministic
/// per-trial RNG, fanned out over available cores. Results are returned in
/// trial order.
pub fn run_trials<T, F>(trials: usize, master_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16);
    let next = AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..trials).map(|_| std::sync::Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= trials {
                    break;
                }
                let mut rng = StdRng::seed_from_u64(master_seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let out = f(t, &mut rng);
                *slots[t].lock().expect("no panics while holding the slot") = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("poisoned slot").expect("every trial ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_are_deterministic_and_ordered() {
        let a = run_trials(50, 7, |t, rng| (t, rng.gen::<u64>()));
        let b = run_trials(50, 7, |t, rng| (t, rng.gen::<u64>()));
        assert_eq!(a, b);
        for (i, (t, _)) in a.iter().enumerate() {
            assert_eq!(i, *t);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_trials(10, 1, |_, rng| rng.gen::<u64>());
        let b = run_trials(10, 2, |_, rng| rng.gen::<u64>());
        assert_ne!(a, b);
    }

    #[test]
    fn per_trial_rngs_are_independent() {
        let vals = run_trials(100, 3, |_, rng| rng.gen::<u64>());
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vals.len(), "collision across trial RNGs");
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = run_trials(0, 1, |_, rng| rng.gen());
        assert!(out.is_empty());
    }
}
