//! Budget-sweep helpers shared by the figure binaries.
//!
//! The stratification is built once per (dataset, K) and reused across
//! trials and budgets — `ABaeInit` is deterministic, so this changes
//! nothing statistically and keeps paper-scale sweeps fast.

use abae_core::config::{AbaeConfig, Aggregate, BootstrapConfig, Rounding, SampleReuse};
use abae_core::strata::Stratification;
use abae_core::two_stage::run_two_stage;
use abae_core::uniform::{run_uniform, run_uniform_with_ci};
use abae_core::bootstrap::stratified_bootstrap_ci;
use abae_data::{PredicateOracle, Table};
use abae_stats::bootstrap::ConfidenceInterval;

use crate::runner::run_trials;

/// Knobs for an ABae sweep (a subset of [`AbaeConfig`] that the
/// sensitivity studies vary).
#[derive(Debug, Clone, Copy)]
pub struct SweepKnobs {
    /// Strata count `K`.
    pub strata: usize,
    /// Stage-1 fraction `C`.
    pub stage1_fraction: f64,
    /// Sample reuse toggle.
    pub reuse: SampleReuse,
    /// Rounding rule.
    pub rounding: Rounding,
}

impl Default for SweepKnobs {
    fn default() -> Self {
        Self {
            strata: 5,
            stage1_fraction: 0.5,
            reuse: SampleReuse::Enabled,
            rounding: Rounding::Floor,
        }
    }
}

/// Runs ABae for every budget, `trials` times each; returns per-budget
/// estimate vectors.
pub fn abae_estimates(
    table: &Table,
    pred: &str,
    budgets: &[usize],
    trials: usize,
    seed: u64,
    knobs: SweepKnobs,
) -> Vec<Vec<f64>> {
    let scores = table.predicate(pred).expect("predicate exists").proxy();
    let strat = Stratification::by_proxy_quantile(scores, knobs.strata);
    budgets
        .iter()
        .map(|&budget| {
            let cfg = AbaeConfig {
                strata: knobs.strata,
                budget,
                stage1_fraction: knobs.stage1_fraction,
                reuse: knobs.reuse,
                rounding: knobs.rounding,
                ..Default::default()
            };
            run_trials(trials, seed ^ budget as u64, |_, rng| {
                let oracle = PredicateOracle::new(table, pred).expect("predicate exists");
                run_two_stage(&strat, &oracle, &cfg, Aggregate::Avg, rng)
                    .expect("validated config")
                    .estimate
            })
        })
        .collect()
}

/// Uniform-baseline estimates for every budget.
pub fn uniform_estimates(
    table: &Table,
    pred: &str,
    budgets: &[usize],
    trials: usize,
    seed: u64,
) -> Vec<Vec<f64>> {
    budgets
        .iter()
        .map(|&budget| {
            run_trials(trials, seed ^ budget as u64 ^ 0xFFFF, |_, rng| {
                let oracle = PredicateOracle::new(table, pred).expect("predicate exists");
                run_uniform(table.len(), &oracle, budget, Aggregate::Avg, rng).estimate
            })
        })
        .collect()
}

/// ABae estimates *with bootstrap CIs* for every budget.
pub fn abae_cis(
    table: &Table,
    pred: &str,
    budgets: &[usize],
    trials: usize,
    seed: u64,
    knobs: SweepKnobs,
    bootstrap: BootstrapConfig,
) -> Vec<Vec<(f64, ConfidenceInterval)>> {
    let scores = table.predicate(pred).expect("predicate exists").proxy();
    let strat = Stratification::by_proxy_quantile(scores, knobs.strata);
    let sizes = strat.sizes();
    budgets
        .iter()
        .map(|&budget| {
            let cfg = AbaeConfig {
                strata: knobs.strata,
                budget,
                stage1_fraction: knobs.stage1_fraction,
                reuse: knobs.reuse,
                rounding: knobs.rounding,
                bootstrap,
                ..Default::default()
            };
            run_trials(trials, seed ^ budget as u64, |_, rng| {
                let oracle = PredicateOracle::new(table, pred).expect("predicate exists");
                let run = run_two_stage(&strat, &oracle, &cfg, Aggregate::Avg, rng)
                    .expect("validated config");
                let ci = stratified_bootstrap_ci(&run.samples, &sizes, Aggregate::Avg, &bootstrap, rng)
                    .unwrap_or(ConfidenceInterval {
                        lo: run.estimate,
                        hi: run.estimate,
                        confidence: 1.0 - bootstrap.alpha,
                    });
                (run.estimate, ci)
            })
        })
        .collect()
}

/// Uniform-baseline estimates with bootstrap CIs.
pub fn uniform_cis(
    table: &Table,
    pred: &str,
    budgets: &[usize],
    trials: usize,
    seed: u64,
    bootstrap: BootstrapConfig,
) -> Vec<Vec<(f64, ConfidenceInterval)>> {
    budgets
        .iter()
        .map(|&budget| {
            run_trials(trials, seed ^ budget as u64 ^ 0xFFFF, |_, rng| {
                let oracle = PredicateOracle::new(table, pred).expect("predicate exists");
                let r = run_uniform_with_ci(
                    table.len(),
                    &oracle,
                    budget,
                    Aggregate::Avg,
                    &bootstrap,
                    rng,
                );
                let ci = r.ci.unwrap_or(ConfidenceInterval {
                    lo: r.estimate,
                    hi: r.estimate,
                    confidence: 1.0 - bootstrap.alpha,
                });
                (r.estimate, ci)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_stats::metrics::rmse;

    fn toy_table() -> Table {
        let n = 20_000;
        let labels: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.85 } else { 0.15 }).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 11) as f64).collect();
        Table::builder("toy", values).predicate("p", labels, proxy).build().unwrap()
    }

    #[test]
    fn abae_beats_uniform_on_the_toy_dataset() {
        let t = toy_table();
        let exact = t.exact_avg("p").unwrap();
        let budgets = [1500];
        let a = abae_estimates(&t, "p", &budgets, 60, 1, SweepKnobs::default());
        let u = uniform_estimates(&t, "p", &budgets, 60, 1);
        let rmse_a = rmse(&a[0], exact);
        let rmse_u = rmse(&u[0], exact);
        assert!(rmse_a < rmse_u, "abae {rmse_a} vs uniform {rmse_u}");
    }

    #[test]
    fn ci_sweeps_produce_valid_intervals() {
        let t = toy_table();
        let budgets = [1000];
        let bs = BootstrapConfig { trials: 100, alpha: 0.05 };
        let a = abae_cis(&t, "p", &budgets, 10, 2, SweepKnobs::default(), bs);
        let u = uniform_cis(&t, "p", &budgets, 10, 2, bs);
        for (est, ci) in a[0].iter().chain(u[0].iter()) {
            assert!(ci.lo <= *est && *est <= ci.hi);
        }
    }

    #[test]
    fn sweeps_are_deterministic() {
        let t = toy_table();
        let a = abae_estimates(&t, "p", &[800], 8, 3, SweepKnobs::default());
        let b = abae_estimates(&t, "p", &[800], 8, 3, SweepKnobs::default());
        assert_eq!(a, b);
    }
}
