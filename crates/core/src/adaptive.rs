//! Sequential (bandit-style) ABae — the paper's §4.6 future-work sketch.
//!
//! "A bandit algorithm that updates the estimates of `p_k` and `σ_k` per
//! sample draw may provide non-asymptotic improvements." This module
//! implements that variant: after a short per-stratum warmup, the sampler
//! repeatedly reallocates small batches according to the *current* plug-in
//! optimal allocation `√p̂_k·σ̂_k`, so mis-estimates from a fixed pilot
//! cannot lock in a bad Stage-2 split.
//!
//! Exploration is kept alive by optimistic initialization: a stratum with
//! no positives yet receives the weight it would have if its next draw were
//! positive at the prior rate, so no stratum is starved before it has been
//! measured (the analogue of the theory's `p_k > p*` case split).
//!
//! The ablation `abae-bench --bin ablation_adaptive` compares this variant
//! against the paper's two-stage algorithm; the estimator and all
//! correctness properties (unbiasedness per stratum, budget accounting)
//! are shared with Algorithm 1.

use crate::config::{Aggregate, ConfigError};
use crate::estimator::{combine_estimate, StratumEstimate};
use crate::strata::Stratification;
use abae_data::{Labeled, Oracle};
use abae_sampling::budget::largest_remainder_allocation;
use abae_sampling::pool::IndexPool;
use abae_stats::StreamingMoments;
use rand::Rng;

/// Configuration for the sequential sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Number of strata `K`.
    pub strata: usize,
    /// Total oracle budget.
    pub budget: usize,
    /// Warmup draws per stratum before any reallocation.
    pub warmup_per_stratum: usize,
    /// Draws reallocated per adaptation round.
    pub batch: usize,
    /// Oracle-labeling execution knobs (worker threads, batch size).
    pub exec: crate::pipeline::ExecOptions,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            strata: 5,
            budget: 10_000,
            warmup_per_stratum: 20,
            batch: 100,
            exec: crate::pipeline::ExecOptions::default(),
        }
    }
}

impl AdaptiveConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        if self.strata == 0 {
            return Err(ConfigError::ZeroStrata);
        }
        if self.budget == 0 {
            return Err(ConfigError::ZeroBudget);
        }
        if self.warmup_per_stratum * self.strata > self.budget {
            return Err(ConfigError::BudgetBelowStrata {
                budget: self.budget,
                strata: self.strata,
            });
        }
        Ok(())
    }
}

/// Per-stratum running state.
struct StratumState {
    pool: IndexPool,
    draws: usize,
    positives: usize,
    moments: StreamingMoments,
    samples: Vec<Labeled>,
}

impl StratumState {
    fn p_hat(&self) -> f64 {
        if self.draws == 0 {
            0.0
        } else {
            self.positives as f64 / self.draws as f64
        }
    }

    /// Allocation weight with optimistic initialization for unexplored
    /// strata: pretend one additional positive draw at the global sigma.
    fn weight(&self, fallback_sigma: f64) -> f64 {
        if self.pool.remaining() == 0 {
            return 0.0;
        }
        let sigma = if self.positives >= 2 {
            self.moments.sample_std_dev_or_zero()
        } else {
            fallback_sigma
        };
        let p = if self.positives == 0 {
            // Optimism: assume the next draw could be positive.
            1.0 / (self.draws + 1) as f64
        } else {
            self.p_hat()
        };
        p.sqrt() * sigma
    }
}

/// Runs the sequential sampler and returns the estimate together with the
/// per-stratum samples (for bootstrapping) and the spent budget.
pub fn run_adaptive<O: Oracle, R: Rng + ?Sized>(
    proxy_scores: &[f64],
    oracle: &O,
    config: &AdaptiveConfig,
    agg: Aggregate,
    rng: &mut R,
) -> Result<crate::two_stage::TwoStageRun, ConfigError> {
    config.validate()?;
    let strat = Stratification::by_proxy_quantile(proxy_scores, config.strata);
    let calls_before = oracle.calls();

    let mut states: Vec<StratumState> = strat
        .strata()
        .iter()
        .map(|members| StratumState {
            pool: IndexPool::new(members.len()),
            draws: 0,
            positives: 0,
            moments: StreamingMoments::new(),
            samples: Vec::new(),
        })
        .collect();

    let mut spent = 0usize;
    let draw_into = |state: &mut StratumState,
                         members: &[usize],
                         k: usize,
                         rng: &mut R,
                         spent: &mut usize| {
        let drawn: Vec<usize> =
            state.pool.draw(k, rng).iter().map(|&local| members[local]).collect();
        for labeled in crate::pipeline::label_all(oracle, &drawn, &config.exec) {
            state.draws += 1;
            if labeled.matches {
                state.positives += 1;
                state.moments.push(labeled.value);
            }
            state.samples.push(labeled);
            *spent += 1;
        }
    };

    // Warmup: a small uniform pilot per stratum.
    for (s, state) in states.iter_mut().enumerate() {
        draw_into(state, strat.stratum(s), config.warmup_per_stratum, rng, &mut spent);
    }

    // Adaptation rounds: reallocate `batch` draws by the current weights.
    while spent < config.budget {
        let round = config.batch.min(config.budget - spent);
        // Global sigma fallback keeps unexplored strata competitive.
        let mut global = StreamingMoments::new();
        for st in &states {
            global.merge(&st.moments);
        }
        let fallback_sigma = global.sample_std_dev_or_zero().max(1e-6);
        let weights: Vec<f64> = states.iter().map(|st| st.weight(fallback_sigma)).collect();
        if weights.iter().all(|&w| w == 0.0) {
            // Every stratum exhausted or information-free: spread what is
            // left uniformly over non-exhausted pools.
            let open: Vec<f64> =
                states.iter().map(|st| f64::from(st.pool.remaining() > 0)).collect();
            if open.iter().all(|&o| o == 0.0) {
                break;
            }
            let alloc = largest_remainder_allocation(&open, round);
            for (s, &k) in alloc.iter().enumerate() {
                draw_into(&mut states[s], strat.stratum(s), k, rng, &mut spent);
            }
            continue;
        }
        let alloc = largest_remainder_allocation(&weights, round);
        let before = spent;
        for (s, &k) in alloc.iter().enumerate() {
            draw_into(&mut states[s], strat.stratum(s), k, rng, &mut spent);
        }
        if spent == before {
            break; // allocation pointed only at exhausted pools
        }
    }

    let estimates: Vec<StratumEstimate> = states
        .iter()
        .enumerate()
        .map(|(s, st)| StratumEstimate::from_draws(strat.stratum(s).len(), &st.samples))
        .collect();
    let pilot = estimates.clone();
    let t_hat: Vec<f64> = {
        let p: Vec<f64> = estimates.iter().map(|e| e.p_hat).collect();
        let sigma: Vec<f64> = estimates.iter().map(|e| e.sigma_hat).collect();
        crate::allocation::optimal_allocation(&p, &sigma)
    };
    Ok(crate::two_stage::TwoStageRun {
        estimate: combine_estimate(agg, &estimates),
        strata: estimates,
        pilot,
        t_hat,
        samples: states.into_iter().map(|st| st.samples).collect(),
        oracle_calls: oracle.calls() - calls_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_data::FnOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(n: usize) -> (Vec<f64>, Vec<bool>, Vec<f64>) {
        let scores: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let labels: Vec<bool> = (0..n).map(|i| i >= n / 2).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64 + i as f64 / n as f64).collect();
        (scores, labels, values)
    }

    fn exact_avg(labels: &[bool], values: &[f64]) -> f64 {
        let (mut s, mut c) = (0.0, 0usize);
        for (i, &l) in labels.iter().enumerate() {
            if l {
                s += values[i];
                c += 1;
            }
        }
        s / c as f64
    }

    #[test]
    fn converges_and_respects_budget() {
        let (scores, labels, values) = population(30_000);
        let truth = exact_avg(&labels, &values);
        let oracle = FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] });
        let cfg = AdaptiveConfig { budget: 3000, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let mut errs = Vec::new();
        for _ in 0..25 {
            let run = run_adaptive(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
            assert_eq!(run.oracle_calls, 3000);
            errs.push(run.estimate - truth);
        }
        let rmse = (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt();
        assert!(rmse < 0.2, "rmse {rmse}");
    }

    #[test]
    fn shifts_budget_away_from_empty_strata() {
        let (scores, labels, values) = population(30_000);
        let oracle = FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] });
        let cfg = AdaptiveConfig { budget: 2000, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(2);
        let run = run_adaptive(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        // Bottom strata (all-negative) should end with far fewer draws
        // than top strata.
        let bottom = run.samples[0].len() + run.samples[1].len();
        let top = run.samples[3].len() + run.samples[4].len();
        assert!(top > 3 * bottom, "top {top} vs bottom {bottom}");
    }

    #[test]
    fn exhausts_tiny_populations_gracefully() {
        let scores: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let labels = vec![true; 100];
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let truth = exact_avg(&labels, &values);
        let oracle = FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] });
        let cfg = AdaptiveConfig { budget: 5000, warmup_per_stratum: 5, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(3);
        let run = run_adaptive(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        assert!(run.oracle_calls <= 100);
        assert!((run.estimate - truth).abs() < 1e-9);
    }

    #[test]
    fn rejects_invalid_configs() {
        let oracle = FnOracle::new(|_| Labeled { matches: true, value: 1.0 });
        let mut rng = StdRng::seed_from_u64(4);
        let scores = vec![0.5; 100];
        assert!(run_adaptive(
            &scores,
            &oracle,
            &AdaptiveConfig { strata: 0, ..Default::default() },
            Aggregate::Avg,
            &mut rng
        )
        .is_err());
        assert!(run_adaptive(
            &scores,
            &oracle,
            &AdaptiveConfig { budget: 10, warmup_per_stratum: 100, ..Default::default() },
            Aggregate::Avg,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn matches_two_stage_quality_on_stable_populations() {
        use crate::config::AbaeConfig;
        use crate::two_stage::run_abae;
        let (scores, labels, values) = population(30_000);
        let truth = exact_avg(&labels, &values);
        let oracle = {
            let labels = labels.clone();
            let values = values.clone();
            FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] })
        };
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 40;
        let mut adaptive_errs = Vec::new();
        let mut two_stage_errs = Vec::new();
        for _ in 0..trials {
            let a = run_adaptive(
                &scores,
                &oracle,
                &AdaptiveConfig { budget: 1000, ..Default::default() },
                Aggregate::Avg,
                &mut rng,
            )
            .unwrap();
            adaptive_errs.push(a.estimate - truth);
            let t = run_abae(
                &scores,
                &oracle,
                &AbaeConfig { budget: 1000, ..Default::default() },
                Aggregate::Avg,
                &mut rng,
            )
            .unwrap();
            two_stage_errs.push(t.estimate - truth);
        }
        let rmse = |errs: &[f64]| {
            (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt()
        };
        let a = rmse(&adaptive_errs);
        let t = rmse(&two_stage_errs);
        // The sequential variant should be at worst modestly behind the
        // two-stage algorithm here, and often ahead at small budgets.
        assert!(a < t * 1.5, "adaptive {a} vs two-stage {t}");
    }
}
