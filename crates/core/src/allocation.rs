//! Optimal Stage-2 allocation (Proposition 1).
//!
//! With known per-stratum positive rates `p_k` and conditional standard
//! deviations `σ_k`, the MSE-minimizing allocation of draws is
//!
//! ```text
//! T*_k = √p_k · σ_k / Σ_i √p_i · σ_i
//! ```
//!
//! — the classic Neyman allocation `∝ σ_k` *downweighted* by `√p_k`,
//! because a draw from stratum `k` only yields information with probability
//! `p_k` (the paper's "stochastic draws" setting). ABae plugs in Stage-1
//! estimates `p̂_k, σ̂_k`.

/// Computes the (normalized) optimal allocation `T*_k ∝ √p_k·σ_k`.
///
/// Falls back to the uniform allocation when every weight is zero (e.g. no
/// positive pilot draws anywhere) or non-finite — ABae must still spend its
/// Stage-2 budget somewhere, and with no information uniform is the neutral
/// choice.
///
/// ```
/// use abae_core::allocation::optimal_allocation;
///
/// // A stratum with 4x the positive rate gets √4 = 2x the draws (not 4x).
/// let t = optimal_allocation(&[0.04, 0.16], &[1.0, 1.0]);
/// assert!((t[1] / t[0] - 2.0).abs() < 1e-9);
/// assert!((t[0] + t[1] - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
/// Panics if `p` and `sigma` lengths differ.
pub fn optimal_allocation(p: &[f64], sigma: &[f64]) -> Vec<f64> {
    assert_eq!(p.len(), sigma.len(), "p and sigma must align");
    let weights: Vec<f64> = p
        .iter()
        .zip(sigma)
        .map(|(&pk, &sk)| {
            let w = pk.max(0.0).sqrt() * sk.max(0.0);
            if w.is_finite() {
                w
            } else {
                0.0
            }
        })
        .collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / p.len().max(1) as f64; p.len()];
    }
    weights.iter().map(|w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn proposition_1_example() {
        // p = (0.25, 1.0), σ = (2, 1) → weights (1, 1) → equal split.
        let t = optimal_allocation(&[0.25, 1.0], &[2.0, 1.0]);
        assert!((t[0] - 0.5).abs() < 1e-12);
        assert!((t[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn allocation_is_normalized() {
        let t = optimal_allocation(&[0.1, 0.2, 0.7], &[1.0, 3.0, 0.5]);
        assert!((t.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(t.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn zero_information_falls_back_to_uniform() {
        let t = optimal_allocation(&[0.0, 0.0, 0.0], &[0.0, 0.0, 0.0]);
        assert_eq!(t, vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn zero_sigma_stratum_gets_nothing_when_others_have_signal() {
        let t = optimal_allocation(&[0.5, 0.5], &[0.0, 1.0]);
        assert_eq!(t[0], 0.0);
        assert_eq!(t[1], 1.0);
    }

    #[test]
    fn sqrt_p_downweighting_vs_neyman() {
        // Same σ, p differing 4x → allocation ratio should be √4 = 2, not 4.
        let t = optimal_allocation(&[0.04, 0.16], &[1.0, 1.0]);
        assert!((t[1] / t[0] - 2.0).abs() < 1e-9, "ratio {}", t[1] / t[0]);
    }

    #[test]
    fn non_finite_inputs_are_ignored() {
        let t = optimal_allocation(&[f64::NAN, 0.25], &[1.0, 2.0]);
        assert_eq!(t[0], 0.0);
        assert!((t[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = optimal_allocation(&[0.5], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn always_a_distribution(
            p in proptest::collection::vec(0.0f64..1.0, 1..10),
            sigma_seed in proptest::collection::vec(0.0f64..5.0, 1..10),
        ) {
            let k = p.len().min(sigma_seed.len());
            let t = optimal_allocation(&p[..k], &sigma_seed[..k]);
            prop_assert_eq!(t.len(), k);
            prop_assert!((t.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(t.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }

        #[test]
        fn allocation_monotone_in_sigma(
            p in 0.01f64..1.0,
            s1 in 0.1f64..5.0,
            s2 in 0.1f64..5.0,
        ) {
            // With equal p, the stratum with larger σ gets at least as much.
            let t = optimal_allocation(&[p, p], &[s1, s2]);
            if s1 > s2 {
                prop_assert!(t[0] >= t[1]);
            } else {
                prop_assert!(t[1] >= t[0]);
            }
        }
    }
}
