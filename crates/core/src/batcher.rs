//! Cross-session oracle batcher with fair-share admission (the "governor").
//!
//! The paper's cost model is oracle *invocations*: the oracle is a DNN
//! served in batches on an accelerator, so every invocation pays a fixed
//! dispatch cost (kernel launch, serving round-trip) before any record is
//! scored (§5.1). One session labeling alone amortizes that cost over its
//! own batch; N concurrent sessions each invoking the oracle independently
//! pay N× the dispatch cost that one shared batch would. This module is
//! the engine-level fix: a process-wide [`OracleBatcher`] that concurrent
//! sessions' labeling chunks must be **admitted** through, coalescing
//! requests that target the same `(table, predicate)` — i.e. the same
//! model — into shared invocations.
//!
//! ## Determinism contract
//!
//! Admission changes *invocation grouping and timing only*. Each request
//! still labels exactly its own record ids, through its own per-query
//! oracle, on its own thread, in its own order — the batcher never touches
//! ids, labels, RNG streams, or the order a session's statistics merge in.
//! For a fixed engine seed, every session's estimates, CIs, and
//! `oracle_calls` are therefore bit-identical whether coalescing is on or
//! off, at any thread count (`tests/governor.rs` pins exactly this).
//!
//! ## Group-commit coalescing
//!
//! There is no timer (result-path code must not read the clock): batching
//! emerges from *group commit*. The first request to find its key idle
//! becomes the leader and dispatches whatever is pending — usually just
//! itself. While that invocation's overhead is being paid, later requests
//! queue up; whichever of them leads next dispatches them all as one
//! shared invocation. Under load the batch size converges to the number
//! of concurrent requesters without any explicit window.
//!
//! ## Fair-share admission
//!
//! `fair_take` assembles each batch from the pending queue:
//!
//! 1. FIFO walk honoring the per-session record quota and the batch record
//!    cap — the **front ticket is always admitted**, so every batch makes
//!    progress and waiting is bounded (no starvation, ever).
//! 2. A work-conserving second pass hands spare capacity to quota-skipped
//!    tickets in FIFO order — fairness never leaves the device idle.
//!
//! Quotas bite when [`BatcherOptions::max_batch_records`] bounds the
//! invocation (a real serving batch is bounded): a greedy session's flood
//! of tickets cannot crowd a fair session's single ticket out of the next
//! batch, because the fair ticket fits its own quota while the greedy
//! tickets beyond theirs are skipped. Per-session quota overrides
//! ([`OracleBatcher::set_session_quota`]) are the priority knob: a bigger
//! quota is a bigger guaranteed share of every contended batch.

use abae_data::{GroupLabel, GroupOracle, Labeled, Oracle};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Batcher configuration, resolved once when the engine is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherOptions {
    /// Coalesce concurrent sessions' requests into shared invocations.
    /// Off, every admitted request is its own invocation (the baseline the
    /// `governor` bench compares against); results are identical either
    /// way.
    pub coalesce: bool,
    /// Simulated fixed cost per oracle invocation, charged once per
    /// (shared) batch and **serialized** across invocations — the model of
    /// a single accelerator that dispatches one batch at a time. Zero (the
    /// default) charges nothing and takes no device lock.
    pub invocation_overhead: Duration,
    /// Record capacity of one invocation (a DNN serving batch is bounded).
    /// `0` means unbounded — note that quotas only shape admission when
    /// this cap makes batch slots scarce.
    pub max_batch_records: usize,
    /// Default per-session record quota within one contended batch; `0`
    /// means unlimited. Override per session with
    /// [`OracleBatcher::set_session_quota`].
    pub session_quota: usize,
}

impl Default for BatcherOptions {
    fn default() -> Self {
        Self {
            coalesce: false,
            invocation_overhead: Duration::ZERO,
            max_batch_records: 0,
            session_quota: 0,
        }
    }
}

impl BatcherOptions {
    /// Options with coalescing on and everything else default.
    pub fn governed() -> Self {
        Self { coalesce: true, ..Self::default() }
    }

    /// Returns `self` with the coalescing switch replaced.
    pub const fn with_coalesce(mut self, on: bool) -> Self {
        self.coalesce = on;
        self
    }

    /// Returns `self` with the per-invocation overhead replaced.
    pub const fn with_invocation_overhead(mut self, overhead: Duration) -> Self {
        self.invocation_overhead = overhead;
        self
    }

    /// Returns `self` with the batch record cap replaced.
    pub const fn with_max_batch_records(mut self, records: usize) -> Self {
        self.max_batch_records = records;
        self
    }

    /// Returns `self` with the default per-session quota replaced.
    pub const fn with_session_quota(mut self, records: usize) -> Self {
        self.session_quota = records;
        self
    }
}

/// One waiting label request: who is asking and for how many records.
/// `admitted` is written under the batcher's state lock and read in the
/// requester's wait loop under the same lock; the atomic is only for
/// `Sync`, not for lock-free signaling.
#[derive(Debug)]
struct Ticket {
    session: u64,
    records: usize,
    admitted: AtomicBool,
}

/// Pending requests for one coalescing key, plus whether an invocation
/// for this key is currently in flight (its leader will wake us).
#[derive(Debug, Default)]
struct KeyQueue {
    pending: VecDeque<Arc<Ticket>>,
    dispatching: bool,
}

/// Lock-guarded batcher state: per-key queues and the per-session quota
/// overrides (kept under the same lock so admission reads a consistent
/// snapshot).
#[derive(Debug, Default)]
struct State {
    queues: BTreeMap<String, KeyQueue>,
    quotas: BTreeMap<u64, usize>,
}

/// Lifetime counters of one [`OracleBatcher`], for `Engine::stats()`,
/// `EXPLAIN`, and the bench artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// Label requests admitted (one per labeling chunk that reached the
    /// oracle; cache-served chunks never get here).
    pub requests: u64,
    /// Oracle invocations dispatched (each charged one overhead).
    pub invocations: u64,
    /// Invocations that served more than one request.
    pub shared_batches: u64,
    /// Requests that rode a shared invocation.
    pub coalesced_requests: u64,
    /// Records labeled through admitted invocations.
    pub labeled_records: u64,
    /// Records answered from the label store without consuming any batch
    /// slot (reported by the query layer via
    /// [`OracleBatcher::note_cache_served`]).
    pub cache_served: u64,
}

/// The process-wide admission controller for oracle invocations. Shared
/// by every session of an engine; internally synchronized, so a
/// reference (or `Arc`) can be handed to any number of threads.
#[derive(Debug, Default)]
pub struct OracleBatcher {
    opts: BatcherOptions,
    state: Mutex<State>,
    wakeup: Condvar,
    /// Serializes invocation overhead: the shared accelerator dispatches
    /// one batch at a time.
    device: Mutex<()>,
    requests: AtomicU64,
    invocations: AtomicU64,
    shared_batches: AtomicU64,
    coalesced_requests: AtomicU64,
    labeled_records: AtomicU64,
    cache_served: AtomicU64,
    /// Per-session records labeled through admission — the spend ledger
    /// fair-share reporting and multi-tenant dashboards read.
    spend: Mutex<BTreeMap<u64, u64>>,
}

impl OracleBatcher {
    /// Creates a batcher with the given options.
    pub fn new(opts: BatcherOptions) -> Self {
        Self { opts, ..Self::default() }
    }

    /// The options this batcher was built with.
    pub fn options(&self) -> &BatcherOptions {
        &self.opts
    }

    /// Overrides the per-batch record quota for one session (`0` restores
    /// the default). A larger quota is a larger guaranteed share of every
    /// contended batch — the priority knob.
    pub fn set_session_quota(&self, session: u64, records: usize) {
        let mut state = self.state.lock().expect("no panics while holding the batcher lock");
        if records == 0 {
            state.quotas.remove(&session);
        } else {
            state.quotas.insert(session, records);
        }
    }

    /// Blocks until a label request for `records` records of `key` (the
    /// canonical `(table, predicate)` rendering) is admitted to an oracle
    /// invocation, charging the invocation overhead exactly once per
    /// (possibly shared) batch. Returns after the overhead is paid; the
    /// caller then labels its own records through its own oracle.
    pub fn admit(&self, key: &str, session: u64, records: usize) {
        if records == 0 {
            return;
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.labeled_records.fetch_add(records as u64, Ordering::Relaxed);
        {
            let mut spend = self.spend.lock().expect("no panics while holding the spend lock");
            *spend.entry(session).or_insert(0) += records as u64;
        }
        if !self.opts.coalesce {
            // Baseline mode: every request is its own invocation.
            self.invoke(1, records);
            return;
        }

        let ticket =
            Arc::new(Ticket { session, records, admitted: AtomicBool::new(false) });
        let mut state = self.state.lock().expect("no panics while holding the batcher lock");
        state
            .queues
            .entry(key.to_string())
            .or_default()
            .pending
            .push_back(Arc::clone(&ticket));
        loop {
            if ticket.admitted.load(Ordering::Relaxed) {
                break;
            }
            let queue = state.queues.get_mut(key).expect("queue created on entry");
            if queue.dispatching {
                // An invocation for this key is in flight; its leader will
                // notify when the device frees up (this wait is where
                // group commit accumulates the next shared batch).
                state = self
                    .wakeup
                    .wait(state)
                    .expect("no panics while holding the batcher lock");
                continue;
            }
            // Become the leader: assemble a batch under the lock, pay the
            // shared overhead outside it, then admit the members.
            queue.dispatching = true;
            let mut pending = std::mem::take(&mut queue.pending);
            let batch = fair_take(&mut pending, &self.opts, &state.quotas);
            state.queues.get_mut(key).expect("queue created on entry").pending = pending;
            let batch_records: usize = batch.iter().map(|t| t.records).sum();
            drop(state);
            self.invoke(batch.len(), batch_records);
            state = self.state.lock().expect("no panics while holding the batcher lock");
            for member in &batch {
                member.admitted.store(true, Ordering::Relaxed);
            }
            state.queues.get_mut(key).expect("queue created on entry").dispatching = false;
            self.wakeup.notify_all();
            // Loop: our own ticket may or may not have been in the batch
            // (fair-share can defer it); if not, we wait or lead again.
        }
        // Drop empty idle queues so the key map stays bounded by the
        // number of *active* (table, predicate) pairs.
        if let Some(queue) = state.queues.get(key) {
            if queue.pending.is_empty() && !queue.dispatching {
                state.queues.remove(key);
            }
        }
    }

    /// Records `records` verdicts served from the label store without an
    /// invocation — the cache-aware scheduling counter.
    pub fn note_cache_served(&self, records: u64) {
        self.cache_served.fetch_add(records, Ordering::Relaxed);
    }

    /// Lifetime counters.
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            requests: self.requests.load(Ordering::Relaxed),
            invocations: self.invocations.load(Ordering::Relaxed),
            shared_batches: self.shared_batches.load(Ordering::Relaxed),
            coalesced_requests: self.coalesced_requests.load(Ordering::Relaxed),
            labeled_records: self.labeled_records.load(Ordering::Relaxed),
            cache_served: self.cache_served.load(Ordering::Relaxed),
        }
    }

    /// Records labeled per session through admission, in session-id order
    /// — the fair-share spend ledger.
    pub fn per_session_spend(&self) -> Vec<(u64, u64)> {
        let spend = self.spend.lock().expect("no panics while holding the spend lock");
        spend.iter().map(|(&s, &n)| (s, n)).collect()
    }

    /// Dispatches one invocation of `requests` coalesced requests
    /// totalling `records` records: counts it and pays the serialized
    /// per-invocation overhead.
    fn invoke(&self, requests: usize, records: usize) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        if requests > 1 {
            self.shared_batches.fetch_add(1, Ordering::Relaxed);
            self.coalesced_requests.fetch_add(requests as u64, Ordering::Relaxed);
        }
        let _ = records;
        if !self.opts.invocation_overhead.is_zero() {
            let _device = self.device.lock().expect("no panics while holding the device lock");
            std::thread::sleep(self.opts.invocation_overhead);
        }
    }
}

/// Assembles one batch from `pending` (removing what it admits): a FIFO
/// walk honoring the batch record cap and per-session quotas — the front
/// ticket is always admitted, so every batch makes progress — followed by
/// a work-conserving fill of spare capacity in FIFO order. See the
/// [module docs](self) for the fairness argument.
fn fair_take(
    pending: &mut VecDeque<Arc<Ticket>>,
    opts: &BatcherOptions,
    quotas: &BTreeMap<u64, usize>,
) -> Vec<Arc<Ticket>> {
    let mut admitted: Vec<Arc<Ticket>> = Vec::new();
    let mut total = 0usize;
    let mut per_session: BTreeMap<u64, usize> = BTreeMap::new();

    // Pass 1: guaranteed shares. Skipped tickets keep their queue order.
    let mut i = 0;
    while i < pending.len() {
        let ticket = &pending[i];
        let quota = quotas.get(&ticket.session).copied().unwrap_or(opts.session_quota);
        let session_total =
            per_session.get(&ticket.session).copied().unwrap_or(0) + ticket.records;
        let fits_cap =
            opts.max_batch_records == 0 || total + ticket.records <= opts.max_batch_records;
        let fits_quota = quota == 0 || session_total <= quota;
        if admitted.is_empty() || (fits_cap && fits_quota) {
            let ticket = pending.remove(i).expect("index bounded by len");
            total += ticket.records;
            *per_session.entry(ticket.session).or_insert(0) += ticket.records;
            admitted.push(ticket);
        } else {
            i += 1;
        }
    }

    // Pass 2: work-conserving fill — quota-skipped tickets take whatever
    // capacity the guaranteed shares left, still in FIFO order.
    let mut i = 0;
    while i < pending.len() {
        let ticket = &pending[i];
        if opts.max_batch_records == 0 || total + ticket.records <= opts.max_batch_records {
            let ticket = pending.remove(i).expect("index bounded by len");
            total += ticket.records;
            admitted.push(ticket);
        } else {
            i += 1;
        }
    }
    admitted
}

/// An [`Oracle`] / [`GroupOracle`] adapter that routes every labeling
/// batch through an [`OracleBatcher`] before labeling: the chunk is
/// admitted to a (possibly shared) invocation, then labeled through the
/// wrapped per-query oracle **on the calling thread** — so invocation
/// accounting (`calls`), simulated per-record latency, and label values
/// all stay attributed to the requesting session exactly as without the
/// batcher. With `batcher: None` the adapter is a transparent
/// passthrough, which is what keeps the engine's plumbing one code path.
pub struct GovernedOracle<'a, O> {
    inner: O,
    batcher: Option<&'a OracleBatcher>,
    key: String,
    session: u64,
}

impl<'a, O> GovernedOracle<'a, O> {
    /// Wraps `inner`; requests are coalesced under `key` (the canonical
    /// `(table, predicate)` rendering) on behalf of `session`.
    pub fn new(
        inner: O,
        batcher: Option<&'a OracleBatcher>,
        key: impl Into<String>,
        session: u64,
    ) -> Self {
        Self { inner, batcher, key: key.into(), session }
    }

    /// Consumes the wrapper, returning the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for GovernedOracle<'_, O> {
    fn label_batch(&self, indices: &[usize]) -> Vec<Labeled> {
        if let Some(batcher) = self.batcher {
            batcher.admit(&self.key, self.session, indices.len());
        }
        self.inner.label_batch(indices)
    }

    fn calls(&self) -> u64 {
        self.inner.calls()
    }

    fn reset_calls(&self) {
        self.inner.reset_calls()
    }
}

impl<O: GroupOracle> GroupOracle for GovernedOracle<'_, O> {
    fn label_group_batch(&self, indices: &[usize]) -> Vec<GroupLabel> {
        if let Some(batcher) = self.batcher {
            batcher.admit(&self.key, self.session, indices.len());
        }
        self.inner.label_group_batch(indices)
    }

    fn group_count(&self) -> usize {
        self.inner.group_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_data::FnOracle;

    fn ticket(session: u64, records: usize) -> Arc<Ticket> {
        Arc::new(Ticket { session, records, admitted: AtomicBool::new(false) })
    }

    fn sessions(batch: &[Arc<Ticket>]) -> Vec<u64> {
        batch.iter().map(|t| t.session).collect()
    }

    #[test]
    fn fair_take_admits_everything_when_unbounded() {
        let mut pending: VecDeque<_> =
            [ticket(0, 10), ticket(1, 10), ticket(0, 10)].into_iter().collect();
        let batch = fair_take(&mut pending, &BatcherOptions::governed(), &BTreeMap::new());
        assert_eq!(sessions(&batch), vec![0, 1, 0]);
        assert!(pending.is_empty());
    }

    #[test]
    fn fair_take_always_admits_the_front_ticket() {
        // Front ticket bigger than the cap: admitted anyway (liveness).
        let mut pending: VecDeque<_> = [ticket(0, 100), ticket(1, 10)].into_iter().collect();
        let opts = BatcherOptions::governed().with_max_batch_records(32);
        let batch = fair_take(&mut pending, &opts, &BTreeMap::new());
        assert_eq!(sessions(&batch), vec![0]);
        assert_eq!(sessions(&Vec::from(pending.clone())), vec![1]);
    }

    #[test]
    fn fair_take_quota_protects_the_late_fair_ticket() {
        // A greedy session floods the queue before the fair session's one
        // ticket arrives; with a quota and a bounded batch, the fair
        // ticket still rides the very next batch.
        let mut pending: VecDeque<_> = (0..6).map(|_| ticket(7, 8)).collect();
        pending.push_back(ticket(1, 8));
        let opts =
            BatcherOptions::governed().with_max_batch_records(32).with_session_quota(16);
        let batch = fair_take(&mut pending, &opts, &BTreeMap::new());
        // Greedy gets its 16-record share (2 tickets), the fair ticket is
        // admitted, and the work-conserving pass fills the last slot with
        // another greedy ticket.
        assert_eq!(sessions(&batch), vec![7, 7, 1, 7]);
        assert_eq!(pending.len(), 3, "over-quota greedy tickets wait for the next batch");
    }

    #[test]
    fn fair_take_quota_overrides_raise_a_sessions_share() {
        let mut pending: VecDeque<_> =
            [ticket(7, 8), ticket(7, 8), ticket(7, 8), ticket(1, 8)].into_iter().collect();
        let opts =
            BatcherOptions::governed().with_max_batch_records(32).with_session_quota(8);
        let mut quotas = BTreeMap::new();
        quotas.insert(7u64, 24usize);
        let batch = fair_take(&mut pending, &opts, &quotas);
        assert_eq!(sessions(&batch), vec![7, 7, 7, 1]);
    }

    #[test]
    fn fair_take_is_work_conserving_without_contention() {
        // One session over quota, but nobody else is waiting and the batch
        // has room: everything is admitted (pass 2).
        let mut pending: VecDeque<_> = (0..4).map(|_| ticket(3, 8)).collect();
        let opts =
            BatcherOptions::governed().with_max_batch_records(64).with_session_quota(8);
        let batch = fair_take(&mut pending, &opts, &BTreeMap::new());
        assert_eq!(batch.len(), 4);
        assert!(pending.is_empty());
    }

    #[test]
    fn baseline_mode_counts_one_invocation_per_request() {
        let b = OracleBatcher::new(BatcherOptions::default());
        b.admit("t/p", 0, 64);
        b.admit("t/p", 1, 64);
        b.admit("t/p", 0, 0); // empty request is free
        let stats = b.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.invocations, 2);
        assert_eq!(stats.shared_batches, 0);
        assert_eq!(stats.labeled_records, 128);
        assert_eq!(b.per_session_spend(), vec![(0, 64), (1, 64)]);
    }

    #[test]
    fn coalescing_shares_invocations_under_concurrency() {
        // 8 threads × 50 requests with a real overhead so requests pile up
        // behind in-flight invocations: far fewer invocations than
        // requests, and at least one genuinely shared batch.
        let b = OracleBatcher::new(
            BatcherOptions::governed()
                .with_invocation_overhead(Duration::from_micros(200)),
        );
        std::thread::scope(|scope| {
            for session in 0..8u64 {
                let b = &b;
                scope.spawn(move || {
                    for _ in 0..50 {
                        b.admit("t/p", session, 16);
                    }
                });
            }
        });
        let stats = b.stats();
        assert_eq!(stats.requests, 400);
        assert_eq!(stats.labeled_records, 400 * 16);
        assert!(
            stats.invocations < stats.requests,
            "coalescing must share invocations: {} invocations for {} requests",
            stats.invocations,
            stats.requests
        );
        assert!(stats.shared_batches > 0);
        assert!(stats.coalesced_requests > stats.shared_batches);
        // Spend ledger attributes every record to its requester.
        let spend = b.per_session_spend();
        assert_eq!(spend.len(), 8);
        assert!(spend.iter().all(|&(_, n)| n == 50 * 16), "{spend:?}");
    }

    #[test]
    fn coalescing_with_zero_overhead_still_terminates_and_counts() {
        let b = OracleBatcher::new(BatcherOptions::governed());
        std::thread::scope(|scope| {
            for session in 0..4u64 {
                let b = &b;
                scope.spawn(move || {
                    for _ in 0..100 {
                        b.admit("t/p", session, 4);
                    }
                });
            }
        });
        assert_eq!(b.stats().requests, 400);
        assert_eq!(b.stats().labeled_records, 1600);
    }

    #[test]
    fn keys_coalesce_independently() {
        let b = OracleBatcher::new(
            BatcherOptions::governed()
                .with_invocation_overhead(Duration::from_micros(100)),
        );
        std::thread::scope(|scope| {
            for session in 0..4u64 {
                let b = &b;
                scope.spawn(move || {
                    let key = if session % 2 == 0 { "t/p" } else { "t/q" };
                    for _ in 0..20 {
                        b.admit(key, session, 8);
                    }
                });
            }
        });
        assert_eq!(b.stats().requests, 80);
        // Idle queues are garbage-collected.
        assert!(b.state.lock().unwrap().queues.is_empty());
    }

    #[test]
    fn starvation_regression_fair_session_completes_under_greedy_flood() {
        // A greedy session floods small-capacity batches from 4 threads
        // while a fair session submits 20 requests. Liveness (the fair
        // thread returns at all) is the regression being pinned; the
        // quota makes its wait bounded by batches, not by greedy volume.
        let b = OracleBatcher::new(
            BatcherOptions::governed()
                .with_invocation_overhead(Duration::from_micros(50))
                .with_max_batch_records(64)
                .with_session_quota(32),
        );
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let b = &b;
                let stop = &stop;
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        b.admit("t/p", 99, 32);
                    }
                });
            }
            let b = &b;
            let stop = &stop;
            scope.spawn(move || {
                for _ in 0..20 {
                    b.admit("t/p", 1, 8);
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
        let spend: BTreeMap<u64, u64> = b.per_session_spend().into_iter().collect();
        assert_eq!(spend.get(&1), Some(&160), "fair session labeled all its records");
        assert!(spend.get(&99).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn governed_oracle_is_a_transparent_passthrough_without_a_batcher() {
        let inner = FnOracle::new(|i| Labeled { matches: i % 2 == 0, value: i as f64 });
        let governed = GovernedOracle::new(inner, None, "t/p", 0);
        let labels = governed.label_batch(&[0, 1, 2]);
        assert_eq!(labels.len(), 3);
        assert!(labels[0].matches && !labels[1].matches);
        assert_eq!(governed.calls(), 3);
        governed.reset_calls();
        assert_eq!(governed.calls(), 0);
        assert_eq!(governed.into_inner().calls(), 0);
    }

    #[test]
    fn governed_oracle_labels_match_the_inner_oracle_bit_for_bit() {
        let b = OracleBatcher::new(BatcherOptions::governed());
        let make = || FnOracle::new(|i| Labeled { matches: i % 3 == 0, value: (i * 7) as f64 });
        let plain = make();
        let governed = GovernedOracle::new(make(), Some(&b), "t/p", 4);
        let ids: Vec<usize> = (0..257).collect();
        assert_eq!(governed.label_batch(&ids), plain.label_batch(&ids));
        assert_eq!(governed.calls(), plain.calls());
        assert_eq!(b.stats().requests, 1);
        assert_eq!(b.per_session_spend(), vec![(4, 257)]);
    }
}
