//! Stratified bootstrap confidence intervals (Algorithm 2).
//!
//! Because the per-stratum samples from both stages are i.i.d. within the
//! stratum, Algorithm 2 resamples *within each stratum* — with replacement,
//! at the original sample size — recomputes `p̂*_k, μ̂*_k` and the combined
//! estimate, repeats `β` times, and reports the `[α/2, 1 − α/2]` percentile
//! interval.
//!
//! The paper notes the bootstrap's CPU cost is negligible next to oracle
//! invocations (§3.1); the Criterion bench `bootstrap_cost` measures our
//! implementation against that claim.

use crate::config::{Aggregate, BootstrapConfig};
use crate::estimator::{combine_estimate, StratumEstimate};
use abae_data::Labeled;
use abae_stats::bootstrap::{percentile_ci, ConfidenceInterval};
use rand::Rng;

/// Computes one bootstrap replicate estimate by resampling every stratum's
/// draws with replacement.
fn bootstrap_replicate<R: Rng + ?Sized>(
    samples: &[Vec<Labeled>],
    sizes: &[usize],
    agg: Aggregate,
    scratch: &mut Vec<Labeled>,
    rng: &mut R,
) -> f64 {
    let mut strata = Vec::with_capacity(samples.len());
    for (k, draws) in samples.iter().enumerate() {
        scratch.clear();
        if !draws.is_empty() {
            for _ in 0..draws.len() {
                scratch.push(draws[rng.gen_range(0..draws.len())]);
            }
        }
        strata.push(StratumEstimate::from_draws(sizes[k], scratch));
    }
    combine_estimate(agg, &strata)
}

/// Algorithm 2: stratified percentile-bootstrap CI.
///
/// `samples[k]` holds stratum `k`'s labeled draws (both stages under sample
/// reuse); `sizes[k]` is the stratum's full population size. Returns `None`
/// when every stratum is empty (no draws at all — no CI is definable).
pub fn stratified_bootstrap_ci<R: Rng + ?Sized>(
    samples: &[Vec<Labeled>],
    sizes: &[usize],
    agg: Aggregate,
    config: &BootstrapConfig,
    rng: &mut R,
) -> Option<ConfidenceInterval> {
    assert_eq!(samples.len(), sizes.len(), "samples/sizes must align");
    if samples.iter().all(Vec::is_empty) || config.trials == 0 {
        return None;
    }
    let mut scratch: Vec<Labeled> = Vec::new();
    let mut replicates = Vec::with_capacity(config.trials);
    for _ in 0..config.trials {
        replicates.push(bootstrap_replicate(samples, sizes, agg, &mut scratch, rng));
    }
    percentile_ci(&mut replicates, config.alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labeled(matches: bool, value: f64) -> Labeled {
        Labeled { matches, value }
    }

    #[test]
    fn constant_samples_give_zero_width_interval() {
        let samples = vec![vec![labeled(true, 5.0); 20], vec![labeled(true, 5.0); 20]];
        let sizes = vec![100, 100];
        let mut rng = StdRng::seed_from_u64(1);
        let ci = stratified_bootstrap_ci(
            &samples,
            &sizes,
            Aggregate::Avg,
            &BootstrapConfig { trials: 200, alpha: 0.05 },
            &mut rng,
        )
        .unwrap();
        assert_eq!(ci.lo, 5.0);
        assert_eq!(ci.hi, 5.0);
    }

    #[test]
    fn empty_samples_yield_no_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(stratified_bootstrap_ci(
            &[vec![], vec![]],
            &[10, 10],
            Aggregate::Avg,
            &BootstrapConfig::default(),
            &mut rng,
        )
        .is_none());
    }

    #[test]
    fn zero_trials_yield_no_interval() {
        let samples = vec![vec![labeled(true, 1.0)]];
        let mut rng = StdRng::seed_from_u64(3);
        assert!(stratified_bootstrap_ci(
            &samples,
            &[10],
            Aggregate::Avg,
            &BootstrapConfig { trials: 0, alpha: 0.05 },
            &mut rng,
        )
        .is_none());
    }

    #[test]
    fn interval_brackets_point_estimate() {
        let samples = vec![
            (0..50).map(|i| labeled(i % 3 != 0, (i % 5) as f64)).collect::<Vec<_>>(),
            (0..50).map(|i| labeled(i % 2 == 0, (i % 7) as f64)).collect::<Vec<_>>(),
        ];
        let sizes = vec![500, 500];
        let point = combine_estimate(
            Aggregate::Avg,
            &[
                StratumEstimate::from_draws(500, &samples[0]),
                StratumEstimate::from_draws(500, &samples[1]),
            ],
        );
        let mut rng = StdRng::seed_from_u64(4);
        let ci = stratified_bootstrap_ci(
            &samples,
            &sizes,
            Aggregate::Avg,
            &BootstrapConfig { trials: 500, alpha: 0.05 },
            &mut rng,
        )
        .unwrap();
        assert!(ci.lo <= point && point <= ci.hi, "[{}, {}] vs {point}", ci.lo, ci.hi);
    }

    #[test]
    fn more_samples_narrow_the_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let gen_samples = |n: usize, rng: &mut StdRng| -> Vec<Vec<Labeled>> {
            vec![(0..n)
                .map(|_| labeled(rng.gen::<f64>() < 0.5, rng.gen::<f64>() * 10.0))
                .collect()]
        };
        let small = gen_samples(40, &mut rng);
        let large = gen_samples(4000, &mut rng);
        let cfg = BootstrapConfig { trials: 400, alpha: 0.05 };
        let ci_small =
            stratified_bootstrap_ci(&small, &[10_000], Aggregate::Avg, &cfg, &mut rng).unwrap();
        let ci_large =
            stratified_bootstrap_ci(&large, &[10_000], Aggregate::Avg, &cfg, &mut rng).unwrap();
        assert!(
            ci_large.width() < ci_small.width(),
            "large {} vs small {}",
            ci_large.width(),
            ci_small.width()
        );
    }

    #[test]
    fn lower_alpha_widens_interval() {
        let mut rng = StdRng::seed_from_u64(6);
        let samples: Vec<Vec<Labeled>> = vec![(0..200)
            .map(|_| labeled(rng.gen::<f64>() < 0.4, rng.gen::<f64>() * 5.0))
            .collect()];
        let wide = stratified_bootstrap_ci(
            &samples,
            &[1000],
            Aggregate::Avg,
            &BootstrapConfig { trials: 800, alpha: 0.01 },
            &mut rng,
        )
        .unwrap();
        let narrow = stratified_bootstrap_ci(
            &samples,
            &[1000],
            Aggregate::Avg,
            &BootstrapConfig { trials: 800, alpha: 0.2 },
            &mut rng,
        )
        .unwrap();
        assert!(wide.width() >= narrow.width());
        assert_eq!(wide.confidence, 0.99);
        assert_eq!(narrow.confidence, 0.8);
    }

    #[test]
    fn count_bootstrap_scales_with_population() {
        // All samples positive; COUNT replicates are deterministic at the
        // population size regardless of resampling.
        let samples = vec![vec![labeled(true, 1.0); 30]];
        let mut rng = StdRng::seed_from_u64(7);
        let ci = stratified_bootstrap_ci(
            &samples,
            &[777],
            Aggregate::Count,
            &BootstrapConfig { trials: 100, alpha: 0.05 },
            &mut rng,
        )
        .unwrap();
        assert_eq!(ci.lo, 777.0);
        assert_eq!(ci.hi, 777.0);
    }
}
