//! Stratified bootstrap confidence intervals (Algorithm 2).
//!
//! Because the per-stratum samples from both stages are i.i.d. within the
//! stratum, Algorithm 2 resamples *within each stratum* — with replacement,
//! at the original sample size — recomputes `p̂*_k, μ̂*_k` and the combined
//! estimate, repeats `β` times, and reports the `[α/2, 1 − α/2]` percentile
//! interval.
//!
//! The paper notes the bootstrap's CPU cost is negligible next to oracle
//! invocations (§3.1); the Criterion bench `bootstrap_cost` measures our
//! implementation against that claim.

use crate::config::{Aggregate, BootstrapConfig};
use crate::estimator::{combine_estimate, StratumEstimate};
use abae_data::Labeled;
use abae_stats::bootstrap::{percentile_ci, ConfidenceInterval};
use rand::Rng;

/// Resamples every stratum's draws with replacement and returns the
/// replicate's per-stratum sufficient statistics — the input from which
/// *any* aggregate's replicate estimate is one [`combine_estimate`] call.
fn resample_strata<R: Rng + ?Sized>(
    samples: &[Vec<Labeled>],
    sizes: &[usize],
    scratch: &mut Vec<Labeled>,
    rng: &mut R,
) -> Vec<StratumEstimate> {
    let mut strata = Vec::with_capacity(samples.len());
    for (k, draws) in samples.iter().enumerate() {
        scratch.clear();
        if !draws.is_empty() {
            for _ in 0..draws.len() {
                scratch.push(draws[rng.gen_range(0..draws.len())]);
            }
        }
        strata.push(StratumEstimate::from_draws(sizes[k], scratch));
    }
    strata
}

/// Algorithm 2: stratified percentile-bootstrap CI.
///
/// `samples[k]` holds stratum `k`'s labeled draws (both stages under sample
/// reuse); `sizes[k]` is the stratum's full population size. Returns `None`
/// when every stratum is empty (no draws at all — no CI is definable).
pub fn stratified_bootstrap_ci<R: Rng + ?Sized>(
    samples: &[Vec<Labeled>],
    sizes: &[usize],
    agg: Aggregate,
    config: &BootstrapConfig,
    rng: &mut R,
) -> Option<ConfidenceInterval> {
    stratified_bootstrap_cis(samples, sizes, std::slice::from_ref(&agg), config, rng)
        .pop()
        .flatten()
}

/// Algorithm 2 for several aggregates at once, sharing the resampling
/// work: each of the `β` replicates resamples the strata *once* and
/// evaluates every requested aggregate on the same resample, so a
/// multi-aggregate query pays one bootstrap instead of `|aggs|`.
///
/// Returns one `Option<ConfidenceInterval>` per entry of `aggs`, in order
/// (`None` for all of them when every stratum is empty or `trials == 0`).
/// For a single aggregate this consumes exactly the same RNG stream as
/// [`stratified_bootstrap_ci`] always has — seeded results are unchanged.
pub fn stratified_bootstrap_cis<R: Rng + ?Sized>(
    samples: &[Vec<Labeled>],
    sizes: &[usize],
    aggs: &[Aggregate],
    config: &BootstrapConfig,
    rng: &mut R,
) -> Vec<Option<ConfidenceInterval>> {
    assert_eq!(samples.len(), sizes.len(), "samples/sizes must align");
    if samples.iter().all(Vec::is_empty) || config.trials == 0 {
        return vec![None; aggs.len()];
    }
    let mut scratch: Vec<Labeled> = Vec::new();
    let mut replicates: Vec<Vec<f64>> = vec![Vec::with_capacity(config.trials); aggs.len()];
    for _ in 0..config.trials {
        let strata = resample_strata(samples, sizes, &mut scratch, rng);
        for (reps, &agg) in replicates.iter_mut().zip(aggs) {
            reps.push(combine_estimate(agg, &strata));
        }
    }
    replicates.into_iter().map(|mut reps| percentile_ci(&mut reps, config.alpha)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labeled(matches: bool, value: f64) -> Labeled {
        Labeled { matches, value }
    }

    #[test]
    fn constant_samples_give_zero_width_interval() {
        let samples = vec![vec![labeled(true, 5.0); 20], vec![labeled(true, 5.0); 20]];
        let sizes = vec![100, 100];
        let mut rng = StdRng::seed_from_u64(1);
        let ci = stratified_bootstrap_ci(
            &samples,
            &sizes,
            Aggregate::Avg,
            &BootstrapConfig { trials: 200, alpha: 0.05 },
            &mut rng,
        )
        .unwrap();
        assert_eq!(ci.lo, 5.0);
        assert_eq!(ci.hi, 5.0);
    }

    #[test]
    fn empty_samples_yield_no_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(stratified_bootstrap_ci(
            &[vec![], vec![]],
            &[10, 10],
            Aggregate::Avg,
            &BootstrapConfig::default(),
            &mut rng,
        )
        .is_none());
    }

    #[test]
    fn zero_trials_yield_no_interval() {
        let samples = vec![vec![labeled(true, 1.0)]];
        let mut rng = StdRng::seed_from_u64(3);
        assert!(stratified_bootstrap_ci(
            &samples,
            &[10],
            Aggregate::Avg,
            &BootstrapConfig { trials: 0, alpha: 0.05 },
            &mut rng,
        )
        .is_none());
    }

    #[test]
    fn interval_brackets_point_estimate() {
        let samples = vec![
            (0..50).map(|i| labeled(i % 3 != 0, (i % 5) as f64)).collect::<Vec<_>>(),
            (0..50).map(|i| labeled(i % 2 == 0, (i % 7) as f64)).collect::<Vec<_>>(),
        ];
        let sizes = vec![500, 500];
        let point = combine_estimate(
            Aggregate::Avg,
            &[
                StratumEstimate::from_draws(500, &samples[0]),
                StratumEstimate::from_draws(500, &samples[1]),
            ],
        );
        let mut rng = StdRng::seed_from_u64(4);
        let ci = stratified_bootstrap_ci(
            &samples,
            &sizes,
            Aggregate::Avg,
            &BootstrapConfig { trials: 500, alpha: 0.05 },
            &mut rng,
        )
        .unwrap();
        assert!(ci.lo <= point && point <= ci.hi, "[{}, {}] vs {point}", ci.lo, ci.hi);
    }

    #[test]
    fn more_samples_narrow_the_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let gen_samples = |n: usize, rng: &mut StdRng| -> Vec<Vec<Labeled>> {
            vec![(0..n)
                .map(|_| labeled(rng.gen::<f64>() < 0.5, rng.gen::<f64>() * 10.0))
                .collect()]
        };
        let small = gen_samples(40, &mut rng);
        let large = gen_samples(4000, &mut rng);
        let cfg = BootstrapConfig { trials: 400, alpha: 0.05 };
        let ci_small =
            stratified_bootstrap_ci(&small, &[10_000], Aggregate::Avg, &cfg, &mut rng).unwrap();
        let ci_large =
            stratified_bootstrap_ci(&large, &[10_000], Aggregate::Avg, &cfg, &mut rng).unwrap();
        assert!(
            ci_large.width() < ci_small.width(),
            "large {} vs small {}",
            ci_large.width(),
            ci_small.width()
        );
    }

    #[test]
    fn lower_alpha_widens_interval() {
        let mut rng = StdRng::seed_from_u64(6);
        let samples: Vec<Vec<Labeled>> = vec![(0..200)
            .map(|_| labeled(rng.gen::<f64>() < 0.4, rng.gen::<f64>() * 5.0))
            .collect()];
        let wide = stratified_bootstrap_ci(
            &samples,
            &[1000],
            Aggregate::Avg,
            &BootstrapConfig { trials: 800, alpha: 0.01 },
            &mut rng,
        )
        .unwrap();
        let narrow = stratified_bootstrap_ci(
            &samples,
            &[1000],
            Aggregate::Avg,
            &BootstrapConfig { trials: 800, alpha: 0.2 },
            &mut rng,
        )
        .unwrap();
        assert!(wide.width() >= narrow.width());
        assert_eq!(wide.confidence, 0.99);
        assert_eq!(narrow.confidence, 0.8);
    }

    #[test]
    fn multi_aggregate_cis_share_one_resampling_pass() {
        let samples: Vec<Vec<Labeled>> = vec![
            (0..80).map(|i| labeled(i % 3 != 0, (i % 5) as f64)).collect(),
            (0..80).map(|i| labeled(i % 2 == 0, (i % 7) as f64)).collect(),
        ];
        let sizes = vec![400, 400];
        let cfg = BootstrapConfig { trials: 300, alpha: 0.05 };
        // The resampling stream does not depend on which aggregates are
        // requested, so each aggregate's CI is identical whether computed
        // alone or as part of a multi-aggregate batch with the same seed.
        let all = stratified_bootstrap_cis(
            &samples,
            &sizes,
            &[Aggregate::Avg, Aggregate::Sum, Aggregate::Count],
            &cfg,
            &mut StdRng::seed_from_u64(9),
        );
        let avg_alone = stratified_bootstrap_ci(
            &samples,
            &sizes,
            Aggregate::Avg,
            &cfg,
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], avg_alone);
        // Every aggregate's CI brackets its own point estimate.
        let strata = [
            StratumEstimate::from_draws(400, &samples[0]),
            StratumEstimate::from_draws(400, &samples[1]),
        ];
        for (ci, agg) in all.iter().zip([Aggregate::Avg, Aggregate::Sum, Aggregate::Count]) {
            let ci = ci.expect("non-empty samples");
            let point = combine_estimate(agg, &strata);
            assert!(ci.lo <= point && point <= ci.hi, "{agg:?}: [{}, {}] vs {point}", ci.lo, ci.hi);
        }
    }

    #[test]
    fn multi_aggregate_cis_handle_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(10);
        let empty = stratified_bootstrap_cis(
            &[vec![], vec![]],
            &[10, 10],
            &[Aggregate::Avg, Aggregate::Sum],
            &BootstrapConfig::default(),
            &mut rng,
        );
        assert_eq!(empty, vec![None, None]);
        let no_aggs = stratified_bootstrap_cis(
            &[vec![labeled(true, 1.0)]],
            &[10],
            &[],
            &BootstrapConfig::default(),
            &mut rng,
        );
        assert!(no_aggs.is_empty());
    }

    #[test]
    fn count_bootstrap_scales_with_population() {
        // All samples positive; COUNT replicates are deterministic at the
        // population size regardless of resampling.
        let samples = vec![vec![labeled(true, 1.0); 30]];
        let mut rng = StdRng::seed_from_u64(7);
        let ci = stratified_bootstrap_ci(
            &samples,
            &[777],
            Aggregate::Count,
            &BootstrapConfig { trials: 100, alpha: 0.05 },
            &mut rng,
        )
        .unwrap();
        assert_eq!(ci.lo, 777.0);
        assert_eq!(ci.hi, 777.0);
    }
}
