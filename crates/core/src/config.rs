//! Query configuration.
//!
//! Mirrors the knobs of Algorithm 1 plus the toggles the paper's lesion and
//! sensitivity studies flip: the number of strata `K` (Figure 10), the
//! Stage-1 fraction `C` (Figure 11), sample reuse (Figure 9), and — as an
//! ablation beyond the paper — the allocation rounding rule.

/// Which aggregate the query computes (§2.1: `AVG`, `SUM`, `COUNT`; other
/// aggregate types such as `MAX` are explicitly unsupported).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// Mean of the statistic over records matching the predicate.
    Avg,
    /// Sum of the statistic over matching records.
    Sum,
    /// Number of matching records.
    Count,
}

/// Whether final estimates reuse Stage-1 samples (the paper's default) or
/// discard them (the Figure 9 lesion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleReuse {
    /// Use samples from both stages in the final estimates (Algorithm 1).
    #[default]
    Enabled,
    /// Final estimates from Stage-2 draws only.
    Disabled,
}

/// How the fractional Stage-2 allocation `N2·T̂_k` is rounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Rounding {
    /// The paper's `⌊N2·T̂_k⌋`; leftover draws are not spent (§4.4.2 shows
    /// the rate is unaffected).
    #[default]
    Floor,
    /// Largest-remainder rounding that spends the full Stage-2 budget
    /// (ablation `ablation_rounding`).
    LargestRemainder,
}

/// Bootstrap CI settings (Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapConfig {
    /// Number of bootstrap resamples `β`.
    pub trials: usize,
    /// Total tail mass `α` (0.05 ⇒ a 95% CI, the paper's default).
    pub alpha: f64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self { trials: 1000, alpha: 0.05 }
    }
}

/// Configuration of one ABae query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbaeConfig {
    /// Number of strata `K`. The paper's evaluation uses 5 and recommends
    /// the largest `K` such that every stratum gets ≥ 100 Stage-1 samples.
    pub strata: usize,
    /// Total oracle budget `N` (Stage 1 + Stage 2 combined).
    pub budget: usize,
    /// Fraction `C` of the budget spent in Stage 1 (recommended 0.3–0.5;
    /// the evaluation uses 0.5).
    pub stage1_fraction: f64,
    /// Sample-reuse toggle.
    pub reuse: SampleReuse,
    /// Stage-2 rounding rule.
    pub rounding: Rounding,
    /// Bootstrap settings used by the `*_with_ci` entry points.
    pub bootstrap: BootstrapConfig,
    /// Oracle-labeling execution knobs (worker threads, batch size). Does
    /// not affect results — only how fast the oracle budget is spent.
    pub exec: crate::pipeline::ExecOptions,
}

impl Default for AbaeConfig {
    fn default() -> Self {
        Self {
            strata: 5,
            budget: 10_000,
            stage1_fraction: 0.5,
            reuse: SampleReuse::Enabled,
            rounding: Rounding::Floor,
            bootstrap: BootstrapConfig::default(),
            exec: crate::pipeline::ExecOptions::default(),
        }
    }
}

/// Configuration validation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `strata` was zero.
    ZeroStrata,
    /// `budget` was zero.
    ZeroBudget,
    /// `stage1_fraction` outside `(0, 1)`.
    BadStageFraction(f64),
    /// Budget too small to give each stratum at least one pilot draw.
    BudgetBelowStrata {
        /// Configured budget.
        budget: usize,
        /// Configured strata count.
        strata: usize,
    },
    /// Bootstrap `alpha` outside `(0, 1)`.
    BadAlpha(f64),
    /// Early-stop CI width target not a positive finite number.
    BadTargetWidth(f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroStrata => write!(f, "strata count must be positive"),
            ConfigError::ZeroBudget => write!(f, "oracle budget must be positive"),
            ConfigError::BadStageFraction(c) => {
                write!(f, "stage-1 fraction {c} must lie strictly between 0 and 1")
            }
            ConfigError::BudgetBelowStrata { budget, strata } => write!(
                f,
                "budget {budget} cannot give each of {strata} strata a stage-1 draw"
            ),
            ConfigError::BadAlpha(a) => write!(f, "bootstrap alpha {a} must lie in (0, 1)"),
            ConfigError::BadTargetWidth(w) => {
                write!(f, "CI width target {w} must be a positive finite number")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl AbaeConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.strata == 0 {
            return Err(ConfigError::ZeroStrata);
        }
        if self.budget == 0 {
            return Err(ConfigError::ZeroBudget);
        }
        if !(self.stage1_fraction > 0.0 && self.stage1_fraction < 1.0) {
            return Err(ConfigError::BadStageFraction(self.stage1_fraction));
        }
        let n1 = ((self.stage1_fraction * self.budget as f64) / self.strata as f64).floor();
        if n1 < 1.0 {
            return Err(ConfigError::BudgetBelowStrata {
                budget: self.budget,
                strata: self.strata,
            });
        }
        if !(self.bootstrap.alpha > 0.0 && self.bootstrap.alpha < 1.0) {
            return Err(ConfigError::BadAlpha(self.bootstrap.alpha));
        }
        Ok(())
    }

    /// The paper's recommendation: `K` maximal such that every stratum gets
    /// at least 100 Stage-1 samples (capped at `max_k`).
    pub fn recommended_strata(budget: usize, stage1_fraction: f64, max_k: usize) -> usize {
        let stage1_total = (stage1_fraction * budget as f64).floor() as usize;
        (stage1_total / 100).clamp(1, max_k.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_the_papers_evaluation_setting() {
        let c = AbaeConfig::default();
        assert_eq!(c.strata, 5);
        assert_eq!(c.budget, 10_000);
        assert_eq!(c.stage1_fraction, 0.5);
        assert_eq!(c.reuse, SampleReuse::Enabled);
        assert_eq!(c.rounding, Rounding::Floor);
        assert_eq!(c.bootstrap.trials, 1000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_each_bad_field() {
        let ok = AbaeConfig::default();
        assert_eq!(AbaeConfig { strata: 0, ..ok }.validate(), Err(ConfigError::ZeroStrata));
        assert_eq!(AbaeConfig { budget: 0, ..ok }.validate(), Err(ConfigError::ZeroBudget));
        assert_eq!(
            AbaeConfig { stage1_fraction: 0.0, ..ok }.validate(),
            Err(ConfigError::BadStageFraction(0.0))
        );
        assert_eq!(
            AbaeConfig { stage1_fraction: 1.0, ..ok }.validate(),
            Err(ConfigError::BadStageFraction(1.0))
        );
        assert_eq!(
            AbaeConfig { budget: 5, strata: 10, ..ok }.validate(),
            Err(ConfigError::BudgetBelowStrata { budget: 5, strata: 10 })
        );
        assert_eq!(
            AbaeConfig { bootstrap: BootstrapConfig { trials: 10, alpha: 0.0 }, ..ok }.validate(),
            Err(ConfigError::BadAlpha(0.0))
        );
    }

    #[test]
    fn recommended_strata_follows_100_sample_rule() {
        // 10k budget, C = 0.5 → 5000 pilot samples → 50 strata max, capped.
        assert_eq!(AbaeConfig::recommended_strata(10_000, 0.5, 10), 10);
        assert_eq!(AbaeConfig::recommended_strata(10_000, 0.5, 100), 50);
        // 1000 budget, C = 0.3 → 300 pilot → 3 strata.
        assert_eq!(AbaeConfig::recommended_strata(1000, 0.3, 10), 3);
        // Tiny budgets still give one stratum.
        assert_eq!(AbaeConfig::recommended_strata(50, 0.5, 10), 1);
    }

    #[test]
    fn error_messages_are_informative() {
        let msg = ConfigError::BudgetBelowStrata { budget: 5, strata: 10 }.to_string();
        assert!(msg.contains('5') && msg.contains("10"));
    }
}
