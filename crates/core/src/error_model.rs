//! Closed-form error of stratified estimation (Proposition 2).
//!
//! Under the optimal allocation with deterministic draws, the squared error
//! of `μ̂_all` is
//!
//! ```text
//! E[(μ̂_all − μ_all)²] = (Σ_k √p_k σ_k)² / (N · p_all²)
//! ```
//!
//! ABae uses this formula with plug-in estimates in two places: ranking
//! candidate proxies (§3.4) and the group-by allocation objectives
//! (Eq. 10/11), where the per-stratification error enters as
//! `Σ_k ŵ²_k σ̂²_k / (p̂_k T̂_k)` per unit of Stage-2 budget.

/// Proposition 2: the MSE of the optimal allocation given exact `p_k`,
/// `σ_k`, and total budget `n`.
///
/// Returns `f64::INFINITY` when `p_all = Σ p_k` is zero (no stratum has any
/// positives — the estimand is undefined and no budget helps).
pub fn optimal_mse(p: &[f64], sigma: &[f64], n: usize) -> f64 {
    assert_eq!(p.len(), sigma.len(), "p and sigma must align");
    if n == 0 {
        return f64::INFINITY;
    }
    let p_all: f64 = p.iter().sum();
    if p_all <= 0.0 {
        return f64::INFINITY;
    }
    let s: f64 = p.iter().zip(sigma).map(|(&pk, &sk)| pk.max(0.0).sqrt() * sk.max(0.0)).sum();
    (s * s) / (n as f64 * p_all * p_all)
}

/// The generic stratified-MSE formula of Eq. 3 for an arbitrary allocation
/// `t` (fractions of the budget `n` offered to each stratum):
/// `Σ_k w_k² σ_k² / (p_k t_k n)` with `w_k = p_k / p_all`.
///
/// Strata with `p_k·t_k·n = 0` but positive weight contribute infinity
/// (they would never be estimated); zero-weight strata contribute nothing.
pub fn allocation_mse(p: &[f64], sigma: &[f64], t: &[f64], n: usize) -> f64 {
    assert_eq!(p.len(), sigma.len(), "p and sigma must align");
    assert_eq!(p.len(), t.len(), "p and t must align");
    let p_all: f64 = p.iter().sum();
    if p_all <= 0.0 || n == 0 {
        return f64::INFINITY;
    }
    let mut total = 0.0;
    for ((&pk, &sk), &tk) in p.iter().zip(sigma).zip(t) {
        let wk = pk / p_all;
        if wk == 0.0 || sk == 0.0 {
            continue;
        }
        let eff = pk * tk * n as f64;
        if eff <= 0.0 {
            return f64::INFINITY;
        }
        total += wk * wk * sk * sk / eff;
    }
    total
}

/// MSE of *uniform* sampling with deterministic draws (§4.2 discussion):
/// `σ̄² / (n · p_avg)` where `p_avg = Σ p_k / K`. Used to compute the
/// theoretical gain of a proxy (§3.4 "relative gain").
pub fn uniform_mse(p: &[f64], sigma: &[f64], n: usize) -> f64 {
    allocation_mse(p, sigma, &vec![1.0 / p.len().max(1) as f64; p.len()], n)
}

/// The §3.4 relative-gain estimate of a proxy: predicted uniform MSE over
/// predicted optimal stratified MSE. Values > 1 mean the proxy helps.
pub fn proxy_gain(p: &[f64], sigma: &[f64]) -> f64 {
    let n = 1_000; // cancels in the ratio; any positive budget works
    let u = uniform_mse(p, sigma, n);
    let o = optimal_mse(p, sigma, n);
    if o == 0.0 {
        return f64::INFINITY;
    }
    u / o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::optimal_allocation;

    #[test]
    fn proposition_2_closed_form_matches_eq3() {
        // Eq. 4 must equal Eq. 3 evaluated at T*.
        let p = [0.1, 0.4, 0.8];
        let sigma = [1.0, 2.0, 0.5];
        let n = 1000;
        let t_star = optimal_allocation(&p, &sigma);
        let direct = optimal_mse(&p, &sigma, n);
        let via_allocation = allocation_mse(&p, &sigma, &t_star, n);
        assert!(
            (direct - via_allocation).abs() < 1e-12,
            "{direct} vs {via_allocation}"
        );
    }

    #[test]
    fn optimal_allocation_beats_any_other() {
        let p = [0.05, 0.3, 0.9];
        let sigma = [2.0, 1.0, 0.3];
        let n = 500;
        let best = optimal_mse(&p, &sigma, n);
        for t in [
            vec![1.0 / 3.0; 3],
            vec![0.8, 0.1, 0.1],
            vec![0.1, 0.1, 0.8],
            vec![0.2, 0.5, 0.3],
        ] {
            let other = allocation_mse(&p, &sigma, &t, n);
            assert!(best <= other + 1e-12, "allocation {t:?} beat optimum: {other} < {best}");
        }
    }

    #[test]
    fn mse_scales_inversely_with_budget() {
        let p = [0.2, 0.6];
        let sigma = [1.0, 1.5];
        let at_100 = optimal_mse(&p, &sigma, 100);
        let at_1000 = optimal_mse(&p, &sigma, 1000);
        assert!((at_100 / at_1000 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn section_4_2_k_fold_improvement_example() {
        // p_1 = 1, p_k = 0 otherwise, σ_k = 1: uniform converges at K/N,
        // stratified at 1/N — a K-fold gap (§4.2).
        let k = 5;
        let mut p = vec![0.0; k];
        p[0] = 1.0;
        let sigma = vec![1.0; k];
        let n = 1000;
        let strat = optimal_mse(&p, &sigma, n);
        assert!((strat - 1.0 / n as f64).abs() < 1e-12);
        let gain = proxy_gain(&p, &sigma);
        assert!((gain - k as f64).abs() < 1e-9, "gain {gain}");
    }

    #[test]
    fn degenerate_inputs_are_infinite() {
        assert!(optimal_mse(&[0.0, 0.0], &[1.0, 1.0], 100).is_infinite());
        assert!(optimal_mse(&[0.5], &[1.0], 0).is_infinite());
        assert!(allocation_mse(&[0.5, 0.5], &[1.0, 1.0], &[1.0, 0.0], 100).is_infinite());
    }

    #[test]
    fn zero_sigma_everywhere_means_zero_error() {
        // If the statistic is constant within every stratum, one positive
        // sample per stratum nails it.
        assert_eq!(optimal_mse(&[0.5, 0.5], &[0.0, 0.0], 100), 0.0);
    }

    #[test]
    fn uniform_gain_is_one_for_homogeneous_strata() {
        // Equal p and σ in all strata: the proxy carries no information and
        // the predicted gain is exactly 1.
        let gain = proxy_gain(&[0.3, 0.3, 0.3], &[1.0, 1.0, 1.0]);
        assert!((gain - 1.0).abs() < 1e-9, "gain {gain}");
    }

    #[test]
    fn informative_proxy_has_gain_above_one() {
        let gain = proxy_gain(&[0.02, 0.2, 0.9], &[1.0, 1.0, 1.0]);
        assert!(gain > 1.2, "gain {gain}");
    }
}
