//! Per-stratum plug-in estimates and the combined estimator.
//!
//! Algorithm 1's estimates from a stratum's draws `R_k`:
//!
//! * `p̂_k = |X_k| / |R_k|` — fraction of draws matching the predicate.
//! * `μ̂_k` — mean statistic over matching draws, 0 when there are none.
//! * `σ̂²_k` — unbiased sample variance over matching draws, 0 when fewer
//!   than two.
//!
//! The combined estimator generalizes `Σ_k p̂_k μ̂_k / Σ_k p̂_k` to strata
//! of (slightly) unequal size — quantile stratification leaves sizes
//! differing by one when `K ∤ n` — by weighting each stratum with its
//! estimated positive *count* `|S_k|·p̂_k`, which reduces to the paper's
//! formula for equal sizes. `SUM` and `COUNT` scale by the stratum sizes
//! directly.

use crate::config::Aggregate;
use abae_data::Labeled;
use abae_stats::StreamingMoments;

/// Sample-based estimates for one stratum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StratumEstimate {
    /// Stratum size `|S_k|` in the full dataset.
    pub size: usize,
    /// Number of oracle draws from this stratum.
    pub draws: usize,
    /// Number of draws matching the predicate.
    pub positives: usize,
    /// Estimated positive rate `p̂_k` (0 when no draws).
    pub p_hat: f64,
    /// Estimated conditional mean `μ̂_k` (0 when no positives).
    pub mu_hat: f64,
    /// Estimated conditional standard deviation `σ̂_k` (0 when < 2
    /// positives).
    pub sigma_hat: f64,
}

impl StratumEstimate {
    /// Computes the estimates from a stratum's labeled draws.
    pub fn from_draws(size: usize, draws: &[Labeled]) -> Self {
        let mut moments = StreamingMoments::new();
        let mut positives = 0usize;
        for d in draws {
            if d.matches {
                positives += 1;
                moments.push(d.value);
            }
        }
        StratumEstimate {
            size,
            draws: draws.len(),
            positives,
            p_hat: if draws.is_empty() { 0.0 } else { positives as f64 / draws.len() as f64 },
            mu_hat: moments.mean_or_zero(),
            sigma_hat: moments.sample_std_dev_or_zero(),
        }
    }
}

/// Combines per-stratum estimates into the final answer for `agg`.
///
/// * `Avg` — `Σ_k |S_k| p̂_k μ̂_k / Σ_k |S_k| p̂_k` (0 when the denominator
///   vanishes, matching the pseudocode's convention).
/// * `Sum` — `Σ_k |S_k| p̂_k μ̂_k`.
/// * `Count` — `Σ_k |S_k| p̂_k`.
pub fn combine_estimate(agg: Aggregate, strata: &[StratumEstimate]) -> f64 {
    let mut weighted_mean = 0.0;
    let mut weight = 0.0;
    for s in strata {
        let w = s.size as f64 * s.p_hat;
        weighted_mean += w * s.mu_hat;
        weight += w;
    }
    match agg {
        Aggregate::Avg => {
            if weight > 0.0 {
                weighted_mean / weight
            } else {
                0.0
            }
        }
        Aggregate::Sum => weighted_mean,
        Aggregate::Count => weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn labeled(matches: bool, value: f64) -> Labeled {
        Labeled { matches, value }
    }

    #[test]
    fn estimates_match_hand_computation() {
        let draws = vec![
            labeled(true, 2.0),
            labeled(false, 99.0),
            labeled(true, 4.0),
            labeled(true, 6.0),
            labeled(false, -1.0),
        ];
        let e = StratumEstimate::from_draws(100, &draws);
        assert_eq!(e.size, 100);
        assert_eq!(e.draws, 5);
        assert_eq!(e.positives, 3);
        assert!((e.p_hat - 0.6).abs() < 1e-12);
        assert!((e.mu_hat - 4.0).abs() < 1e-12);
        assert!((e.sigma_hat - 2.0).abs() < 1e-12); // var = (4+0+4)/2 = 4
    }

    #[test]
    fn empty_draws_follow_paper_conventions() {
        let e = StratumEstimate::from_draws(50, &[]);
        assert_eq!(e.p_hat, 0.0);
        assert_eq!(e.mu_hat, 0.0);
        assert_eq!(e.sigma_hat, 0.0);
    }

    #[test]
    fn single_positive_has_zero_sigma() {
        let e = StratumEstimate::from_draws(10, &[labeled(true, 7.0), labeled(false, 0.0)]);
        assert_eq!(e.mu_hat, 7.0);
        assert_eq!(e.sigma_hat, 0.0);
    }

    #[test]
    fn avg_reduces_to_paper_formula_for_equal_sizes() {
        // Equal-size strata: AVG = Σ p̂ μ̂ / Σ p̂.
        let strata = vec![
            StratumEstimate { size: 100, draws: 10, positives: 2, p_hat: 0.2, mu_hat: 1.0, sigma_hat: 0.0 },
            StratumEstimate { size: 100, draws: 10, positives: 6, p_hat: 0.6, mu_hat: 3.0, sigma_hat: 0.0 },
        ];
        let got = combine_estimate(Aggregate::Avg, &strata);
        let want = (0.2 * 1.0 + 0.6 * 3.0) / (0.2 + 0.6);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn unequal_sizes_weight_by_positive_count() {
        let strata = vec![
            StratumEstimate { size: 10, draws: 5, positives: 5, p_hat: 1.0, mu_hat: 2.0, sigma_hat: 0.0 },
            StratumEstimate { size: 990, draws: 5, positives: 5, p_hat: 1.0, mu_hat: 4.0, sigma_hat: 0.0 },
        ];
        let got = combine_estimate(Aggregate::Avg, &strata);
        // 10 positives at mean 2, 990 at mean 4.
        let want = (10.0 * 2.0 + 990.0 * 4.0) / 1000.0;
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn count_and_sum_scale_with_sizes() {
        let strata = vec![
            StratumEstimate { size: 200, draws: 10, positives: 5, p_hat: 0.5, mu_hat: 3.0, sigma_hat: 0.0 },
            StratumEstimate { size: 200, draws: 10, positives: 2, p_hat: 0.2, mu_hat: 10.0, sigma_hat: 0.0 },
        ];
        assert!((combine_estimate(Aggregate::Count, &strata) - 140.0).abs() < 1e-12);
        assert!(
            (combine_estimate(Aggregate::Sum, &strata) - (100.0 * 3.0 + 40.0 * 10.0)).abs() < 1e-12
        );
    }

    #[test]
    fn all_zero_rates_give_zero() {
        let strata = vec![StratumEstimate {
            size: 100,
            draws: 10,
            positives: 0,
            p_hat: 0.0,
            mu_hat: 0.0,
            sigma_hat: 0.0,
        }];
        assert_eq!(combine_estimate(Aggregate::Avg, &strata), 0.0);
        assert_eq!(combine_estimate(Aggregate::Count, &strata), 0.0);
        assert_eq!(combine_estimate(Aggregate::Sum, &strata), 0.0);
    }

    proptest! {
        #[test]
        fn avg_is_bounded_by_stratum_means(
            specs in proptest::collection::vec((1usize..1000, 0.01f64..1.0, -100f64..100.0), 1..8),
        ) {
            let strata: Vec<StratumEstimate> = specs
                .iter()
                .map(|&(size, p, mu)| StratumEstimate {
                    size,
                    draws: 10,
                    positives: (10.0 * p) as usize,
                    p_hat: p,
                    mu_hat: mu,
                    sigma_hat: 0.0,
                })
                .collect();
            let avg = combine_estimate(Aggregate::Avg, &strata);
            let lo = strata.iter().map(|s| s.mu_hat).fold(f64::INFINITY, f64::min);
            let hi = strata.iter().map(|s| s.mu_hat).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
        }

        #[test]
        fn p_hat_mu_hat_are_exact_sample_statistics(
            pattern in proptest::collection::vec((proptest::bool::ANY, -50f64..50.0), 0..60),
        ) {
            let draws: Vec<Labeled> =
                pattern.iter().map(|&(m, v)| Labeled { matches: m, value: v }).collect();
            let e = StratumEstimate::from_draws(1000, &draws);
            let positives: Vec<f64> =
                pattern.iter().filter(|(m, _)| *m).map(|&(_, v)| v).collect();
            prop_assert_eq!(e.positives, positives.len());
            if !draws.is_empty() {
                prop_assert!((e.p_hat - positives.len() as f64 / draws.len() as f64).abs() < 1e-12);
            }
            if !positives.is_empty() {
                let mean = positives.iter().sum::<f64>() / positives.len() as f64;
                prop_assert!((e.mu_hat - mean).abs() < 1e-9);
            }
        }
    }
}
