//! ABae-GroupBy: group-by aggregation with minimax allocation (§3.2, §4.5).
//!
//! The query computes a per-group statistic (e.g. `AVG(...) GROUP BY
//! hair_color`) where determining the group key is expensive. Each group
//! has its own proxy, hence its own stratification; the question is how to
//! split the Stage-2 budget *across stratifications* to minimize the
//! maximum per-group MSE. ABae-GroupBy estimates each group's
//! per-stratification error with the Proposition 2 plug-in formula and
//! solves the minimax objective (Eq. 10 single-oracle, Eq. 11
//! multiple-oracle) with Nelder–Mead over the probability simplex.
//!
//! Two oracle settings, as in the paper:
//!
//! * **Single oracle** — one invocation returns the record's group key, so
//!   every draw informs *all* groups; estimates from different
//!   stratifications are shared and combined by inverse-variance weighting.
//!   Labels are cached so a record drawn under two stratifications charges
//!   the oracle once.
//! * **Multiple oracles** — one oracle per group; a draw for group `g`'s
//!   stratification says nothing about other groups, so each group keeps
//!   its own two-stage ABae run and the allocation only decides the
//!   Stage-2 split.

use crate::allocation::optimal_allocation;
use crate::config::{BootstrapConfig, ConfigError};
use crate::estimator::{combine_estimate, StratumEstimate};
use crate::strata::Stratification;
use crate::two_stage::ProgressiveOptions;
use abae_data::{GroupLabel, GroupOracle, Labeled, Oracle};
use abae_optim::simplex::{minimize_on_simplex, SimplexOptions};
use abae_sampling::budget::{chunk_sizes, floor_allocation};
use abae_sampling::pool::IndexPool;
use abae_sampling::wor::sample_without_replacement;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// How the Stage-2 budget is split across groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupAllocation {
    /// Minimize the maximum per-group MSE (Eq. 10/11) with Nelder–Mead.
    #[default]
    Minimax,
    /// Equal split `Λ_l = 1/G` — the "Equal" baseline in Figures 7 and 8.
    Equal,
}

/// Configuration for a group-by query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupByConfig {
    /// Strata per stratification.
    pub strata: usize,
    /// Total oracle budget across all groups and stages.
    pub budget: usize,
    /// Fraction of the budget spent in Stage 1.
    pub stage1_fraction: f64,
    /// Allocation strategy across groups.
    pub allocation: GroupAllocation,
    /// Oracle-labeling execution knobs (worker threads, batch size).
    pub exec: crate::pipeline::ExecOptions,
}

impl Default for GroupByConfig {
    fn default() -> Self {
        Self {
            strata: 5,
            budget: 10_000,
            stage1_fraction: 0.5,
            allocation: GroupAllocation::Minimax,
            exec: crate::pipeline::ExecOptions::default(),
        }
    }
}

impl GroupByConfig {
    fn validate(&self, groups: usize) -> Result<(), GroupByError> {
        if groups == 0 {
            return Err(GroupByError::NoGroups);
        }
        if self.strata == 0 {
            return Err(GroupByError::Config(ConfigError::ZeroStrata));
        }
        if self.budget == 0 {
            return Err(GroupByError::Config(ConfigError::ZeroBudget));
        }
        if !(self.stage1_fraction > 0.0 && self.stage1_fraction < 1.0) {
            return Err(GroupByError::Config(ConfigError::BadStageFraction(
                self.stage1_fraction,
            )));
        }
        Ok(())
    }
}

/// Errors from group-by execution.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupByError {
    /// The query has no groups.
    NoGroups,
    /// Group count disagreement between proxies and oracles.
    GroupMismatch {
        /// Number of proxies supplied.
        proxies: usize,
        /// Number of groups the oracle(s) know about.
        oracles: usize,
    },
    /// Underlying configuration error.
    Config(ConfigError),
}

impl std::fmt::Display for GroupByError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupByError::NoGroups => write!(f, "group-by query needs at least one group"),
            GroupByError::GroupMismatch { proxies, oracles } => {
                write!(f, "{proxies} proxies but {oracles} oracle groups")
            }
            GroupByError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for GroupByError {}

/// Estimate for one group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupEstimate {
    /// Group id (index into the proxy list).
    pub group: u16,
    /// Estimated per-group average.
    pub estimate: f64,
}

/// Per-(stratification, stratum, group) sample statistics.
#[derive(Debug, Clone, Copy)]
struct CellStats {
    draws: usize,
    positives: usize,
    p_hat: f64,
    mu_hat: f64,
    sigma_hat: f64,
}

fn cell_stats(ids: &[usize], cache: &BTreeMap<usize, GroupLabel>, g: u16) -> CellStats {
    let mut moments = abae_stats::StreamingMoments::new();
    let mut positives = 0usize;
    for id in ids {
        let label = cache.get(id).expect("every sampled id is labeled");
        if label.group == Some(g) {
            positives += 1;
            moments.push(label.value);
        }
    }
    CellStats {
        draws: ids.len(),
        positives,
        p_hat: if ids.is_empty() { 0.0 } else { positives as f64 / ids.len() as f64 },
        mu_hat: moments.mean_or_zero(),
        sigma_hat: moments.sample_std_dev_or_zero(),
    }
}

/// Eq. 10/11 inner term: the per-unit-budget error of estimating group `g`
/// from one stratification, `Σ_k ŵ²_k σ̂²_k / (p̂_k T̂_k)`.
fn per_unit_error(cells: &[CellStats], sizes: &[usize], t_hat: &[f64]) -> f64 {
    let weight_total: f64 =
        cells.iter().zip(sizes).map(|(c, &s)| s as f64 * c.p_hat).sum();
    if weight_total <= 0.0 {
        return f64::INFINITY;
    }
    let mut err = 0.0;
    for ((c, &s), &t) in cells.iter().zip(sizes).zip(t_hat) {
        let w = s as f64 * c.p_hat / weight_total;
        if w == 0.0 || c.sigma_hat == 0.0 {
            continue;
        }
        let eff = c.p_hat * t;
        if eff <= 0.0 {
            return f64::INFINITY;
        }
        err += w * w * c.sigma_hat * c.sigma_hat / eff;
    }
    err
}

/// Solves the minimax allocation over groups given per-(stratification,
/// group) unit errors. `err_unit[l][g]` may be infinite (stratification `l`
/// carries no information about group `g`).
fn solve_allocation(
    err_unit: &[Vec<f64>],
    n2: usize,
    strategy: GroupAllocation,
) -> Vec<f64> {
    let g = err_unit.len();
    match strategy {
        GroupAllocation::Equal => vec![1.0 / g as f64; g],
        GroupAllocation::Minimax => {
            let objective = |lambda: &[f64]| -> f64 {
                // Eq. 10: max_g [ Σ_l Λ_l·N2 / err_unit[l][g] ]^{-1}
                let mut worst = 0.0f64;
                for gg in 0..g {
                    let mut precision = 0.0;
                    for (row, lam) in err_unit.iter().zip(lambda) {
                        let e = row[gg];
                        if e.is_finite() && e > 0.0 {
                            precision += lam * n2 as f64 / e;
                        } else if e == 0.0 {
                            precision = f64::INFINITY;
                        }
                    }
                    let mse = if precision > 0.0 { 1.0 / precision } else { f64::INFINITY };
                    worst = worst.max(mse);
                }
                worst
            };
            let (lambda, _) = minimize_on_simplex(objective, g, SimplexOptions::default());
            lambda
        }
    }
}

/// Labels the cache misses among `ids` through the batch pipeline (one
/// oracle charge per distinct record, ever). `ids` may repeat a record
/// drawn under two stratifications — only its first occurrence reaches the
/// oracle, exactly as if the occurrences were labeled in separate calls.
fn label_uncached<O: GroupOracle + ?Sized>(
    oracle: &O,
    ids: &[usize],
    cache: &mut BTreeMap<usize, GroupLabel>,
    cfg: &GroupByConfig,
) {
    let mut seen = BTreeSet::new();
    let misses: Vec<usize> =
        ids.iter().copied().filter(|i| !cache.contains_key(i) && seen.insert(*i)).collect();
    let labels = crate::pipeline::label_groups_all(oracle, &misses, &cfg.exec);
    for (idx, label) in misses.into_iter().zip(labels) {
        cache.insert(idx, label);
    }
}

/// The sampled state of one single-oracle group-by run: everything the
/// final estimator (and its bootstrap) needs, with no further oracle cost.
struct SingleOracleRun {
    /// `buckets[l][k]`: record ids sampled into stratum `k` of
    /// stratification `l` (pilot plus that stratification's Stage-2 draws).
    buckets: Vec<Vec<Vec<usize>>>,
    /// Every sampled id's group label (one oracle charge per distinct id).
    cache: BTreeMap<usize, GroupLabel>,
    /// Per-group stratifications, in group order.
    stratifications: Vec<Stratification>,
}

/// ABae-GroupBy in the single-oracle setting.
///
/// `proxies[g]` are group `g`'s proxy scores over the full dataset; the
/// oracle returns the group key. Returns one estimate per group.
pub fn groupby_single_oracle<O: GroupOracle + ?Sized, R: Rng + ?Sized>(
    proxies: &[&[f64]],
    oracle: &O,
    cfg: &GroupByConfig,
    rng: &mut R,
) -> Result<Vec<GroupEstimate>, GroupByError> {
    let run = single_oracle_sample(proxies, oracle, cfg, rng)?;
    let estimates = single_oracle_estimates(&run.buckets, &run.cache, &run.stratifications);
    Ok(estimates
        .into_iter()
        .enumerate()
        .map(|(gg, estimate)| GroupEstimate { group: gg as u16, estimate })
        .collect())
}

/// ABae-GroupBy (single oracle) with per-group bootstrap CIs.
///
/// The sampling phase is identical to [`groupby_single_oracle`] (same RNG
/// stream, same oracle spend); the bootstrap runs afterwards on the cached
/// labels for free. Because the single-oracle setting shares records
/// across stratifications, the per-stratum draws are not independent the
/// way Algorithm 2 assumes; the CI here resamples every
/// `(stratification, stratum)` bucket with replacement and recomputes the
/// full inverse-variance-weighted estimator per replicate, which treats
/// the buckets as approximately independent. The approximation is good
/// when strata are large relative to the overlap and is reported as a
/// percentile interval of the *actual* estimator, so it always tracks the
/// point estimate.
pub fn groupby_single_oracle_with_ci<O: GroupOracle + ?Sized, R: Rng + ?Sized>(
    proxies: &[&[f64]],
    oracle: &O,
    cfg: &GroupByConfig,
    bootstrap: &crate::config::BootstrapConfig,
    rng: &mut R,
) -> Result<Vec<GroupEstimateWithCi>, GroupByError> {
    if !(bootstrap.alpha > 0.0 && bootstrap.alpha < 1.0) {
        return Err(GroupByError::Config(ConfigError::BadAlpha(bootstrap.alpha)));
    }
    let run = single_oracle_sample(proxies, oracle, cfg, rng)?;
    Ok(single_oracle_bootstrap_cis(&run, bootstrap, rng))
}

/// Per-group point estimates plus bootstrap CIs for a sampled single-oracle
/// run state. Pure in the run state; all randomness comes from `rng`, so
/// the blocking entry point can pass the caller's stream while progressive
/// snapshots pass a forked one.
fn single_oracle_bootstrap_cis<R: Rng + ?Sized>(
    run: &SingleOracleRun,
    bootstrap: &BootstrapConfig,
    rng: &mut R,
) -> Vec<GroupEstimateWithCi> {
    let points = single_oracle_estimates(&run.buckets, &run.cache, &run.stratifications);
    let g = points.len();
    let mut replicates: Vec<Vec<f64>> = vec![Vec::with_capacity(bootstrap.trials); g];
    let mut resampled = run.buckets.clone();
    for _ in 0..bootstrap.trials {
        for (res_strat, buckets) in resampled.iter_mut().zip(&run.buckets) {
            for (res_bucket, ids) in res_strat.iter_mut().zip(buckets) {
                res_bucket.clear();
                if !ids.is_empty() {
                    for _ in 0..ids.len() {
                        res_bucket.push(ids[rng.gen_range(0..ids.len())]);
                    }
                }
            }
        }
        let est = single_oracle_estimates(&resampled, &run.cache, &run.stratifications);
        for (reps, e) in replicates.iter_mut().zip(est) {
            reps.push(e);
        }
    }
    points
        .into_iter()
        .zip(replicates)
        .enumerate()
        .map(|(gg, (estimate, mut reps))| GroupEstimateWithCi {
            group: gg as u16,
            estimate,
            ci: abae_stats::bootstrap::percentile_ci(&mut reps, bootstrap.alpha),
        })
        .collect()
}

/// One progressive group-by snapshot: per-group estimates with CIs from
/// the labels accumulated so far.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSnapshot {
    /// Per-group estimates with bootstrap CIs, in group order.
    pub groups: Vec<GroupEstimateWithCi>,
    /// Oracle labels actually charged so far.
    pub budget_spent: u64,
    /// True on the run's final snapshot (early stop or full budget).
    pub done: bool,
}

/// The answer of a progressive single-oracle group-by run.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByProgressiveResult {
    /// Per-group estimates with CIs — the final snapshot's rows.
    pub groups: Vec<GroupEstimateWithCi>,
    /// Oracle labels actually charged (less than the configured budget
    /// when the run stopped early).
    pub oracle_calls: u64,
}

/// Anytime ABae-GroupBy (single oracle): the same query as
/// [`groupby_single_oracle_with_ci`], labeling in budget chunks and
/// invoking `on_snapshot` after every chunk with per-group estimates and
/// CIs over the labels so far.
///
/// Semantics mirror [`crate::two_stage::run_abae_multi_progressive`]:
///
/// * Without a CI width target the run spends the full budget and the
///   final snapshot (`done == true`) is bit-identical to the blocking run
///   with the same seed, for any chunk size. Intermediate snapshot CIs use
///   a forked RNG so they never perturb the caller's stream.
/// * With [`ProgressiveOptions::target_ci_width`] set, the run stops at
///   the first chunk boundary — once the pilot stage is complete — where
///   **every** group's snapshot CI is narrower than the target, charging
///   only the budget actually consumed.
///
/// # Errors
/// Configuration errors as the blocking variant, plus
/// [`ConfigError::BadTargetWidth`] when the target is not a positive
/// finite number.
pub fn groupby_single_oracle_progressive<O: GroupOracle + ?Sized, R: Rng + ?Sized>(
    proxies: &[&[f64]],
    oracle: &O,
    cfg: &GroupByConfig,
    bootstrap: &BootstrapConfig,
    progressive: &ProgressiveOptions,
    rng: &mut R,
    mut on_snapshot: impl FnMut(&GroupSnapshot),
) -> Result<GroupByProgressiveResult, GroupByError> {
    if !(bootstrap.alpha > 0.0 && bootstrap.alpha < 1.0) {
        return Err(GroupByError::Config(ConfigError::BadAlpha(bootstrap.alpha)));
    }
    if let Some(w) = progressive.target_ci_width {
        if !(w.is_finite() && w > 0.0) {
            return Err(GroupByError::Config(ConfigError::BadTargetWidth(w)));
        }
    }
    let chunk = progressive.chunk.unwrap_or(cfg.exec.batch_size).max(1);
    let target = progressive.target_ci_width;

    let mut stopping: Option<GroupSnapshot> = None;
    let chunked = {
        let mut observe = |state: &SingleOracleRun, spent: u64, pilot_complete: bool| -> bool {
            let mut fork = crate::two_stage::snapshot_rng(spent);
            let groups = single_oracle_bootstrap_cis(state, bootstrap, &mut fork);
            // Stop only once the pilot stage is complete: partial-pilot CIs
            // can degenerate to zero width and would stop bogusly. Groups
            // with no CI yet (empty samples) keep the run going.
            let stop = pilot_complete
                && target.is_some_and(|w| {
                    groups.iter().all(|e| e.ci.is_some_and(|ci| ci.width() < w))
                });
            let snap = GroupSnapshot { groups, budget_spent: spent, done: stop };
            on_snapshot(&snap);
            if stop {
                stopping = Some(snap);
            }
            stop
        };
        single_oracle_chunked(proxies, oracle, cfg, chunk, rng, &mut observe)?
    };

    if chunked.stopped {
        let snap = stopping.expect("a stopped run records its stopping snapshot");
        return Ok(GroupByProgressiveResult {
            groups: snap.groups,
            oracle_calls: chunked.oracle_calls,
        });
    }

    // Complete run: finish exactly as the blocking executor — bootstrap
    // CIs from the caller's RNG at the same stream position.
    let groups = single_oracle_bootstrap_cis(&chunked.run, bootstrap, rng);
    let snap =
        GroupSnapshot { groups: groups.clone(), budget_spent: chunked.oracle_calls, done: true };
    on_snapshot(&snap);
    Ok(GroupByProgressiveResult { groups, oracle_calls: chunked.oracle_calls })
}

/// The sampling phase shared by the single-oracle entry points: pilot,
/// allocation, Stage-2 draws — every oracle charge of the run. The
/// one-chunk instance of [`single_oracle_chunked`] with an observer that
/// never stops.
fn single_oracle_sample<O: GroupOracle + ?Sized, R: Rng + ?Sized>(
    proxies: &[&[f64]],
    oracle: &O,
    cfg: &GroupByConfig,
    rng: &mut R,
) -> Result<SingleOracleRun, GroupByError> {
    Ok(single_oracle_chunked(proxies, oracle, cfg, usize::MAX, rng, &mut |_, _, _| false)?.run)
}

/// Outcome of the chunked single-oracle sampling core.
struct ChunkedSingleOracle {
    run: SingleOracleRun,
    stopped: bool,
    oracle_calls: u64,
}

/// The chunked single-oracle sampling core: pilot, allocation, Stage-2
/// draws, with labeling performed in chunks of at most `chunk` records.
///
/// `observe(run_so_far, budget_spent, pilot_complete)` fires at every chunk
/// boundary except the run's last; returning `true` stops the run at that
/// boundary, leaving later draws unlabeled (and uncharged). The final
/// pilot chunk's boundary is deferred until the Stage-2 work list is known
/// so it is only observed when Stage 2 actually has work.
///
/// Chunking is invisible to the result: all Stage-2 draws depend only on
/// the pilot *draws* (never on Stage-2 labels), so hoisting them before
/// chunked labeling consumes the exact RNG stream of the interleaved
/// blocking loop, and a completed run's buckets, cache, and oracle charges
/// are bit-identical to the one-chunk instance.
fn single_oracle_chunked<O: GroupOracle + ?Sized, R: Rng + ?Sized>(
    proxies: &[&[f64]],
    oracle: &O,
    cfg: &GroupByConfig,
    chunk: usize,
    rng: &mut R,
    observe: &mut dyn FnMut(&SingleOracleRun, u64, bool) -> bool,
) -> Result<ChunkedSingleOracle, GroupByError> {
    let g = proxies.len();
    cfg.validate(g)?;
    if oracle.group_count() != g {
        return Err(GroupByError::GroupMismatch { proxies: g, oracles: oracle.group_count() });
    }
    let n = proxies[0].len();
    let k = cfg.strata;

    let stratifications: Vec<Stratification> =
        proxies.iter().map(|p| Stratification::by_proxy_quantile(p, k)).collect();
    let stratum_of: Vec<Vec<u32>> = stratifications
        .iter()
        .map(|s| {
            let mut map = vec![0u32; n];
            for (kk, members) in s.strata().iter().enumerate() {
                for &i in members {
                    map[i] = kk as u32;
                }
            }
            map
        })
        .collect();

    // Label cache: one oracle charge per distinct record. Draw order comes
    // from the RNG on this thread; labeling runs through the batch
    // pipeline, cache misses only.
    let calls_before = oracle.calls();
    let mut run = SingleOracleRun {
        buckets: vec![vec![Vec::new(); k]; g],
        cache: BTreeMap::new(),
        stratifications,
    };
    let mut stopped = false;

    // Stage 1: one uniform pilot shared by every stratification, labeled
    // and bucketed per chunk.
    let n1_total = ((cfg.stage1_fraction * cfg.budget as f64).floor() as usize).min(n);
    let pilot = sample_without_replacement(n, n1_total, rng);
    let pilot_chunks = chunk_sizes(pilot.len(), chunk);
    let mut offset = 0;
    for (ci, &sz) in pilot_chunks.iter().enumerate() {
        let ids = &pilot[offset..offset + sz];
        label_uncached(oracle, ids, &mut run.cache, cfg);
        for &idx in ids {
            for (l, strata) in stratum_of.iter().enumerate() {
                run.buckets[l][strata[idx] as usize].push(idx);
            }
        }
        offset += sz;
        if ci + 1 < pilot_chunks.len() && observe(&run, oracle.calls() - calls_before, false) {
            stopped = true;
            break;
        }
    }

    if !stopped {
        // Pilot estimates and allocations.
        let mut t_hats: Vec<Vec<f64>> = Vec::with_capacity(g);
        let mut err_unit: Vec<Vec<f64>> = vec![vec![f64::INFINITY; g]; g];
        for (l, err_row) in err_unit.iter_mut().enumerate() {
            let sizes = run.stratifications[l].sizes();
            // Allocation optimized for stratification l's own group.
            let own: Vec<CellStats> =
                (0..k).map(|kk| cell_stats(&run.buckets[l][kk], &run.cache, l as u16)).collect();
            let t = optimal_allocation(
                &own.iter().map(|c| c.p_hat).collect::<Vec<_>>(),
                &own.iter().map(|c| c.sigma_hat).collect::<Vec<_>>(),
            );
            for (gg, slot) in err_row.iter_mut().enumerate() {
                let cells: Vec<CellStats> = (0..k)
                    .map(|kk| cell_stats(&run.buckets[l][kk], &run.cache, gg as u16))
                    .collect();
                *slot = per_unit_error(&cells, &sizes, &t);
            }
            t_hats.push(t);
        }

        // Allocation across stratifications; hoist every Stage-2 draw.
        let n2 = cfg.budget.saturating_sub(n1_total);
        let lambda = solve_allocation(&err_unit, n2.max(1), cfg.allocation);
        let mut flat2: Vec<(usize, usize, usize)> = Vec::new();
        for l in 0..g {
            let budget_l = (lambda[l] * n2 as f64).floor() as usize;
            let per_stratum = floor_allocation(&t_hats[l], budget_l);
            for (kk, &want) in per_stratum.iter().enumerate() {
                let members = run.stratifications[l].stratum(kk);
                // Draw fresh records: exclude ids already sampled in this
                // bucket so the two stages stay a without-replacement
                // sample. (A record drawn under another stratification can
                // recur here; the label cache absorbs the duplicate.)
                let taken: BTreeSet<usize> = run.buckets[l][kk].iter().copied().collect();
                let fresh: Vec<usize> =
                    members.iter().copied().filter(|i| !taken.contains(i)).collect();
                for pos in sample_without_replacement(fresh.len(), want, rng) {
                    flat2.push((l, kk, fresh[pos]));
                }
            }
        }

        // The deferred pilot-stage boundary: only a snapshot boundary when
        // Stage 2 has work, otherwise the run ends here.
        if !flat2.is_empty() && observe(&run, oracle.calls() - calls_before, true) {
            stopped = true;
        }
        if !stopped {
            let stage2_chunks = chunk_sizes(flat2.len(), chunk);
            let mut offset = 0;
            for (ci, &sz) in stage2_chunks.iter().enumerate() {
                let slice = &flat2[offset..offset + sz];
                let ids: Vec<usize> = slice.iter().map(|&(_, _, id)| id).collect();
                label_uncached(oracle, &ids, &mut run.cache, cfg);
                for &(l, kk, id) in slice {
                    run.buckets[l][kk].push(id);
                }
                offset += sz;
                if ci + 1 < stage2_chunks.len()
                    && observe(&run, oracle.calls() - calls_before, true)
                {
                    stopped = true;
                    break;
                }
            }
        }
    }

    Ok(ChunkedSingleOracle { run, stopped, oracle_calls: oracle.calls() - calls_before })
}

/// Final single-oracle estimates: per group, inverse-variance weighting
/// across stratifications (§4.5 "Single Oracle"). Pure function of the
/// sampled buckets and cached labels, so the bootstrap can re-evaluate it
/// on resampled buckets.
fn single_oracle_estimates(
    buckets: &[Vec<Vec<usize>>],
    cache: &BTreeMap<usize, GroupLabel>,
    stratifications: &[Stratification],
) -> Vec<f64> {
    let g = stratifications.len();
    let k = buckets.first().map(Vec::len).unwrap_or(0);
    let mut out = Vec::with_capacity(g);
    for gg in 0..g {
        let mut weighted = 0.0;
        let mut weight_total = 0.0;
        let mut fallback_sum = 0.0;
        let mut fallback_n = 0usize;
        for l in 0..g {
            let sizes = stratifications[l].sizes();
            let cells: Vec<CellStats> =
                (0..k).map(|kk| cell_stats(&buckets[l][kk], cache, gg as u16)).collect();
            // Point estimate from stratification l.
            let strata_est: Vec<StratumEstimate> = cells
                .iter()
                .zip(&sizes)
                .map(|(c, &s)| StratumEstimate {
                    size: s,
                    draws: c.draws,
                    positives: c.positives,
                    p_hat: c.p_hat,
                    mu_hat: c.mu_hat,
                    sigma_hat: c.sigma_hat,
                })
                .collect();
            let est = combine_estimate(crate::config::Aggregate::Avg, &strata_est);
            // Variance estimate: Σ_k ŵ²σ̂²/B_k over positive draws.
            let w_total: f64 =
                cells.iter().zip(&sizes).map(|(c, &s)| s as f64 * c.p_hat).sum();
            if w_total <= 0.0 {
                continue;
            }
            let mut var = 0.0;
            let mut usable = true;
            for (c, &s) in cells.iter().zip(&sizes) {
                let w = s as f64 * c.p_hat / w_total;
                if w == 0.0 {
                    continue;
                }
                if c.positives == 0 {
                    usable = false;
                    break;
                }
                var += w * w * c.sigma_hat * c.sigma_hat / c.positives as f64;
            }
            if !usable {
                continue;
            }
            fallback_sum += est;
            fallback_n += 1;
            let w = 1.0 / var.max(1e-12);
            weighted += w * est;
            weight_total += w;
        }
        let estimate = if weight_total > 0.0 {
            weighted / weight_total
        } else if fallback_n > 0 {
            fallback_sum / fallback_n as f64
        } else {
            0.0
        };
        out.push(estimate);
    }
    out
}

/// ABae-GroupBy in the multiple-oracle setting: one predicate oracle per
/// group; group `g`'s samples inform only group `g`.
pub fn groupby_multi_oracle<O: Oracle, R: Rng + ?Sized>(
    proxies: &[&[f64]],
    oracles: &[&O],
    cfg: &GroupByConfig,
    rng: &mut R,
) -> Result<Vec<GroupEstimate>, GroupByError> {
    Ok(multi_oracle_run(proxies, oracles, cfg, rng)?.0)
}

/// A group estimate with a per-group bootstrap CI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupEstimateWithCi {
    /// Group id (index into the proxy list).
    pub group: u16,
    /// Estimated per-group average.
    pub estimate: f64,
    /// Stratified percentile-bootstrap CI (`None` when the group's
    /// samples are empty).
    pub ci: Option<abae_stats::bootstrap::ConfidenceInterval>,
}

/// ABae-GroupBy (multiple oracles) with per-group bootstrap CIs.
///
/// In this setting each group's draws are an independent stratified
/// sample, so Algorithm 2 applies per group verbatim. (The single-oracle
/// setting shares records across stratifications, which breaks the
/// per-stratum independence Algorithm 2 resamples under; it deliberately
/// has no `_with_ci` variant.)
pub fn groupby_multi_oracle_with_ci<O: Oracle, R: Rng + ?Sized>(
    proxies: &[&[f64]],
    oracles: &[&O],
    cfg: &GroupByConfig,
    bootstrap: &crate::config::BootstrapConfig,
    rng: &mut R,
) -> Result<Vec<GroupEstimateWithCi>, GroupByError> {
    let (estimates, draws, sizes) = multi_oracle_run(proxies, oracles, cfg, rng)?;
    Ok(estimates
        .into_iter()
        .enumerate()
        .map(|(l, est)| {
            let ci = crate::bootstrap::stratified_bootstrap_ci(
                &draws[l],
                &sizes[l],
                crate::config::Aggregate::Avg,
                bootstrap,
                rng,
            );
            GroupEstimateWithCi { group: est.group, estimate: est.estimate, ci }
        })
        .collect())
}

type MultiOracleRun = (Vec<GroupEstimate>, Vec<Vec<Vec<Labeled>>>, Vec<Vec<usize>>);

/// Shared two-stage machinery of the multiple-oracle setting; returns the
/// estimates plus, per group, the per-stratum draws and stratum sizes (the
/// inputs Algorithm 2 needs).
fn multi_oracle_run<O: Oracle, R: Rng + ?Sized>(
    proxies: &[&[f64]],
    oracles: &[&O],
    cfg: &GroupByConfig,
    rng: &mut R,
) -> Result<MultiOracleRun, GroupByError> {
    let g = proxies.len();
    cfg.validate(g)?;
    if oracles.len() != g {
        return Err(GroupByError::GroupMismatch { proxies: g, oracles: oracles.len() });
    }
    let k = cfg.strata;

    let stratifications: Vec<Stratification> =
        proxies.iter().map(|p| Stratification::by_proxy_quantile(p, k)).collect();

    // Stage 1: per-group pilot of ⌊C·budget/G⌋ draws, spread over strata.
    let n1_group = ((cfg.stage1_fraction * cfg.budget as f64) / g as f64).floor() as usize;
    let n1_stratum = (n1_group / k).max(1);

    let mut pools: Vec<Vec<IndexPool>> = Vec::with_capacity(g);
    let mut draws: Vec<Vec<Vec<Labeled>>> = Vec::with_capacity(g);
    for l in 0..g {
        let mut group_pools = Vec::with_capacity(k);
        let mut group_draws = Vec::with_capacity(k);
        for kk in 0..k {
            let members = stratifications[l].stratum(kk);
            let mut pool = IndexPool::new(members.len());
            let drawn: Vec<usize> =
                pool.draw(n1_stratum, rng).iter().map(|&local| members[local]).collect();
            group_pools.push(pool);
            group_draws.push(crate::pipeline::label_all(oracles[l], &drawn, &cfg.exec));
        }
        pools.push(group_pools);
        draws.push(group_draws);
    }

    // Pilot estimates, T̂ per group, Eq. 11 unit errors.
    let mut t_hats: Vec<Vec<f64>> = Vec::with_capacity(g);
    let mut unit_err: Vec<f64> = Vec::with_capacity(g);
    for l in 0..g {
        let sizes = stratifications[l].sizes();
        let ests: Vec<StratumEstimate> = (0..k)
            .map(|kk| StratumEstimate::from_draws(sizes[kk], &draws[l][kk]))
            .collect();
        let t = optimal_allocation(
            &ests.iter().map(|e| e.p_hat).collect::<Vec<_>>(),
            &ests.iter().map(|e| e.sigma_hat).collect::<Vec<_>>(),
        );
        let cells: Vec<CellStats> = ests
            .iter()
            .map(|e| CellStats {
                draws: e.draws,
                positives: e.positives,
                p_hat: e.p_hat,
                mu_hat: e.mu_hat,
                sigma_hat: e.sigma_hat,
            })
            .collect();
        unit_err.push(per_unit_error(&cells, &sizes, &t));
        t_hats.push(t);
    }

    // Eq. 11 is the diagonal special case of Eq. 10.
    let err_matrix: Vec<Vec<f64>> = (0..g)
        .map(|l| {
            (0..g)
                .map(|gg| if l == gg { unit_err[l] } else { f64::INFINITY })
                .collect()
        })
        .collect();
    let n2 = cfg.budget.saturating_sub(n1_stratum * k * g);
    let lambda = solve_allocation(&err_matrix, n2.max(1), cfg.allocation);

    // Stage 2: extend each group's without-replacement draws.
    let mut out = Vec::with_capacity(g);
    let mut all_sizes = Vec::with_capacity(g);
    for l in 0..g {
        let budget_l = (lambda[l] * n2 as f64).floor() as usize;
        let per_stratum = floor_allocation(&t_hats[l], budget_l);
        let sizes = stratifications[l].sizes();
        for kk in 0..k {
            let members = stratifications[l].stratum(kk);
            let drawn: Vec<usize> =
                pools[l][kk].draw(per_stratum[kk], rng).iter().map(|&local| members[local]).collect();
            draws[l][kk].extend(crate::pipeline::label_all(oracles[l], &drawn, &cfg.exec));
        }
        let ests: Vec<StratumEstimate> = (0..k)
            .map(|kk| StratumEstimate::from_draws(sizes[kk], &draws[l][kk]))
            .collect();
        out.push(GroupEstimate {
            group: l as u16,
            estimate: combine_estimate(crate::config::Aggregate::Avg, &ests),
        });
        all_sizes.push(sizes);
    }
    Ok((out, draws, all_sizes))
}

/// Uniform baseline for the single-oracle setting: spend the whole budget
/// on one uniform sample and average per group.
pub fn groupby_uniform_single<O: GroupOracle + ?Sized, R: Rng + ?Sized>(
    n: usize,
    oracle: &O,
    budget: usize,
    rng: &mut R,
) -> Vec<GroupEstimate> {
    let g = oracle.group_count();
    let mut sums = vec![0.0; g];
    let mut counts = vec![0usize; g];
    let drawn = sample_without_replacement(n, budget, rng);
    for l in oracle.label_group_batch(&drawn) {
        if let Some(gg) = l.group {
            sums[gg as usize] += l.value;
            counts[gg as usize] += 1;
        }
    }
    (0..g)
        .map(|gg| GroupEstimate {
            group: gg as u16,
            estimate: if counts[gg] > 0 { sums[gg] / counts[gg] as f64 } else { 0.0 },
        })
        .collect()
}

/// Uniform baseline for the multiple-oracle setting: `budget/G` uniform
/// draws per group, labeled with that group's oracle.
pub fn groupby_uniform_multi<O: Oracle, R: Rng + ?Sized>(
    n: usize,
    oracles: &[&O],
    budget: usize,
    rng: &mut R,
) -> Vec<GroupEstimate> {
    let g = oracles.len();
    let per_group = budget.checked_div(g).unwrap_or(0);
    let mut out = Vec::with_capacity(g);
    for (gg, oracle) in oracles.iter().enumerate() {
        let mut sum = 0.0;
        let mut count = 0usize;
        for idx in sample_without_replacement(n, per_group, rng) {
            let l = oracle.label(idx);
            if l.matches {
                sum += l.value;
                count += 1;
            }
        }
        out.push(GroupEstimate {
            group: gg as u16,
            estimate: if count > 0 { sum / count as f64 } else { 0.0 },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_data::{PredicateOracle, SingleGroupOracle, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a dataset with three disjoint groups whose proxies are
    /// informative and whose per-group means differ.
    fn group_table(n: usize, seed: u64) -> Table {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(seed);
        let rates = [0.15, 0.10, 0.05];
        let means = [10.0, 20.0, 40.0];
        let mut key = Vec::with_capacity(n);
        let mut labels: Vec<Vec<bool>> = (0..3).map(|_| Vec::with_capacity(n)).collect();
        let mut proxies: Vec<Vec<f64>> = (0..3).map(|_| Vec::with_capacity(n)).collect();
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let u: f64 = rng.gen();
            let group = if u < rates[0] {
                Some(0u16)
            } else if u < rates[0] + rates[1] {
                Some(1)
            } else if u < rates[0] + rates[1] + rates[2] {
                Some(2)
            } else {
                None
            };
            key.push(group);
            for g in 0..3 {
                let member = group == Some(g as u16);
                labels[g].push(member);
                let base: f64 = if member { 0.75 } else { 0.25 };
                proxies[g].push((base + rng.gen_range(-0.2..0.2)).clamp(0.0, 1.0));
            }
            let mean = group.map(|g| means[g as usize]).unwrap_or(0.0);
            values.push(mean + rng.gen_range(-2.0..2.0));
        }
        let mut builder = Table::builder("grp", values);
        for (g, name) in ["g0", "g1", "g2"].iter().enumerate() {
            builder = builder.predicate(
                *name,
                std::mem::take(&mut labels[g]),
                std::mem::take(&mut proxies[g]),
            );
        }
        builder
            .group_key(vec!["g0".into(), "g1".into(), "g2".into()], key)
            .build()
            .unwrap()
    }

    fn max_abs_err(table: &Table, ests: &[GroupEstimate]) -> f64 {
        ests.iter()
            .map(|e| {
                let exact = table.exact_group_avg(e.group).unwrap();
                (e.estimate - exact).abs()
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn single_oracle_estimates_every_group() {
        let t = group_table(40_000, 1);
        let oracle = SingleGroupOracle::new(&t).unwrap();
        let proxies: Vec<&[f64]> =
            t.predicates().iter().map(|p| p.proxy()).collect();
        let cfg = GroupByConfig { budget: 6000, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(2);
        let ests = groupby_single_oracle(&proxies, &oracle, &cfg, &mut rng).unwrap();
        assert_eq!(ests.len(), 3);
        let err = max_abs_err(&t, &ests);
        assert!(err < 2.0, "max abs err {err}: {ests:?}");
    }

    #[test]
    fn single_oracle_label_cache_bounds_cost() {
        let t = group_table(20_000, 3);
        let oracle = SingleGroupOracle::new(&t).unwrap();
        let proxies: Vec<&[f64]> =
            t.predicates().iter().map(|p| p.proxy()).collect();
        let cfg = GroupByConfig { budget: 3000, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(4);
        let _ = groupby_single_oracle(&proxies, &oracle, &cfg, &mut rng).unwrap();
        assert!(oracle.calls() <= 3000, "spent {}", oracle.calls());
        assert!(oracle.calls() >= 1500, "spent only {}", oracle.calls());
    }

    #[test]
    fn multi_oracle_estimates_every_group() {
        let t = group_table(40_000, 5);
        let o0 = PredicateOracle::new(&t, "g0").unwrap();
        let o1 = PredicateOracle::new(&t, "g1").unwrap();
        let o2 = PredicateOracle::new(&t, "g2").unwrap();
        let oracles = vec![&o0, &o1, &o2];
        let proxies: Vec<&[f64]> =
            t.predicates().iter().map(|p| p.proxy()).collect();
        let cfg = GroupByConfig { budget: 9000, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(6);
        let ests = groupby_multi_oracle(&proxies, &oracles, &cfg, &mut rng).unwrap();
        assert_eq!(ests.len(), 3);
        let err = max_abs_err(&t, &ests);
        assert!(err < 2.0, "max abs err {err}: {ests:?}");
        let total: u64 = [&o0, &o1, &o2].iter().map(|o| o.calls()).sum();
        assert!(total <= 9000, "spent {total}");
    }

    #[test]
    fn minimax_beats_or_matches_equal_on_worst_group() {
        // The rarest group dominates the minimax error; the optimizer
        // should shift budget toward it.
        let t = group_table(40_000, 7);
        let o0 = PredicateOracle::new(&t, "g0").unwrap();
        let o1 = PredicateOracle::new(&t, "g1").unwrap();
        let o2 = PredicateOracle::new(&t, "g2").unwrap();
        let oracles = vec![&o0, &o1, &o2];
        let proxies: Vec<&[f64]> =
            t.predicates().iter().map(|p| p.proxy()).collect();
        let mut rng = StdRng::seed_from_u64(8);
        let trials = 15;
        let mut worst = |alloc: GroupAllocation| -> f64 {
            let cfg = GroupByConfig { budget: 6000, allocation: alloc, ..Default::default() };
            let mut acc: f64 = 0.0;
            for _ in 0..trials {
                let ests = groupby_multi_oracle(&proxies, &oracles, &cfg, &mut rng).unwrap();
                // Mean squared worst-group error across trials.
                let e = max_abs_err(&t, &ests);
                acc += e * e;
            }
            (acc / trials as f64).sqrt()
        };
        let minimax = worst(GroupAllocation::Minimax);
        let equal = worst(GroupAllocation::Equal);
        assert!(
            minimax <= equal * 1.25,
            "minimax {minimax} should not lose badly to equal {equal}"
        );
    }

    #[test]
    fn uniform_baselines_estimate_groups() {
        let t = group_table(30_000, 9);
        let oracle = SingleGroupOracle::new(&t).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let ests = groupby_uniform_single(t.len(), &oracle, 5000, &mut rng);
        assert_eq!(ests.len(), 3);
        assert!(max_abs_err(&t, &ests) < 2.5);

        let o0 = PredicateOracle::new(&t, "g0").unwrap();
        let o1 = PredicateOracle::new(&t, "g1").unwrap();
        let o2 = PredicateOracle::new(&t, "g2").unwrap();
        let ests = groupby_uniform_multi(t.len(), &[&o0, &o1, &o2], 9000, &mut rng);
        assert_eq!(ests.len(), 3);
        assert!(max_abs_err(&t, &ests) < 2.5);
        assert_eq!(o0.calls(), 3000);
    }

    #[test]
    fn config_validation_rejects_bad_inputs() {
        let t = group_table(1000, 11);
        let oracle = SingleGroupOracle::new(&t).unwrap();
        let proxies: Vec<&[f64]> =
            t.predicates().iter().map(|p| p.proxy()).collect();
        let mut rng = StdRng::seed_from_u64(12);
        let bad = GroupByConfig { strata: 0, ..Default::default() };
        assert!(matches!(
            groupby_single_oracle(&proxies, &oracle, &bad, &mut rng),
            Err(GroupByError::Config(ConfigError::ZeroStrata))
        ));
        assert!(matches!(
            groupby_single_oracle(&[], &oracle, &GroupByConfig::default(), &mut rng),
            Err(GroupByError::NoGroups)
        ));
        // Group mismatch: two proxies, three oracle groups.
        assert!(matches!(
            groupby_single_oracle(
                &proxies[..2],
                &oracle,
                &GroupByConfig::default(),
                &mut rng
            ),
            Err(GroupByError::GroupMismatch { proxies: 2, oracles: 3 })
        ));
    }

    #[test]
    fn solve_allocation_equalizes_known_errors() {
        // Diagonal errors (multi-oracle shape): err_g/λ_g equalized ⇒
        // λ_g ∝ err_g.
        let err = vec![
            vec![4.0, f64::INFINITY, f64::INFINITY],
            vec![f64::INFINITY, 1.0, f64::INFINITY],
            vec![f64::INFINITY, f64::INFINITY, 1.0],
        ];
        let lambda = solve_allocation(&err, 1000, GroupAllocation::Minimax);
        assert!((lambda[0] - 4.0 / 6.0).abs() < 0.02, "{lambda:?}");
        assert!((lambda[1] - 1.0 / 6.0).abs() < 0.02, "{lambda:?}");
    }
}

#[cfg(test)]
mod ci_tests {
    use super::*;
    use crate::config::BootstrapConfig;
    use abae_data::{PredicateOracle, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_group_table(n: usize, seed: u64) -> Table {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut key = Vec::with_capacity(n);
        let mut labels: Vec<Vec<bool>> = vec![Vec::new(), Vec::new()];
        let mut proxies: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let u: f64 = rng.gen();
            let group =
                if u < 0.12 { Some(0u16) } else if u < 0.3 { Some(1) } else { None };
            key.push(group);
            for g in 0..2u16 {
                let member = group == Some(g);
                labels[g as usize].push(member);
                proxies[g as usize]
                    .push(if member { rng.gen_range(0.6..1.0) } else { rng.gen_range(0.0..0.4) });
            }
            values.push(match group {
                Some(0) => 10.0 + rng.gen_range(-1.0..1.0),
                Some(1) => 25.0 + rng.gen_range(-1.0..1.0),
                _ => 0.0,
            });
        }
        Table::builder("two", values)
            .predicate("g0", std::mem::take(&mut labels[0]), std::mem::take(&mut proxies[0]))
            .predicate("g1", std::mem::take(&mut labels[1]), std::mem::take(&mut proxies[1]))
            .group_key(vec!["g0".into(), "g1".into()], key)
            .build()
            .unwrap()
    }

    #[test]
    fn per_group_cis_bracket_estimates_and_cover_truth() {
        let t = two_group_table(30_000, 1);
        let o0 = PredicateOracle::new(&t, "g0").unwrap();
        let o1 = PredicateOracle::new(&t, "g1").unwrap();
        let proxies: Vec<&[f64]> =
            t.predicates().iter().map(|p| p.proxy()).collect();
        let cfg = GroupByConfig { budget: 6000, ..Default::default() };
        let bs = BootstrapConfig { trials: 300, alpha: 0.05 };
        let mut rng = StdRng::seed_from_u64(2);
        let mut covered = [0usize; 2];
        let trials = 20;
        for _ in 0..trials {
            let ests =
                groupby_multi_oracle_with_ci(&proxies, &[&o0, &o1], &cfg, &bs, &mut rng)
                    .unwrap();
            assert_eq!(ests.len(), 2);
            for e in &ests {
                let ci = e.ci.expect("samples are non-empty");
                assert!(ci.lo <= e.estimate && e.estimate <= ci.hi);
                let exact = t.exact_group_avg(e.group).unwrap();
                if ci.contains(exact) {
                    covered[e.group as usize] += 1;
                }
            }
        }
        for (g, &c) in covered.iter().enumerate() {
            assert!(c >= 16, "group {g} coverage {c}/{trials}");
        }
    }

    #[test]
    fn single_oracle_with_ci_matches_plain_variant_and_brackets() {
        let t = two_group_table(30_000, 5);
        let oracle = abae_data::SingleGroupOracle::new(&t).unwrap();
        let proxies: Vec<&[f64]> =
            t.predicates().iter().map(|p| p.proxy()).collect();
        let cfg = GroupByConfig { budget: 5000, ..Default::default() };
        let bs = BootstrapConfig { trials: 300, alpha: 0.05 };
        // Same RNG stream → identical sampling; the CI variant appends the
        // bootstrap afterwards without extra oracle spend.
        let mut rng = StdRng::seed_from_u64(6);
        let plain = groupby_single_oracle(&proxies, &oracle, &cfg, &mut rng).unwrap();
        let spent = oracle.calls();
        let mut rng = StdRng::seed_from_u64(6);
        let with_ci =
            groupby_single_oracle_with_ci(&proxies, &oracle, &cfg, &bs, &mut rng).unwrap();
        assert_eq!(oracle.calls(), 2 * spent, "bootstrap must not charge the oracle");
        for (a, b) in plain.iter().zip(&with_ci) {
            assert_eq!(a.group, b.group);
            assert_eq!(a.estimate, b.estimate);
            let ci = b.ci.expect("non-empty groups");
            assert!(
                ci.lo <= b.estimate && b.estimate <= ci.hi,
                "group {}: [{}, {}] vs {}",
                b.group,
                ci.lo,
                ci.hi,
                b.estimate
            );
            let exact = t.exact_group_avg(b.group).unwrap();
            assert!(
                (ci.lo - 3.0..=ci.hi + 3.0).contains(&exact),
                "group {} CI [{}, {}] far from truth {exact}",
                b.group,
                ci.lo,
                ci.hi
            );
        }
    }

    #[test]
    fn single_oracle_with_ci_rejects_bad_alpha() {
        let t = two_group_table(1_000, 7);
        let oracle = abae_data::SingleGroupOracle::new(&t).unwrap();
        let proxies: Vec<&[f64]> =
            t.predicates().iter().map(|p| p.proxy()).collect();
        let mut rng = StdRng::seed_from_u64(8);
        let bs = BootstrapConfig { trials: 10, alpha: 0.0 };
        assert!(matches!(
            groupby_single_oracle_with_ci(&proxies, &oracle, &GroupByConfig::default(), &bs, &mut rng),
            Err(GroupByError::Config(ConfigError::BadAlpha(_)))
        ));
    }

    #[test]
    fn progressive_final_snapshot_matches_blocking_with_ci() {
        let t = two_group_table(8_000, 9);
        let oracle = abae_data::SingleGroupOracle::new(&t).unwrap();
        let proxies: Vec<&[f64]> =
            t.predicates().iter().map(|p| p.proxy()).collect();
        let cfg = GroupByConfig { budget: 600, ..Default::default() };
        let bs = BootstrapConfig { trials: 20, alpha: 0.05 };
        let mut rng = StdRng::seed_from_u64(11);
        let blocking =
            groupby_single_oracle_with_ci(&proxies, &oracle, &cfg, &bs, &mut rng).unwrap();
        for chunk in [1usize, 50, 4096] {
            let before = oracle.calls();
            let mut rng = StdRng::seed_from_u64(11);
            let opts = ProgressiveOptions { chunk: Some(chunk), target_ci_width: None };
            let mut snaps: Vec<GroupSnapshot> = Vec::new();
            let result = groupby_single_oracle_progressive(
                &proxies,
                &oracle,
                &cfg,
                &bs,
                &opts,
                &mut rng,
                |s| snaps.push(s.clone()),
            )
            .unwrap();
            assert_eq!(result.groups, blocking, "chunk {chunk}");
            assert_eq!(result.oracle_calls, oracle.calls() - before, "chunk {chunk}");
            let last = snaps.last().unwrap();
            assert!(last.done);
            assert_eq!(last.groups, blocking, "chunk {chunk}");
            assert_eq!(last.budget_spent, result.oracle_calls);
            assert!(snaps.iter().rev().skip(1).all(|s| !s.done));
            assert!(snaps.windows(2).all(|w| w[0].budget_spent <= w[1].budget_spent));
        }
    }

    #[test]
    fn progressive_early_stop_spends_less_and_meets_target() {
        let t = two_group_table(30_000, 13);
        let oracle = abae_data::SingleGroupOracle::new(&t).unwrap();
        let proxies: Vec<&[f64]> =
            t.predicates().iter().map(|p| p.proxy()).collect();
        let cfg = GroupByConfig { budget: 4000, ..Default::default() };
        let bs = BootstrapConfig { trials: 60, alpha: 0.05 };
        let opts = ProgressiveOptions { chunk: Some(100), target_ci_width: Some(3.0) };
        let mut rng = StdRng::seed_from_u64(14);
        let mut snaps: Vec<GroupSnapshot> = Vec::new();
        let result = groupby_single_oracle_progressive(
            &proxies,
            &oracle,
            &cfg,
            &bs,
            &opts,
            &mut rng,
            |s| snaps.push(s.clone()),
        )
        .unwrap();
        assert!(result.oracle_calls < 4000, "spent {}", result.oracle_calls);
        assert_eq!(oracle.calls(), result.oracle_calls);
        let last = snaps.last().unwrap();
        assert!(last.done);
        assert_eq!(last.groups, result.groups);
        for e in &result.groups {
            let ci = e.ci.expect("stopping snapshot has CIs for every group");
            assert!(ci.width() < 3.0, "group {} width {}", e.group, ci.width());
        }
    }

    #[test]
    fn progressive_rejects_bad_targets() {
        let t = two_group_table(1_000, 15);
        let oracle = abae_data::SingleGroupOracle::new(&t).unwrap();
        let proxies: Vec<&[f64]> =
            t.predicates().iter().map(|p| p.proxy()).collect();
        let bs = BootstrapConfig { trials: 10, alpha: 0.05 };
        for w in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            let opts = ProgressiveOptions { chunk: None, target_ci_width: Some(w) };
            let mut rng = StdRng::seed_from_u64(16);
            let err = groupby_single_oracle_progressive(
                &proxies,
                &oracle,
                &GroupByConfig::default(),
                &bs,
                &opts,
                &mut rng,
                |_| {},
            )
            .unwrap_err();
            assert!(matches!(err, GroupByError::Config(ConfigError::BadTargetWidth(_))));
        }
    }

    #[test]
    fn with_ci_point_estimates_match_plain_variant() {
        let t = two_group_table(20_000, 3);
        let o0 = PredicateOracle::new(&t, "g0").unwrap();
        let o1 = PredicateOracle::new(&t, "g1").unwrap();
        let proxies: Vec<&[f64]> =
            t.predicates().iter().map(|p| p.proxy()).collect();
        let cfg = GroupByConfig { budget: 3000, ..Default::default() };
        let bs = BootstrapConfig { trials: 50, alpha: 0.05 };
        // Same RNG stream → the sampling phase must be identical; the CI
        // variant merely appends bootstrap draws afterwards.
        let mut rng = StdRng::seed_from_u64(4);
        let plain = groupby_multi_oracle(&proxies, &[&o0, &o1], &cfg, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let with_ci =
            groupby_multi_oracle_with_ci(&proxies, &[&o0, &o1], &cfg, &bs, &mut rng).unwrap();
        for (a, b) in plain.iter().zip(&with_ci) {
            assert_eq!(a.group, b.group);
            assert_eq!(a.estimate, b.estimate);
        }
    }
}
