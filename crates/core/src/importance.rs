//! Proxy-weighted importance sampling baseline (Hansen–Hurwitz).
//!
//! §4.2 notes that ABae's optimal allocation "downweights the standard
//! importance sampling allocation by a factor of √p_k". This module
//! implements that *standard* alternative as an additional baseline: draw
//! records with replacement with probability proportional to the proxy
//! score (mixed with a uniform floor ε so every record stays reachable),
//! then estimate with the Hansen–Hurwitz reweighting
//!
//! ```text
//! SUM: (1/m) Σ_j  f(x_j)·1[O(x_j)] / q(x_j)
//! COUNT: (1/m) Σ_j 1[O(x_j)] / q(x_j)
//! AVG = SUM / COUNT (self-normalized ratio estimator)
//! ```
//!
//! where `q(x)` is the per-draw probability. Unbiased for SUM/COUNT and
//! consistent for AVG, *regardless of proxy quality* — like ABae, the
//! proxy only affects variance. The `baseline_importance` bench compares
//! Uniform vs Importance vs ABae.

use crate::config::Aggregate;
use abae_data::Oracle;
use abae_sampling::weighted::{WeightedSampler, WeightError};
use rand::Rng;

/// Result of an importance-sampling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceResult {
    /// Point estimate.
    pub estimate: f64,
    /// Oracle invocations spent.
    pub oracle_calls: u64,
}

/// Runs the importance-sampling baseline with proxy-proportional draws.
///
/// `epsilon` is the uniform mixing floor: draw probabilities are
/// proportional to `(1 − ε)·score/Σscore + ε/n`. `ε = 0.1` is a robust
/// default; `ε = 1` degenerates to uniform sampling with replacement.
pub fn run_importance<O: Oracle, R: Rng + ?Sized>(
    proxy_scores: &[f64],
    oracle: &O,
    budget: usize,
    agg: Aggregate,
    epsilon: f64,
    rng: &mut R,
) -> Result<ImportanceResult, WeightError> {
    let n = proxy_scores.len();
    let eps = epsilon.clamp(0.0, 1.0);
    let score_total: f64 = proxy_scores.iter().map(|&s| s.max(0.0)).sum();
    let weights: Vec<f64> = if score_total > 0.0 {
        proxy_scores
            .iter()
            .map(|&s| (1.0 - eps) * s.max(0.0) / score_total + eps / n as f64)
            .collect()
    } else {
        vec![1.0 / n as f64; n]
    };
    let sampler = WeightedSampler::new(&weights)?;

    let calls_before = oracle.calls();
    let mut sum_term = 0.0;
    let mut count_term = 0.0;
    for _ in 0..budget {
        let i = sampler.draw(rng);
        let q = sampler.probability(i);
        let labeled = oracle.label(i);
        if labeled.matches {
            // Hansen–Hurwitz: each draw contributes 1/(m·q).
            count_term += 1.0 / q;
            sum_term += labeled.value / q;
        }
    }
    let m = budget.max(1) as f64;
    let estimate = match agg {
        Aggregate::Sum => sum_term / m,
        Aggregate::Count => count_term / m,
        Aggregate::Avg => {
            if count_term > 0.0 {
                sum_term / count_term
            } else {
                0.0
            }
        }
    };
    Ok(ImportanceResult { estimate, oracle_calls: oracle.calls() - calls_before })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_data::{FnOracle, Labeled};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(n: usize, seed: u64) -> (Vec<f64>, Vec<bool>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let q: f64 = rng.gen::<f64>().powi(2);
            scores.push(q);
            labels.push(rng.gen::<f64>() < q);
            values.push(2.0 + 5.0 * q + rng.gen_range(-0.5..0.5));
        }
        (scores, labels, values)
    }

    fn exact(labels: &[bool], values: &[f64], agg: Aggregate) -> f64 {
        let (mut s, mut c) = (0.0, 0usize);
        for (i, &l) in labels.iter().enumerate() {
            if l {
                s += values[i];
                c += 1;
            }
        }
        match agg {
            Aggregate::Sum => s,
            Aggregate::Count => c as f64,
            Aggregate::Avg => s / c as f64,
        }
    }

    #[test]
    fn estimates_are_consistent_for_all_aggregates() {
        let n = 30_000;
        let (scores, labels, values) = population(n, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for agg in [Aggregate::Avg, Aggregate::Sum, Aggregate::Count] {
            let truth = exact(&labels, &values, agg);
            let oracle = {
                let labels = labels.clone();
                let values = values.clone();
                FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] })
            };
            let mut ests = Vec::new();
            for _ in 0..30 {
                let r = run_importance(&scores, &oracle, 3000, agg, 0.1, &mut rng).unwrap();
                assert_eq!(r.oracle_calls, 3000);
                ests.push(r.estimate);
            }
            let mean: f64 = ests.iter().sum::<f64>() / ests.len() as f64;
            assert!(
                (mean - truth).abs() / truth.abs().max(1.0) < 0.05,
                "{agg:?}: mean {mean} vs truth {truth}"
            );
        }
    }

    #[test]
    fn informative_proxy_reduces_count_variance_vs_uniform_weights() {
        // For COUNT with a proxy correlated to the predicate, importance
        // weighting should beat ε=1 (uniform-with-replacement).
        let n = 30_000;
        let (scores, labels, values) = population(n, 3);
        let truth = exact(&labels, &values, Aggregate::Count);
        let oracle = {
            let labels = labels.clone();
            let values = values.clone();
            FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] })
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut rmse_for = |eps: f64| {
            let mut errs = Vec::new();
            // Enough trials that the RMSE gap dominates Monte-Carlo noise;
            // at 60 trials the comparison is seed-sensitive.
            for _ in 0..240 {
                let r =
                    run_importance(&scores, &oracle, 1000, Aggregate::Count, eps, &mut rng)
                        .unwrap();
                errs.push(r.estimate - truth);
            }
            (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt()
        };
        let weighted = rmse_for(0.1);
        let uniform = rmse_for(1.0);
        assert!(weighted < uniform, "weighted {weighted} vs uniform {uniform}");
    }

    #[test]
    fn zero_proxy_scores_fall_back_to_uniform() {
        let scores = vec![0.0; 1000];
        let oracle = FnOracle::new(|i| Labeled { matches: i % 2 == 0, value: 1.0 });
        let mut rng = StdRng::seed_from_u64(5);
        let r = run_importance(&scores, &oracle, 500, Aggregate::Count, 0.1, &mut rng).unwrap();
        assert!((r.estimate - 500.0).abs() < 120.0, "count {}", r.estimate);
    }

    #[test]
    fn all_negative_population_estimates_zero_avg() {
        let scores: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let oracle = FnOracle::new(|_| Labeled { matches: false, value: 9.0 });
        let mut rng = StdRng::seed_from_u64(6);
        let r = run_importance(&scores, &oracle, 200, Aggregate::Avg, 0.1, &mut rng).unwrap();
        assert_eq!(r.estimate, 0.0);
    }
}
