//! # ABae core — aggregation queries with expensive predicates
//!
//! This crate implements the primary contribution of *Kang, Guibas, Bailis,
//! Hashimoto, Sun, Zaharia: Accelerating Approximate Aggregation Queries
//! with Expensive Predicates* (VLDB 2021): a two-stage stratified sampling
//! algorithm (**ABae**) that answers `AVG` / `SUM` / `COUNT` queries whose
//! predicate requires an expensive oracle (a DNN or human labeler), using a
//! cheap proxy score per record to stratify, under a hard oracle-invocation
//! budget and with bootstrap confidence intervals.
//!
//! Module map (paper section in parentheses):
//!
//! * [`config`] — query configuration: strata count `K`, budget `N`,
//!   Stage-1 fraction `C`, sample-reuse and rounding toggles (§3.1).
//! * [`strata`] — stratification by proxy-score quantile (`ABaeInit`).
//! * [`allocation`] — the optimal allocation `T*_k ∝ √p_k·σ_k`
//!   (Proposition 1).
//! * [`error_model`] — the closed-form MSE of the optimal allocation
//!   (Proposition 2), used for proxy selection and group-by allocation.
//! * [`estimator`] — per-stratum plug-in estimates `p̂_k, μ̂_k, σ̂_k` and
//!   the combined estimator `Σ p̂_k μ̂_k / Σ p̂_k` (Algorithm 1 lines 9–20).
//! * [`two_stage`] — the two-stage sampling algorithm (`ABaeSample`),
//!   blocking and anytime (progressive snapshots with early stop).
//! * [`stratum_stats`] — mergeable per-stratum sufficient statistics, the
//!   commutative monoid behind snapshots and chunked ingest.
//! * [`pipeline`] — batch-parallel oracle labeling with deterministic
//!   ordering; every algorithm labels its draws through it.
//! * [`batcher`] — cross-session coalescing of labeling requests into
//!   shared oracle invocations, with fair-share admission (the engine's
//!   multi-tenant governor).
//! * [`bootstrap`] — stratified bootstrap CIs over both stages
//!   (Algorithm 2).
//! * [`uniform`] — the uniform-sampling baseline every experiment compares
//!   against.
//! * [`multipred`] — ABae-MultiPred: boolean predicate expressions with
//!   proxy-score combination (§3.3).
//! * [`groupby`] — ABae-GroupBy: minimax allocation across per-group
//!   stratifications, single- and multiple-oracle settings (§3.2, §4.5).
//! * [`proxy_select`] — proxy selection by plug-in optimal MSE (§3.4).
//! * [`proxy_combine`] — proxy combination via logistic regression (§3.4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod allocation;
pub mod batcher;
pub mod bootstrap;
pub mod config;
pub mod error_model;
pub mod estimator;
pub mod groupby;
pub mod importance;
pub mod multipred;
pub mod normal_ci;
pub mod pipeline;
pub mod proxy_combine;
pub mod proxy_select;
pub mod strata;
pub mod stratum_stats;
pub mod two_stage;
pub mod uniform;

pub use batcher::{BatcherOptions, BatcherStats, GovernedOracle, OracleBatcher};
pub use config::{Aggregate, AbaeConfig, BootstrapConfig, ConfigError, Rounding, SampleReuse};
pub use estimator::{combine_estimate, StratumEstimate};
pub use pipeline::ExecOptions;
pub use strata::Stratification;
pub use stratum_stats::{merge_states, StratumStats, TaggedDraw};
pub use two_stage::{
    run_abae, run_abae_multi_progressive, run_abae_multi_with_ci, run_abae_with_ci, AbaeResult,
    AggAnswer, MultiAggResult, ProgressiveOptions, Snapshot, TwoStageRun,
};
pub use uniform::{run_uniform, run_uniform_with_ci};
