//! ABae-MultiPred: queries with boolean combinations of predicates (§3.3).
//!
//! Each constituent predicate has its own oracle column and proxy scores.
//! ABae-MultiPred combines the per-predicate proxy scores into a single
//! per-record score by treating them as (approximately calibrated)
//! probabilities:
//!
//! * negation → `1 − s`
//! * conjunction → `s₁ · s₂` (independence approximation)
//! * disjunction → `max(s₁, s₂)`
//!
//! The whole expression is evaluated by *one* oracle invocation per record
//! (the expensive DNN pass extracts everything needed), so ABae runs
//! unchanged on the combined score with an expression oracle.

use crate::config::{AbaeConfig, Aggregate, ConfigError};
use crate::two_stage::{run_abae_with_ci, AbaeResult};
use abae_data::columnar::Bitmap;
use abae_data::{FnOracle, Labeled, Table, TableError};
use rand::Rng;

/// A boolean expression over predicate indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredExpr {
    /// A leaf predicate, by index into the query's predicate list.
    Pred(usize),
    /// Logical negation.
    Not(Box<PredExpr>),
    /// Logical conjunction.
    And(Box<PredExpr>, Box<PredExpr>),
    /// Logical disjunction.
    Or(Box<PredExpr>, Box<PredExpr>),
}

impl PredExpr {
    /// Leaf constructor.
    pub fn pred(i: usize) -> Self {
        PredExpr::Pred(i)
    }

    /// Negation constructor.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: PredExpr) -> Self {
        PredExpr::Not(Box::new(e))
    }

    /// Conjunction constructor.
    pub fn and(a: PredExpr, b: PredExpr) -> Self {
        PredExpr::And(Box::new(a), Box::new(b))
    }

    /// Disjunction constructor.
    pub fn or(a: PredExpr, b: PredExpr) -> Self {
        PredExpr::Or(Box::new(a), Box::new(b))
    }

    /// Largest predicate index referenced, or `None` for an impossible
    /// empty expression (unreachable through the constructors).
    pub fn max_pred_index(&self) -> usize {
        match self {
            PredExpr::Pred(i) => *i,
            PredExpr::Not(e) => e.max_pred_index(),
            PredExpr::And(a, b) | PredExpr::Or(a, b) => {
                a.max_pred_index().max(b.max_pred_index())
            }
        }
    }

    /// Combined proxy score for record `i` (§3.3 substitution rules).
    pub fn score_at(&self, proxies: &[&[f64]], i: usize) -> f64 {
        match self {
            PredExpr::Pred(p) => proxies[*p][i],
            PredExpr::Not(e) => 1.0 - e.score_at(proxies, i),
            PredExpr::And(a, b) => a.score_at(proxies, i) * b.score_at(proxies, i),
            PredExpr::Or(a, b) => a.score_at(proxies, i).max(b.score_at(proxies, i)),
        }
    }

    /// Combined proxy scores for all records.
    ///
    /// # Panics
    /// Panics if `proxies` is empty, a referenced index is out of range, or
    /// the score vectors have unequal lengths.
    pub fn combined_scores(&self, proxies: &[&[f64]]) -> Vec<f64> {
        assert!(!proxies.is_empty(), "need at least one proxy");
        let n = proxies[0].len();
        assert!(proxies.iter().all(|p| p.len() == n), "proxy lengths must match");
        assert!(self.max_pred_index() < proxies.len(), "predicate index out of range");
        (0..n).map(|i| self.score_at(proxies, i)).collect()
    }

    /// Vectorized [`PredExpr::combined_scores`]: one tight column loop per
    /// expression node instead of a recursive descent per record. Applies
    /// the identical float operation per element in the identical
    /// association order, so the output is **bit-identical** to the scalar
    /// path (pinned by tests).
    ///
    /// # Panics
    /// Same contract as [`PredExpr::combined_scores`].
    pub fn combined_scores_vec(&self, proxies: &[&[f64]]) -> Vec<f64> {
        assert!(!proxies.is_empty(), "need at least one proxy");
        let n = proxies[0].len();
        assert!(proxies.iter().all(|p| p.len() == n), "proxy lengths must match");
        assert!(self.max_pred_index() < proxies.len(), "predicate index out of range");
        self.scores_column(proxies)
    }

    /// Per-node columnar evaluation (invariants checked by the caller).
    fn scores_column(&self, proxies: &[&[f64]]) -> Vec<f64> {
        match self {
            PredExpr::Pred(p) => proxies[*p].to_vec(),
            PredExpr::Not(e) => {
                let mut v = e.scores_column(proxies);
                for s in &mut v {
                    *s = 1.0 - *s;
                }
                v
            }
            PredExpr::And(a, b) => {
                let mut va = a.scores_column(proxies);
                let vb = b.scores_column(proxies);
                for (x, y) in va.iter_mut().zip(&vb) {
                    *x *= y;
                }
                va
            }
            PredExpr::Or(a, b) => {
                let mut va = a.scores_column(proxies);
                let vb = b.scores_column(proxies);
                for (x, y) in va.iter_mut().zip(&vb) {
                    *x = x.max(*y);
                }
                va
            }
        }
    }

    /// Evaluates the expression given per-predicate truth values.
    pub fn evaluate(&self, truth: &dyn Fn(usize) -> bool) -> bool {
        match self {
            PredExpr::Pred(p) => truth(*p),
            PredExpr::Not(e) => !e.evaluate(truth),
            PredExpr::And(a, b) => a.evaluate(truth) && b.evaluate(truth),
            PredExpr::Or(a, b) => a.evaluate(truth) || b.evaluate(truth),
        }
    }

    /// Evaluates the expression over whole packed label columns at once:
    /// word-wise `AND`/`OR`/`NOT` over the bitmaps (~64 records per
    /// operation), equivalent bit-for-bit to calling
    /// [`PredExpr::evaluate`] per record.
    ///
    /// # Panics
    /// Panics if `labels` is empty, a referenced index is out of range, or
    /// the bitmaps have unequal lengths.
    pub fn eval_bitmap(&self, labels: &[&Bitmap]) -> Bitmap {
        assert!(!labels.is_empty(), "need at least one label column");
        assert!(self.max_pred_index() < labels.len(), "predicate index out of range");
        match self {
            PredExpr::Pred(p) => labels[*p].clone(),
            PredExpr::Not(e) => e.eval_bitmap(labels).not(),
            PredExpr::And(a, b) => a.eval_bitmap(labels).and(&b.eval_bitmap(labels)),
            PredExpr::Or(a, b) => a.eval_bitmap(labels).or(&b.eval_bitmap(labels)),
        }
    }
}

/// Builds the expression's combined proxy scores from a table's predicate
/// columns (in table order).
pub fn table_combined_scores(table: &Table, expr: &PredExpr) -> Result<Vec<f64>, TableError> {
    let proxies: Vec<&[f64]> = table.predicates().iter().map(|p| p.proxy()).collect();
    if expr.max_pred_index() >= proxies.len() {
        return Err(TableError::UnknownPredicate(format!(
            "predicate index {} out of range",
            expr.max_pred_index()
        )));
    }
    Ok(expr.combined_scores_vec(&proxies))
}

/// Builds a one-invocation-per-record oracle evaluating `expr` against the
/// table's ground-truth labels. The expression's truth column is computed
/// once up front with word-wise bitmap operations
/// ([`PredExpr::eval_bitmap`]); each charged oracle call then reads one
/// bit instead of re-walking the expression tree.
pub fn expression_oracle<'a>(
    table: &'a Table,
    expr: &'a PredExpr,
) -> Result<FnOracle<impl Fn(usize) -> Labeled + 'a>, TableError> {
    if expr.max_pred_index() >= table.predicates().len() {
        return Err(TableError::UnknownPredicate(format!(
            "predicate index {} out of range",
            expr.max_pred_index()
        )));
    }
    let labels: Vec<&Bitmap> = table.predicates().iter().map(|p| p.labels().bitmap()).collect();
    let truth = expr.eval_bitmap(&labels);
    Ok(FnOracle::new(move |i: usize| Labeled {
        matches: truth.get(i),
        value: table.statistic(i),
    }))
}

/// Runs ABae-MultiPred end to end on a table: combine scores, build the
/// expression oracle, run Algorithm 1 + bootstrap CI.
pub fn run_multipred<R: Rng + ?Sized>(
    table: &Table,
    expr: &PredExpr,
    config: &AbaeConfig,
    agg: Aggregate,
    rng: &mut R,
) -> Result<AbaeResult, MultiPredError> {
    let scores = table_combined_scores(table, expr).map_err(MultiPredError::Table)?;
    let oracle = expression_oracle(table, expr).map_err(MultiPredError::Table)?;
    run_abae_with_ci(&scores, &oracle, config, agg, rng).map_err(MultiPredError::Config)
}

/// Errors from multi-predicate execution.
#[derive(Debug)]
pub enum MultiPredError {
    /// Expression refers to predicates the table does not have.
    Table(TableError),
    /// Invalid ABae configuration.
    Config(ConfigError),
}

impl std::fmt::Display for MultiPredError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiPredError::Table(e) => write!(f, "table: {e}"),
            MultiPredError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for MultiPredError {}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_data::Oracle as _;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn score_combination_rules() {
        let p0 = [0.8, 0.2];
        let p1 = [0.5, 0.9];
        let proxies: Vec<&[f64]> = vec![&p0, &p1];

        let and = PredExpr::and(PredExpr::pred(0), PredExpr::pred(1));
        let got = and.combined_scores(&proxies);
        assert!((got[0] - 0.4).abs() < 1e-12 && (got[1] - 0.18).abs() < 1e-12);

        let or = PredExpr::or(PredExpr::pred(0), PredExpr::pred(1));
        assert_eq!(or.combined_scores(&proxies), vec![0.8, 0.9]);

        let not = PredExpr::not(PredExpr::pred(0));
        let got = not.combined_scores(&proxies);
        assert!((got[0] - 0.2).abs() < 1e-12 && (got[1] - 0.8).abs() < 1e-12);

        // Nested: ¬(p0 ∧ p1).
        let nested = PredExpr::not(PredExpr::and(PredExpr::pred(0), PredExpr::pred(1)));
        let got = nested.combined_scores(&proxies);
        assert!((got[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn evaluate_matches_boolean_semantics() {
        // Truth table over two predicates.
        for a in [false, true] {
            for b in [false, true] {
                let truth = |p: usize| if p == 0 { a } else { b };
                assert_eq!(
                    PredExpr::and(PredExpr::pred(0), PredExpr::pred(1)).evaluate(&truth),
                    a && b
                );
                assert_eq!(
                    PredExpr::or(PredExpr::pred(0), PredExpr::pred(1)).evaluate(&truth),
                    a || b
                );
                assert_eq!(PredExpr::not(PredExpr::pred(0)).evaluate(&truth), !a);
                // De Morgan: ¬(a ∧ b) == ¬a ∨ ¬b.
                let lhs = PredExpr::not(PredExpr::and(PredExpr::pred(0), PredExpr::pred(1)));
                let rhs = PredExpr::or(
                    PredExpr::not(PredExpr::pred(0)),
                    PredExpr::not(PredExpr::pred(1)),
                );
                assert_eq!(lhs.evaluate(&truth), rhs.evaluate(&truth));
            }
        }
    }

    fn two_pred_table(n: usize) -> Table {
        let labels_a: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let labels_b: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let proxy_a: Vec<f64> = labels_a.iter().map(|&l| if l { 0.9 } else { 0.1 }).collect();
        let proxy_b: Vec<f64> = labels_b.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        Table::builder("two", values)
            .predicate("a", labels_a, proxy_a)
            .predicate("b", labels_b, proxy_b)
            .build()
            .unwrap()
    }

    #[test]
    fn vectorized_scores_bit_identical_to_scalar() {
        // Irrational-ish scores exercise float ops where association
        // order matters; the vectorized path must match bit-for-bit.
        let n = 1000;
        let p0: Vec<f64> = (0..n).map(|i| ((i as f64 * 0.731).sin() + 1.0) / 2.0).collect();
        let p1: Vec<f64> = (0..n).map(|i| ((i as f64 * 1.339).cos() + 1.0) / 2.0).collect();
        let p2: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let proxies: Vec<&[f64]> = vec![&p0, &p1, &p2];
        let exprs = [
            PredExpr::pred(1),
            PredExpr::not(PredExpr::pred(2)),
            PredExpr::and(PredExpr::pred(0), PredExpr::pred(1)),
            PredExpr::or(
                PredExpr::and(PredExpr::pred(0), PredExpr::not(PredExpr::pred(1))),
                PredExpr::and(PredExpr::pred(2), PredExpr::pred(1)),
            ),
            PredExpr::not(PredExpr::or(
                PredExpr::not(PredExpr::pred(0)),
                PredExpr::and(PredExpr::pred(1), PredExpr::pred(2)),
            )),
        ];
        for expr in &exprs {
            let scalar = expr.combined_scores(&proxies);
            let vector = expr.combined_scores_vec(&proxies);
            assert_eq!(
                scalar.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                vector.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "bitwise mismatch for {expr:?}"
            );
        }
    }

    #[test]
    fn eval_bitmap_matches_per_record_evaluate() {
        let l0: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
        let l1: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let b0 = Bitmap::from_bools(&l0);
        let b1 = Bitmap::from_bools(&l1);
        let labels = vec![&b0, &b1];
        let exprs = [
            PredExpr::pred(0),
            PredExpr::not(PredExpr::pred(1)),
            PredExpr::and(PredExpr::pred(0), PredExpr::pred(1)),
            PredExpr::or(PredExpr::not(PredExpr::pred(0)), PredExpr::pred(1)),
            PredExpr::not(PredExpr::and(
                PredExpr::or(PredExpr::pred(0), PredExpr::pred(1)),
                PredExpr::not(PredExpr::pred(0)),
            )),
        ];
        for expr in &exprs {
            let bm = expr.eval_bitmap(&labels);
            for i in 0..200 {
                let truth = |p: usize| if p == 0 { l0[i] } else { l1[i] };
                assert_eq!(bm.get(i), expr.evaluate(&truth), "{expr:?} at {i}");
            }
        }
    }

    #[test]
    fn expression_oracle_counts_one_call_per_record() {
        let t = two_pred_table(100);
        let expr = PredExpr::and(PredExpr::pred(0), PredExpr::pred(1));
        let oracle = expression_oracle(&t, &expr).unwrap();
        let l = oracle.label(0);
        assert!(l.matches); // 0 % 2 == 0 && 0 % 3 == 0
        let l = oracle.label(2);
        assert!(!l.matches); // 2 % 3 != 0
        assert_eq!(oracle.calls(), 2);
    }

    #[test]
    fn out_of_range_predicate_index_errors() {
        let t = two_pred_table(10);
        let expr = PredExpr::pred(5);
        assert!(expression_oracle(&t, &expr).is_err());
        assert!(table_combined_scores(&t, &expr).is_err());
    }

    #[test]
    fn run_multipred_estimates_conjunction_average() {
        let n = 30_000;
        let t = two_pred_table(n);
        // Exact answer: avg of values where i%2==0 && i%3==0, i.e. i%6==0.
        let exact = {
            let (mut s, mut c) = (0.0, 0);
            for i in (0..n).step_by(6) {
                s += (i % 5) as f64;
                c += 1;
            }
            s / c as f64
        };
        let expr = PredExpr::and(PredExpr::pred(0), PredExpr::pred(1));
        let cfg = AbaeConfig { budget: 3000, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let mut errs = Vec::new();
        for _ in 0..20 {
            let r = run_multipred(&t, &expr, &cfg, Aggregate::Avg, &mut rng).unwrap();
            errs.push(r.estimate - exact);
            assert!(r.ci.is_some());
        }
        let rmse = (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt();
        assert!(rmse < 0.15, "rmse {rmse} against exact {exact}");
    }
}
