//! Closed-form (CLT / delta-method) confidence intervals.
//!
//! The paper uses the nonparametric bootstrap (Algorithm 2) for CIs and
//! notes it costs as much CPU as ~2,500 oracle calls (§3.1). For very tight
//! latency budgets a closed-form interval is useful; this module derives
//! one with the delta method and compares against the bootstrap in the
//! `ablation_ci` bench.
//!
//! For `AVG`, the estimator is the ratio `μ̂ = Σ_k s_k p̂_k μ̂_k / Σ_k s_k
//! p̂_k`. First-order propagation through `(p̂_k, μ̂_k)` gives
//!
//! ```text
//! Var(μ̂) ≈ Σ_k w_k² σ̂²_k / B_k
//!         + Σ_k (s_k/W)² (μ̂_k − μ̂)² p̂_k(1−p̂_k) / n_k
//! ```
//!
//! with `w_k = s_k p̂_k / W`, `W = Σ s_j p̂_j`, `B_k` positive draws and
//! `n_k` total draws in stratum `k` — the first term is the within-stratum
//! mean noise, the second the weight noise from estimating `p_k`. `COUNT`
//! and `SUM` are plain linear combinations with binomial/product variances.

use crate::config::Aggregate;
use crate::estimator::StratumEstimate;
use abae_stats::bootstrap::ConfidenceInterval;
use abae_stats::special::normal_quantile;

/// Delta-method variance of the combined estimator.
fn estimator_variance(agg: Aggregate, strata: &[StratumEstimate]) -> Option<f64> {
    let w_total: f64 = strata.iter().map(|s| s.size as f64 * s.p_hat).sum();
    match agg {
        Aggregate::Avg => {
            if w_total <= 0.0 {
                return None;
            }
            let mu_all: f64 = strata
                .iter()
                .map(|s| s.size as f64 * s.p_hat * s.mu_hat)
                .sum::<f64>()
                / w_total;
            let mut var = 0.0;
            for s in strata {
                let w = s.size as f64 * s.p_hat / w_total;
                if w > 0.0 {
                    if s.positives == 0 {
                        return None; // weight on an unmeasured stratum
                    }
                    var += w * w * s.sigma_hat * s.sigma_hat / s.positives as f64;
                }
                if s.draws > 0 {
                    let dp = s.size as f64 / w_total * (s.mu_hat - mu_all);
                    var += dp * dp * s.p_hat * (1.0 - s.p_hat) / s.draws as f64;
                }
            }
            Some(var)
        }
        Aggregate::Count => {
            let mut var = 0.0;
            for s in strata {
                if s.draws == 0 {
                    if s.size > 0 {
                        return None;
                    }
                    continue;
                }
                let sk = s.size as f64;
                var += sk * sk * s.p_hat * (1.0 - s.p_hat) / s.draws as f64;
            }
            Some(var)
        }
        Aggregate::Sum => {
            let mut var = 0.0;
            for s in strata {
                if s.draws == 0 {
                    if s.size > 0 {
                        return None;
                    }
                    continue;
                }
                if s.p_hat > 0.0 && s.positives == 0 {
                    return None;
                }
                let sk = s.size as f64;
                let mean_term = if s.positives > 0 {
                    s.p_hat * s.p_hat * s.sigma_hat * s.sigma_hat / s.positives as f64
                } else {
                    0.0
                };
                let rate_term =
                    s.mu_hat * s.mu_hat * s.p_hat * (1.0 - s.p_hat) / s.draws as f64;
                var += sk * sk * (mean_term + rate_term);
            }
            Some(var)
        }
    }
}

/// Closed-form CI for the stratified estimator at total tail mass `alpha`.
///
/// Returns `None` when the variance is not estimable from the samples
/// (e.g. a stratum with positive estimated weight but no positive draws) —
/// exactly the situations where Algorithm 2's bootstrap is also unreliable
/// and more draws are needed.
pub fn closed_form_ci(
    agg: Aggregate,
    strata: &[StratumEstimate],
    alpha: f64,
) -> Option<ConfidenceInterval> {
    if !(0.0 < alpha && alpha < 1.0) {
        return None;
    }
    let estimate = crate::estimator::combine_estimate(agg, strata);
    let var = estimator_variance(agg, strata)?;
    if !var.is_finite() {
        return None;
    }
    let z = normal_quantile(1.0 - alpha / 2.0);
    let half = z * var.sqrt();
    Some(ConfidenceInterval { lo: estimate - half, hi: estimate + half, confidence: 1.0 - alpha })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AbaeConfig;
    use crate::strata::Stratification;
    use crate::two_stage::run_two_stage;
    use abae_data::{FnOracle, Labeled};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn covering_rate_is_near_nominal() {
        // Population with a known answer; the CLT interval should cover
        // at roughly 95%.
        let n = 40_000;
        let mut rng = StdRng::seed_from_u64(1);
        let labels: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < 0.3).collect();
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        let scores: Vec<f64> = labels
            .iter()
            .map(|&l| if l { rng.gen_range(0.4..1.0) } else { rng.gen_range(0.0..0.6) })
            .collect();
        let exact = {
            let (mut s, mut c) = (0.0, 0usize);
            for i in 0..n {
                if labels[i] {
                    s += values[i];
                    c += 1;
                }
            }
            s / c as f64
        };
        let strat = Stratification::by_proxy_quantile(&scores, 5);
        let cfg = AbaeConfig { budget: 2000, ..Default::default() };
        let oracle = FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] });
        let trials = 100;
        let mut covered = 0;
        for _ in 0..trials {
            let run = run_two_stage(&strat, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
            let ci = closed_form_ci(Aggregate::Avg, &run.strata, 0.05).expect("estimable");
            assert!(ci.lo <= run.estimate && run.estimate <= ci.hi);
            if ci.contains(exact) {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!(rate > 0.88, "coverage {rate}");
    }

    #[test]
    fn agrees_with_bootstrap_width_to_first_order() {
        use crate::bootstrap::stratified_bootstrap_ci;
        use crate::config::BootstrapConfig;
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<Vec<Labeled>> = (0..5)
            .map(|_| {
                (0..500)
                    .map(|_| Labeled {
                        matches: rng.gen::<f64>() < 0.4,
                        value: rng.gen_range(0.0..4.0),
                    })
                    .collect()
            })
            .collect();
        let sizes = vec![10_000usize; 5];
        let strata: Vec<StratumEstimate> = samples
            .iter()
            .zip(&sizes)
            .map(|(draws, &size)| StratumEstimate::from_draws(size, draws))
            .collect();
        let clt = closed_form_ci(Aggregate::Avg, &strata, 0.05).unwrap();
        let boot = stratified_bootstrap_ci(
            &samples,
            &sizes,
            Aggregate::Avg,
            &BootstrapConfig { trials: 2000, alpha: 0.05 },
            &mut rng,
        )
        .unwrap();
        let ratio = clt.width() / boot.width();
        assert!((0.8..1.25).contains(&ratio), "CLT {} vs bootstrap {}", clt.width(), boot.width());
    }

    #[test]
    fn count_interval_matches_binomial_half_width() {
        // Single stratum, p̂ = 0.5 from 100 draws, size 1000:
        // Var = 1000² · 0.25/100 = 2500 → half-width 1.96·50 = 98.
        let strata = vec![StratumEstimate {
            size: 1000,
            draws: 100,
            positives: 50,
            p_hat: 0.5,
            mu_hat: 1.0,
            sigma_hat: 0.0,
        }];
        let ci = closed_form_ci(Aggregate::Count, &strata, 0.05).unwrap();
        assert!((ci.width() / 2.0 - 98.0).abs() < 0.1, "half width {}", ci.width() / 2.0);
        assert!((ci.lo + ci.hi) / 2.0 == 500.0);
    }

    #[test]
    fn unmeasurable_strata_yield_none() {
        // Positive estimated weight but no positive draws: not estimable.
        let strata = vec![StratumEstimate {
            size: 1000,
            draws: 10,
            positives: 0,
            p_hat: 0.3, // inconsistent on purpose (weight > 0, no positives)
            mu_hat: 0.0,
            sigma_hat: 0.0,
        }];
        assert!(closed_form_ci(Aggregate::Avg, &strata, 0.05).is_none());
        // No draws at all on a non-empty stratum.
        let strata = vec![StratumEstimate {
            size: 1000,
            draws: 0,
            positives: 0,
            p_hat: 0.0,
            mu_hat: 0.0,
            sigma_hat: 0.0,
        }];
        assert!(closed_form_ci(Aggregate::Count, &strata, 0.05).is_none());
    }

    #[test]
    fn invalid_alpha_yields_none() {
        let strata = vec![StratumEstimate {
            size: 10,
            draws: 5,
            positives: 3,
            p_hat: 0.6,
            mu_hat: 1.0,
            sigma_hat: 0.5,
        }];
        assert!(closed_form_ci(Aggregate::Avg, &strata, 0.0).is_none());
        assert!(closed_form_ci(Aggregate::Avg, &strata, 1.0).is_none());
    }
}
