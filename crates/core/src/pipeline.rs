//! Batch-parallel oracle labeling with deterministic output ordering.
//!
//! The paper's oracle is a DNN invoked in batches on accelerators (§5.1),
//! so the labeling hot path should look like batched model serving: chunk
//! the records a sampler has drawn into fixed-size batches and label the
//! batches concurrently. This module is that pipeline. The key contract is
//! **scheduling independence**: all randomness (which records to draw)
//! stays on the caller's thread, batches carry their position, and results
//! are reassembled in input order — so for a fixed seed the estimates, CIs,
//! and `oracle_calls` of every algorithm are bit-identical whether the
//! pipeline runs on 1 thread or 8 (`tests/parallel_determinism.rs` asserts
//! exactly this).
//!
//! [`ExecOptions`] carries the two knobs — worker thread count and batch
//! size — and is threaded through every algorithm config
//! ([`crate::config::AbaeConfig::exec`], [`crate::groupby::GroupByConfig::exec`],
//! [`crate::adaptive::AdaptiveConfig::exec`]) as well as the query executor
//! and `abae-cli`. Defaults honor the `ABAE_THREADS` / `ABAE_BATCH`
//! environment variables so whole test runs can be flipped between serial
//! and parallel execution (the CI matrix runs both).

use abae_data::{GroupLabel, GroupOracle, Labeled, Oracle};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Execution options for the batch labeling pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecOptions {
    /// Worker threads labeling batches. `0` and `1` both mean the calling
    /// thread labels every batch itself.
    pub threads: usize,
    /// Records per oracle batch (clamped to at least 1). This is the batch
    /// size handed to [`Oracle::label_batch`] — the analogue of a DNN
    /// serving batch.
    pub batch_size: usize,
}

impl ExecOptions {
    /// Default batch size when `ABAE_BATCH` is unset.
    pub const DEFAULT_BATCH: usize = 256;

    /// Creates options with explicit knobs.
    pub const fn new(threads: usize, batch_size: usize) -> Self {
        Self { threads, batch_size }
    }

    /// Single-threaded labeling (still batch-chunked).
    pub const fn sequential() -> Self {
        Self { threads: 1, batch_size: Self::DEFAULT_BATCH }
    }

    /// Returns `self` with the worker-thread knob replaced. Builder-style
    /// helper for call sites that own a resolved default — e.g. the query
    /// engine resolves [`ExecOptions::default`] once at build time and
    /// layers explicit flags on top, instead of re-reading the environment
    /// per call.
    pub const fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns `self` with the batch-size knob replaced (clamped to at
    /// least 1 record per batch at the point of use).
    pub const fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Reads `ABAE_THREADS` and `ABAE_BATCH` from the environment;
    /// unset or unparsable values fall back to 1 thread and
    /// [`Self::DEFAULT_BATCH`] records per batch.
    pub fn from_env() -> Self {
        let parse = |key: &str, default: usize| {
            std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        };
        Self {
            threads: parse("ABAE_THREADS", 1),
            batch_size: parse("ABAE_BATCH", Self::DEFAULT_BATCH).max(1),
        }
    }

    /// Worker count actually used for `n_batches` batches.
    fn workers(&self, n_batches: usize) -> usize {
        self.threads.max(1).min(n_batches)
    }
}

/// The default is read from the environment once per process (`ABAE_THREADS`
/// / `ABAE_BATCH`), so `..Default::default()` configs — including every
/// existing test — pick up the CI matrix's thread count without code
/// changes. Determinism makes this safe: results do not depend on the value.
impl Default for ExecOptions {
    fn default() -> Self {
        static FROM_ENV: OnceLock<ExecOptions> = OnceLock::new();
        *FROM_ENV.get_or_init(ExecOptions::from_env)
    }
}

/// Maps `ids` through `f` in batches of `opts.batch_size`, fanning batches
/// across `opts.threads` scoped workers, and returns the concatenated
/// results **in input order** regardless of scheduling.
///
/// `f` must return exactly one output per input (asserted), which is what
/// keeps budget accounting exact when `f` charges an oracle per record.
pub fn map_batched<T, F>(ids: &[usize], opts: &ExecOptions, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&[usize]) -> Vec<T> + Sync,
{
    let batch = opts.batch_size.max(1);
    let chunks: Vec<&[usize]> = ids.chunks(batch).collect();
    let workers = opts.workers(chunks.len());

    let out = if workers <= 1 {
        let mut out = Vec::with_capacity(ids.len());
        for chunk in chunks {
            out.extend(f(chunk));
        }
        out
    } else {
        // Work queue over batch indices: claim order is scheduling-dependent
        // but each batch's output lands in its own slot, so reassembly is
        // deterministic.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Vec<T>>> = chunks.iter().map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= chunks.len() {
                        break;
                    }
                    let labeled = f(chunks[j]);
                    *slots[j].lock().expect("no panics while holding a batch slot") = labeled;
                });
            }
        });
        let mut out = Vec::with_capacity(ids.len());
        for slot in slots {
            out.extend(slot.into_inner().expect("worker panics propagate via scope"));
        }
        out
    };
    assert_eq!(out.len(), ids.len(), "batch labeler must return one output per input");
    out
}

/// Labels `ids` with `oracle` through the batch pipeline; the returned
/// labels are in `ids` order.
pub fn label_all<O: Oracle + ?Sized>(
    oracle: &O,
    ids: &[usize],
    opts: &ExecOptions,
) -> Vec<Labeled> {
    map_batched(ids, opts, |chunk| oracle.label_batch(chunk))
}

/// Labels `ids` with a [`GroupOracle`] through the batch pipeline; the
/// returned group labels are in `ids` order.
pub fn label_groups_all<O: GroupOracle + ?Sized>(
    oracle: &O,
    ids: &[usize],
    opts: &ExecOptions,
) -> Vec<GroupLabel> {
    map_batched(ids, opts, |chunk| oracle.label_group_batch(chunk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_data::FnOracle;

    fn oracle() -> FnOracle<impl Fn(usize) -> Labeled + Sync> {
        FnOracle::new(|i| Labeled { matches: i % 3 == 0, value: (i * 7 % 11) as f64 })
    }

    #[test]
    fn output_order_is_input_order_for_every_thread_count() {
        let o = oracle();
        let ids: Vec<usize> = (0..1000).rev().collect();
        let reference = label_all(&o, &ids, &ExecOptions::new(1, 64));
        for threads in [2, 3, 8] {
            for batch in [1, 7, 64, 2048] {
                let got = label_all(&o, &ids, &ExecOptions::new(threads, batch));
                assert_eq!(got, reference, "threads={threads} batch={batch}");
            }
        }
        // Spot-check against the oracle function itself.
        assert_eq!(reference[0].value, (999 * 7 % 11) as f64);
    }

    #[test]
    fn every_id_is_charged_exactly_once() {
        let o = oracle();
        let ids: Vec<usize> = (0..777).collect();
        label_all(&o, &ids, &ExecOptions::new(8, 13));
        assert_eq!(o.calls(), 777);
    }

    #[test]
    fn empty_input_spawns_nothing_and_returns_empty() {
        let o = oracle();
        assert!(label_all(&o, &[], &ExecOptions::new(8, 32)).is_empty());
        assert_eq!(o.calls(), 0);
    }

    #[test]
    fn zero_knobs_are_clamped() {
        let o = oracle();
        let ids: Vec<usize> = (0..10).collect();
        let got = label_all(&o, &ids, &ExecOptions::new(0, 0));
        assert_eq!(got.len(), 10);
        assert_eq!(o.calls(), 10);
    }

    #[test]
    fn from_env_defaults_are_sane() {
        // Cannot mutate the environment safely in a parallel test binary;
        // just check the fallback shape.
        let opts = ExecOptions::default();
        assert!(opts.batch_size >= 1);
        let seq = ExecOptions::sequential();
        assert_eq!(seq.threads, 1);
    }

    #[test]
    fn builder_helpers_replace_one_knob_at_a_time() {
        let base = ExecOptions::new(2, 128);
        assert_eq!(base.with_threads(8), ExecOptions::new(8, 128));
        assert_eq!(base.with_batch_size(32), ExecOptions::new(2, 32));
    }

    #[test]
    fn map_batched_respects_batch_boundaries() {
        let sizes = Mutex::new(Vec::new());
        let ids: Vec<usize> = (0..100).collect();
        let out = map_batched(&ids, &ExecOptions::new(1, 32), |chunk| {
            sizes.lock().unwrap().push(chunk.len());
            chunk.to_vec()
        });
        assert_eq!(out, ids);
        assert_eq!(*sizes.lock().unwrap(), vec![32, 32, 32, 4]);
    }
}
