//! Proxy combination via logistic regression (§3.4, Figure 12).
//!
//! "ABae can combine proxies by sampling randomly in Stage 1 and using
//! these samples to train a logistic regression model using the proxies as
//! features and the predicate as the target." The trained model's
//! probabilities over the full dataset become the combined proxy; a
//! low-quality candidate gets a near-zero weight and is effectively
//! ignored.

use crate::proxy_select::PilotSample;
use abae_ml::logistic::{LogisticRegression, TrainError, TrainOptions};

/// Trains a logistic combiner on pilot samples and scores every record.
///
/// `proxies[j][i]` is candidate `j`'s score for record `i`. Returns the
/// combined per-record scores in `[0, 1]`.
///
/// # Errors
/// Propagates training failures (e.g. an empty pilot).
///
/// # Panics
/// Panics if `proxies` is empty or candidates have unequal lengths.
pub fn combine_proxies(
    proxies: &[&[f64]],
    pilot: &[PilotSample],
) -> Result<Vec<f64>, TrainError> {
    assert!(!proxies.is_empty(), "need at least one proxy");
    let n = proxies[0].len();
    assert!(proxies.iter().all(|p| p.len() == n), "proxies must align");

    let features: Vec<Vec<f64>> = pilot
        .iter()
        .map(|s| proxies.iter().map(|p| p[s.index]).collect())
        .collect();
    let labels: Vec<bool> = pilot.iter().map(|s| s.labeled.matches).collect();
    let model = LogisticRegression::fit(
        &features,
        &labels,
        TrainOptions { max_iters: 800, l2: 1e-4, ..Default::default() },
    )?;

    let mut row = vec![0.0; proxies.len()];
    Ok((0..n)
        .map(|i| {
            for (slot, p) in row.iter_mut().zip(proxies) {
                *slot = p[i];
            }
            model.predict_proba(&row)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_data::{FnOracle, Labeled, Oracle};
    use abae_ml::metrics::auc;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two medium proxies plus a useless one; combination should beat each
    /// individual candidate on AUC.
    fn setup(n: usize, seed: u64) -> (Vec<bool>, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut labels = Vec::with_capacity(n);
        let mut p1 = Vec::with_capacity(n);
        let mut p2 = Vec::with_capacity(n);
        let mut p3 = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen();
            let b: f64 = rng.gen();
            let q = (0.5 * a + 0.5 * b).clamp(0.0, 1.0);
            labels.push(rng.gen::<f64>() < q);
            p1.push(a); // sees half the signal
            p2.push(b); // sees the other half
            p3.push(rng.gen::<f64>()); // noise
        }
        (labels, vec![p1, p2, p3])
    }

    #[test]
    fn combination_beats_individual_proxies_on_auc() {
        let n = 20_000;
        let (labels, proxies) = setup(n, 1);
        let oracle = {
            let labels = labels.clone();
            FnOracle::new(move |i| Labeled { matches: labels[i], value: 0.0 })
        };
        let mut rng = StdRng::seed_from_u64(2);
        let pilot = crate::proxy_select::draw_pilot(n, &oracle, 2500, &mut rng);
        let refs: Vec<&[f64]> = proxies.iter().map(Vec::as_slice).collect();
        let combined = combine_proxies(&refs, &pilot).unwrap();

        let auc_combined = auc(&combined, &labels).unwrap();
        let auc_1 = auc(&proxies[0], &labels).unwrap();
        let auc_2 = auc(&proxies[1], &labels).unwrap();
        assert!(
            auc_combined > auc_1.max(auc_2),
            "combined {auc_combined} vs singles {auc_1}, {auc_2}"
        );
    }

    #[test]
    fn combined_scores_are_probabilities() {
        let n = 5000;
        let (_, proxies) = setup(n, 3);
        let oracle = FnOracle::new(|i| Labeled { matches: i % 3 == 0, value: 0.0 });
        let mut rng = StdRng::seed_from_u64(4);
        let pilot = crate::proxy_select::draw_pilot(n, &oracle, 500, &mut rng);
        let refs: Vec<&[f64]> = proxies.iter().map(Vec::as_slice).collect();
        let combined = combine_proxies(&refs, &pilot).unwrap();
        assert_eq!(combined.len(), n);
        assert!(combined.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn empty_pilot_is_a_train_error() {
        let p1 = vec![0.5; 10];
        let refs: Vec<&[f64]> = vec![&p1];
        assert!(combine_proxies(&refs, &[]).is_err());
    }

    #[test]
    fn pilot_oracle_calls_are_the_only_cost() {
        // Combination itself must not invoke the oracle.
        let n = 2000;
        let (_, proxies) = setup(n, 5);
        let oracle = FnOracle::new(|i| Labeled { matches: i % 2 == 0, value: 0.0 });
        let mut rng = StdRng::seed_from_u64(6);
        let pilot = crate::proxy_select::draw_pilot(n, &oracle, 300, &mut rng);
        let before = oracle.calls();
        let refs: Vec<&[f64]> = proxies.iter().map(Vec::as_slice).collect();
        let _ = combine_proxies(&refs, &pilot).unwrap();
        assert_eq!(oracle.calls(), before);
    }
}
