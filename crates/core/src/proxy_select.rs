//! Proxy selection (§3.4).
//!
//! When several candidate proxies exist for one predicate, ABae predicts
//! each proxy's achievable MSE with the Proposition 2 plug-in formula:
//! stratify by the candidate, bucket the Stage-1 pilot samples into its
//! strata, estimate `p̂_k, σ̂_k` per stratum, and evaluate
//! `(Σ √p̂_k σ̂_k)² / (N·p̂_all²)`. The proxy with the lowest predicted MSE
//! wins. The pilot samples are *shared* across candidates, so selection
//! adds no oracle cost.

use crate::error_model::optimal_mse;
use crate::strata::Stratification;
use abae_data::{Labeled, Oracle};
use abae_sampling::wor::sample_without_replacement;
use abae_stats::StreamingMoments;
use rand::Rng;

/// One labeled pilot draw: record index plus its oracle result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PilotSample {
    /// Record index in the dataset.
    pub index: usize,
    /// Oracle result.
    pub labeled: Labeled,
}

/// Draws a uniform without-replacement pilot of `size` records and labels
/// them with the oracle.
pub fn draw_pilot<O: Oracle, R: Rng + ?Sized>(
    n: usize,
    oracle: &O,
    size: usize,
    rng: &mut R,
) -> Vec<PilotSample> {
    sample_without_replacement(n, size, rng)
        .into_iter()
        .map(|index| PilotSample { index, labeled: oracle.label(index) })
        .collect()
}

/// Predicted and (optionally ranked) per-proxy quality.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyRanking {
    /// Predicted optimal MSE per candidate (Proposition 2 plug-in), aligned
    /// with the input order.
    pub predicted_mse: Vec<f64>,
    /// Candidate indices sorted best (lowest predicted MSE) first.
    pub order: Vec<usize>,
}

impl ProxyRanking {
    /// The best candidate's index.
    pub fn best(&self) -> usize {
        self.order[0]
    }
}

/// Estimates per-stratum `p̂_k, σ̂_k` for one candidate proxy from shared
/// pilot samples, then applies Proposition 2.
fn predicted_mse_for(
    proxy: &[f64],
    pilot: &[PilotSample],
    strata: usize,
    budget: usize,
) -> f64 {
    let stratification = Stratification::by_proxy_quantile(proxy, strata);
    // Invert: record index → stratum id.
    let mut stratum_of = vec![0u32; proxy.len()];
    for (k, members) in stratification.strata().iter().enumerate() {
        for &i in members {
            stratum_of[i] = k as u32;
        }
    }
    let mut draws = vec![0usize; strata];
    let mut positives = vec![0usize; strata];
    let mut moments = vec![StreamingMoments::new(); strata];
    for s in pilot {
        let k = stratum_of[s.index] as usize;
        draws[k] += 1;
        if s.labeled.matches {
            positives[k] += 1;
            moments[k].push(s.labeled.value);
        }
    }
    let p: Vec<f64> = (0..strata)
        .map(|k| if draws[k] == 0 { 0.0 } else { positives[k] as f64 / draws[k] as f64 })
        .collect();
    let sigma: Vec<f64> = moments.iter().map(StreamingMoments::sample_std_dev_or_zero).collect();
    optimal_mse(&p, &sigma, budget)
}

/// Ranks candidate proxies by predicted optimal MSE (§3.4).
///
/// # Panics
/// Panics if `proxies` is empty or candidates have unequal lengths — those
/// are caller bugs, not data conditions.
pub fn rank_proxies(
    proxies: &[&[f64]],
    pilot: &[PilotSample],
    strata: usize,
    budget: usize,
) -> ProxyRanking {
    assert!(!proxies.is_empty(), "need at least one candidate proxy");
    let n = proxies[0].len();
    assert!(proxies.iter().all(|p| p.len() == n), "candidate proxies must align");
    let predicted_mse: Vec<f64> =
        proxies.iter().map(|p| predicted_mse_for(p, pilot, strata, budget)).collect();
    let mut order: Vec<usize> = (0..proxies.len()).collect();
    order.sort_by(|&a, &b| predicted_mse[a].total_cmp(&predicted_mse[b]));
    ProxyRanking { predicted_mse, order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_data::FnOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Population where the label depends on a hidden score; proxy A sees
    /// it exactly, proxy B sees noise-corrupted, proxy C is pure noise.
    fn candidates(n: usize, seed: u64) -> (Vec<bool>, Vec<f64>, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hidden: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let labels: Vec<bool> = hidden.iter().map(|&h| rng.gen::<f64>() < h * h).collect();
        let values: Vec<f64> = hidden.iter().map(|&h| 10.0 * h + 1.0).collect();
        let perfect: Vec<f64> = hidden.iter().map(|&h| h * h).collect();
        let noisy: Vec<f64> = hidden
            .iter()
            .map(|&h| (h * h + rng.gen_range(-0.4..0.4)).clamp(0.0, 1.0))
            .collect();
        let useless: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        (labels, values, vec![perfect, noisy, useless])
    }

    #[test]
    fn ranks_informative_proxy_first_and_noise_last() {
        let n = 30_000;
        let (labels, values, proxies) = candidates(n, 1);
        let oracle = FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] });
        let mut rng = StdRng::seed_from_u64(2);
        let pilot = draw_pilot(n, &oracle, 2000, &mut rng);
        let refs: Vec<&[f64]> = proxies.iter().map(Vec::as_slice).collect();
        let ranking = rank_proxies(&refs, &pilot, 5, 10_000);
        assert_eq!(ranking.best(), 0, "ranking {:?}", ranking);
        assert_eq!(*ranking.order.last().unwrap(), 2, "ranking {:?}", ranking);
        // Predicted MSEs are finite and ordered.
        assert!(ranking.predicted_mse[0] < ranking.predicted_mse[2]);
    }

    #[test]
    fn pilot_draw_is_without_replacement_and_counts_oracle_calls() {
        let oracle = FnOracle::new(|i| Labeled { matches: true, value: i as f64 });
        let mut rng = StdRng::seed_from_u64(3);
        let pilot = draw_pilot(100, &oracle, 60, &mut rng);
        assert_eq!(pilot.len(), 60);
        assert_eq!(oracle.calls(), 60);
        let mut idx: Vec<usize> = pilot.iter().map(|p| p.index).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 60);
    }

    #[test]
    fn empty_pilot_gives_infinite_predictions() {
        let proxy: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let ranking = rank_proxies(&[&proxy], &[], 5, 1000);
        assert!(ranking.predicted_mse[0].is_infinite());
    }

    #[test]
    fn prediction_correlates_with_realized_rmse() {
        // The paper claims the Prop-2 formula "is a good predictor of
        // relative performance": the best-ranked proxy should realize a
        // lower RMSE than the worst-ranked when actually running ABae.
        use crate::config::{AbaeConfig, Aggregate};
        use crate::two_stage::run_abae;

        let n = 30_000;
        let (labels, values, proxies) = candidates(n, 4);
        let exact = {
            let (mut s, mut c) = (0.0, 0);
            for i in 0..n {
                if labels[i] {
                    s += values[i];
                    c += 1;
                }
            }
            s / c as f64
        };
        let oracle = {
            let labels = labels.clone();
            let values = values.clone();
            FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] })
        };
        let mut rng = StdRng::seed_from_u64(5);
        let pilot = draw_pilot(n, &oracle, 2000, &mut rng);
        let refs: Vec<&[f64]> = proxies.iter().map(Vec::as_slice).collect();
        let ranking = rank_proxies(&refs, &pilot, 5, 2000);

        let cfg = AbaeConfig { budget: 2000, ..Default::default() };
        let mut rmse_for = |proxy: &[f64]| {
            let mut errs = Vec::new();
            for _ in 0..40 {
                let r = run_abae(proxy, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
                errs.push(r.estimate - exact);
            }
            (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt()
        };
        let best_rmse = rmse_for(&proxies[ranking.best()]);
        let worst_rmse = rmse_for(&proxies[*ranking.order.last().unwrap()]);
        assert!(
            best_rmse < worst_rmse,
            "selected proxy RMSE {best_rmse} should beat worst {worst_rmse}"
        );
    }
}
