//! Stratification by proxy-score quantile (`ABaeInit`).
//!
//! Algorithm 1 lines 1–4: sort the dataset by proxy score and split into
//! `K` strata by quantile. Under the paper's monotonicity assumption on the
//! proxy (§1), this groups records with similar predicate propensity, which
//! is what makes the per-stratum `p_k` meaningful.
//!
//! Ties are broken by record index so stratification is deterministic, and
//! sizes differ by at most one when `K ∤ n`.

/// A partition of record indices into proxy-quantile strata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stratification {
    strata: Vec<Vec<usize>>,
}

impl Stratification {
    /// Stratifies records `0..scores.len()` into `k` quantile strata by
    /// ascending proxy score.
    ///
    /// Strata sizes are `⌈n/k⌉` for the first `n mod k` strata and `⌊n/k⌋`
    /// for the rest, so every record lands in exactly one stratum. When
    /// `k > n`, trailing strata are empty.
    ///
    /// ```
    /// use abae_core::Stratification;
    ///
    /// let scores = [0.9, 0.1, 0.5, 0.3, 0.7, 0.2];
    /// let strat = Stratification::by_proxy_quantile(&scores, 3);
    /// assert_eq!(strat.len(), 3);
    /// assert_eq!(strat.total(), 6);
    /// // The lowest-score records land in stratum 0.
    /// assert_eq!(strat.stratum(0), &[1, 5]);
    /// ```
    ///
    /// # Panics
    /// Panics if `k == 0` — callers validate via [`crate::config`].
    pub fn by_proxy_quantile(scores: &[f64], k: usize) -> Self {
        assert!(k > 0, "stratification needs at least one stratum");
        let n = scores.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));

        let base = n / k;
        let extra = n % k;
        let mut strata = Vec::with_capacity(k);
        let mut cursor = 0usize;
        for i in 0..k {
            let size = base + usize::from(i < extra);
            strata.push(order[cursor..cursor + size].to_vec());
            cursor += size;
        }
        Self { strata }
    }

    /// Builds a single-stratum partition over `n` records (the degenerate
    /// `K = 1` case, equivalent to uniform sampling with a budget split).
    pub fn single(n: usize) -> Self {
        Self { strata: vec![(0..n).collect()] }
    }

    /// Number of strata `K`.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// True when there are no strata (not constructible via the public
    /// API).
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }

    /// Record indices of stratum `k` (ascending proxy order).
    pub fn stratum(&self, k: usize) -> &[usize] {
        &self.strata[k]
    }

    /// All strata.
    pub fn strata(&self) -> &[Vec<usize>] {
        &self.strata
    }

    /// Sizes of all strata.
    pub fn sizes(&self) -> Vec<usize> {
        self.strata.iter().map(Vec::len).collect()
    }

    /// Total number of records.
    pub fn total(&self) -> usize {
        self.strata.iter().map(Vec::len).sum()
    }

    /// Exact per-stratum positive rates and conditional statistic moments
    /// against ground truth — used by tests and the Proposition 1/2
    /// verification experiment, never by the sampling algorithm itself.
    pub fn ground_truth(&self, labels: &[bool], values: &[f64]) -> Vec<GroundTruthStratum> {
        self.strata
            .iter()
            .map(|stratum| {
                let mut moments = abae_stats::StreamingMoments::new();
                let mut positives = 0usize;
                for &i in stratum {
                    if labels[i] {
                        positives += 1;
                        moments.push(values[i]);
                    }
                }
                GroundTruthStratum {
                    size: stratum.len(),
                    p: if stratum.is_empty() {
                        0.0
                    } else {
                        positives as f64 / stratum.len() as f64
                    },
                    mu: moments.mean_or_zero(),
                    sigma: moments.sample_std_dev_or_zero(),
                }
            })
            .collect()
    }
}

/// Exact per-stratum quantities (for analysis, not for query execution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruthStratum {
    /// Stratum size.
    pub size: usize,
    /// Exact predicate positive rate `p_k`.
    pub p: f64,
    /// Exact conditional mean `μ_k`.
    pub mu: f64,
    /// Exact conditional standard deviation `σ_k`.
    pub sigma: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn partitions_every_record_exactly_once() {
        let scores: Vec<f64> = (0..103).map(|i| (i as f64 * 0.7).sin()).collect();
        let s = Stratification::by_proxy_quantile(&scores, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.total(), 103);
        let mut seen = [false; 103];
        for stratum in s.strata() {
            for &i in stratum {
                assert!(!seen[i], "record {i} in two strata");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let scores: Vec<f64> = (0..103).map(|i| i as f64).collect();
        let s = Stratification::by_proxy_quantile(&scores, 5);
        let sizes = s.sizes();
        assert_eq!(sizes, vec![21, 21, 21, 20, 20]);
    }

    #[test]
    fn strata_are_ordered_by_score() {
        let scores = [0.9, 0.1, 0.5, 0.3, 0.7, 0.2];
        let s = Stratification::by_proxy_quantile(&scores, 3);
        // Max score of each stratum ≤ min score of the next.
        for k in 0..s.len() - 1 {
            let max_here = s.stratum(k).iter().map(|&i| scores[i]).fold(f64::MIN, f64::max);
            let min_next = s.stratum(k + 1).iter().map(|&i| scores[i]).fold(f64::MAX, f64::min);
            assert!(max_here <= min_next);
        }
    }

    #[test]
    fn ties_are_deterministic() {
        let scores = [0.5; 10];
        let a = Stratification::by_proxy_quantile(&scores, 3);
        let b = Stratification::by_proxy_quantile(&scores, 3);
        assert_eq!(a, b);
        // With ties, index order decides.
        assert_eq!(a.stratum(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn more_strata_than_records_leaves_trailing_empties() {
        let scores = [0.1, 0.2];
        let s = Stratification::by_proxy_quantile(&scores, 5);
        assert_eq!(s.sizes(), vec![1, 1, 0, 0, 0]);
        assert_eq!(s.total(), 2);
    }

    #[test]
    fn single_covers_everything() {
        let s = Stratification::single(7);
        assert_eq!(s.len(), 1);
        assert_eq!(s.stratum(0), &[0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "at least one stratum")]
    fn zero_strata_panics() {
        let _ = Stratification::by_proxy_quantile(&[0.5], 0);
    }

    #[test]
    fn ground_truth_matches_hand_computation() {
        // Scores already sorted: strata {0,1}, {2,3}.
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, false, true, true];
        let values = [2.0, 99.0, 4.0, 6.0];
        let s = Stratification::by_proxy_quantile(&scores, 2);
        let gt = s.ground_truth(&labels, &values);
        assert_eq!(gt[0].p, 0.5);
        assert_eq!(gt[0].mu, 2.0);
        assert_eq!(gt[0].sigma, 0.0); // single positive
        assert_eq!(gt[1].p, 1.0);
        assert_eq!(gt[1].mu, 5.0);
        assert!((gt[1].sigma - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn perfect_proxy_concentrates_positives_in_top_stratum() {
        // Proxy equals the label: all positives must land in the top
        // stratum when rates allow.
        let labels: Vec<bool> = (0..100).map(|i| i >= 80).collect();
        let scores: Vec<f64> = labels.iter().map(|&l| if l { 0.9 } else { 0.1 }).collect();
        let s = Stratification::by_proxy_quantile(&scores, 5);
        let values = vec![1.0; 100];
        let gt = s.ground_truth(&labels, &values);
        assert_eq!(gt[4].p, 1.0);
        for (k, stratum) in gt[..4].iter().enumerate() {
            assert_eq!(stratum.p, 0.0, "stratum {k}");
        }
    }

    proptest! {
        #[test]
        fn partition_invariants(
            scores in proptest::collection::vec(0.0f64..1.0, 0..300),
            k in 1usize..12,
        ) {
            let s = Stratification::by_proxy_quantile(&scores, k);
            prop_assert_eq!(s.len(), k);
            prop_assert_eq!(s.total(), scores.len());
            let sizes = s.sizes();
            let max = sizes.iter().max().copied().unwrap_or(0);
            let min = sizes.iter().min().copied().unwrap_or(0);
            prop_assert!(max - min <= 1);
        }
    }
}
