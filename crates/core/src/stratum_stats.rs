//! Mergeable per-stratum sufficient statistics — the commutative monoid
//! behind progressive snapshots and chunked ingest.
//!
//! The anytime executor labels its draws in budget chunks and must be able
//! to produce, after every chunk, the same per-stratum estimates
//! (`p̂_k, μ̂_k, σ̂_k`) and bootstrap inputs a one-shot run over the same
//! draws would produce — *bit for bit*, or snapshot boundaries would leak
//! into the final answer. Floating-point addition is commutative but not
//! associative, so "keep running sums" breaks bitwise equality the moment
//! two chunkings add values in different orders. [`StratumStats`] instead
//! stores the labeled draws themselves in a canonical order (sorted by
//! record id, with the full draw as tie-breaker) and derives every moment
//! by folding that canonical sequence. [`StratumStats::merge`] is then a
//! sorted multiset union: commutative, associative, with
//! [`StratumStats::empty`] as identity — a commutative monoid whose laws
//! the property tests in this module pin down exactly.
//!
//! Chunk boundaries therefore sit *outside* the statistics: however a
//! stratum's draws are partitioned (per labeling chunk, per data
//! partition, per thread), folding the partial states through `merge`
//! reaches the same canonical state as one-shot accumulation.

use crate::estimator::StratumEstimate;
use abae_data::Labeled;

/// One labeled draw tagged with the record id it came from. The id is what
/// lets two partial states interleave deterministically when merged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaggedDraw {
    /// Global record id of the drawn record.
    pub record: usize,
    /// The oracle's verdict for that record.
    pub label: Labeled,
}

impl TaggedDraw {
    /// Total order used for the canonical representation: record id first,
    /// then the label bits, so even pathological duplicate draws sort
    /// identically in every chunking.
    fn key(&self) -> (usize, bool, u64) {
        (self.record, self.label.matches, self.label.value.to_bits())
    }
}

/// Mergeable sufficient statistics for one stratum: the stratum's
/// population size plus every labeled draw seen so far, held in canonical
/// order. Count, positives, sum, and sum of squares are derived by folding
/// the canonical sequence, so they are identical for every chunking of the
/// same draws.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumStats {
    size: usize,
    /// Draws sorted by [`TaggedDraw::key`].
    draws: Vec<TaggedDraw>,
}

impl StratumStats {
    /// The monoid identity for a stratum of `size` records: no draws yet.
    pub fn empty(size: usize) -> Self {
        Self { size, draws: Vec::new() }
    }

    /// Builds a state from labeled draws in any order (the order is
    /// canonicalized internally).
    pub fn from_labeled(size: usize, draws: impl IntoIterator<Item = (usize, Labeled)>) -> Self {
        let mut draws: Vec<TaggedDraw> =
            draws.into_iter().map(|(record, label)| TaggedDraw { record, label }).collect();
        draws.sort_by_key(TaggedDraw::key);
        Self { size, draws }
    }

    /// Stratum population size `|S_k|`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of labeled draws accumulated so far.
    pub fn count(&self) -> usize {
        self.draws.len()
    }

    /// True when no draws have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.draws.is_empty()
    }

    /// Number of draws matching the predicate.
    pub fn positives(&self) -> usize {
        self.draws.iter().filter(|d| d.label.matches).count()
    }

    /// Sum of the statistic over matching draws, folded in canonical order.
    pub fn sum(&self) -> f64 {
        self.draws.iter().filter(|d| d.label.matches).map(|d| d.label.value).sum()
    }

    /// Sum of squares of the statistic over matching draws, folded in
    /// canonical order.
    pub fn sum_squares(&self) -> f64 {
        self.draws
            .iter()
            .filter(|d| d.label.matches)
            .map(|d| d.label.value * d.label.value)
            .sum()
    }

    /// The accumulated draws in canonical order, as bootstrap input.
    pub fn labeled(&self) -> Vec<Labeled> {
        self.draws.iter().map(|d| d.label).collect()
    }

    /// The accumulated draws with their record ids, in canonical order.
    pub fn draws(&self) -> &[TaggedDraw] {
        &self.draws
    }

    /// Derives the plug-in estimates (`p̂, μ̂, σ̂`) from the canonical
    /// sequence — bit-identical for every chunking of the same draws.
    pub fn estimate(&self) -> StratumEstimate {
        StratumEstimate::from_draws(self.size, &self.labeled())
    }

    /// The monoid operation: sorted multiset union of two partial states
    /// over the same stratum. Commutative and associative bit-for-bit, with
    /// [`StratumStats::empty`] as identity.
    ///
    /// # Panics
    /// When the two states disagree on the stratum size — merging partial
    /// states of *different* strata is always a bug.
    pub fn merge(a: Self, b: Self) -> Self {
        assert_eq!(a.size, b.size, "cannot merge stats of different strata");
        let mut draws = Vec::with_capacity(a.draws.len() + b.draws.len());
        let (mut i, mut j) = (0, 0);
        while i < a.draws.len() && j < b.draws.len() {
            if a.draws[i].key() <= b.draws[j].key() {
                draws.push(a.draws[i]);
                i += 1;
            } else {
                draws.push(b.draws[j]);
                j += 1;
            }
        }
        draws.extend_from_slice(&a.draws[i..]);
        draws.extend_from_slice(&b.draws[j..]);
        Self { size: a.size, draws }
    }
}

/// Merges two per-stratum state vectors element-wise — the partition-level
/// monoid used by chunked ingest (`merge_states(a, b)[k] ==
/// StratumStats::merge(a[k], b[k])`).
///
/// # Panics
/// When the vectors cover different numbers of strata.
pub fn merge_states(a: Vec<StratumStats>, b: Vec<StratumStats>) -> Vec<StratumStats> {
    assert_eq!(a.len(), b.len(), "partial states must cover the same strata");
    a.into_iter().zip(b).map(|(x, y)| StratumStats::merge(x, y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn stats(size: usize, draws: &[(usize, bool, f64)]) -> StratumStats {
        StratumStats::from_labeled(
            size,
            draws.iter().map(|&(r, m, v)| (r, Labeled { matches: m, value: v })),
        )
    }

    #[test]
    fn derived_statistics_match_hand_computation() {
        let s = stats(100, &[(3, true, 2.0), (7, false, 99.0), (1, true, 4.0)]);
        assert_eq!(s.size(), 100);
        assert_eq!(s.count(), 3);
        assert_eq!(s.positives(), 2);
        assert_eq!(s.sum(), 6.0);
        assert_eq!(s.sum_squares(), 20.0);
        let e = s.estimate();
        assert_eq!(e.draws, 3);
        assert_eq!(e.positives, 2);
        assert!((e.mu_hat - 3.0).abs() < 1e-12);
    }

    #[test]
    fn canonical_order_is_by_record_id() {
        let a = stats(10, &[(5, true, 1.0), (2, true, 2.0), (9, false, 3.0)]);
        let records: Vec<usize> = a.draws().iter().map(|d| d.record).collect();
        assert_eq!(records, vec![2, 5, 9]);
    }

    #[test]
    fn merge_panics_on_size_mismatch() {
        let a = StratumStats::empty(10);
        let b = StratumStats::empty(20);
        assert!(std::panic::catch_unwind(|| StratumStats::merge(a, b)).is_err());
    }

    #[test]
    fn merge_states_zips_per_stratum() {
        let a = vec![stats(10, &[(1, true, 1.0)]), StratumStats::empty(20)];
        let b = vec![stats(10, &[(2, true, 2.0)]), stats(20, &[(4, false, 0.0)])];
        let m = merge_states(a, b);
        assert_eq!(m[0].count(), 2);
        assert_eq!(m[1].count(), 1);
    }

    /// A stratum's worth of arbitrary draws. Record ids are kept in a small
    /// range so duplicates (the pathological case for the canonical order)
    /// actually occur.
    fn draws_strategy() -> impl Strategy<Value = Vec<(usize, bool, f64)>> {
        proptest::collection::vec((0usize..64, proptest::bool::ANY, -1e6f64..1e6), 0..48)
    }

    proptest! {
        #[test]
        fn merge_is_commutative(xs in draws_strategy(), ys in draws_strategy()) {
            let (a, b) = (stats(100, &xs), stats(100, &ys));
            let ab = StratumStats::merge(a.clone(), b.clone());
            let ba = StratumStats::merge(b, a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn merge_is_associative(
            xs in draws_strategy(),
            ys in draws_strategy(),
            zs in draws_strategy(),
        ) {
            let (a, b, c) = (stats(100, &xs), stats(100, &ys), stats(100, &zs));
            let left = StratumStats::merge(StratumStats::merge(a.clone(), b.clone()), c.clone());
            let right = StratumStats::merge(a, StratumStats::merge(b, c));
            prop_assert_eq!(left, right);
        }

        #[test]
        fn empty_is_the_identity(xs in draws_strategy()) {
            let s = stats(100, &xs);
            prop_assert_eq!(StratumStats::merge(s.clone(), StratumStats::empty(100)), s.clone());
            prop_assert_eq!(StratumStats::merge(StratumStats::empty(100), s.clone()), s);
        }

        #[test]
        fn any_chunking_folds_to_the_one_shot_state(
            xs in draws_strategy(),
            boundaries in proptest::collection::vec(0usize..48, 0..6),
        ) {
            // One-shot accumulation over all draws at once…
            let one_shot = stats(100, &xs);
            // …versus folding arbitrary contiguous chunks through merge.
            let mut cuts: Vec<usize> =
                boundaries.into_iter().map(|b| b.min(xs.len())).collect();
            cuts.push(0);
            cuts.push(xs.len());
            cuts.sort_unstable();
            let mut folded = StratumStats::empty(100);
            for w in cuts.windows(2) {
                folded = StratumStats::merge(folded, stats(100, &xs[w[0]..w[1]]));
            }
            // Bit-for-bit: the states, every derived moment, and the
            // estimates must be exactly equal, not approximately.
            prop_assert_eq!(folded.clone(), one_shot.clone());
            prop_assert_eq!(folded.sum().to_bits(), one_shot.sum().to_bits());
            prop_assert_eq!(folded.sum_squares().to_bits(), one_shot.sum_squares().to_bits());
            prop_assert_eq!(folded.positives(), one_shot.positives());
            let (fe, oe) = (folded.estimate(), one_shot.estimate());
            prop_assert_eq!(fe.mu_hat.to_bits(), oe.mu_hat.to_bits());
            prop_assert_eq!(fe.sigma_hat.to_bits(), oe.sigma_hat.to_bits());
            prop_assert_eq!(fe.p_hat.to_bits(), oe.p_hat.to_bits());
        }
    }
}
