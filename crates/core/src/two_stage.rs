//! The two-stage sampling algorithm (Algorithm 1, `ABaeSample`).
//!
//! Stage 1 (pilot): draw `N1` records without replacement from every
//! stratum, label them with the oracle, and form plug-in estimates of
//! `p_k` and `σ_k`. Stage 2: allocate `N2` further draws proportionally to
//! `T̂_k ∝ √p̂_k·σ̂_k` (floored per the paper), continuing the
//! without-replacement draw within each stratum. Final estimates use the
//! samples of both stages (sample reuse; §5.3 shows disabling it —
//! [`SampleReuse::Disabled`] — costs substantial accuracy).

use crate::bootstrap::stratified_bootstrap_cis;
use crate::config::{AbaeConfig, Aggregate, ConfigError, Rounding, SampleReuse};
use crate::estimator::{combine_estimate, StratumEstimate};
use crate::pipeline;
use crate::strata::Stratification;
use abae_data::{Labeled, Oracle};
use abae_sampling::budget::{floor_allocation, largest_remainder_allocation, stage_split};
use abae_sampling::pool::IndexPool;
use abae_stats::bootstrap::ConfidenceInterval;
use rand::Rng;

/// Full output of one two-stage run, including everything the bootstrap
/// needs to resample.
#[derive(Debug, Clone)]
pub struct TwoStageRun {
    /// The point estimate for the requested aggregate.
    pub estimate: f64,
    /// Per-stratum estimates underlying the final answer.
    pub strata: Vec<StratumEstimate>,
    /// Pilot (Stage-1) estimates, before Stage-2 refinement.
    pub pilot: Vec<StratumEstimate>,
    /// The estimated optimal allocation `T̂_k` computed after Stage 1.
    pub t_hat: Vec<f64>,
    /// Per-stratum labeled draws that entered the final estimates (both
    /// stages under reuse, Stage-2 only otherwise).
    pub samples: Vec<Vec<Labeled>>,
    /// Total oracle invocations spent.
    pub oracle_calls: u64,
}

/// A point estimate with an optional confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct AbaeResult {
    /// The point estimate.
    pub estimate: f64,
    /// Bootstrap percentile CI, when requested.
    pub ci: Option<ConfidenceInterval>,
    /// Total oracle invocations spent.
    pub oracle_calls: u64,
}

/// One aggregate's answer within a shared-labeling multi-aggregate run.
#[derive(Debug, Clone, PartialEq)]
pub struct AggAnswer {
    /// The aggregate this answer is for.
    pub agg: Aggregate,
    /// The point estimate.
    pub estimate: f64,
    /// Bootstrap percentile CI (`None` when no draws or `trials == 0`).
    pub ci: Option<ConfidenceInterval>,
}

/// Result of [`run_abae_multi_with_ci`]: one answer per requested
/// aggregate, all paid for by a single oracle budget.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiAggResult {
    /// Answers in the order the aggregates were requested.
    pub answers: Vec<AggAnswer>,
    /// Total oracle invocations spent — the same as a single-aggregate run
    /// with the same configuration, however many aggregates were asked for.
    pub oracle_calls: u64,
}

/// Runs Algorithm 1 on a prepared stratification.
///
/// `stratification` comes from [`Stratification::by_proxy_quantile`]
/// (`ABaeInit`); `oracle` is charged once per drawn record; `agg` selects
/// the aggregate; `rng` drives all randomness.
///
/// # Errors
/// Returns the configuration's validation error, if any.
pub fn run_two_stage<O: Oracle, R: Rng + ?Sized>(
    stratification: &Stratification,
    oracle: &O,
    config: &AbaeConfig,
    agg: Aggregate,
    rng: &mut R,
) -> Result<TwoStageRun, ConfigError> {
    config.validate()?;
    let k = stratification.len();
    let split = stage_split(config.budget, config.stage1_fraction, k);

    let calls_before = oracle.calls();

    // Stage 1: N1 pilot draws per stratum. The RNG only decides *which*
    // records to draw (on this thread); labeling goes through the batch
    // pipeline, so results are identical for any thread count.
    let mut pools: Vec<IndexPool> = Vec::with_capacity(k);
    let mut stage1: Vec<Vec<Labeled>> = Vec::with_capacity(k);
    for s in 0..k {
        let records = stratification.stratum(s);
        let mut pool = IndexPool::new(records.len());
        let drawn: Vec<usize> =
            pool.draw(split.n1_per_stratum, rng).iter().map(|&local| records[local]).collect();
        pools.push(pool);
        stage1.push(pipeline::label_all(oracle, &drawn, &config.exec));
    }

    let pilot: Vec<StratumEstimate> = stage1
        .iter()
        .enumerate()
        .map(|(s, draws)| StratumEstimate::from_draws(stratification.stratum(s).len(), draws))
        .collect();

    // Allocation from pilot estimates: T̂_k ∝ √p̂_k σ̂_k.
    let weights: Vec<f64> = pilot.iter().map(|e| e.p_hat.sqrt() * e.sigma_hat).collect();
    let t_hat = crate::allocation::optimal_allocation(
        &pilot.iter().map(|e| e.p_hat).collect::<Vec<_>>(),
        &pilot.iter().map(|e| e.sigma_hat).collect::<Vec<_>>(),
    );
    let stage2_alloc = match config.rounding {
        Rounding::Floor => floor_allocation(&weights, split.n2_total),
        Rounding::LargestRemainder => largest_remainder_allocation(&weights, split.n2_total),
    };

    // Stage 2: extend each stratum's without-replacement draw.
    let mut samples: Vec<Vec<Labeled>> = Vec::with_capacity(k);
    for (s, mut stage1_draws) in stage1.into_iter().enumerate() {
        let records = stratification.stratum(s);
        let drawn: Vec<usize> =
            pools[s].draw(stage2_alloc[s], rng).iter().map(|&local| records[local]).collect();
        let stage2_draws = pipeline::label_all(oracle, &drawn, &config.exec);
        let combined = match config.reuse {
            SampleReuse::Enabled => {
                stage1_draws.extend(stage2_draws);
                stage1_draws
            }
            SampleReuse::Disabled => stage2_draws,
        };
        samples.push(combined);
    }

    let strata: Vec<StratumEstimate> = samples
        .iter()
        .enumerate()
        .map(|(s, draws)| StratumEstimate::from_draws(stratification.stratum(s).len(), draws))
        .collect();

    Ok(TwoStageRun {
        estimate: combine_estimate(agg, &strata),
        strata,
        pilot,
        t_hat,
        samples,
        oracle_calls: oracle.calls() - calls_before,
    })
}

/// Convenience entry point: stratify by proxy quantile and run Algorithm 1.
///
/// ```
/// use abae_core::{run_abae, Aggregate, AbaeConfig};
/// use abae_data::{FnOracle, Labeled};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // 10k records; the expensive predicate holds for the top half, and the
/// // proxy score increases with the record index.
/// let scores: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
/// let oracle = FnOracle::new(|i| Labeled { matches: i >= 5_000, value: i as f64 });
///
/// let config = AbaeConfig { budget: 1_000, ..Default::default() };
/// let mut rng = StdRng::seed_from_u64(7);
/// let result = run_abae(&scores, &oracle, &config, Aggregate::Avg, &mut rng).unwrap();
///
/// // Exact answer is the mean of 5000..10000 = 7499.5.
/// assert!((result.estimate - 7499.5).abs() < 150.0);
/// assert!(result.oracle_calls <= 1_000);
/// ```
pub fn run_abae<O: Oracle, R: Rng + ?Sized>(
    proxy_scores: &[f64],
    oracle: &O,
    config: &AbaeConfig,
    agg: Aggregate,
    rng: &mut R,
) -> Result<AbaeResult, ConfigError> {
    config.validate()?;
    let strat = Stratification::by_proxy_quantile(proxy_scores, config.strata);
    let run = run_two_stage(&strat, oracle, config, agg, rng)?;
    Ok(AbaeResult { estimate: run.estimate, ci: None, oracle_calls: run.oracle_calls })
}

/// Runs ABae and attaches a bootstrap percentile CI (`ABaeWithCI`,
/// Algorithm 2).
pub fn run_abae_with_ci<O: Oracle, R: Rng + ?Sized>(
    proxy_scores: &[f64],
    oracle: &O,
    config: &AbaeConfig,
    agg: Aggregate,
    rng: &mut R,
) -> Result<AbaeResult, ConfigError> {
    let mut multi = run_abae_multi_with_ci(proxy_scores, oracle, config, &[agg], rng)?;
    let answer = multi.answers.pop().expect("one aggregate requested");
    Ok(AbaeResult {
        estimate: answer.estimate,
        ci: answer.ci,
        oracle_calls: multi.oracle_calls,
    })
}

/// Runs ABae **once** and answers several aggregates from the one labeled
/// sample — the shared-labeling pass behind multi-aggregate `SELECT`s.
///
/// Algorithm 1's sampling does not depend on which aggregate is asked for:
/// the draws, the pilot estimates, and the `√p̂_k·σ̂_k` allocation are all
/// functions of the predicate and the statistic alone. One run therefore
/// yields per-stratum sufficient statistics (`p̂_k`, `μ̂_k`, `σ̂_k`,
/// `|S_k|`, sampled positives — [`StratumEstimate`]) from which *every*
/// aggregate is a cheap [`combine_estimate`] fold, and Algorithm 2's
/// bootstrap resamples once per replicate while scoring all aggregates on
/// the same resample ([`stratified_bootstrap_cis`]). `SELECT COUNT(*),
/// SUM(views), AVG(views)` thus spends exactly one oracle budget.
///
/// With a single aggregate this consumes the same RNG stream as
/// [`run_abae_with_ci`] (which delegates here), so seeded results are
/// stable. An empty `aggs` still runs the sampling pass and returns no
/// answers.
pub fn run_abae_multi_with_ci<O: Oracle, R: Rng + ?Sized>(
    proxy_scores: &[f64],
    oracle: &O,
    config: &AbaeConfig,
    aggs: &[Aggregate],
    rng: &mut R,
) -> Result<MultiAggResult, ConfigError> {
    config.validate()?;
    let strat = Stratification::by_proxy_quantile(proxy_scores, config.strata);
    let primary = aggs.first().copied().unwrap_or(Aggregate::Avg);
    let run = run_two_stage(&strat, oracle, config, primary, rng)?;
    let sizes = strat.sizes();
    let cis = stratified_bootstrap_cis(&run.samples, &sizes, aggs, &config.bootstrap, rng);
    let answers = aggs
        .iter()
        .zip(cis)
        .map(|(&agg, ci)| AggAnswer { agg, estimate: combine_estimate(agg, &run.strata), ci })
        .collect();
    Ok(MultiAggResult { answers, oracle_calls: run.oracle_calls })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_data::FnOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A synthetic population where the proxy perfectly orders positives:
    /// records with index ≥ 60% of n match, and the statistic rises with
    /// the index so strata have different means.
    fn make_population(n: usize) -> (Vec<f64>, Vec<bool>, Vec<f64>) {
        let scores: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let labels: Vec<bool> = (0..n).map(|i| i >= n * 3 / 5).collect();
        let values: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 + i as f64 / n as f64).collect();
        (scores, labels, values)
    }

    fn oracle_for(
        labels: Vec<bool>,
        values: Vec<f64>,
    ) -> FnOracle<impl Fn(usize) -> Labeled> {
        FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] })
    }

    fn exact_avg(labels: &[bool], values: &[f64]) -> f64 {
        let (mut sum, mut cnt) = (0.0, 0usize);
        for (i, &l) in labels.iter().enumerate() {
            if l {
                sum += values[i];
                cnt += 1;
            }
        }
        sum / cnt as f64
    }

    #[test]
    fn estimates_converge_to_exact_answer() {
        let (scores, labels, values) = make_population(20_000);
        let truth = exact_avg(&labels, &values);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig { budget: 4000, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let mut errs = Vec::new();
        for _ in 0..30 {
            let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
            errs.push(r.estimate - truth);
        }
        let rmse = (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt();
        assert!(rmse < 0.15, "rmse {rmse} vs truth {truth}");
    }

    #[test]
    fn oracle_budget_is_respected_and_counted() {
        let (scores, labels, values) = make_population(50_000);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig { budget: 1000, strata: 5, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(2);
        let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        assert!(r.oracle_calls <= 1000, "spent {}", r.oracle_calls);
        // Floor rounding leaves < K draws unspent from each stage boundary.
        assert!(r.oracle_calls >= 1000 - 10, "spent only {}", r.oracle_calls);
        assert_eq!(oracle.calls(), r.oracle_calls);
    }

    #[test]
    fn count_and_sum_estimates_scale_correctly() {
        let (scores, labels, values) = make_population(10_000);
        let exact_count = labels.iter().filter(|&&l| l).count() as f64;
        let exact_sum: f64 = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(i, _)| values[i])
            .sum();
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig { budget: 3000, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(3);
        let count = run_abae(&scores, &oracle, &cfg, Aggregate::Count, &mut rng).unwrap();
        let sum = run_abae(&scores, &oracle, &cfg, Aggregate::Sum, &mut rng).unwrap();
        assert!((count.estimate - exact_count).abs() / exact_count < 0.05, "{}", count.estimate);
        assert!((sum.estimate - exact_sum).abs() / exact_sum < 0.05, "{}", sum.estimate);
    }

    #[test]
    fn perfect_proxy_allocates_stage2_to_positive_strata() {
        let (scores, labels, values) = make_population(10_000);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig { budget: 2000, strata: 5, ..Default::default() };
        let strat = Stratification::by_proxy_quantile(&scores, cfg.strata);
        let mut rng = StdRng::seed_from_u64(4);
        let run = run_two_stage(&strat, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        // Positives live at indices ≥ 60%: strata 0–2 are all-negative, so
        // their √p̂σ̂ = 0 and Stage 2 spends nothing there.
        assert_eq!(run.t_hat[0], 0.0);
        assert_eq!(run.t_hat[1], 0.0);
        assert!(run.t_hat[3] + run.t_hat[4] > 0.9);
        // Stage-2 draws (samples beyond the pilot) only in positive strata.
        let n1 = run.pilot[0].draws;
        assert_eq!(run.samples[0].len(), n1);
        assert!(run.samples[4].len() > n1);
    }

    #[test]
    fn no_reuse_discards_pilot_samples() {
        let (scores, labels, values) = make_population(10_000);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig {
            budget: 2000,
            reuse: SampleReuse::Disabled,
            ..Default::default()
        };
        let strat = Stratification::by_proxy_quantile(&scores, cfg.strata);
        let mut rng = StdRng::seed_from_u64(5);
        let run = run_two_stage(&strat, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        // Strata that received no Stage-2 allocation have zero samples.
        let total_kept: usize = run.samples.iter().map(Vec::len).sum();
        let total_drawn = run.oracle_calls as usize;
        assert!(total_kept < total_drawn, "kept {total_kept} of {total_drawn}");
    }

    #[test]
    fn tiny_strata_are_exhausted_not_overdrawn() {
        // 50 records, budget 200: every record can be labeled at most once.
        let scores: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        let labels = vec![true; 50];
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let truth = exact_avg(&labels, &values);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig { budget: 200, strata: 5, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(6);
        let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        assert!(r.oracle_calls <= 50);
        // Labeling everything once gives the exact answer.
        assert!((r.estimate - truth).abs() < 1e-9);
    }

    #[test]
    fn all_negative_population_estimates_zero() {
        let scores: Vec<f64> = (0..5000).map(|i| i as f64 / 5000.0).collect();
        let oracle = FnOracle::new(|_| Labeled { matches: false, value: 42.0 });
        let cfg = AbaeConfig { budget: 500, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(7);
        let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        assert_eq!(r.estimate, 0.0);
        let r = run_abae(&scores, &oracle, &cfg, Aggregate::Count, &mut rng).unwrap();
        assert_eq!(r.estimate, 0.0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let scores = vec![0.5; 100];
        let oracle = FnOracle::new(|_| Labeled { matches: true, value: 1.0 });
        let cfg = AbaeConfig { strata: 0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(8);
        assert!(run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).is_err());
    }

    #[test]
    fn largest_remainder_spends_full_stage2_budget() {
        let (scores, labels, values) = make_population(50_000);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig {
            budget: 1003,
            rounding: Rounding::LargestRemainder,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        // N1 = ⌊0.5·1003/5⌋ = 100 per stratum; N2 = 1003 − 500 = 503, all
        // spent under largest-remainder rounding.
        assert_eq!(r.oracle_calls, 1003);
    }

    #[test]
    fn reuse_beats_no_reuse_on_rmse() {
        // The Figure 9 lesion, in miniature.
        let (scores, labels, values) = make_population(30_000);
        let truth = exact_avg(&labels, &values);
        let oracle = oracle_for(labels.clone(), values.clone());
        let mut rng = StdRng::seed_from_u64(10);
        let trials = 60;
        let mut rmse_for = |reuse: SampleReuse| {
            let cfg = AbaeConfig { budget: 600, reuse, ..Default::default() };
            let mut errs = Vec::new();
            for _ in 0..trials {
                let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
                errs.push(r.estimate - truth);
            }
            (errs.iter().map(|e| e * e).sum::<f64>() / trials as f64).sqrt()
        };
        let with_reuse = rmse_for(SampleReuse::Enabled);
        let without = rmse_for(SampleReuse::Disabled);
        assert!(
            with_reuse < without,
            "reuse {with_reuse} should beat no-reuse {without}"
        );
    }

    #[test]
    fn multi_aggregate_run_spends_one_budget_for_n_answers() {
        let (scores, labels, values) = make_population(20_000);
        let exact_avg = exact_avg(&labels, &values);
        let exact_count = labels.iter().filter(|&&l| l).count() as f64;
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig {
            budget: 3000,
            bootstrap: crate::config::BootstrapConfig { trials: 200, alpha: 0.05 },
            ..Default::default()
        };
        let aggs = [Aggregate::Count, Aggregate::Sum, Aggregate::Avg];
        let mut rng = StdRng::seed_from_u64(20);
        let multi = run_abae_multi_with_ci(&scores, &oracle, &cfg, &aggs, &mut rng).unwrap();
        assert_eq!(multi.answers.len(), 3);
        // One budget for three answers: the whole run spent what a
        // single-aggregate run spends.
        oracle.reset_calls();
        let mut rng = StdRng::seed_from_u64(20);
        let single = run_abae_with_ci(&scores, &oracle, &cfg, Aggregate::Count, &mut rng).unwrap();
        assert_eq!(multi.oracle_calls, single.oracle_calls);
        // The first answer (same RNG stream) matches the single-agg run.
        assert_eq!(multi.answers[0].estimate, single.estimate);
        assert_eq!(multi.answers[0].ci, single.ci);
        // All answers are accurate and bracketed by their CIs.
        let count = &multi.answers[0];
        let avg = &multi.answers[2];
        assert!((count.estimate - exact_count).abs() / exact_count < 0.05, "{}", count.estimate);
        assert!((avg.estimate - exact_avg).abs() < 0.5, "{}", avg.estimate);
        for a in &multi.answers {
            let ci = a.ci.expect("bootstrap CI");
            assert!(ci.lo <= a.estimate && a.estimate <= ci.hi, "{:?}", a);
        }
    }

    #[test]
    fn multi_aggregate_run_accepts_empty_aggregate_list() {
        let (scores, labels, values) = make_population(5_000);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig { budget: 500, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(21);
        let multi = run_abae_multi_with_ci(&scores, &oracle, &cfg, &[], &mut rng).unwrap();
        assert!(multi.answers.is_empty());
        assert!(multi.oracle_calls <= 500);
    }

    #[test]
    fn with_ci_produces_covering_interval() {
        let (scores, labels, values) = make_population(20_000);
        let truth = exact_avg(&labels, &values);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig {
            budget: 2000,
            bootstrap: crate::config::BootstrapConfig { trials: 300, alpha: 0.05 },
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let mut covered = 0;
        let trials = 40;
        for _ in 0..trials {
            let r = run_abae_with_ci(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
            let ci = r.ci.expect("bootstrap CI");
            assert!(ci.lo <= r.estimate && r.estimate <= ci.hi);
            if ci.contains(truth) {
                covered += 1;
            }
        }
        assert!(covered as f64 / trials as f64 > 0.8, "coverage {covered}/{trials}");
    }
}
