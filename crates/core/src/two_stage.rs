//! The two-stage sampling algorithm (Algorithm 1, `ABaeSample`).
//!
//! Stage 1 (pilot): draw `N1` records without replacement from every
//! stratum, label them with the oracle, and form plug-in estimates of
//! `p_k` and `σ_k`. Stage 2: allocate `N2` further draws proportionally to
//! `T̂_k ∝ √p̂_k·σ̂_k` (floored per the paper), continuing the
//! without-replacement draw within each stratum. Final estimates use the
//! samples of both stages (sample reuse; §5.3 shows disabling it —
//! [`SampleReuse::Disabled`] — costs substantial accuracy).
//!
//! Both the blocking entry points and the anytime entry point
//! ([`run_abae_multi_progressive`]) run on one chunked core: labeling
//! proceeds in budget chunks, each chunk's labels fold into mergeable
//! [`StratumStats`] (a commutative monoid, so chunk boundaries cannot
//! change the accumulated state), and after every chunk a
//! [`Snapshot`] — a statistically valid estimate of the same query —
//! can be emitted. The blocking path is simply the one-chunk instance.
//! All randomness (which records to draw) stays on the caller's RNG in a
//! fixed order, and intermediate snapshot CIs use a forked RNG stream
//! derived from the budget spent, so the final snapshot is bit-identical
//! to a blocking run at any thread count and any chunk size.

use crate::bootstrap::stratified_bootstrap_cis;
use crate::config::{AbaeConfig, Aggregate, ConfigError, Rounding, SampleReuse};
use crate::estimator::{combine_estimate, StratumEstimate};
use crate::pipeline;
use crate::strata::Stratification;
use crate::stratum_stats::StratumStats;
use abae_data::{Labeled, Oracle};
use abae_sampling::budget::{
    chunk_sizes, floor_allocation, largest_remainder_allocation, stage_split,
};
use abae_sampling::pool::IndexPool;
use abae_stats::bootstrap::ConfidenceInterval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Full output of one two-stage run, including everything the bootstrap
/// needs to resample.
#[derive(Debug, Clone)]
pub struct TwoStageRun {
    /// The point estimate for the requested aggregate.
    pub estimate: f64,
    /// Per-stratum estimates underlying the final answer.
    pub strata: Vec<StratumEstimate>,
    /// Pilot (Stage-1) estimates, before Stage-2 refinement.
    pub pilot: Vec<StratumEstimate>,
    /// The estimated optimal allocation `T̂_k` computed after Stage 1.
    pub t_hat: Vec<f64>,
    /// Per-stratum labeled draws that entered the final estimates (both
    /// stages under reuse, Stage-2 only otherwise).
    pub samples: Vec<Vec<Labeled>>,
    /// Total oracle invocations spent.
    pub oracle_calls: u64,
}

/// A point estimate with an optional confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct AbaeResult {
    /// The point estimate.
    pub estimate: f64,
    /// Bootstrap percentile CI, when requested.
    pub ci: Option<ConfidenceInterval>,
    /// Total oracle invocations spent.
    pub oracle_calls: u64,
}

/// One aggregate's answer within a shared-labeling multi-aggregate run.
#[derive(Debug, Clone, PartialEq)]
pub struct AggAnswer {
    /// The aggregate this answer is for.
    pub agg: Aggregate,
    /// The point estimate.
    pub estimate: f64,
    /// Bootstrap percentile CI (`None` when no draws or `trials == 0`).
    pub ci: Option<ConfidenceInterval>,
}

/// Result of [`run_abae_multi_with_ci`]: one answer per requested
/// aggregate, all paid for by a single oracle budget.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiAggResult {
    /// Answers in the order the aggregates were requested.
    pub answers: Vec<AggAnswer>,
    /// Total oracle invocations spent — the same as a single-aggregate run
    /// with the same configuration, however many aggregates were asked for.
    pub oracle_calls: u64,
}

/// One anytime snapshot: a statistically valid answer to the same query
/// from the draws labeled so far.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// One answer per requested aggregate, as of this snapshot. Estimates
    /// come from the merged [`StratumStats`]; intermediate CIs use a forked
    /// RNG stream so they never perturb the caller's stream.
    pub answers: Vec<AggAnswer>,
    /// Oracle labels consumed up to and including this snapshot's chunk.
    pub budget_spent: u64,
    /// `true` on the last snapshot of a run — either the budget was
    /// exhausted (in which case the snapshot is bit-identical to a blocking
    /// run) or the CI width target was reached and the run stopped early.
    pub done: bool,
}

/// Knobs of the anytime executor ([`run_abae_multi_progressive`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProgressiveOptions {
    /// Oracle labels per chunk between snapshots. `None` uses the exec
    /// batch size ([`crate::pipeline::ExecOptions::batch_size`]); values
    /// are clamped to at least 1. Chunk size changes only *when* snapshots
    /// are emitted, never what is drawn or the final answer.
    pub chunk: Option<usize>,
    /// Early-stop rule: stop at the first chunk boundary where the primary
    /// (first) aggregate's snapshot CI is narrower than this. `None` runs
    /// the full budget.
    pub target_ci_width: Option<f64>,
}

/// Output of the chunked sampling core shared by every entry point.
struct ChunkedRun {
    /// Pilot estimates (empty when the run stopped during Stage 1).
    pilot: Vec<StratumEstimate>,
    /// Estimated optimal allocation (empty when stopped during Stage 1).
    t_hat: Vec<f64>,
    /// Per-stratum labeled draws in draw order, reuse-adjusted — exactly
    /// what the blocking estimator and bootstrap consume.
    samples: Vec<Vec<Labeled>>,
    /// Labels actually consumed (≤ the configured budget on early stop).
    budget_spent: u64,
    /// Whether the observer stopped the run before the budget was spent.
    stopped: bool,
    /// Oracle invocations charged (cache hits excluded by caching oracles).
    oracle_calls: u64,
}

/// Labels one chunk of `(stratum, record)` work items, appends the labels
/// to `out` in draw order, and folds the chunk into the accumulated
/// per-stratum states via [`StratumStats::merge`] — the chunked-ingest
/// path: each chunk is a partial state merged into the whole.
fn label_chunk<O: Oracle + ?Sized>(
    oracle: &O,
    config: &AbaeConfig,
    items: &[(usize, usize)],
    out: &mut [Vec<Labeled>],
    stats: &mut [StratumStats],
    sizes: &[usize],
) {
    let ids: Vec<usize> = items.iter().map(|&(_, id)| id).collect();
    let labels = pipeline::label_all(oracle, &ids, &config.exec);
    let mut partial: Vec<Vec<(usize, Labeled)>> = vec![Vec::new(); out.len()];
    for (&(s, id), &label) in items.iter().zip(&labels) {
        out[s].push(label);
        partial[s].push((id, label));
    }
    for (s, p) in partial.into_iter().enumerate() {
        if !p.is_empty() {
            let incoming = StratumStats::from_labeled(sizes[s], p);
            let acc = std::mem::replace(&mut stats[s], StratumStats::empty(sizes[s]));
            stats[s] = StratumStats::merge(acc, incoming);
        }
    }
}

/// The chunked two-stage core. All RNG consumption (which records to draw)
/// happens here, on the caller's thread, in a fixed order: Stage-1 draws
/// per stratum, then Stage-2 draws per stratum — identical to the blocking
/// interleaved order because labeling never touches the RNG. Labeling
/// proceeds in `chunk`-sized pieces; after every chunk *except the last of
/// a run* the observer sees the merged per-stratum states, the budget
/// spent, and whether the pilot stage is complete, and may stop the run by
/// returning `true`. With `chunk == usize::MAX` and an always-`false`
/// observer this is exactly the blocking executor.
fn two_stage_chunked<O: Oracle + ?Sized, R: Rng + ?Sized>(
    stratification: &Stratification,
    oracle: &O,
    config: &AbaeConfig,
    chunk: usize,
    rng: &mut R,
    observe: &mut dyn FnMut(&[StratumStats], u64, bool) -> bool,
) -> ChunkedRun {
    let k = stratification.len();
    let split = stage_split(config.budget, config.stage1_fraction, k);
    let calls_before = oracle.calls();

    // Stage-1 draws, hoisted ahead of labeling: N1 per stratum, in stratum
    // order — the same RNG stream as drawing and labeling interleaved.
    let sizes: Vec<usize> = (0..k).map(|s| stratification.stratum(s).len()).collect();
    let mut pools: Vec<IndexPool> = Vec::with_capacity(k);
    let mut flat1: Vec<(usize, usize)> = Vec::new();
    for s in 0..k {
        let records = stratification.stratum(s);
        let mut pool = IndexPool::new(records.len());
        flat1.extend(pool.draw(split.n1_per_stratum, rng).iter().map(|&l| (s, records[l])));
        pools.push(pool);
    }

    let mut stats: Vec<StratumStats> =
        sizes.iter().map(|&n| StratumStats::empty(n)).collect();
    let mut stage1: Vec<Vec<Labeled>> = vec![Vec::new(); k];
    let mut spent = 0u64;
    let mut stopped = false;

    // Stage-1 labeling in chunks. The final Stage-1 chunk is not a
    // snapshot boundary by itself — whether it is the run's last chunk
    // depends on whether Stage 2 gets any allocation, so its observer call
    // is deferred until that is known.
    let chunks1 = chunk_sizes(flat1.len(), chunk);
    let mut start = 0;
    for (i, &csize) in chunks1.iter().enumerate() {
        label_chunk(oracle, config, &flat1[start..start + csize], &mut stage1, &mut stats, &sizes);
        start += csize;
        spent += csize as u64;
        if i + 1 < chunks1.len() && observe(&stats, spent, false) {
            stopped = true;
            break;
        }
    }

    let mut pilot: Vec<StratumEstimate> = Vec::new();
    let mut t_hat: Vec<f64> = Vec::new();
    let mut stage2: Vec<Vec<Labeled>> = vec![Vec::new(); k];
    if !stopped {
        pilot = stage1
            .iter()
            .enumerate()
            .map(|(s, draws)| StratumEstimate::from_draws(sizes[s], draws))
            .collect();

        // Allocation from pilot estimates: T̂_k ∝ √p̂_k σ̂_k.
        let weights: Vec<f64> = pilot.iter().map(|e| e.p_hat.sqrt() * e.sigma_hat).collect();
        t_hat = crate::allocation::optimal_allocation(
            &pilot.iter().map(|e| e.p_hat).collect::<Vec<_>>(),
            &pilot.iter().map(|e| e.sigma_hat).collect::<Vec<_>>(),
        );
        let stage2_alloc = match config.rounding {
            Rounding::Floor => floor_allocation(&weights, split.n2_total),
            Rounding::LargestRemainder => largest_remainder_allocation(&weights, split.n2_total),
        };

        // Stage-2 draws, hoisted: extend each stratum's without-replacement
        // draw, in stratum order — again the blocking RNG stream.
        let mut flat2: Vec<(usize, usize)> = Vec::new();
        for s in 0..k {
            let records = stratification.stratum(s);
            flat2.extend(pools[s].draw(stage2_alloc[s], rng).iter().map(|&l| (s, records[l])));
        }

        // The deferred Stage-1 boundary is a snapshot only when Stage 2 has
        // work left (otherwise it is the run's final chunk).
        if !flat2.is_empty() && observe(&stats, spent, true) {
            stopped = true;
        }
        if !stopped {
            if config.reuse == SampleReuse::Disabled {
                // Final estimates discard the pilot, so the snapshot state
                // resets at the stage boundary too.
                stats = sizes.iter().map(|&n| StratumStats::empty(n)).collect();
            }
            let chunks2 = chunk_sizes(flat2.len(), chunk);
            let mut start = 0;
            for (i, &csize) in chunks2.iter().enumerate() {
                label_chunk(
                    oracle,
                    config,
                    &flat2[start..start + csize],
                    &mut stage2,
                    &mut stats,
                    &sizes,
                );
                start += csize;
                spent += csize as u64;
                if i + 1 < chunks2.len() && observe(&stats, spent, true) {
                    stopped = true;
                    break;
                }
            }
        }
    }

    let samples: Vec<Vec<Labeled>> = match config.reuse {
        SampleReuse::Enabled => stage1
            .into_iter()
            .zip(stage2)
            .map(|(mut a, b)| {
                a.extend(b);
                a
            })
            .collect(),
        SampleReuse::Disabled => stage2,
    };

    ChunkedRun {
        pilot,
        t_hat,
        samples,
        budget_spent: spent,
        stopped,
        oracle_calls: oracle.calls() - calls_before,
    }
}

/// Runs Algorithm 1 on a prepared stratification.
///
/// `stratification` comes from [`Stratification::by_proxy_quantile`]
/// (`ABaeInit`); `oracle` is charged once per drawn record; `agg` selects
/// the aggregate; `rng` drives all randomness. This is the one-chunk
/// instance of the chunked core — no snapshots, full budget.
///
/// # Errors
/// Returns the configuration's validation error, if any.
pub fn run_two_stage<O: Oracle, R: Rng + ?Sized>(
    stratification: &Stratification,
    oracle: &O,
    config: &AbaeConfig,
    agg: Aggregate,
    rng: &mut R,
) -> Result<TwoStageRun, ConfigError> {
    config.validate()?;
    let run =
        two_stage_chunked(stratification, oracle, config, usize::MAX, rng, &mut |_, _, _| false);
    let strata: Vec<StratumEstimate> = run
        .samples
        .iter()
        .enumerate()
        .map(|(s, draws)| StratumEstimate::from_draws(stratification.stratum(s).len(), draws))
        .collect();
    Ok(TwoStageRun {
        estimate: combine_estimate(agg, &strata),
        strata,
        pilot: run.pilot,
        t_hat: run.t_hat,
        samples: run.samples,
        oracle_calls: run.oracle_calls,
    })
}

/// Convenience entry point: stratify by proxy quantile and run Algorithm 1.
///
/// ```
/// use abae_core::{run_abae, Aggregate, AbaeConfig};
/// use abae_data::{FnOracle, Labeled};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // 10k records; the expensive predicate holds for the top half, and the
/// // proxy score increases with the record index.
/// let scores: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
/// let oracle = FnOracle::new(|i| Labeled { matches: i >= 5_000, value: i as f64 });
///
/// let config = AbaeConfig { budget: 1_000, ..Default::default() };
/// let mut rng = StdRng::seed_from_u64(7);
/// let result = run_abae(&scores, &oracle, &config, Aggregate::Avg, &mut rng).unwrap();
///
/// // Exact answer is the mean of 5000..10000 = 7499.5.
/// assert!((result.estimate - 7499.5).abs() < 150.0);
/// assert!(result.oracle_calls <= 1_000);
/// ```
pub fn run_abae<O: Oracle, R: Rng + ?Sized>(
    proxy_scores: &[f64],
    oracle: &O,
    config: &AbaeConfig,
    agg: Aggregate,
    rng: &mut R,
) -> Result<AbaeResult, ConfigError> {
    config.validate()?;
    let strat = Stratification::by_proxy_quantile(proxy_scores, config.strata);
    let run = run_two_stage(&strat, oracle, config, agg, rng)?;
    Ok(AbaeResult { estimate: run.estimate, ci: None, oracle_calls: run.oracle_calls })
}

/// Runs ABae and attaches a bootstrap percentile CI (`ABaeWithCI`,
/// Algorithm 2).
pub fn run_abae_with_ci<O: Oracle, R: Rng + ?Sized>(
    proxy_scores: &[f64],
    oracle: &O,
    config: &AbaeConfig,
    agg: Aggregate,
    rng: &mut R,
) -> Result<AbaeResult, ConfigError> {
    let mut multi = run_abae_multi_with_ci(proxy_scores, oracle, config, &[agg], rng)?;
    let answer = multi.answers.pop().expect("one aggregate requested");
    Ok(AbaeResult {
        estimate: answer.estimate,
        ci: answer.ci,
        oracle_calls: multi.oracle_calls,
    })
}

/// Runs ABae **once** and answers several aggregates from the one labeled
/// sample — the shared-labeling pass behind multi-aggregate `SELECT`s.
///
/// Algorithm 1's sampling does not depend on which aggregate is asked for:
/// the draws, the pilot estimates, and the `√p̂_k·σ̂_k` allocation are all
/// functions of the predicate and the statistic alone. One run therefore
/// yields per-stratum sufficient statistics (`p̂_k`, `μ̂_k`, `σ̂_k`,
/// `|S_k|`, sampled positives — [`StratumEstimate`]) from which *every*
/// aggregate is a cheap [`combine_estimate`] fold, and Algorithm 2's
/// bootstrap resamples once per replicate while scoring all aggregates on
/// the same resample ([`stratified_bootstrap_cis`]). `SELECT COUNT(*),
/// SUM(views), AVG(views)` thus spends exactly one oracle budget.
///
/// With a single aggregate this consumes the same RNG stream as
/// [`run_abae_with_ci`] (which delegates here), so seeded results are
/// stable. An empty `aggs` still runs the sampling pass and returns no
/// answers.
pub fn run_abae_multi_with_ci<O: Oracle, R: Rng + ?Sized>(
    proxy_scores: &[f64],
    oracle: &O,
    config: &AbaeConfig,
    aggs: &[Aggregate],
    rng: &mut R,
) -> Result<MultiAggResult, ConfigError> {
    config.validate()?;
    let strat = Stratification::by_proxy_quantile(proxy_scores, config.strata);
    let primary = aggs.first().copied().unwrap_or(Aggregate::Avg);
    let run = run_two_stage(&strat, oracle, config, primary, rng)?;
    let sizes = strat.sizes();
    let cis = stratified_bootstrap_cis(&run.samples, &sizes, aggs, &config.bootstrap, rng);
    let answers = aggs
        .iter()
        .zip(cis)
        .map(|(&agg, ci)| AggAnswer { agg, estimate: combine_estimate(agg, &run.strata), ci })
        .collect();
    Ok(MultiAggResult { answers, oracle_calls: run.oracle_calls })
}

/// Stream tag for the forked snapshot-CI RNG, mixed with the budget spent.
/// Intermediate CIs must not consume the caller's stream, or snapshot
/// boundaries would change the final answer.
const SNAPSHOT_STREAM: u64 = 0x5E55_3003;

/// The forked RNG used for one intermediate snapshot's bootstrap: a pure
/// function of the budget spent, independent of chunk size and threads.
/// Shared with the group-by progressive executor.
pub(crate) fn snapshot_rng(budget_spent: u64) -> StdRng {
    // abae-lint: allow(rng_discipline) -- deterministic fork: the seed is a pure function of budget spent, deliberately independent of the caller's stream so snapshot cadence cannot perturb the final answer
    StdRng::seed_from_u64(SNAPSHOT_STREAM ^ budget_spent.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Builds one intermediate snapshot from the merged per-stratum states:
/// estimates via [`StratumStats::estimate`] + [`combine_estimate`], CIs by
/// bootstrapping the canonical-order draws with the forked snapshot RNG.
fn snapshot_from_stats(
    stats: &[StratumStats],
    sizes: &[usize],
    aggs: &[Aggregate],
    config: &AbaeConfig,
    budget_spent: u64,
) -> Snapshot {
    let estimates: Vec<StratumEstimate> = stats.iter().map(StratumStats::estimate).collect();
    let samples: Vec<Vec<Labeled>> = stats.iter().map(StratumStats::labeled).collect();
    let mut fork = snapshot_rng(budget_spent);
    let cis = stratified_bootstrap_cis(&samples, sizes, aggs, &config.bootstrap, &mut fork);
    let answers = aggs
        .iter()
        .zip(cis)
        .map(|(&agg, ci)| AggAnswer { agg, estimate: combine_estimate(agg, &estimates), ci })
        .collect();
    Snapshot { answers, budget_spent, done: false }
}

/// The anytime executor: runs the same query as [`run_abae_multi_with_ci`]
/// but labels in budget chunks, invoking `on_snapshot` after every chunk
/// with a statistically valid estimate of the query so far.
///
/// Semantics:
///
/// * Without a CI width target the run spends the full budget and the
///   final snapshot (`done == true`) — estimates, CIs, and `oracle_calls`
///   — is **bit-identical** to the blocking run with the same seed, for
///   any chunk size and any thread count. The returned result equals that
///   final snapshot.
/// * With [`ProgressiveOptions::target_ci_width`] set, the run stops at
///   the first chunk boundary — once the pilot stage is complete — where
///   the primary (first) aggregate's snapshot CI is narrower than the
///   target, charging only the budget actually consumed; the final
///   snapshot is the one that met the target.
///
/// # Errors
/// Returns the configuration's validation error, or
/// [`ConfigError::BadTargetWidth`] when the target is not a positive
/// finite number.
pub fn run_abae_multi_progressive<O: Oracle, R: Rng + ?Sized>(
    proxy_scores: &[f64],
    oracle: &O,
    config: &AbaeConfig,
    aggs: &[Aggregate],
    progressive: &ProgressiveOptions,
    rng: &mut R,
    mut on_snapshot: impl FnMut(&Snapshot),
) -> Result<MultiAggResult, ConfigError> {
    config.validate()?;
    if let Some(w) = progressive.target_ci_width {
        if !(w.is_finite() && w > 0.0) {
            return Err(ConfigError::BadTargetWidth(w));
        }
    }
    let strat = Stratification::by_proxy_quantile(proxy_scores, config.strata);
    let sizes = strat.sizes();
    let chunk = progressive.chunk.unwrap_or(config.exec.batch_size).max(1);
    let target = progressive.target_ci_width;

    let mut stopping: Option<Snapshot> = None;
    let run = {
        let mut observe = |stats: &[StratumStats], spent: u64, pilot_complete: bool| -> bool {
            let mut snap = snapshot_from_stats(stats, &sizes, aggs, config, spent);
            // The stopping rule only applies once the pilot stage is
            // complete: partial-pilot CIs can degenerate to zero width
            // (e.g. an all-negative first stratum) and would stop bogusly.
            let stop = match (target, snap.answers.first().and_then(|a| a.ci)) {
                (Some(w), Some(ci)) => pilot_complete && ci.width() < w,
                _ => false,
            };
            snap.done = stop;
            on_snapshot(&snap);
            if stop {
                stopping = Some(snap);
            }
            stop
        };
        two_stage_chunked(&strat, oracle, config, chunk, rng, &mut observe)
    };

    if run.stopped {
        let snap = stopping.expect("a stopped run records its stopping snapshot");
        return Ok(MultiAggResult { answers: snap.answers, oracle_calls: run.oracle_calls });
    }

    // Complete run: finish exactly as the blocking executor does — final
    // estimates from the draw-order samples, bootstrap CIs from the
    // caller's RNG at the same stream position.
    let strata: Vec<StratumEstimate> = run
        .samples
        .iter()
        .enumerate()
        .map(|(s, draws)| StratumEstimate::from_draws(sizes[s], draws))
        .collect();
    let cis = stratified_bootstrap_cis(&run.samples, &sizes, aggs, &config.bootstrap, rng);
    let answers: Vec<AggAnswer> = aggs
        .iter()
        .zip(cis)
        .map(|(&agg, ci)| AggAnswer { agg, estimate: combine_estimate(agg, &strata), ci })
        .collect();
    on_snapshot(&Snapshot {
        answers: answers.clone(),
        budget_spent: run.budget_spent,
        done: true,
    });
    Ok(MultiAggResult { answers, oracle_calls: run.oracle_calls })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_data::FnOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A synthetic population where the proxy perfectly orders positives:
    /// records with index ≥ 60% of n match, and the statistic rises with
    /// the index so strata have different means.
    fn make_population(n: usize) -> (Vec<f64>, Vec<bool>, Vec<f64>) {
        let scores: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let labels: Vec<bool> = (0..n).map(|i| i >= n * 3 / 5).collect();
        let values: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 + i as f64 / n as f64).collect();
        (scores, labels, values)
    }

    fn oracle_for(
        labels: Vec<bool>,
        values: Vec<f64>,
    ) -> FnOracle<impl Fn(usize) -> Labeled> {
        FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] })
    }

    fn exact_avg(labels: &[bool], values: &[f64]) -> f64 {
        let (mut sum, mut cnt) = (0.0, 0usize);
        for (i, &l) in labels.iter().enumerate() {
            if l {
                sum += values[i];
                cnt += 1;
            }
        }
        sum / cnt as f64
    }

    #[test]
    fn estimates_converge_to_exact_answer() {
        let (scores, labels, values) = make_population(20_000);
        let truth = exact_avg(&labels, &values);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig { budget: 4000, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let mut errs = Vec::new();
        for _ in 0..30 {
            let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
            errs.push(r.estimate - truth);
        }
        let rmse = (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt();
        assert!(rmse < 0.15, "rmse {rmse} vs truth {truth}");
    }

    #[test]
    fn oracle_budget_is_respected_and_counted() {
        let (scores, labels, values) = make_population(50_000);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig { budget: 1000, strata: 5, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(2);
        let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        assert!(r.oracle_calls <= 1000, "spent {}", r.oracle_calls);
        // Floor rounding leaves < K draws unspent from each stage boundary.
        assert!(r.oracle_calls >= 1000 - 10, "spent only {}", r.oracle_calls);
        assert_eq!(oracle.calls(), r.oracle_calls);
    }

    #[test]
    fn count_and_sum_estimates_scale_correctly() {
        let (scores, labels, values) = make_population(10_000);
        let exact_count = labels.iter().filter(|&&l| l).count() as f64;
        let exact_sum: f64 = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(i, _)| values[i])
            .sum();
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig { budget: 3000, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(3);
        let count = run_abae(&scores, &oracle, &cfg, Aggregate::Count, &mut rng).unwrap();
        let sum = run_abae(&scores, &oracle, &cfg, Aggregate::Sum, &mut rng).unwrap();
        assert!((count.estimate - exact_count).abs() / exact_count < 0.05, "{}", count.estimate);
        assert!((sum.estimate - exact_sum).abs() / exact_sum < 0.05, "{}", sum.estimate);
    }

    #[test]
    fn perfect_proxy_allocates_stage2_to_positive_strata() {
        let (scores, labels, values) = make_population(10_000);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig { budget: 2000, strata: 5, ..Default::default() };
        let strat = Stratification::by_proxy_quantile(&scores, cfg.strata);
        let mut rng = StdRng::seed_from_u64(4);
        let run = run_two_stage(&strat, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        // Positives live at indices ≥ 60%: strata 0–2 are all-negative, so
        // their √p̂σ̂ = 0 and Stage 2 spends nothing there.
        assert_eq!(run.t_hat[0], 0.0);
        assert_eq!(run.t_hat[1], 0.0);
        assert!(run.t_hat[3] + run.t_hat[4] > 0.9);
        // Stage-2 draws (samples beyond the pilot) only in positive strata.
        let n1 = run.pilot[0].draws;
        assert_eq!(run.samples[0].len(), n1);
        assert!(run.samples[4].len() > n1);
    }

    #[test]
    fn no_reuse_discards_pilot_samples() {
        let (scores, labels, values) = make_population(10_000);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig {
            budget: 2000,
            reuse: SampleReuse::Disabled,
            ..Default::default()
        };
        let strat = Stratification::by_proxy_quantile(&scores, cfg.strata);
        let mut rng = StdRng::seed_from_u64(5);
        let run = run_two_stage(&strat, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        // Strata that received no Stage-2 allocation have zero samples.
        let total_kept: usize = run.samples.iter().map(Vec::len).sum();
        let total_drawn = run.oracle_calls as usize;
        assert!(total_kept < total_drawn, "kept {total_kept} of {total_drawn}");
    }

    #[test]
    fn tiny_strata_are_exhausted_not_overdrawn() {
        // 50 records, budget 200: every record can be labeled at most once.
        let scores: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        let labels = vec![true; 50];
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let truth = exact_avg(&labels, &values);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig { budget: 200, strata: 5, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(6);
        let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        assert!(r.oracle_calls <= 50);
        // Labeling everything once gives the exact answer.
        assert!((r.estimate - truth).abs() < 1e-9);
    }

    #[test]
    fn all_negative_population_estimates_zero() {
        let scores: Vec<f64> = (0..5000).map(|i| i as f64 / 5000.0).collect();
        let oracle = FnOracle::new(|_| Labeled { matches: false, value: 42.0 });
        let cfg = AbaeConfig { budget: 500, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(7);
        let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        assert_eq!(r.estimate, 0.0);
        let r = run_abae(&scores, &oracle, &cfg, Aggregate::Count, &mut rng).unwrap();
        assert_eq!(r.estimate, 0.0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let scores = vec![0.5; 100];
        let oracle = FnOracle::new(|_| Labeled { matches: true, value: 1.0 });
        let cfg = AbaeConfig { strata: 0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(8);
        assert!(run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).is_err());
    }

    #[test]
    fn largest_remainder_spends_full_stage2_budget() {
        let (scores, labels, values) = make_population(50_000);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig {
            budget: 1003,
            rounding: Rounding::LargestRemainder,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
        // N1 = ⌊0.5·1003/5⌋ = 100 per stratum; N2 = 1003 − 500 = 503, all
        // spent under largest-remainder rounding.
        assert_eq!(r.oracle_calls, 1003);
    }

    #[test]
    fn reuse_beats_no_reuse_on_rmse() {
        // The Figure 9 lesion, in miniature.
        let (scores, labels, values) = make_population(30_000);
        let truth = exact_avg(&labels, &values);
        let oracle = oracle_for(labels.clone(), values.clone());
        let mut rng = StdRng::seed_from_u64(10);
        let trials = 60;
        let mut rmse_for = |reuse: SampleReuse| {
            let cfg = AbaeConfig { budget: 600, reuse, ..Default::default() };
            let mut errs = Vec::new();
            for _ in 0..trials {
                let r = run_abae(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
                errs.push(r.estimate - truth);
            }
            (errs.iter().map(|e| e * e).sum::<f64>() / trials as f64).sqrt()
        };
        let with_reuse = rmse_for(SampleReuse::Enabled);
        let without = rmse_for(SampleReuse::Disabled);
        assert!(
            with_reuse < without,
            "reuse {with_reuse} should beat no-reuse {without}"
        );
    }

    #[test]
    fn multi_aggregate_run_spends_one_budget_for_n_answers() {
        let (scores, labels, values) = make_population(20_000);
        let exact_avg = exact_avg(&labels, &values);
        let exact_count = labels.iter().filter(|&&l| l).count() as f64;
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig {
            budget: 3000,
            bootstrap: crate::config::BootstrapConfig { trials: 200, alpha: 0.05 },
            ..Default::default()
        };
        let aggs = [Aggregate::Count, Aggregate::Sum, Aggregate::Avg];
        let mut rng = StdRng::seed_from_u64(20);
        let multi = run_abae_multi_with_ci(&scores, &oracle, &cfg, &aggs, &mut rng).unwrap();
        assert_eq!(multi.answers.len(), 3);
        // One budget for three answers: the whole run spent what a
        // single-aggregate run spends.
        oracle.reset_calls();
        let mut rng = StdRng::seed_from_u64(20);
        let single = run_abae_with_ci(&scores, &oracle, &cfg, Aggregate::Count, &mut rng).unwrap();
        assert_eq!(multi.oracle_calls, single.oracle_calls);
        // The first answer (same RNG stream) matches the single-agg run.
        assert_eq!(multi.answers[0].estimate, single.estimate);
        assert_eq!(multi.answers[0].ci, single.ci);
        // All answers are accurate and bracketed by their CIs.
        let count = &multi.answers[0];
        let avg = &multi.answers[2];
        assert!((count.estimate - exact_count).abs() / exact_count < 0.05, "{}", count.estimate);
        assert!((avg.estimate - exact_avg).abs() < 0.5, "{}", avg.estimate);
        for a in &multi.answers {
            let ci = a.ci.expect("bootstrap CI");
            assert!(ci.lo <= a.estimate && a.estimate <= ci.hi, "{:?}", a);
        }
    }

    #[test]
    fn multi_aggregate_run_accepts_empty_aggregate_list() {
        let (scores, labels, values) = make_population(5_000);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig { budget: 500, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(21);
        let multi = run_abae_multi_with_ci(&scores, &oracle, &cfg, &[], &mut rng).unwrap();
        assert!(multi.answers.is_empty());
        assert!(multi.oracle_calls <= 500);
    }

    #[test]
    fn progressive_final_snapshot_is_bit_identical_to_blocking() {
        let (scores, labels, values) = make_population(10_000);
        let oracle = oracle_for(labels.clone(), values.clone());
        let cfg = AbaeConfig {
            budget: 800,
            bootstrap: crate::config::BootstrapConfig { trials: 60, alpha: 0.05 },
            ..Default::default()
        };
        let aggs = [Aggregate::Avg, Aggregate::Count];
        let mut rng = StdRng::seed_from_u64(42);
        let blocking = run_abae_multi_with_ci(&scores, &oracle, &cfg, &aggs, &mut rng).unwrap();
        for chunk in [1usize, 7, 64, 4096] {
            let oracle = oracle_for(labels.clone(), values.clone());
            let mut rng = StdRng::seed_from_u64(42);
            let mut snapshots: Vec<Snapshot> = Vec::new();
            let opts = ProgressiveOptions { chunk: Some(chunk), target_ci_width: None };
            let progressive = run_abae_multi_progressive(
                &scores,
                &oracle,
                &cfg,
                &aggs,
                &opts,
                &mut rng,
                |s| snapshots.push(s.clone()),
            )
            .unwrap();
            assert_eq!(progressive, blocking, "chunk={chunk}");
            let last = snapshots.last().expect("at least the final snapshot");
            assert!(last.done);
            assert_eq!(last.answers, blocking.answers, "chunk={chunk}");
            assert_eq!(last.budget_spent, blocking.oracle_calls, "chunk={chunk}");
            // Only the final snapshot is marked done, budgets increase.
            assert!(snapshots.iter().rev().skip(1).all(|s| !s.done));
            assert!(snapshots.windows(2).all(|w| w[0].budget_spent < w[1].budget_spent));
        }
    }

    #[test]
    fn progressive_with_reuse_disabled_still_matches_blocking() {
        let (scores, labels, values) = make_population(8_000);
        let oracle = oracle_for(labels.clone(), values.clone());
        let cfg = AbaeConfig {
            budget: 600,
            reuse: SampleReuse::Disabled,
            bootstrap: crate::config::BootstrapConfig { trials: 40, alpha: 0.05 },
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(23);
        let blocking =
            run_abae_multi_with_ci(&scores, &oracle, &cfg, &[Aggregate::Avg], &mut rng).unwrap();
        let oracle = oracle_for(labels, values);
        let mut rng = StdRng::seed_from_u64(23);
        let opts = ProgressiveOptions { chunk: Some(16), target_ci_width: None };
        let progressive = run_abae_multi_progressive(
            &scores,
            &oracle,
            &cfg,
            &[Aggregate::Avg],
            &opts,
            &mut rng,
            |_| {},
        )
        .unwrap();
        assert_eq!(progressive, blocking);
    }

    #[test]
    fn early_stop_spends_less_and_meets_the_target() {
        let (scores, labels, values) = make_population(20_000);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig {
            budget: 4000,
            bootstrap: crate::config::BootstrapConfig { trials: 80, alpha: 0.05 },
            ..Default::default()
        };
        // A loose target the estimator reaches well before the budget.
        let opts = ProgressiveOptions { chunk: Some(100), target_ci_width: Some(1.5) };
        let mut rng = StdRng::seed_from_u64(31);
        let mut final_snapshot = None;
        let result = run_abae_multi_progressive(
            &scores,
            &oracle,
            &cfg,
            &[Aggregate::Avg],
            &opts,
            &mut rng,
            |s| {
                if s.done {
                    final_snapshot = Some(s.clone());
                }
            },
        )
        .unwrap();
        assert!(result.oracle_calls < 4000, "spent {}", result.oracle_calls);
        let snap = final_snapshot.expect("early stop emits a done snapshot");
        assert!(snap.answers[0].ci.unwrap().width() < 1.5);
        assert_eq!(snap.answers, result.answers);
        assert_eq!(oracle.calls(), result.oracle_calls, "only consumed labels are charged");
    }

    #[test]
    fn unreachable_target_runs_the_full_budget() {
        let (scores, labels, values) = make_population(5_000);
        let oracle = oracle_for(labels.clone(), values.clone());
        let cfg = AbaeConfig {
            budget: 500,
            bootstrap: crate::config::BootstrapConfig { trials: 40, alpha: 0.05 },
            ..Default::default()
        };
        let opts = ProgressiveOptions { chunk: Some(50), target_ci_width: Some(1e-12) };
        let mut rng = StdRng::seed_from_u64(5);
        let progressive = run_abae_multi_progressive(
            &scores,
            &oracle,
            &cfg,
            &[Aggregate::Avg],
            &opts,
            &mut rng,
            |_| {},
        )
        .unwrap();
        let oracle = oracle_for(labels, values);
        let mut rng = StdRng::seed_from_u64(5);
        let blocking =
            run_abae_multi_with_ci(&scores, &oracle, &cfg, &[Aggregate::Avg], &mut rng).unwrap();
        assert_eq!(progressive, blocking, "an unmet target must not change the answer");
    }

    #[test]
    fn bad_ci_width_targets_are_rejected() {
        let (scores, labels, values) = make_population(1_000);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig { budget: 200, ..Default::default() };
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let opts = ProgressiveOptions { chunk: None, target_ci_width: Some(bad) };
            let mut rng = StdRng::seed_from_u64(1);
            let err = run_abae_multi_progressive(
                &scores,
                &oracle,
                &cfg,
                &[Aggregate::Avg],
                &opts,
                &mut rng,
                |_| {},
            )
            .unwrap_err();
            assert!(matches!(err, ConfigError::BadTargetWidth(_)), "{bad}: {err}");
        }
    }

    #[test]
    fn with_ci_produces_covering_interval() {
        let (scores, labels, values) = make_population(20_000);
        let truth = exact_avg(&labels, &values);
        let oracle = oracle_for(labels, values);
        let cfg = AbaeConfig {
            budget: 2000,
            bootstrap: crate::config::BootstrapConfig { trials: 300, alpha: 0.05 },
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let mut covered = 0;
        let trials = 40;
        for _ in 0..trials {
            let r = run_abae_with_ci(&scores, &oracle, &cfg, Aggregate::Avg, &mut rng).unwrap();
            let ci = r.ci.expect("bootstrap CI");
            assert!(ci.lo <= r.estimate && r.estimate <= ci.hi);
            if ci.contains(truth) {
                covered += 1;
            }
        }
        assert!(covered as f64 / trials as f64 > 0.8, "coverage {covered}/{trials}");
    }
}
