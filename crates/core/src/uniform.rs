//! The uniform-sampling baseline.
//!
//! The paper compares ABae against uniform sampling throughout §5 "as it is
//! applicable without precomputing predicate results" — standard AQP
//! synopses (histograms, sketches) are ruled out because the predicate
//! column does not exist until the oracle runs. The baseline draws its
//! whole budget uniformly without replacement and estimates:
//!
//! * `AVG` — mean statistic over matching draws;
//! * `COUNT` — `n · (matches / draws)`;
//! * `SUM` — `n · mean(value·match)`.
//!
//! CIs use the same percentile bootstrap as ABae (single stratum), keeping
//! the Figure 5 comparison apples-to-apples.

use crate::bootstrap::stratified_bootstrap_ci;
use crate::config::{Aggregate, BootstrapConfig};
use crate::estimator::StratumEstimate;
use crate::two_stage::AbaeResult;
use abae_data::{Labeled, Oracle};
use abae_sampling::wor::sample_without_replacement;
use rand::Rng;

/// Runs the uniform baseline over a dataset of `n` records with the given
/// oracle budget. Draws `min(budget, n)` records without replacement.
pub fn run_uniform<O: Oracle, R: Rng + ?Sized>(
    n: usize,
    oracle: &O,
    budget: usize,
    agg: Aggregate,
    rng: &mut R,
) -> AbaeResult {
    let calls_before = oracle.calls();
    let draws: Vec<Labeled> = sample_without_replacement(n, budget, rng)
        .into_iter()
        .map(|i| oracle.label(i))
        .collect();
    let est = StratumEstimate::from_draws(n, &draws);
    let estimate = crate::estimator::combine_estimate(agg, &[est]);
    AbaeResult { estimate, ci: None, oracle_calls: oracle.calls() - calls_before }
}

/// Uniform baseline with a percentile-bootstrap CI.
pub fn run_uniform_with_ci<O: Oracle, R: Rng + ?Sized>(
    n: usize,
    oracle: &O,
    budget: usize,
    agg: Aggregate,
    bootstrap: &BootstrapConfig,
    rng: &mut R,
) -> AbaeResult {
    let calls_before = oracle.calls();
    let draws: Vec<Labeled> = sample_without_replacement(n, budget, rng)
        .into_iter()
        .map(|i| oracle.label(i))
        .collect();
    let est = StratumEstimate::from_draws(n, &draws);
    let estimate = crate::estimator::combine_estimate(agg, &[est]);
    let samples = vec![draws];
    let ci = stratified_bootstrap_ci(&samples, &[n], agg, bootstrap, rng);
    AbaeResult { estimate, ci, oracle_calls: oracle.calls() - calls_before }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_data::FnOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(n: usize) -> (Vec<bool>, Vec<f64>) {
        let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
        (labels, values)
    }

    #[test]
    fn avg_converges_to_truth() {
        let n = 40_000;
        let (labels, values) = population(n);
        let truth = {
            let (mut s, mut c) = (0.0, 0);
            for i in 0..n {
                if labels[i] {
                    s += values[i];
                    c += 1;
                }
            }
            s / c as f64
        };
        let oracle = FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] });
        let mut rng = StdRng::seed_from_u64(1);
        let mut errs = Vec::new();
        for _ in 0..40 {
            let r = run_uniform(n, &oracle, 2000, Aggregate::Avg, &mut rng);
            errs.push(r.estimate - truth);
            assert_eq!(r.oracle_calls, 2000);
        }
        let rmse = (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt();
        assert!(rmse < 0.25, "rmse {rmse}");
    }

    #[test]
    fn count_scales_to_population() {
        let n = 10_000;
        let (labels, values) = population(n);
        let oracle = FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] });
        let mut rng = StdRng::seed_from_u64(2);
        let r = run_uniform(n, &oracle, 4000, Aggregate::Count, &mut rng);
        assert!((r.estimate - 2500.0).abs() < 200.0, "count {}", r.estimate);
    }

    #[test]
    fn budget_larger_than_population_labels_everything_once() {
        let n = 100;
        let (labels, values) = population(n);
        let oracle = FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] });
        let mut rng = StdRng::seed_from_u64(3);
        let r = run_uniform(n, &oracle, 10_000, Aggregate::Count, &mut rng);
        assert_eq!(r.oracle_calls, 100);
        assert_eq!(r.estimate, 25.0); // exact
    }

    #[test]
    fn with_ci_brackets_estimate_and_covers_truth_often() {
        let n = 20_000;
        let (labels, values) = population(n);
        let truth = 2500.0 / 625.0; // values 0,4,8 among i%4==0 … compute directly below
        let _ = truth;
        let exact = {
            let (mut s, mut c) = (0.0, 0);
            for i in 0..n {
                if labels[i] {
                    s += values[i];
                    c += 1;
                }
            }
            s / c as f64
        };
        let oracle = FnOracle::new(move |i| Labeled { matches: labels[i], value: values[i] });
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = BootstrapConfig { trials: 300, alpha: 0.05 };
        let mut covered = 0;
        for _ in 0..30 {
            let r = run_uniform_with_ci(n, &oracle, 1500, Aggregate::Avg, &cfg, &mut rng);
            let ci = r.ci.unwrap();
            assert!(ci.lo <= r.estimate && r.estimate <= ci.hi);
            if ci.contains(exact) {
                covered += 1;
            }
        }
        assert!(covered >= 24, "coverage {covered}/30");
    }

    #[test]
    fn zero_budget_yields_zero_estimate_and_no_ci() {
        let oracle = FnOracle::new(|_| Labeled { matches: true, value: 1.0 });
        let mut rng = StdRng::seed_from_u64(5);
        let r = run_uniform(100, &oracle, 0, Aggregate::Avg, &mut rng);
        assert_eq!(r.estimate, 0.0);
        assert_eq!(r.oracle_calls, 0);
        let r = run_uniform_with_ci(
            100,
            &oracle,
            0,
            Aggregate::Avg,
            &BootstrapConfig::default(),
            &mut rng,
        );
        assert!(r.ci.is_none());
    }
}
