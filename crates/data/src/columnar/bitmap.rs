//! Packed validity/label bitmaps.
//!
//! A [`Bitmap`] stores one bit per record in `u64` words, which is what
//! makes the scan hot path vectorizable: a boolean predicate over a
//! million records is ~15,600 word-wise `AND`/`OR`/`NOT` operations
//! instead of a million branchy byte loads, and counting matches is a
//! handful of `popcnt`s. The same type doubles as the *validity* bitmap of
//! nullable columns (set bit = value present).
//!
//! Invariant: the bitmap is **canonical** — every bit at position `>= len`
//! in the last word is zero. All constructors and mutators maintain this,
//! so equality, hashing of words, and `count_ones` can work word-wise
//! without masking.

/// A growable, canonical packed bitset (one bit per record).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

/// Number of `u64` words needed for `len` bits.
fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

impl Bitmap {
    /// An all-zero bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; words_for(len)], len }
    }

    /// Builds a bitmap from a bool slice (`true` = set).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut bm = Self::new(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                bm.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        bm
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range for bitmap of {} bits", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at `i` to `v`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit {i} out of range for bitmap of {} bits", self.len);
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Appends one bit.
    pub fn push(&mut self, v: bool) {
        if self.len % 64 == 0 {
            self.words.push(0);
        }
        if v {
            *self.words.last_mut().expect("word pushed above") |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Number of set bits (word-wise popcount).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words (canonical: trailing bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from raw words + length, e.g. when loading the
    /// binary file format. Returns `None` if the word count does not match
    /// `len` or the tail bits are not canonical zero.
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Self> {
        if words.len() != words_for(len) {
            return None;
        }
        if len % 64 != 0 {
            if let Some(&last) = words.last() {
                if last >> (len % 64) != 0 {
                    return None;
                }
            }
        }
        Some(Self { words, len })
    }

    /// Word-wise conjunction.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect();
        Bitmap { words, len: self.len }
    }

    /// Word-wise disjunction.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self.words.iter().zip(&other.words).map(|(a, b)| a | b).collect();
        Bitmap { words, len: self.len }
    }

    /// Word-wise complement, re-canonicalizing the tail.
    pub fn not(&self) -> Bitmap {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        if self.len % 64 != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (self.len % 64)) - 1;
            }
        }
        Bitmap { words, len: self.len }
    }

    /// Iterates all bits in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| (self.words[i / 64] >> (i % 64)) & 1 == 1)
    }

    /// Iterates the indices of set bits in ascending order, skipping zero
    /// words wholesale.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes { bitmap: self, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Materializes the bitmap as a bool vector (compatibility view).
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bm = Bitmap::default();
        for b in iter {
            bm.push(b);
        }
        bm
    }
}

/// Iterator over set-bit indices of a [`Bitmap`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_push_roundtrip() {
        let mut bm = Bitmap::new(130);
        assert_eq!(bm.len(), 130);
        assert_eq!(bm.count_ones(), 0);
        bm.set(0, true);
        bm.set(64, true);
        bm.set(129, true);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1) && !bm.get(128));
        assert_eq!(bm.count_ones(), 3);
        bm.set(64, false);
        assert_eq!(bm.count_ones(), 2);
        bm.push(true);
        assert_eq!(bm.len(), 131);
        assert!(bm.get(130));
    }

    #[test]
    fn from_bools_matches_per_bit() {
        let bools: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let bm = Bitmap::from_bools(&bools);
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(bm.get(i), b, "bit {i}");
        }
        assert_eq!(bm.to_bools(), bools);
        assert_eq!(bm, bools.iter().copied().collect::<Bitmap>());
    }

    #[test]
    fn logic_ops_are_canonical() {
        let a = Bitmap::from_bools(&[true, true, false, false, true]);
        let b = Bitmap::from_bools(&[true, false, true, false, true]);
        assert_eq!(a.and(&b).to_bools(), vec![true, false, false, false, true]);
        assert_eq!(a.or(&b).to_bools(), vec![true, true, true, false, true]);
        assert_eq!(a.not().to_bools(), vec![false, false, true, true, false]);
        // Tail bits stay zero after `not`, so equality works word-wise.
        assert_eq!(a.not().not(), a);
        assert_eq!(a.not().count_ones(), 2);
    }

    #[test]
    fn iter_ones_skips_empty_words() {
        let mut bm = Bitmap::new(300);
        for i in [0usize, 63, 64, 200, 299] {
            bm.set(i, true);
        }
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 200, 299]);
        assert_eq!(Bitmap::new(128).iter_ones().count(), 0);
        assert_eq!(Bitmap::new(0).iter_ones().count(), 0);
    }

    #[test]
    fn from_words_validates_canonical_form() {
        assert!(Bitmap::from_words(vec![u64::MAX], 64).is_some());
        // Tail bit set beyond len: rejected.
        assert!(Bitmap::from_words(vec![u64::MAX], 63).is_none());
        // Wrong word count: rejected.
        assert!(Bitmap::from_words(vec![0, 0], 64).is_none());
        assert!(Bitmap::from_words(vec![], 0).is_some());
        let bm = Bitmap::from_words(vec![0b101], 3).unwrap();
        assert_eq!(bm.to_bools(), vec![true, false, true]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        Bitmap::new(8).get(8);
    }
}
