//! Typed column vectors and batch slice views.
//!
//! Every column type is an immutable, `Arc`-backed vector: cloning a
//! column (e.g. into a query plan's score source) is a pointer copy, never
//! a data copy. [`Column`] is the type-erased union the binary file format
//! and the generic [`crate::Table::to_columns`] accessor speak;
//! [`ColumnSlice`] is the zero-copy view over a record-index range that
//! batch consumers (scan kernels, scorers, the bench harness) iterate
//! without materializing per-record structs.

use super::bitmap::Bitmap;
use super::dict::DictColumn;
use std::ops::Range;
use std::sync::Arc;

/// An immutable `f64` column.
#[derive(Debug, Clone, PartialEq)]
pub struct F64Column {
    values: Arc<Vec<f64>>,
}

impl F64Column {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column holds no records.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The whole column as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// The value at record `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// A zero-copy view over a record-index range.
    pub fn slice(&self, range: Range<usize>) -> &[f64] {
        &self.values[range]
    }
}

impl From<Vec<f64>> for F64Column {
    fn from(values: Vec<f64>) -> Self {
        Self { values: Arc::new(values) }
    }
}

/// An immutable `i64` column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct I64Column {
    values: Arc<Vec<i64>>,
}

impl I64Column {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column holds no records.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The whole column as a slice.
    pub fn as_slice(&self) -> &[i64] {
        &self.values
    }

    /// The value at record `i`.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        self.values[i]
    }

    /// A zero-copy view over a record-index range.
    pub fn slice(&self, range: Range<usize>) -> &[i64] {
        &self.values[range]
    }
}

impl From<Vec<i64>> for I64Column {
    fn from(values: Vec<i64>) -> Self {
        Self { values: Arc::new(values) }
    }
}

/// An immutable boolean column backed by a packed [`Bitmap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoolColumn {
    bits: Arc<Bitmap>,
}

impl BoolColumn {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the column holds no records.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The value at record `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// The backing bitmap (the input to word-wise predicate kernels).
    pub fn bitmap(&self) -> &Bitmap {
        &self.bits
    }

    /// Number of `true` records (popcount).
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    /// Iterates all values in record order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter()
    }

    /// Iterates indices of `true` records in ascending order.
    pub fn iter_ones(&self) -> super::bitmap::IterOnes<'_> {
        self.bits.iter_ones()
    }

    /// Materializes a `Vec<bool>` (compatibility view; allocates).
    pub fn to_vec(&self) -> Vec<bool> {
        self.bits.to_bools()
    }
}

impl From<Bitmap> for BoolColumn {
    fn from(bits: Bitmap) -> Self {
        Self { bits: Arc::new(bits) }
    }
}

impl From<Vec<bool>> for BoolColumn {
    fn from(bools: Vec<bool>) -> Self {
        Bitmap::from_bools(&bools).into()
    }
}

/// An immutable string column: one contiguous UTF-8 arena plus `u32`
/// offsets (`offsets.len() == len + 1`). Replaces `Vec<String>` payloads:
/// the text of record `i` is `bytes[offsets[i]..offsets[i+1]]`, so a batch
/// scorer walks one cache-friendly buffer instead of chasing a pointer per
/// record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrColumn {
    offsets: Arc<Vec<u32>>,
    bytes: Arc<Vec<u8>>,
}

impl StrColumn {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the column holds no records.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// The text at record `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        // Offsets were validated (or produced) on UTF-8 boundaries.
        std::str::from_utf8(&self.bytes[lo..hi]).expect("arena is validated UTF-8")
    }

    /// Iterates texts in record order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// The offsets table (`len + 1` entries, ascending).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw UTF-8 arena.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuilds a column from its parts (the binary reader's entry point).
    /// Returns `None` unless offsets are ascending, start at 0, end at
    /// `bytes.len()`, and every slice is valid UTF-8.
    pub fn from_parts(offsets: Vec<u32>, bytes: Vec<u8>) -> Option<Self> {
        if offsets.first() != Some(&0) || *offsets.last()? as usize != bytes.len() {
            return None;
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        for w in offsets.windows(2) {
            std::str::from_utf8(&bytes[w[0] as usize..w[1] as usize]).ok()?;
        }
        Some(Self { offsets: Arc::new(offsets), bytes: Arc::new(bytes) })
    }

    /// Materializes a `Vec<String>` (compatibility view; allocates).
    pub fn to_vec(&self) -> Vec<String> {
        self.iter().map(str::to_string).collect()
    }
}

impl<S: AsRef<str>> FromIterator<S> for StrColumn {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        let mut b = StrBuilder::new();
        for s in iter {
            b.push(s.as_ref());
        }
        b.finish()
    }
}

/// Streaming builder for [`StrColumn`].
#[derive(Debug)]
pub struct StrBuilder {
    offsets: Vec<u32>,
    bytes: Vec<u8>,
}

impl Default for StrBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StrBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self { offsets: vec![0], bytes: Vec::new() }
    }

    /// Appends one text.
    ///
    /// # Panics
    /// Panics if the arena exceeds `u32::MAX` bytes (~4 GiB of text).
    pub fn push(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
        let end = u32::try_from(self.bytes.len()).expect("text arena exceeds u32 offsets");
        self.offsets.push(end);
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Freezes the builder into an immutable column.
    pub fn finish(self) -> StrColumn {
        StrColumn { offsets: Arc::new(self.offsets), bytes: Arc::new(self.bytes) }
    }
}

/// A type-erased column: the union the file format and generic accessors
/// speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit floats.
    F64(F64Column),
    /// 64-bit signed integers.
    I64(I64Column),
    /// Packed booleans.
    Bool(BoolColumn),
    /// UTF-8 texts (offset + arena layout).
    Str(StrColumn),
    /// Dictionary-encoded strings with validity.
    Dict(DictColumn),
}

impl Column {
    /// Number of records.
    pub fn len(&self) -> usize {
        match self {
            Column::F64(c) => c.len(),
            Column::I64(c) => c.len(),
            Column::Bool(c) => c.len(),
            Column::Str(c) => c.len(),
            Column::Dict(c) => c.len(),
        }
    }

    /// True when the column holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stable lowercase type name (used in errors and the file format
    /// docs).
    pub fn type_name(&self) -> &'static str {
        match self {
            Column::F64(_) => "f64",
            Column::I64(_) => "i64",
            Column::Bool(_) => "bool",
            Column::Str(_) => "str",
            Column::Dict(_) => "dict",
        }
    }

    /// A zero-copy batch view over `range`.
    ///
    /// # Panics
    /// Panics if the range exceeds the column length.
    pub fn slice(&self, range: Range<usize>) -> ColumnSlice<'_> {
        assert!(range.end <= self.len(), "slice {range:?} out of range");
        match self {
            Column::F64(c) => ColumnSlice::F64(c.slice(range)),
            Column::I64(c) => ColumnSlice::I64(c.slice(range)),
            Column::Bool(c) => ColumnSlice::Bool(BoolSlice { bits: c.bitmap(), range }),
            Column::Str(c) => ColumnSlice::Str(StrSlice { col: c, range }),
            Column::Dict(c) => ColumnSlice::Dict(DictSlice { col: c, range }),
        }
    }
}

/// A zero-copy view of one column over a record-index range — the unit
/// batch consumers (kernels, scorers, benches) operate on.
#[derive(Debug, Clone)]
pub enum ColumnSlice<'a> {
    /// View of an `f64` column.
    F64(&'a [f64]),
    /// View of an `i64` column.
    I64(&'a [i64]),
    /// View of a boolean column.
    Bool(BoolSlice<'a>),
    /// View of a string column.
    Str(StrSlice<'a>),
    /// View of a dictionary column.
    Dict(DictSlice<'a>),
}

impl ColumnSlice<'_> {
    /// Number of records in the view.
    pub fn len(&self) -> usize {
        match self {
            ColumnSlice::F64(s) => s.len(),
            ColumnSlice::I64(s) => s.len(),
            ColumnSlice::Bool(s) => s.range.len(),
            ColumnSlice::Str(s) => s.range.len(),
            ColumnSlice::Dict(s) => s.range.len(),
        }
    }

    /// True when the view holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A range view over a boolean column.
#[derive(Debug, Clone)]
pub struct BoolSlice<'a> {
    bits: &'a Bitmap,
    range: Range<usize>,
}

impl BoolSlice<'_> {
    /// The value at position `i` of the view.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.bits.get(self.range.start + i)
    }

    /// Number of `true` records in the view.
    pub fn count_ones(&self) -> usize {
        self.iter().filter(|&b| b).count()
    }

    /// Iterates the view's values.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.range.clone().map(|i| self.bits.get(i))
    }
}

/// A range view over a string column.
#[derive(Debug, Clone)]
pub struct StrSlice<'a> {
    col: &'a StrColumn,
    range: Range<usize>,
}

impl<'a> StrSlice<'a> {
    /// The text at position `i` of the view.
    #[inline]
    pub fn get(&self, i: usize) -> &'a str {
        self.col.get(self.range.start + i)
    }

    /// Iterates the view's texts.
    pub fn iter(&self) -> impl Iterator<Item = &'a str> + '_ {
        self.range.clone().map(|i| self.col.get(i))
    }
}

/// A range view over a dictionary column.
#[derive(Debug, Clone)]
pub struct DictSlice<'a> {
    col: &'a DictColumn,
    range: Range<usize>,
}

impl<'a> DictSlice<'a> {
    /// The decoded value at position `i` of the view.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&'a str> {
        self.col.value(self.range.start + i)
    }

    /// The code at position `i` of the view.
    #[inline]
    pub fn code(&self, i: usize) -> Option<u32> {
        self.col.code(self.range.start + i)
    }

    /// Iterates the view's decoded values.
    pub fn iter(&self) -> impl Iterator<Item = Option<&'a str>> + '_ {
        self.range.clone().map(|i| self.col.value(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_column_is_cheap_to_clone_and_slices() {
        let c = F64Column::from(vec![1.0, 2.0, 3.0, 4.0]);
        let c2 = c.clone();
        assert_eq!(c, c2);
        assert!(std::ptr::eq(c.as_slice().as_ptr(), c2.as_slice().as_ptr()));
        assert_eq!(c.slice(1..3), &[2.0, 3.0]);
        assert_eq!(c.get(3), 4.0);
    }

    #[test]
    fn bool_column_counts_and_iterates() {
        let c = BoolColumn::from(vec![true, false, true, true]);
        assert_eq!(c.count_ones(), 3);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
        assert_eq!(c.to_vec(), vec![true, false, true, true]);
    }

    #[test]
    fn str_column_arena_roundtrip() {
        let texts = ["hello", "", "wörld", "αβ"];
        let c: StrColumn = texts.iter().collect();
        assert_eq!(c.len(), 4);
        for (i, t) in texts.iter().enumerate() {
            assert_eq!(c.get(i), *t);
        }
        assert_eq!(c.iter().collect::<Vec<_>>(), texts);
        assert_eq!(c.offsets().len(), 5);
        // from_parts validates what the builder produced.
        let rebuilt =
            StrColumn::from_parts(c.offsets().to_vec(), c.bytes().to_vec()).unwrap();
        assert_eq!(rebuilt, c);
    }

    #[test]
    fn str_from_parts_rejects_bad_offsets() {
        assert!(StrColumn::from_parts(vec![0, 2], vec![b'a']).is_none(), "end != len");
        assert!(StrColumn::from_parts(vec![1, 1], vec![b'a']).is_none(), "start != 0");
        assert!(StrColumn::from_parts(vec![0, 2, 1, 3], vec![b'a'; 3]).is_none(), "descending");
        assert!(StrColumn::from_parts(vec![0, 1], vec![0xFF]).is_none(), "invalid utf8");
        assert!(StrColumn::from_parts(vec![], vec![]).is_none(), "missing terminal offset");
        assert!(StrColumn::from_parts(vec![0], vec![]).is_some(), "empty column ok");
    }

    #[test]
    fn column_slices_by_type() {
        let col = Column::Bool(BoolColumn::from(vec![true, false, true, false, true]));
        match col.slice(1..4) {
            ColumnSlice::Bool(s) => {
                assert_eq!(s.iter().collect::<Vec<_>>(), vec![false, true, false]);
                assert_eq!(s.count_ones(), 1);
                assert!(s.get(1));
            }
            other => panic!("expected bool slice, got {other:?}"),
        }
        let col = Column::Dict(DictColumn::encode([Some("a"), None, Some("b")]));
        assert_eq!(col.len(), 3);
        assert_eq!(col.type_name(), "dict");
        match col.slice(1..3) {
            ColumnSlice::Dict(s) => {
                assert_eq!(s.iter().collect::<Vec<_>>(), vec![None, Some("b")]);
                assert_eq!(s.code(1), Some(1));
            }
            other => panic!("expected dict slice, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        Column::F64(F64Column::from(vec![1.0])).slice(0..2);
    }
}
