//! Dictionary-encoded string columns.
//!
//! A [`DictColumn`] stores each distinct string once (in first-appearance
//! order) and a `u32` code per record, plus a validity bitmap for null
//! entries. Group-key columns are the natural use: a million-record column
//! with five group names costs 4 MB of codes and a handful of strings
//! instead of a million heap-allocated `String`s, and "count records in
//! group g" becomes a linear scan over a dense `u32` vector.

use super::bitmap::Bitmap;
// abae-lint: allow(hash_iter) -- imported for DictBuilder's lookup-only interner below
use std::collections::HashMap;
use std::sync::Arc;

/// An immutable dictionary-encoded string column with a validity bitmap.
///
/// Cheap to clone: the dictionary, codes, and validity are behind `Arc`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictColumn {
    values: Arc<Vec<String>>,
    codes: Arc<Vec<u32>>,
    validity: Arc<Bitmap>,
}

impl DictColumn {
    /// Encodes an iterator of optional strings; `None` entries are invalid
    /// (validity bit clear) and carry code 0.
    pub fn encode<'a, I: IntoIterator<Item = Option<&'a str>>>(items: I) -> Self {
        let mut b = DictBuilder::new();
        for item in items {
            b.push(item);
        }
        b.finish()
    }

    /// Rebuilds a column from its parts (the binary reader's entry point).
    /// Returns `None` when a valid entry's code is out of dictionary range
    /// or the validity length disagrees with the code count.
    pub fn from_parts(values: Vec<String>, codes: Vec<u32>, validity: Bitmap) -> Option<Self> {
        if validity.len() != codes.len() {
            return None;
        }
        for (i, &c) in codes.iter().enumerate() {
            if validity.get(i) && c as usize >= values.len() {
                return None;
            }
        }
        Some(Self {
            values: Arc::new(values),
            codes: Arc::new(codes),
            validity: Arc::new(validity),
        })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column holds no records.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The dictionary, in first-appearance order.
    pub fn dict(&self) -> &[String] {
        &self.values
    }

    /// Number of distinct (non-null) values.
    pub fn distinct(&self) -> usize {
        self.values.len()
    }

    /// The per-record codes (meaningful only where the validity bit is set).
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The validity bitmap (set = non-null).
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// The code at record `i`, or `None` for a null entry.
    #[inline]
    pub fn code(&self, i: usize) -> Option<u32> {
        self.validity.get(i).then(|| self.codes[i])
    }

    /// The decoded string at record `i`, or `None` for a null entry.
    #[inline]
    pub fn value(&self, i: usize) -> Option<&str> {
        self.code(i).map(|c| self.values[c as usize].as_str())
    }

    /// Iterates decoded values in record order.
    pub fn iter(&self) -> impl Iterator<Item = Option<&str>> + '_ {
        (0..self.len()).map(|i| self.value(i))
    }

    /// Count of records carrying code `c` (a dense scan, no decode).
    pub fn count_code(&self, c: u32) -> usize {
        self.codes
            .iter()
            .enumerate()
            .filter(|&(i, &code)| code == c && self.validity.get(i))
            .count()
    }
}

/// Streaming builder for [`DictColumn`]: interns values as they arrive, so
/// ingestion never materializes a per-record `String` vector.
#[derive(Debug, Default)]
pub struct DictBuilder {
    // abae-lint: allow(hash_iter) -- per-record interner on the ingest hot path; lookup/insert only, never iterated (the dictionary order is `values`, in arrival order)
    by_value: HashMap<String, u32>,
    values: Vec<String>,
    codes: Vec<u32>,
    validity: Bitmap,
}

impl DictBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one optional value, interning new strings.
    pub fn push(&mut self, value: Option<&str>) {
        match value {
            Some(v) => {
                let code = match self.by_value.get(v) {
                    Some(&c) => c,
                    None => {
                        let c = u32::try_from(self.values.len())
                            .expect("dictionary exceeds u32 codes");
                        self.by_value.insert(v.to_string(), c);
                        self.values.push(v.to_string());
                        c
                    }
                };
                self.codes.push(code);
                self.validity.push(true);
            }
            None => {
                self.codes.push(0);
                self.validity.push(false);
            }
        }
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Freezes the builder into an immutable column.
    pub fn finish(self) -> DictColumn {
        DictColumn {
            values: Arc::new(self.values),
            codes: Arc::new(self.codes),
            validity: Arc::new(self.validity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let input = vec![Some("a"), Some("b"), None, Some("a"), Some("c"), None];
        let col = DictColumn::encode(input.iter().copied());
        assert_eq!(col.len(), 6);
        assert_eq!(col.distinct(), 3);
        assert_eq!(col.dict(), &["a".to_string(), "b".to_string(), "c".to_string()]);
        assert_eq!(col.iter().collect::<Vec<_>>(), input);
        assert_eq!(col.code(0), Some(0));
        assert_eq!(col.code(3), Some(0), "repeat values share a code");
        assert_eq!(col.code(2), None);
        assert_eq!(col.count_code(0), 2);
        assert_eq!(col.validity().count_ones(), 4);
    }

    #[test]
    fn empty_column() {
        let col = DictColumn::encode(std::iter::empty());
        assert!(col.is_empty());
        assert_eq!(col.distinct(), 0);
    }

    #[test]
    fn from_parts_validates_codes_and_lengths() {
        let ok = DictColumn::from_parts(
            vec!["x".into()],
            vec![0, 0],
            Bitmap::from_bools(&[true, false]),
        )
        .unwrap();
        assert_eq!(ok.value(0), Some("x"));
        assert_eq!(ok.value(1), None);
        // Valid entry with out-of-range code: rejected.
        assert!(DictColumn::from_parts(
            vec!["x".into()],
            vec![1, 0],
            Bitmap::from_bools(&[true, false]),
        )
        .is_none());
        // Invalid entry may carry any code (it is never decoded)? No — the
        // builder always writes 0; readers only accept in-range or invalid.
        assert!(DictColumn::from_parts(vec![], vec![7], Bitmap::from_bools(&[false])).is_some());
        // Validity length must match the code count.
        assert!(DictColumn::from_parts(vec![], vec![0], Bitmap::new(2)).is_none());
    }
}
