//! On-disk binary column format (`.abcol`).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic      8 bytes   b"ABAECOL\0"
//! offset 8   version    u32       currently 1
//! offset 12  n_cols     u32
//! offset 16  n_rows     u64
//! offset 24  directory  n_cols entries, each:
//!              name_len   u32
//!              name       name_len bytes (UTF-8)
//!              type_tag   u8   (0=f64 1=i64 2=bool 3=str 4=dict)
//!              role_tag   u8   (0=statistic 1=label 2=proxy 3=group 4=text)
//!              _pad       2 bytes (zero)
//!              seg_off    u64  (absolute file offset, 8-byte aligned)
//!              seg_len    u64  (bytes)
//! then       segments   each 8-byte aligned, layout per type below
//! ```
//!
//! Per-type segment layouts:
//!
//! * `f64` / `i64` — `n_rows` raw 8-byte values.
//! * `bool` — `ceil(n_rows / 64)` `u64` words, canonical (tail bits zero).
//! * `str` — `u64 bytes_len`, then `n_rows + 1` `u32` offsets, padding to
//!   8-byte alignment, then the UTF-8 arena.
//! * `dict` — `u64 dict_len`, then `dict_len` strings (each `u32 len` +
//!   bytes, no alignment), padding to 8 bytes, then `n_rows` `u32` codes,
//!   padding to 8 bytes, then the validity bitmap words.
//!
//! The directory-of-offsets design is mmap-friendly: a reader can map the
//! file and bind each column to an aligned, self-contained byte range
//! without touching the others. (This build loads via `fs::read` — no mmap
//! dependency is available — but the layout keeps that door open.)
//!
//! Readers never panic on hostile input: every failure is a typed
//! [`BinError`].

use super::bitmap::Bitmap;
use super::column::{Column, F64Column, I64Column, StrColumn};
use super::dict::DictColumn;
use std::io::{self, Write};
use std::path::Path;

/// File magic: identifies an ABae columnar file.
pub const MAGIC: [u8; 8] = *b"ABAECOL\0";
/// Current (and only) format version.
pub const VERSION: u32 = 1;

/// Semantic role of a column inside a [`crate::Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnRole {
    /// The aggregated statistic (`f64`).
    Statistic,
    /// A predicate's ground-truth labels (`bool`).
    Label,
    /// A predicate's proxy scores (`f64`, in `[0, 1]`).
    Proxy,
    /// The group key (`dict`).
    Group,
    /// Text payloads (`str`).
    Text,
}

impl ColumnRole {
    fn tag(self) -> u8 {
        match self {
            ColumnRole::Statistic => 0,
            ColumnRole::Label => 1,
            ColumnRole::Proxy => 2,
            ColumnRole::Group => 3,
            ColumnRole::Text => 4,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        Some(match t {
            0 => ColumnRole::Statistic,
            1 => ColumnRole::Label,
            2 => ColumnRole::Proxy,
            3 => ColumnRole::Group,
            4 => ColumnRole::Text,
            _ => return None,
        })
    }
}

/// A named, role-tagged column — the unit the file format stores.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedColumn {
    /// Column name (predicate name for label/proxy, joined key names for
    /// group, `"statistic"`/`"text"` otherwise).
    pub name: String,
    /// Semantic role inside a table.
    pub role: ColumnRole,
    /// The data.
    pub column: Column,
}

/// Typed failure when reading a columnar file. Hostile input surfaces as
/// one of these — never a panic.
#[derive(Debug)]
pub enum BinError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The version field is not one this reader understands.
    UnsupportedVersion(u32),
    /// The file ends before a declared structure does.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A structurally invalid field (bad tag, misaligned or overlapping
    /// segment, non-canonical bitmap, out-of-range dictionary code, …).
    Corrupt {
        /// What invariant was violated.
        context: &'static str,
    },
    /// An underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::BadMagic => write!(f, "not an ABae columnar file (bad magic)"),
            BinError::UnsupportedVersion(v) => {
                write!(f, "unsupported columnar format version {v} (reader speaks {VERSION})")
            }
            BinError::Truncated { context } => write!(f, "truncated file while reading {context}"),
            BinError::Corrupt { context } => write!(f, "corrupt columnar file: {context}"),
            BinError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for BinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BinError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BinError {
    fn from(e: io::Error) -> Self {
        BinError::Io(e)
    }
}

fn type_tag(c: &Column) -> u8 {
    match c {
        Column::F64(_) => 0,
        Column::I64(_) => 1,
        Column::Bool(_) => 2,
        Column::Str(_) => 3,
        Column::Dict(_) => 4,
    }
}

fn pad_to_8(buf: &mut Vec<u8>) {
    while buf.len() % 8 != 0 {
        buf.push(0);
    }
}

fn encode_segment(c: &Column) -> Vec<u8> {
    let mut seg = Vec::new();
    match c {
        Column::F64(col) => {
            for v in col.as_slice() {
                seg.extend_from_slice(&v.to_le_bytes());
            }
        }
        Column::I64(col) => {
            for v in col.as_slice() {
                seg.extend_from_slice(&v.to_le_bytes());
            }
        }
        Column::Bool(col) => {
            for w in col.bitmap().words() {
                seg.extend_from_slice(&w.to_le_bytes());
            }
        }
        Column::Str(col) => {
            seg.extend_from_slice(&(col.bytes().len() as u64).to_le_bytes());
            for off in col.offsets() {
                seg.extend_from_slice(&off.to_le_bytes());
            }
            pad_to_8(&mut seg);
            seg.extend_from_slice(col.bytes());
        }
        Column::Dict(col) => {
            seg.extend_from_slice(&(col.dict().len() as u64).to_le_bytes());
            for s in col.dict() {
                seg.extend_from_slice(&(s.len() as u32).to_le_bytes());
                seg.extend_from_slice(s.as_bytes());
            }
            pad_to_8(&mut seg);
            for code in col.codes() {
                seg.extend_from_slice(&code.to_le_bytes());
            }
            pad_to_8(&mut seg);
            for w in col.validity().words() {
                seg.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
    seg
}

/// Serializes columns to the versioned binary layout.
///
/// # Panics
/// Panics if columns disagree on length (callers hold table-validated
/// columns) or a name exceeds `u32::MAX` bytes.
pub fn encode_columns(columns: &[NamedColumn]) -> Vec<u8> {
    let n_rows = columns.first().map_or(0, |c| c.column.len());
    for c in columns {
        // abae-lint: allow(no_panic_decode) -- write path, documented "# Panics": encoding caller-validated in-memory columns, not hostile bytes
        assert_eq!(c.column.len(), n_rows, "column {} length mismatch", c.name);
    }

    // Directory size is data-dependent (names), so lay it out first.
    let mut dir_len = 0usize;
    for c in columns {
        dir_len += 4 + c.name.len() + 1 + 1 + 2 + 8 + 8;
    }
    let mut seg_off = 24 + dir_len;
    seg_off += (8 - seg_off % 8) % 8; // first segment 8-byte aligned

    let segments: Vec<Vec<u8>> = columns.iter().map(|c| encode_segment(&c.column)).collect();

    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    // abae-lint: allow(no_panic_decode) -- write path, documented "# Panics": in-memory column counts/names exceeding u32 are caller bugs
    buf.extend_from_slice(&u32::try_from(columns.len()).expect("column count fits u32").to_le_bytes());
    buf.extend_from_slice(&(n_rows as u64).to_le_bytes());
    let mut off = seg_off;
    for (c, seg) in columns.iter().zip(&segments) {
        // abae-lint: allow(no_panic_decode) -- write path, documented "# Panics": see above
        buf.extend_from_slice(&u32::try_from(c.name.len()).expect("name fits u32").to_le_bytes());
        buf.extend_from_slice(c.name.as_bytes());
        buf.push(type_tag(&c.column));
        buf.push(c.role.tag());
        buf.extend_from_slice(&[0, 0]);
        buf.extend_from_slice(&(off as u64).to_le_bytes());
        buf.extend_from_slice(&(seg.len() as u64).to_le_bytes());
        off += seg.len() + (8 - seg.len() % 8) % 8;
    }
    pad_to_8(&mut buf);
    debug_assert_eq!(buf.len(), seg_off);
    for seg in &segments {
        buf.extend_from_slice(seg);
        pad_to_8(&mut buf);
    }
    buf
}

/// Writes columns to `path` atomically (tmp file + rename).
pub fn write_columns(path: &Path, columns: &[NamedColumn]) -> Result<(), BinError> {
    let bytes = encode_columns(columns);
    let tmp = path.with_extension("abcol.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Bounds-checked little-endian cursor over the loaded file.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], BinError> {
        let end = self.pos.checked_add(n).ok_or(BinError::Corrupt { context })?;
        let s = self.buf.get(self.pos..end).ok_or(BinError::Truncated { context })?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, BinError> {
        self.take(1, context)?.first().copied().ok_or(BinError::Truncated { context })
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(arr(self.take(4, context)?, context)?))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(arr(self.take(8, context)?, context)?))
    }
}

/// Fixed-width slice-to-array conversion. The callers always hand over a
/// slice of the right width (`take`/`chunks_exact` guarantee it), but the
/// decode path's contract is *never panic* — even on an internal logic
/// bug, a width mismatch surfaces as a typed error.
fn arr<const N: usize>(b: &[u8], context: &'static str) -> Result<[u8; N], BinError> {
    b.try_into().map_err(|_| BinError::Corrupt { context })
}

/// Decodes a packed array of fixed-width little-endian values.
fn le_values<const N: usize, T>(
    b: &[u8],
    context: &'static str,
    from_le: impl Fn([u8; N]) -> T,
) -> Result<Vec<T>, BinError> {
    b.chunks_exact(N).map(|c| Ok(from_le(arr(c, context)?))).collect()
}

fn usize_of(v: u64, context: &'static str) -> Result<usize, BinError> {
    usize::try_from(v).map_err(|_| BinError::Corrupt { context })
}

/// Segment-size arithmetic over a hostile, unvalidated element count. A
/// plain `n * width` panics under overflow checks (and wraps in release);
/// either breaks the never-panic decode contract, so the overflow itself
/// must surface as a typed error.
fn seg_bytes(n: usize, width: usize, context: &'static str) -> Result<usize, BinError> {
    n.checked_mul(width).ok_or(BinError::Corrupt { context })
}

fn decode_segment(
    seg: &[u8],
    tag: u8,
    n_rows: usize,
) -> Result<Column, BinError> {
    let mut cur = Cursor { buf: seg, pos: 0 };
    match tag {
        0 => {
            let b = cur.take(seg_bytes(n_rows, 8, "f64 segment")?, "f64 segment")?;
            let vals = le_values(b, "f64 segment", f64::from_le_bytes)?;
            Ok(Column::F64(F64Column::from(vals)))
        }
        1 => {
            let b = cur.take(seg_bytes(n_rows, 8, "i64 segment")?, "i64 segment")?;
            let vals = le_values(b, "i64 segment", i64::from_le_bytes)?;
            Ok(Column::I64(I64Column::from(vals)))
        }
        2 => {
            let n_words = n_rows.div_ceil(64);
            let b = cur.take(seg_bytes(n_words, 8, "bool segment")?, "bool segment")?;
            let words = le_values(b, "bool segment", u64::from_le_bytes)?;
            let bm = Bitmap::from_words(words, n_rows)
                .ok_or(BinError::Corrupt { context: "non-canonical bool bitmap" })?;
            Ok(Column::Bool(bm.into()))
        }
        3 => {
            let bytes_len = usize_of(cur.u64("str arena length")?, "str arena length")?;
            let n_offs = n_rows.checked_add(1).ok_or(BinError::Corrupt { context: "str offsets" })?;
            let offs_bytes = cur.take(seg_bytes(n_offs, 4, "str offsets")?, "str offsets")?;
            let offsets = le_values(offs_bytes, "str offsets", u32::from_le_bytes)?;
            cur.pos += (8 - cur.pos % 8) % 8;
            let arena = cur.take(bytes_len, "str arena")?.to_vec();
            StrColumn::from_parts(offsets, arena)
                .map(Column::Str)
                .ok_or(BinError::Corrupt { context: "invalid str offsets or non-UTF-8 arena" })
        }
        4 => {
            let dict_len = usize_of(cur.u64("dict size")?, "dict size")?;
            // Guard against absurd declared sizes before allocating.
            if dict_len > seg.len() {
                return Err(BinError::Corrupt { context: "dictionary larger than segment" });
            }
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                let len = usize_of(u64::from(cur.u32("dict entry length")?), "dict entry length")?;
                let b = cur.take(len, "dict entry")?;
                let s = std::str::from_utf8(b)
                    .map_err(|_| BinError::Corrupt { context: "non-UTF-8 dictionary entry" })?;
                dict.push(s.to_string());
            }
            cur.pos += (8 - cur.pos % 8) % 8;
            let codes_bytes = cur.take(seg_bytes(n_rows, 4, "dict codes")?, "dict codes")?;
            let codes = le_values(codes_bytes, "dict codes", u32::from_le_bytes)?;
            cur.pos += (8 - cur.pos % 8) % 8;
            let n_words = n_rows.div_ceil(64);
            let b = cur.take(seg_bytes(n_words, 8, "dict validity")?, "dict validity")?;
            let words = le_values(b, "dict validity", u64::from_le_bytes)?;
            let validity = Bitmap::from_words(words, n_rows)
                .ok_or(BinError::Corrupt { context: "non-canonical dict validity bitmap" })?;
            DictColumn::from_parts(dict, codes, validity)
                .map(Column::Dict)
                .ok_or(BinError::Corrupt { context: "dictionary code out of range" })
        }
        _ => Err(BinError::Corrupt { context: "unknown column type tag" }),
    }
}

/// Decodes a byte buffer in the versioned binary layout.
pub fn decode_columns(buf: &[u8]) -> Result<Vec<NamedColumn>, BinError> {
    let mut cur = Cursor { buf, pos: 0 };
    if cur.take(8, "magic")? != MAGIC {
        return Err(BinError::BadMagic);
    }
    let version = cur.u32("version")?;
    if version != VERSION {
        return Err(BinError::UnsupportedVersion(version));
    }
    let n_cols = cur.u32("column count")? as usize;
    let n_rows = usize_of(cur.u64("row count")?, "row count")?;
    // A directory entry is ≥ 24 bytes; reject declared counts the file
    // cannot possibly hold before allocating.
    if n_cols.saturating_mul(24) > buf.len() {
        return Err(BinError::Truncated { context: "column directory" });
    }

    struct DirEntry {
        name: String,
        type_tag: u8,
        role: ColumnRole,
        off: usize,
        len: usize,
    }
    let mut dir = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let name_len = cur.u32("column name length")? as usize;
        let name_bytes = cur.take(name_len, "column name")?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| BinError::Corrupt { context: "non-UTF-8 column name" })?
            .to_string();
        let type_tag = cur.u8("column type tag")?;
        let role_tag = cur.u8("column role tag")?;
        let role = ColumnRole::from_tag(role_tag)
            .ok_or(BinError::Corrupt { context: "unknown column role tag" })?;
        cur.take(2, "directory padding")?;
        let off = usize_of(cur.u64("segment offset")?, "segment offset")?;
        let len = usize_of(cur.u64("segment length")?, "segment length")?;
        if off % 8 != 0 {
            return Err(BinError::Corrupt { context: "misaligned segment offset" });
        }
        let end = off.checked_add(len).ok_or(BinError::Corrupt { context: "segment bounds" })?;
        if end > buf.len() {
            return Err(BinError::Truncated { context: "column segment" });
        }
        if off < 24 {
            return Err(BinError::Corrupt { context: "segment overlaps header" });
        }
        dir.push(DirEntry { name, type_tag, role, off, len });
    }

    let mut out = Vec::with_capacity(n_cols);
    for e in dir {
        // Bounds were validated while reading the directory, but the
        // never-panic contract holds regardless of that logic being right.
        let end = e.off.checked_add(e.len).ok_or(BinError::Corrupt { context: "segment bounds" })?;
        let seg = buf.get(e.off..end).ok_or(BinError::Truncated { context: "column segment" })?;
        let column = decode_segment(seg, e.type_tag, n_rows)?;
        debug_assert_eq!(column.len(), n_rows);
        out.push(NamedColumn { name: e.name, role: e.role, column });
    }
    Ok(out)
}

/// Loads a columnar file from disk.
pub fn read_columns(path: &Path) -> Result<Vec<NamedColumn>, BinError> {
    let buf = std::fs::read(path)?;
    decode_columns(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::column::BoolColumn;

    fn sample_columns() -> Vec<NamedColumn> {
        vec![
            NamedColumn {
                name: "statistic".into(),
                role: ColumnRole::Statistic,
                column: Column::F64(F64Column::from(vec![1.5, -2.0, 0.0, 3.25, 4.0])),
            },
            NamedColumn {
                name: "label:spam".into(),
                role: ColumnRole::Label,
                column: Column::Bool(BoolColumn::from(vec![true, false, true, true, false])),
            },
            NamedColumn {
                name: "group".into(),
                role: ColumnRole::Group,
                column: Column::Dict(DictColumn::encode([
                    Some("a"),
                    Some("b"),
                    None,
                    Some("a"),
                    Some("c"),
                ])),
            },
            NamedColumn {
                name: "text".into(),
                role: ColumnRole::Text,
                column: Column::Str(["hi", "", "wörld", "x", "yz"].iter().collect()),
            },
            NamedColumn {
                name: "ints".into(),
                role: ColumnRole::Statistic,
                column: Column::I64(I64Column::from(vec![-1, 0, 7, i64::MAX, i64::MIN])),
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cols = sample_columns();
        let bytes = encode_columns(&cols);
        assert_eq!(&bytes[..8], &MAGIC);
        let back = decode_columns(&bytes).unwrap();
        assert_eq!(back, cols);
    }

    #[test]
    fn empty_table_roundtrip() {
        let cols = vec![NamedColumn {
            name: "statistic".into(),
            role: ColumnRole::Statistic,
            column: Column::F64(F64Column::from(vec![])),
        }];
        let back = decode_columns(&encode_columns(&cols)).unwrap();
        assert_eq!(back, cols);
    }

    #[test]
    fn file_roundtrip() {
        let cols = sample_columns();
        let dir = std::env::temp_dir().join("abae_colfile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.abcol");
        write_columns(&path, &cols).unwrap();
        let back = read_columns(&path).unwrap();
        assert_eq!(back, cols);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_columns(&sample_columns());
        bytes[0] = b'X';
        assert!(matches!(decode_columns(&bytes), Err(BinError::BadMagic)));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode_columns(&sample_columns());
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(decode_columns(&bytes), Err(BinError::UnsupportedVersion(99))));
    }

    #[test]
    fn truncation_anywhere_is_typed_not_panic() {
        let bytes = encode_columns(&sample_columns());
        for cut in 0..bytes.len() {
            let err = decode_columns(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(err, BinError::Truncated { .. } | BinError::BadMagic),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_tail_bit_rejected() {
        let cols = vec![NamedColumn {
            name: "b".into(),
            role: ColumnRole::Label,
            column: Column::Bool(BoolColumn::from(vec![true, false, true])),
        }];
        let mut bytes = encode_columns(&cols);
        // The single bool segment is the last 8 bytes; set a bit beyond len.
        let n = bytes.len();
        bytes[n - 1] |= 0x80;
        assert!(matches!(decode_columns(&bytes), Err(BinError::Corrupt { .. })));
    }

    #[test]
    fn corrupt_type_tag_rejected() {
        let cols = vec![NamedColumn {
            name: "s".into(),
            role: ColumnRole::Statistic,
            column: Column::F64(F64Column::from(vec![1.0])),
        }];
        let mut bytes = encode_columns(&cols);
        // type_tag sits right after name_len(4) + name(1) in the directory.
        let tag_pos = 24 + 4 + 1;
        bytes[tag_pos] = 42;
        assert!(matches!(
            decode_columns(&bytes),
            Err(BinError::Corrupt { context: "unknown column type tag" })
        ));
    }
}
