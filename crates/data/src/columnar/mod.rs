//! Columnar storage primitives: typed column vectors, packed bitmaps,
//! dictionary encoding, batch slice views, and the on-disk binary format.
//!
//! This module is the storage layer under [`crate::Table`]. The layout is
//! struct-of-arrays all the way down:
//!
//! * [`F64Column`] / [`I64Column`] — contiguous numeric vectors.
//! * [`BoolColumn`] — a packed [`Bitmap`] (64 records per word), so
//!   predicate evaluation is word-wise `AND`/`OR`/`NOT` plus `popcnt`.
//! * [`StrColumn`] — one UTF-8 arena plus `u32` offsets (no per-record
//!   `String` allocations).
//! * [`DictColumn`] — dictionary-encoded strings with a validity bitmap,
//!   used for low-cardinality group keys.
//!
//! All columns are `Arc`-backed and immutable: cloning one into a query
//! plan or a snapshot is O(1). [`ColumnSlice`] gives zero-copy views over
//! record-index ranges for batch consumers. [`mod@file`] defines the
//! mmap-friendly `.abcol` binary format (magic + versioned header +
//! aligned per-column segments) with typed, panic-free error handling.
//!
//! **Bit-identity contract**: the columnar path changes memory layout and
//! traversal only — every estimate, CI, and oracle-call count produced
//! through these types is bit-identical to the row-record compatibility
//! view (`Table::rows`), which `tests/columnar.rs` pins across the
//! thread/batch matrix.

mod bitmap;
mod column;
mod dict;
pub mod file;

pub use bitmap::{Bitmap, IterOnes};
pub use column::{
    BoolColumn, BoolSlice, Column, ColumnSlice, DictSlice, F64Column, I64Column, StrBuilder,
    StrColumn, StrSlice,
};
pub use dict::{DictBuilder, DictColumn};
pub use file::{
    decode_columns, encode_columns, read_columns, write_columns, BinError, ColumnRole,
    NamedColumn, MAGIC, VERSION,
};
