//! Minimal CSV ingestion for user datasets.
//!
//! Loads a [`Table`] from CSV with a header row. Expected columns:
//!
//! * `statistic` — the aggregated expression `f(x)` (required).
//! * `label:<name>` / `proxy:<name>` — one pair per predicate.
//! * `group` — optional group name per record (empty = no group).
//! * `text` — optional raw text payload.
//!
//! The parser handles RFC-4180-style quoting (`"a,b"`, doubled quotes) but
//! deliberately nothing more exotic; it exists so the library is usable on
//! real exported data without pulling in a dependency.
//!
//! Ingestion is streaming: each parsed row goes straight into column
//! builders (packed label bitmaps, proxy vectors, a dictionary builder for
//! the group column, a string-arena builder for texts) — there is no
//! intermediate per-row record vector.

use crate::columnar::{Bitmap, DictBuilder, StrBuilder};
use crate::table::{Table, TableError};
use std::collections::BTreeMap;
use std::io::BufRead;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the CSV content.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The header is missing a required column.
    MissingColumn(String),
    /// Table validation failed after parsing.
    Table(TableError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            CsvError::MissingColumn(c) => write!(f, "missing required column `{c}`"),
            CsvError::Table(e) => write!(f, "table validation: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<TableError> for CsvError {
    fn from(e: TableError) -> Self {
        CsvError::Table(e)
    }
}

/// Splits one CSV line into fields, honoring double-quote quoting.
fn split_line(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(CsvError::Malformed {
                            line: line_no,
                            reason: "quote inside unquoted field".to_string(),
                        });
                    }
                }
                ',' => {
                    fields.push(std::mem::take(&mut field));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::Malformed { line: line_no, reason: "unterminated quote".to_string() });
    }
    fields.push(field);
    Ok(fields)
}

/// Reads a table named `name` from CSV content.
pub fn read_table<R: BufRead>(name: &str, reader: R) -> Result<Table, CsvError> {
    let mut lines = reader.lines().enumerate();
    let header = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break split_line(line.trim_end_matches('\r'), i + 1)?;
                }
            }
            None => {
                return Err(CsvError::Malformed { line: 0, reason: "empty input".to_string() })
            }
        }
    };

    let col_index: BTreeMap<String, usize> =
        header.iter().enumerate().map(|(i, h)| (h.trim().to_string(), i)).collect();
    let stat_col = *col_index
        .get("statistic")
        .ok_or_else(|| CsvError::MissingColumn("statistic".to_string()))?;
    let group_col = col_index.get("group").copied();
    let text_col = col_index.get("text").copied();

    // Predicate columns come in label:/proxy: pairs.
    let mut pred_names: Vec<String> = Vec::new();
    for h in &header {
        if let Some(name) = h.trim().strip_prefix("label:") {
            pred_names.push(name.to_string());
        }
    }
    let mut pred_cols: Vec<(usize, usize)> = Vec::with_capacity(pred_names.len());
    for pname in &pred_names {
        let label = *col_index
            .get(&format!("label:{pname}"))
            .ok_or_else(|| CsvError::MissingColumn(format!("label:{pname}")))?;
        let proxy = *col_index
            .get(&format!("proxy:{pname}"))
            .ok_or_else(|| CsvError::MissingColumn(format!("proxy:{pname}")))?;
        pred_cols.push((label, proxy));
    }

    let mut statistic: Vec<f64> = Vec::new();
    let mut labels: Vec<Bitmap> = (0..pred_names.len()).map(|_| Bitmap::default()).collect();
    let mut proxies: Vec<Vec<f64>> = vec![Vec::new(); pred_names.len()];
    let mut groups: Option<DictBuilder> = group_col.map(|_| DictBuilder::new());
    let mut texts: Option<StrBuilder> = text_col.map(|_| StrBuilder::new());

    for (i, line) in lines {
        let line = line?;
        let trimmed = line.trim_end_matches('\r');
        if trimmed.trim().is_empty() {
            continue;
        }
        let line_no = i + 1;
        let fields = split_line(trimmed, line_no)?;
        if fields.len() != header.len() {
            return Err(CsvError::Malformed {
                line: line_no,
                reason: format!("{} fields, header has {}", fields.len(), header.len()),
            });
        }
        let stat: f64 = fields[stat_col].trim().parse().map_err(|_| CsvError::Malformed {
            line: line_no,
            reason: format!("bad statistic `{}`", fields[stat_col]),
        })?;
        statistic.push(stat);
        for (j, &(lc, pc)) in pred_cols.iter().enumerate() {
            let label = match fields[lc].trim() {
                "1" | "true" | "TRUE" | "True" => true,
                "0" | "false" | "FALSE" | "False" => false,
                other => {
                    return Err(CsvError::Malformed {
                        line: line_no,
                        reason: format!("bad label `{other}`"),
                    })
                }
            };
            let proxy: f64 = fields[pc].trim().parse().map_err(|_| CsvError::Malformed {
                line: line_no,
                reason: format!("bad proxy `{}`", fields[pc]),
            })?;
            labels[j].push(label);
            proxies[j].push(proxy);
        }
        if let (Some(gc), Some(g)) = (group_col, groups.as_mut()) {
            // The dictionary builder interns distinct non-empty names in
            // order of appearance; empty = no group.
            let gname = fields[gc].trim();
            g.push((!gname.is_empty()).then_some(gname));
        }
        if let (Some(tc), Some(t)) = (text_col, texts.as_mut()) {
            t.push(&fields[tc]);
        }
    }

    let mut builder = Table::builder(name, statistic);
    for (j, pname) in pred_names.iter().enumerate() {
        builder = builder.predicate_columns(
            pname.clone(),
            std::mem::take(&mut labels[j]).into(),
            std::mem::take(&mut proxies[j]).into(),
        );
    }
    if let Some(g) = groups {
        builder = builder.group_dict(g.finish());
    }
    if let Some(t) = texts {
        builder = builder.texts_column(t.finish());
    }
    Ok(builder.build()?)
}

/// Serializes a table back to CSV (the inverse of [`read_table`], for
/// exporting emulated datasets).
pub fn write_table<W: std::io::Write>(table: &Table, mut w: W) -> std::io::Result<()> {
    let mut header = vec!["statistic".to_string()];
    for p in table.predicates() {
        header.push(format!("label:{}", p.name()));
        header.push(format!("proxy:{}", p.name()));
    }
    if table.group_key().is_some() {
        header.push("group".to_string());
    }
    if table.texts().is_some() {
        header.push("text".to_string());
    }
    writeln!(w, "{}", header.join(","))?;
    for i in 0..table.len() {
        let mut row = vec![format!("{}", table.statistic(i))];
        for p in table.predicates() {
            row.push(if p.label(i) { "1".to_string() } else { "0".to_string() });
            row.push(format!("{}", p.proxy()[i]));
        }
        if let Some(gk) = table.group_key() {
            row.push(match gk.get(i) {
                Some(g) => gk.names()[g as usize].clone(),
                None => String::new(),
            });
        }
        if let Some(texts) = table.texts() {
            let quoted = format!("\"{}\"", texts.get(i).replace('"', "\"\""));
            row.push(quoted);
        }
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
statistic,label:spam,proxy:spam,group,text
3.5,1,0.9,a,\"hello, world\"
1.0,0,0.2,b,plain
2.0,1,0.7,,\"quote\"\"inside\"
";

    #[test]
    fn parses_full_featured_csv() {
        let t = read_table("s", SAMPLE.as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.statistics(), &[3.5, 1.0, 2.0]);
        let p = t.predicate("spam").unwrap();
        assert_eq!(p.labels_vec(), vec![true, false, true]);
        assert_eq!(p.proxy(), &[0.9, 0.2, 0.7]);
        let gk = t.group_key().unwrap();
        assert_eq!(gk.names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(gk.iter().collect::<Vec<_>>(), vec![Some(0), Some(1), None]);
        assert_eq!(t.texts().unwrap().get(0), "hello, world");
    }

    #[test]
    fn quoted_fields_with_escapes() {
        let t = read_table("s", SAMPLE.as_bytes()).unwrap();
        assert_eq!(t.texts().unwrap().get(2), "quote\"inside");
    }

    #[test]
    fn missing_statistic_column_errors() {
        let csv = "label:p,proxy:p\n1,0.5\n";
        assert!(matches!(
            read_table("x", csv.as_bytes()),
            Err(CsvError::MissingColumn(c)) if c == "statistic"
        ));
    }

    #[test]
    fn missing_proxy_pair_errors() {
        let csv = "statistic,label:p\n1.0,1\n";
        assert!(matches!(
            read_table("x", csv.as_bytes()),
            Err(CsvError::MissingColumn(c)) if c == "proxy:p"
        ));
    }

    #[test]
    fn bad_field_counts_error_with_line_numbers() {
        let csv = "statistic,label:p,proxy:p\n1.0,1\n";
        match read_table("x", csv.as_bytes()) {
            Err(CsvError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_values_error() {
        let csv = "statistic,label:p,proxy:p\nxyz,1,0.5\n";
        assert!(matches!(read_table("x", csv.as_bytes()), Err(CsvError::Malformed { .. })));
        let csv = "statistic,label:p,proxy:p\n1.0,maybe,0.5\n";
        assert!(matches!(read_table("x", csv.as_bytes()), Err(CsvError::Malformed { .. })));
        let csv = "statistic,label:p,proxy:p\n1.0,1,high\n";
        assert!(matches!(read_table("x", csv.as_bytes()), Err(CsvError::Malformed { .. })));
    }

    #[test]
    fn unterminated_quote_errors() {
        let csv = "statistic,text\n1.0,\"oops\n";
        assert!(matches!(read_table("x", csv.as_bytes()), Err(CsvError::Malformed { .. })));
    }

    #[test]
    fn empty_input_errors() {
        assert!(matches!(read_table("x", "".as_bytes()), Err(CsvError::Malformed { .. })));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "statistic,label:p,proxy:p\n\n1.0,1,0.5\n\n2.0,0,0.25\n";
        let t = read_table("x", csv.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn roundtrip_write_then_read() {
        let original = read_table("s", SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_table(&original, &mut buf).unwrap();
        let reparsed = read_table("s", buf.as_slice()).unwrap();
        assert_eq!(original.statistics(), reparsed.statistics());
        assert_eq!(original.predicate("spam"), reparsed.predicate("spam"));
        assert_eq!(original.group_key(), reparsed.group_key());
        assert_eq!(original.texts(), reparsed.texts());
    }
}
