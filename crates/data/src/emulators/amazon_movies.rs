//! Amazon movie reviews + posters emulator.
//!
//! Paper workload: `SELECT AVG(rating) FROM movies WHERE
//! face_exists(poster) AND gender(poster) = 'female'`; MT-CNN + VGGFace as
//! the oracle, specialized MobileNetV2 as the proxy. 35,815 records — the
//! smallest dataset, which stresses small-stratum behaviour.
//!
//! Substitution: positive rate 0.35 (posters featuring an actress), star
//! ratings 1–5 skewed high (mean ≈ 4.1) with mild coupling to the latent —
//! posters with prominent faces are marketed films with slightly different
//! rating profiles, giving the strata some variance structure.

use super::EmulatorOptions;
use crate::synthetic::{PredicateModel, StatisticModel, SyntheticSpec};
use crate::table::Table;

/// Paper record count.
pub const FULL_SIZE: usize = 35_815;

/// Builds the amazon-movies emulation.
pub fn amazon_movies(opts: &EmulatorOptions) -> Table {
    SyntheticSpec {
        name: "amazon-movies".to_string(),
        n: opts.scaled(FULL_SIZE),
        predicates: vec![PredicateModel::new("female_face", 0.35, 2.0, 0.6)],
        statistic: StatisticModel::Rating { mean: 4.1, sd: 0.9, coupling: 0.5 },
        seed: opts.seed ^ 0x6d6f_7669_6573, // "movies"
    }
    .generate()
    .expect("static spec is valid")
}
