//! Amazon office-supplies reviews emulator.
//!
//! Paper workload: `SELECT AVG(rating) FROM data WHERE sentiment(review) =
//! 'strongly positive'`; FlairNLP's BERT sentiment model as the oracle and
//! NLTK's rule-based (VADER) predictor as the proxy. 800,144 reviews.
//!
//! Substitution: positive rate 0.45 (Amazon reviews skew very positive;
//! "strongly positive" per a BERT classifier captures just under half),
//! ratings 1–5 strongly coupled to the sentiment propensity (strongly
//! positive reviews average ≈ 4.8 stars), and a deliberately weaker proxy
//! (a rule-based sentiment scorer trails a fine-tuned BERT by a wide
//! margin: AUC ≈ 0.75 here).

use super::EmulatorOptions;
use crate::synthetic::{PredicateModel, StatisticModel, SyntheticSpec};
use crate::table::Table;

/// Paper record count.
pub const FULL_SIZE: usize = 800_144;

/// Builds the amazon-office emulation.
pub fn amazon_office(opts: &EmulatorOptions) -> Table {
    SyntheticSpec {
        name: "amazon-office".to_string(),
        n: opts.scaled(FULL_SIZE),
        predicates: vec![PredicateModel::new("strongly_positive", 0.45, 3.0, 0.9)],
        statistic: StatisticModel::Rating { mean: 4.3, sd: 0.8, coupling: 1.2 },
        seed: opts.seed ^ 0x6f66_6669_6365, // "office"
    }
    .generate()
    .expect("static spec is valid")
}
