//! `celeba` image emulator.
//!
//! Paper workload: `SELECT PERCENTAGE(is_smiling(img)) FROM images WHERE
//! hair_color(img) = 'blonde'`; human labels as the oracle, a specialized
//! MobileNetV2 as the proxy. 202,599 images.
//!
//! Substitution: the real CelebA attribute frequencies anchor the rates —
//! `Blond_Hair` ≈ 14.8%, `Gray_Hair` ≈ 4.2%, `Smiling` ≈ 48%. The statistic
//! is the binary smiling indicator scaled to a percentage (0/100), so `AVG`
//! reproduces `PERCENTAGE` and RMSE lands on the paper's 1–3 point scale. A
//! specialized MobileNetV2 is a strong proxy (AUC ≈ 0.9 here). The group-by
//! variant ([`celeba_groupby`]) carries `gray`/`blond` groups with
//! per-group proxies, matching the Figure 7/8 query.

use super::EmulatorOptions;
use crate::synthetic::{GroupSpec, PredicateModel, StatisticModel, SyntheticSpec};
use crate::table::Table;

/// Paper record count.
pub const FULL_SIZE: usize = 202_599;

/// Builds the single-predicate celeba emulation.
pub fn celeba(opts: &EmulatorOptions) -> Table {
    SyntheticSpec {
        name: "celeba".to_string(),
        n: opts.scaled(FULL_SIZE),
        predicates: vec![PredicateModel::new("blonde_hair", 0.148, 0.9, 0.4)],
        // Smiling is nearly independent of hair colour; tiny coupling.
        statistic: StatisticModel::BinaryPercent { rate: 0.48, coupling: 0.1 },
        seed: opts.seed ^ 0x6365_6c65_6261, // "celeba"
    }
    .generate()
    .expect("static spec is valid")
}

/// Builds the group-by celeba emulation (Figures 7 and 8):
/// `... WHERE hair IN ('gray', 'blond') GROUP BY hair_color`.
pub fn celeba_groupby(opts: &EmulatorOptions) -> Table {
    GroupSpec {
        name: "celeba-groupby".to_string(),
        n: opts.scaled(FULL_SIZE),
        group_names: vec!["gray".to_string(), "blond".to_string()],
        rates: vec![0.042, 0.148],
        concentration: 1.0,
        proxy_noise: 0.4,
        group_stats: vec![
            // Older (gray-haired) celebrities smile a bit less in CelebA.
            StatisticModel::BinaryPercent { rate: 0.40, coupling: 0.0 },
            StatisticModel::BinaryPercent { rate: 0.52, coupling: 0.0 },
        ],
        background_stat: StatisticModel::BinaryPercent { rate: 0.48, coupling: 0.0 },
        seed: opts.seed ^ 0x6861_6972, // "hair"
    }
    .generate()
    .expect("static spec is valid")
}
