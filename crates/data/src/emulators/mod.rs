//! Emulators for the paper's six real-world datasets (Table 2).
//!
//! The real datasets (night-street and taipei video, celeba images, Amazon
//! movie posters, the trec05p spam corpus, Amazon office-supplies reviews)
//! and their DNN oracles are unavailable offline, so each emulator
//! reconstructs the *joint distribution* of (proxy score, oracle label,
//! statistic) at the paper's scale — the only interface through which ABae
//! observes a dataset. The substitution table in `DESIGN.md` documents, per
//! dataset, what the paper used, what we generate, and why the relevant
//! behaviour is preserved. Parameters stated by the paper (sizes, spam rate
//! of the SPAM25 subset, the 0.17 positive rate of the multi-predicate
//! night-street query) are used verbatim; the rest are documented plausible
//! choices.
//!
//! All emulators are deterministic in `EmulatorOptions::seed`, and accept a
//! `scale` so tests can run on a thousandth of the paper's record counts
//! without changing the distributions.

mod amazon_movies;
mod amazon_office;
mod celeba;
mod night_street;
mod taipei;
mod trec05p;

pub use amazon_movies::amazon_movies;
pub use amazon_office::amazon_office;
pub use celeba::{celeba, celeba_groupby};
pub use night_street::night_street;
pub use taipei::taipei;
pub use trec05p::trec05p;

/// Options shared by every emulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmulatorOptions {
    /// Fraction of the paper's full record count to generate (1.0 = paper
    /// scale). The generated count never drops below 30,000 records (or
    /// the paper's full size, if smaller) so the paper's 10,000-call
    /// budgets remain a strict subset of the dataset.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmulatorOptions {
    fn default() -> Self {
        Self { scale: 1.0, seed: 0xABAE }
    }
}

impl EmulatorOptions {
    /// A scaled-down configuration for tests.
    pub fn test_scale() -> Self {
        Self { scale: 0.02, seed: 0xABAE }
    }

    pub(crate) fn scaled(&self, full: usize) -> usize {
        let floor = 30_000.min(full);
        ((full as f64 * self.scale) as usize).clamp(floor, full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use abae_ml::metrics::auc;

    fn proxy_auc(t: &Table, pred: &str) -> f64 {
        let p = t.predicate(pred).unwrap();
        auc(p.proxy(), &p.labels_vec()).unwrap()
    }

    #[test]
    fn all_emulators_generate_and_are_deterministic() {
        let opts = EmulatorOptions { scale: 0.01, seed: 7 };
        type Builder = fn(&EmulatorOptions) -> Table;
        let builders: Vec<(&str, Builder)> = vec![
            ("night-street", night_street),
            ("taipei", taipei),
            ("celeba", celeba),
            ("amazon-movies", amazon_movies),
            ("trec05p", trec05p),
            ("amazon-office", amazon_office),
        ];
        for (name, build) in builders {
            let a = build(&opts);
            let b = build(&opts);
            assert_eq!(a, b, "{name} not deterministic");
            assert!(a.len() >= 1000, "{name} too small: {}", a.len());
        }
    }

    #[test]
    fn scale_controls_size() {
        let small = night_street(&EmulatorOptions { scale: 0.05, seed: 1 });
        let large = night_street(&EmulatorOptions { scale: 0.25, seed: 1 });
        assert!(large.len() > 3 * small.len());
        // The floor keeps tiny scales usable with 10k-call budgets.
        assert_eq!(night_street(&EmulatorOptions { scale: 0.001, seed: 1 }).len(), 30_000);
        // Paper scale: 973,136 records.
        assert_eq!(night_street(&EmulatorOptions { scale: 1.0, seed: 1 }).len(), 973_136);
    }

    #[test]
    fn positive_rates_are_in_documented_bands() {
        let opts = EmulatorOptions { scale: 0.05, seed: 11 };
        let cases = [
            (night_street(&opts), "has_car", 0.25, 0.05),
            (taipei(&opts), "has_car", 0.48, 0.05),
            (celeba(&opts), "blonde_hair", 0.148, 0.04),
            (amazon_movies(&opts), "female_face", 0.35, 0.05),
            (trec05p(&opts), "is_spam", 0.25, 0.04),
            (amazon_office(&opts), "strongly_positive", 0.45, 0.05),
        ];
        for (t, pred, want, tol) in cases {
            let rate = t.positive_rate(pred).unwrap();
            assert!(
                (rate - want).abs() < tol,
                "{}: positive rate {rate}, want {want}±{tol}",
                t.name()
            );
        }
    }

    #[test]
    fn proxies_are_informative_but_imperfect() {
        let opts = EmulatorOptions { scale: 0.05, seed: 13 };
        let cases = [
            (night_street(&opts), "has_car", 0.80, 1.0),
            (taipei(&opts), "has_car", 0.78, 1.0),
            (celeba(&opts), "blonde_hair", 0.85, 1.0),
            (amazon_movies(&opts), "female_face", 0.75, 0.98),
            (trec05p(&opts), "is_spam", 0.68, 0.95),
            (amazon_office(&opts), "strongly_positive", 0.65, 0.95),
        ];
        for (t, pred, lo, hi) in cases {
            let a = proxy_auc(&t, pred);
            assert!((lo..=hi).contains(&a), "{}: AUC {a} outside [{lo}, {hi}]", t.name());
        }
    }

    #[test]
    fn night_street_multipred_positive_rate_matches_paper() {
        // §5.2: "The positive rate is 0.17" for cars ∧ red light.
        let opts = EmulatorOptions { scale: 0.05, seed: 17 };
        let t = night_street(&opts);
        let cars = t.predicate("has_car").unwrap().labels();
        let red = t.predicate("red_light").unwrap().labels();
        // Word-wise conjunction over the packed label bitmaps.
        let both = cars.bitmap().and(red.bitmap()).count_ones() as f64 / t.len() as f64;
        assert!((both - 0.17).abs() < 0.03, "conjunction rate {both}");
    }

    #[test]
    fn statistic_supports_match_their_domains() {
        let opts = EmulatorOptions { scale: 0.02, seed: 19 };
        // Car counts are ≥ 1 for matching frames.
        let ns = night_street(&opts);
        let cars = ns.predicate("has_car").unwrap().labels();
        for i in cars.iter_ones() {
            assert!(ns.statistic(i) >= 1.0);
        }
        // Ratings are 1..=5.
        let movies = amazon_movies(&opts);
        assert!(movies.statistics().iter().all(|&v| (1.0..=5.0).contains(&v)));
        // Smiling percentage is 0 or 100.
        let faces = celeba(&opts);
        assert!(faces.statistics().iter().all(|&v| v == 0.0 || v == 100.0));
        // Link counts are non-negative integers.
        let spam = trec05p(&opts);
        assert!(spam.statistics().iter().all(|&v| v >= 0.0 && v.fract() == 0.0));
    }

    #[test]
    fn trec05p_carries_real_text_and_multiple_proxies() {
        let opts = EmulatorOptions { scale: 0.02, seed: 23 };
        let t = trec05p(&opts);
        let texts = t.texts().expect("trec05p emulator generates token streams");
        assert_eq!(texts.len(), t.len());
        assert!(texts.iter().all(|s| !s.is_empty()));
        // Three keyword proxies of decreasing quality for Figure 12.
        let a1 = proxy_auc(&t, "is_spam");
        let a2 = proxy_auc(&t, "is_spam_kw2");
        let a3 = proxy_auc(&t, "is_spam_kw3");
        assert!(a1 > a2, "kw1 {a1} vs kw2 {a2}");
        assert!(a2 > a3, "kw2 {a2} vs kw3 {a3}");
        assert!(a3 < 0.62, "kw3 should be near-useless, got {a3}");
    }

    #[test]
    fn celeba_groupby_has_two_hair_color_groups() {
        let opts = EmulatorOptions { scale: 0.05, seed: 29 };
        let t = celeba_groupby(&opts);
        let gk = t.group_key().unwrap();
        assert_eq!(gk.names(), &["gray".to_string(), "blond".to_string()]);
        let gray_rate = t.exact_group_count(0).unwrap() / t.len() as f64;
        let blond_rate = t.exact_group_count(1).unwrap() / t.len() as f64;
        assert!((gray_rate - 0.042).abs() < 0.02, "gray {gray_rate}");
        assert!((blond_rate - 0.148).abs() < 0.03, "blond {blond_rate}");
        // Statistic is a smiling percentage.
        assert!(t.statistics().iter().all(|&v| v == 0.0 || v == 100.0));
    }
}
