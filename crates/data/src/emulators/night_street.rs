//! `night-street` (a.k.a. `jackson`) video emulator.
//!
//! Paper workload: `SELECT AVG(count_cars(frame)) FROM video WHERE
//! count_cars(frame) > 0`, oracle = Mask R-CNN, proxy = a TASTI embedding
//! index. 973,136 frames.
//!
//! Substitution: a latent "traffic intensity" per frame drives both car
//! presence (positive rate ≈ 0.25 — a night-time feed is mostly empty) and
//! the car count (`1 + Poisson`, busier frames have more cars, which gives
//! the per-stratum variance structure ABae exploits). The TASTI proxy is
//! strong (AUC ≈ 0.85–0.92 here). A second predicate `red_light` (for the
//! multi-predicate experiment, Figure 6) is tuned so the conjunction's
//! positive rate is the paper's 0.17.

use super::EmulatorOptions;
use crate::synthetic::{PredicateModel, StatisticModel, SyntheticSpec};
use crate::table::Table;

/// Paper record count.
pub const FULL_SIZE: usize = 973_136;

/// Builds the night-street emulation.
pub fn night_street(opts: &EmulatorOptions) -> Table {
    SyntheticSpec {
        name: "night-street".to_string(),
        n: opts.scaled(FULL_SIZE),
        predicates: vec![
            // TASTI proxy: strong, moderately noisy.
            PredicateModel::new("has_car", 0.25, 1.2, 0.5),
            // Red light phase: independent of traffic; P(red) ≈ 0.68 so
            // that P(car ∧ red) ≈ 0.17 as reported in §5.2. Proxy from an
            // embedding index over the traffic-light pixels: decent.
            PredicateModel::new("red_light", 0.68, 2.0, 0.6),
        ],
        statistic: StatisticModel::ShiftedPoisson { base: 0.2, coupling: 3.0 },
        seed: opts.seed ^ 0x6e69_6768_7473, // "nights"
    }
    .generate()
    .expect("static spec is valid")
}
