//! `taipei` video emulator.
//!
//! Paper workload: same query as night-street (`AVG(count_cars) WHERE
//! count_cars > 0`) over a busier daytime intersection feed. 1,187,850
//! frames, Mask R-CNN oracle, TASTI proxy.
//!
//! Substitution: same latent-intensity construction as night-street with a
//! higher base positive rate (≈ 0.48 — cars are present about half the
//! time) and a higher car-count rate. The proxy is slightly weaker than on
//! night-street (busy scenes are harder for an embedding index).

use super::EmulatorOptions;
use crate::synthetic::{PredicateModel, StatisticModel, SyntheticSpec};
use crate::table::Table;

/// Paper record count.
pub const FULL_SIZE: usize = 1_187_850;

/// Builds the taipei emulation.
pub fn taipei(opts: &EmulatorOptions) -> Table {
    SyntheticSpec {
        name: "taipei".to_string(),
        n: opts.scaled(FULL_SIZE),
        predicates: vec![PredicateModel::new("has_car", 0.48, 1.5, 0.6)],
        statistic: StatisticModel::ShiftedPoisson { base: 0.8, coupling: 2.5 },
        seed: opts.seed ^ 0x7461_6970_6569, // "taipei"
    }
    .generate()
    .expect("static spec is valid")
}
