//! `trec05p` spam-corpus emulator.
//!
//! Paper workload: `SELECT AVG(NB_LINKS(text)) FROM emails WHERE
//! is_spam(text)` over the TREC 2005 public spam corpus, SPAM25 subset
//! (52,578 emails, 25% spam); human labels as the oracle and "a manual,
//! keyword-based proxy based on the presence of words (e.g., 'money',
//! 'please')" as the proxy.
//!
//! Substitution: this emulator generates actual token streams — spammier
//! emails draw more tokens from a spam vocabulary — and the proxy scores
//! are produced by a real [`KeywordProxy`] scanning those tokens, so the
//! text→score code path in `abae-ml` is exercised end to end, not
//! simulated. The statistic (link count) is heavy-tailed and coupled to the
//! spam propensity: spam carries far more links.
//!
//! Three proxies of decreasing quality are attached (for the
//! proxy-selection §3.4 and proxy-combination Figure 12 experiments):
//! `is_spam` (the good keyword list), `is_spam_kw2` (a shorter, weaker
//! list), `is_spam_kw3` (near-useless generic words).

use super::EmulatorOptions;
use crate::table::Table;
use abae_ml::keyword::KeywordProxy;
use abae_stats::dist::{Beta, Categorical, Normal};
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Paper record count (SPAM25 subset).
pub const FULL_SIZE: usize = 52_578;

/// Paper spam rate (the SPAM25 subset is 25% spam).
pub const SPAM_RATE: f64 = 0.25;

const SPAM_VOCAB: &[&str] = &[
    "money", "free", "winner", "lottery", "claim", "click", "offer", "credit", "cash", "prize",
    "viagra", "pills", "loan", "urgent", "guarantee", "unsubscribe", "deal", "cheap", "bonus",
    "rich",
];

const HAM_VOCAB: &[&str] = &[
    "meeting", "report", "project", "attached", "schedule", "review", "team", "thanks", "notes",
    "update", "budget", "draft", "agenda", "question", "discussion", "plan", "paper", "results",
    "data", "lunch", "please", "regards", "tomorrow", "morning", "call", "office", "file",
    "document", "send", "best",
];

/// Builds the trec05p emulation with generated text and keyword proxies.
pub fn trec05p(opts: &EmulatorOptions) -> Table {
    let n = opts.scaled(FULL_SIZE);
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x7472_6563); // "trec"

    // Spam propensity: Beta with mean 0.25; moderately spread so the
    // keyword proxy has signal to find.
    let propensity = Beta::new(SPAM_RATE * 1.2, (1.0 - SPAM_RATE) * 1.2).expect("valid");
    let spam_words = Categorical::new(&vec![1.0; SPAM_VOCAB.len()]).expect("non-empty");
    let ham_words = Categorical::new(&vec![1.0; HAM_VOCAB.len()]).expect("non-empty");
    let link_noise = Normal::new(0.0, 0.8).expect("valid");

    // The paper-style keyword proxies.
    let kw_good = KeywordProxy::new(
        SPAM_VOCAB.iter().take(12).map(|&w| (w, 0.9)),
        -1.6,
        1.0,
    );
    let kw_medium = KeywordProxy::new(
        [("money", 1.0), ("free", 1.0), ("click", 1.0), ("please", 0.3)],
        -1.2,
        1.0,
    );
    let kw_weak = KeywordProxy::new(
        // Generic words that barely separate classes.
        [("please", 0.5), ("update", 0.4), ("send", 0.4), ("best", 0.3)],
        -0.8,
        1.0,
    );

    let mut statistic = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut proxy1 = Vec::with_capacity(n);
    let mut proxy2 = Vec::with_capacity(n);
    let mut proxy3 = Vec::with_capacity(n);
    let mut texts = Vec::with_capacity(n);
    let mut tokens: Vec<&str> = Vec::new();

    for _ in 0..n {
        let q = propensity.sample(&mut rng);
        let is_spam = rng.gen::<f64>() < q;

        // Token stream: 25–60 tokens; spam-vocabulary share grows with the
        // spam propensity (2% baseline → ~40% for blatant spam).
        let len = rng.gen_range(25..=60);
        let spam_share = 0.02 + 0.38 * q;
        tokens.clear();
        for _ in 0..len {
            if rng.gen::<f64>() < spam_share {
                tokens.push(SPAM_VOCAB[spam_words.sample(&mut rng)]);
            } else {
                tokens.push(HAM_VOCAB[ham_words.sample(&mut rng)]);
            }
        }

        proxy1.push(kw_good.score_tokens(&tokens));
        proxy2.push(kw_medium.score_tokens(&tokens));
        proxy3.push(kw_weak.score_tokens(&tokens));
        texts.push(tokens.join(" "));
        labels.push(is_spam);

        // Link count: heavy-tailed, spam-heavy. ⌊exp(N(0.1 + 1.6q, 0.8))⌋.
        let log_links = 0.1 + 1.6 * q + link_noise.sample(&mut rng);
        statistic.push(log_links.exp().floor().max(0.0));
    }

    Table::builder("trec05p", statistic)
        .predicate("is_spam", labels.clone(), proxy1)
        .predicate("is_spam_kw2", labels.clone(), proxy2)
        .predicate("is_spam_kw3", labels, proxy3)
        .texts(texts)
        .build()
        .expect("static construction is valid")
}
