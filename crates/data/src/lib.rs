//! Dataset substrate for the ABae reproduction.
//!
//! ABae operates over unstructured datasets where an expensive *oracle*
//! (DNN or human labeler) decides predicate membership and a cheap *proxy*
//! supplies a `[0, 1]` score per record. This crate provides:
//!
//! * [`table`] — an in-memory columnar [`Table`] holding the statistic
//!   column, one or more predicate columns (ground-truth labels plus
//!   exhaustively-computed proxy scores, as the paper assumes), an optional
//!   group key, and optional text payloads. Exact aggregates over the
//!   ground truth provide the `μ` every experiment measures error against.
//! * [`oracle`] — the batch-first, thread-safe [`Oracle`] abstraction with
//!   atomic invocation accounting (the paper's cost metric is the number of
//!   oracle calls), the [`GroupOracle`] extension for group-by queries,
//!   closure-based oracles for composed predicates, a simulated
//!   per-invocation latency knob for offline throughput experiments, and
//!   the cross-query [`LabelStore`] memo table (verdicts keyed by table,
//!   predicate expression, and record index) with its [`CachedOracle`]
//!   adapter, so repeated queries spend oracle budget only on unseen
//!   records.
//! * [`proxy`] — trained proxy artifacts ([`TrainedProxy`]: materialized
//!   full-table scores plus training spend and calibration diagnostics)
//!   and the internally-synchronized [`ProxyRegistry`] the query catalog
//!   owns, so `CREATE PROXY` can register artifacts against a frozen
//!   catalog.
//! * [`columnar`] — the storage layer under [`Table`]: typed `Arc`-backed
//!   column vectors, packed bitmaps, dictionary-encoded group keys, batch
//!   [`columnar::ColumnSlice`] views, and the mmap-friendly `.abcol`
//!   binary file format.
//! * [`csvio`] — a dependency-free CSV reader/writer so user datasets can
//!   be loaded from disk, streaming rows straight into column builders.
//! * [`synthetic`] — seeded latent-variable generators: the joint
//!   distribution of (proxy score, oracle label, statistic) is what ABae's
//!   behaviour depends on, and these generators control it precisely.
//! * [`emulators`] — the six paper datasets (Table 2) rebuilt as documented
//!   synthetic equivalents at the paper's scale.
//! * [`registry`] — the Table 2 inventory: dataset metadata plus measured
//!   positive rate and proxy AUC.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod columnar;
pub mod csvio;
pub mod emulators;
pub mod oracle;
pub mod proxy;
pub mod registry;
pub mod synthetic;
pub mod table;

pub use oracle::{
    CachedOracle, FnOracle, GroupLabel, GroupOracle, LabelStore, Labeled, Oracle,
    PredicateCache, PredicateOracle, SingleGroupOracle,
};
pub use proxy::{ProxyRegistry, TrainedProxy};
pub use synthetic::{GroupSpec, PredicateModel, StatisticModel, SyntheticSpec};
pub use table::{GroupKey, Predicate, Table, TableBuilder, TableError};
