//! Oracles: the expensive predicate evaluators, with cost accounting.
//!
//! The paper measures query cost "in terms of oracle predicate invocations
//! as it is the dominant cost of query execution by orders of magnitude"
//! (§5.1) because the oracle is a DNN invoked *in batches* on accelerators.
//! The [`Oracle`] trait is therefore batch-first: [`Oracle::label_batch`]
//! is the primary entry point (one invocation charged per record in the
//! batch), and the per-record [`Oracle::label`] is a one-element batch.
//! Every oracle counts its invocations through an [`AtomicU64`], and the
//! trait requires [`Sync`], so a batch pipeline may fan batches out across
//! threads while tests still assert that an algorithm spent exactly its
//! budget.
//!
//! For offline throughput experiments, each built-in oracle carries an
//! optional simulated per-invocation latency ([`PredicateOracle::with_latency`]
//! and friends): labeling a batch of `m` records then costs `m × latency`
//! of wall-clock sleep on the calling thread, which makes multi-threaded
//! speedups measurable without a real DNN behind the oracle.
//!
//! Because the oracle is deterministic per record, verdicts can be reused
//! *across* queries: the [`LabelStore`] memoizes labels by
//! `(table, predicate expression, record index)`, and its [`CachedOracle`]
//! adapter answers cache hits for free while charging the wrapped oracle
//! only for unseen records.

use crate::table::Table;
// abae-lint: allow(hash_iter) -- HashMap is imported only for PredicateCache's lookup-only label map below
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Result of one oracle invocation: whether the record satisfies the
/// predicate, and the statistic value `f(x)`.
///
/// The paper assumes "the statistic can be computed in conjunction with the
/// predicates or is cheap to compute" (§2.1), so one invocation yields both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Labeled {
    /// Predicate result `O(x)`.
    pub matches: bool,
    /// Statistic `f(x)`; only meaningful when `matches` is true.
    pub value: f64,
}

/// Result of a single-oracle group-by invocation: which group (if any) the
/// record belongs to, and the statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupLabel {
    /// Group id, or `None` when the record matches no group.
    pub group: Option<u16>,
    /// Statistic `f(x)`.
    pub value: f64,
}

/// Thread-safe invocation meter shared by the built-in oracles: an atomic
/// per-record call counter, an atomic per-batch invocation counter, plus
/// the optional simulated per-record latency.
///
/// Both counters are per-*instance*, and the engine builds one oracle
/// instance per query: spend attribution is structural. Even when the
/// cross-session batcher (`abae_core::batcher`) coalesces several
/// sessions' requests into one shared device invocation, each session
/// still labels its own records through its own instance, so `calls()`
/// charges the *requesting* session exactly — never a co-batched tenant.
#[derive(Debug, Default)]
struct Meter {
    calls: AtomicU64,
    invocations: AtomicU64,
    latency: Duration,
}

impl Meter {
    /// Charges a batch of `n` records as one invocation and, when a
    /// latency is configured, sleeps `n × latency` (the batch's simulated
    /// inference time). Empty batches charge nothing.
    fn charge(&self, n: usize) {
        if n == 0 {
            return;
        }
        self.calls.fetch_add(n as u64, Ordering::Relaxed);
        self.invocations.fetch_add(1, Ordering::Relaxed);
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency * n as u32);
        }
    }

    fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.invocations.store(0, Ordering::Relaxed);
    }
}

/// An expensive predicate oracle over record indices.
///
/// `Sync` is a supertrait: oracles are shared across the labeling threads
/// of `abae_core::pipeline`, and the atomic counter keeps cost accounting
/// exact regardless of how batches are scheduled.
pub trait Oracle: Sync {
    /// Labels a batch of records, in input order, charging one invocation
    /// per record. This is the primary method — it models the batched DNN
    /// inference the paper's cost metric counts.
    fn label_batch(&self, indices: &[usize]) -> Vec<Labeled>;

    /// Labels one record, charging one invocation (a one-element batch).
    fn label(&self, idx: usize) -> Labeled {
        self.label_batch(std::slice::from_ref(&idx))
            .pop()
            .expect("label_batch returns one label per index")
    }

    /// Invocations so far.
    fn calls(&self) -> u64;

    /// Resets the invocation counter.
    fn reset_calls(&self);
}

/// An oracle that "determines the group key directly" (§3.2, first group-by
/// scenario): one invocation returns the record's group rather than a
/// boolean. Extends [`Oracle`] so group-by cost accounting goes through the
/// same `calls`/`reset_calls` interface as every other algorithm path.
pub trait GroupOracle: Oracle {
    /// Labels a batch of records with group ids, in input order, charging
    /// one invocation per record.
    fn label_group_batch(&self, indices: &[usize]) -> Vec<GroupLabel>;

    /// Labels one record with its group id (a one-element batch).
    fn label_group(&self, idx: usize) -> GroupLabel {
        self.label_group_batch(std::slice::from_ref(&idx))
            .pop()
            .expect("label_group_batch returns one label per index")
    }

    /// Number of groups the oracle can report.
    fn group_count(&self) -> usize;
}

/// Oracle for a named predicate column of a [`Table`].
pub struct PredicateOracle<'a> {
    table: &'a Table,
    pred: usize,
    meter: Meter,
}

impl<'a> PredicateOracle<'a> {
    /// Creates an oracle over `table`'s predicate `pred`.
    pub fn new(table: &'a Table, pred: &str) -> Result<Self, crate::table::TableError> {
        let idx = table.predicate_index(pred)?;
        Ok(Self { table, pred: idx, meter: Meter::default() })
    }

    /// Simulates `latency` of inference time per invocation (per record,
    /// charged when its batch is labeled).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.meter.latency = latency;
        self
    }

    /// Batch invocations so far (each `label_batch` call with at least one
    /// record is one device dispatch, however many records it carried).
    pub fn invocations(&self) -> u64 {
        self.meter.invocations()
    }
}

impl Oracle for PredicateOracle<'_> {
    fn label_batch(&self, indices: &[usize]) -> Vec<Labeled> {
        self.meter.charge(indices.len());
        indices
            .iter()
            .map(|&idx| Labeled {
                matches: self.table.predicates()[self.pred].label(idx),
                value: self.table.statistic(idx),
            })
            .collect()
    }

    fn calls(&self) -> u64 {
        self.meter.calls()
    }

    fn reset_calls(&self) {
        self.meter.reset();
    }
}

/// A closure-backed oracle; the building block for composed predicates
/// (ABae-MultiPred evaluates a whole boolean expression as one oracle call)
/// and for synthetic oracles in tests.
///
/// The struct itself places no bound on `F`; the [`Oracle`] impl requires
/// `F: Fn(usize) -> Labeled + Sync` so a shared reference can label batches
/// from several threads at once.
pub struct FnOracle<F> {
    f: F,
    meter: Meter,
}

impl<F> FnOracle<F> {
    /// Wraps a labeling function.
    pub fn new(f: F) -> Self {
        Self { f, meter: Meter::default() }
    }

    /// Simulates `latency` of inference time per invocation.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.meter.latency = latency;
        self
    }

    /// Batch invocations so far (one per non-empty `label_batch` call).
    pub fn invocations(&self) -> u64 {
        self.meter.invocations()
    }
}

impl<F: Fn(usize) -> Labeled + Sync> Oracle for FnOracle<F> {
    fn label_batch(&self, indices: &[usize]) -> Vec<Labeled> {
        self.meter.charge(indices.len());
        indices.iter().map(|&idx| (self.f)(idx)).collect()
    }

    fn calls(&self) -> u64 {
        self.meter.calls()
    }

    fn reset_calls(&self) {
        self.meter.reset();
    }
}

/// A single oracle that returns the record's group key (§3.2, first
/// group-by scenario), backed by a [`Table`]'s group-key column.
///
/// Implements [`Oracle`] (the predicate view: "belongs to *some* group")
/// and [`GroupOracle`] (the group view); both charge the same counter, so
/// group-by cost accounting is interchangeable with every other oracle's.
pub struct SingleGroupOracle<'a> {
    table: &'a Table,
    meter: Meter,
}

impl<'a> SingleGroupOracle<'a> {
    /// Creates the oracle; the table must carry a group key.
    pub fn new(table: &'a Table) -> Option<Self> {
        table.group_key()?;
        Some(Self { table, meter: Meter::default() })
    }

    /// Simulates `latency` of inference time per invocation.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.meter.latency = latency;
        self
    }

    /// Batch invocations so far (one per non-empty batch, shared by the
    /// predicate and group views).
    pub fn invocations(&self) -> u64 {
        self.meter.invocations()
    }
}

impl Oracle for SingleGroupOracle<'_> {
    fn label_batch(&self, indices: &[usize]) -> Vec<Labeled> {
        // Predicate view of the group key: `matches` ⇔ in any group.
        let key = self.table.group_key().expect("validated at construction");
        self.meter.charge(indices.len());
        indices
            .iter()
            .map(|&idx| Labeled {
                matches: key.get(idx).is_some(),
                value: self.table.statistic(idx),
            })
            .collect()
    }

    fn calls(&self) -> u64 {
        self.meter.calls()
    }

    fn reset_calls(&self) {
        self.meter.reset();
    }
}

impl GroupOracle for SingleGroupOracle<'_> {
    fn label_group_batch(&self, indices: &[usize]) -> Vec<GroupLabel> {
        let key = self.table.group_key().expect("validated at construction");
        self.meter.charge(indices.len());
        indices
            .iter()
            .map(|&idx| GroupLabel { group: key.get(idx), value: self.table.statistic(idx) })
            .collect()
    }

    fn group_count(&self) -> usize {
        self.table.group_key().expect("validated at construction").num_groups()
    }
}

/// Cached verdicts for one `(table, predicate)` pair inside a
/// [`LabelStore`]: record index → labeled verdict.
///
/// Handed out as an `Arc` so a [`CachedOracle`] can keep labeling batches
/// after the store's own map lock is released. The inner `RwLock` makes
/// lookups concurrent: the batch pipeline's workers only take the write
/// lock for the misses they actually labeled.
#[derive(Debug, Default)]
pub struct PredicateCache {
    // abae-lint: allow(hash_iter) -- per-record hot-path cache, keyed lookups and keyed inserts only; never iterated, so its order cannot reach output
    labels: RwLock<HashMap<usize, Labeled>>,
}

impl PredicateCache {
    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.labels.read().expect("no panics while holding the cache lock").len()
    }

    /// Whether the cache holds no verdicts yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A cross-query memo table of oracle verdicts, keyed by
/// `(table, predicate expression, record index)`.
///
/// The paper's cost model counts oracle invocations because the oracle —
/// a DNN or a human labeler — dominates query cost by orders of magnitude
/// (§5.1). The oracle is also *deterministic per record*: `O(x)` and
/// `f(x)` do not change between queries. A dashboard that issues
/// `SELECT AVG(views)`, then `SELECT COUNT(*)` over the same table and
/// predicate therefore re-buys verdicts it already owns. `LabelStore`
/// keeps those verdicts: wrap the per-query oracle in a [`CachedOracle`]
/// over the store's entry for that `(table, predicate)` pair, and only
/// records never labeled before reach (and charge) the real oracle.
///
/// All interior state is behind locks, so a store shared by reference —
/// e.g. owned by a query catalog that executors borrow — works without
/// outer synchronization, including under the batch-parallel labeling
/// pipeline. Lifetime hit/miss totals are kept as atomics for reporting
/// (`EXPLAIN`, dashboards); per-query counts live on the [`CachedOracle`].
#[derive(Debug, Default)]
pub struct LabelStore {
    entries: Mutex<BTreeMap<(String, String), Arc<PredicateCache>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LabelStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cache entry for `(table, predicate)`, creating it on
    /// first use. `predicate` should be a canonical rendering of the
    /// predicate expression (the same query must produce the same key).
    pub fn entry(&self, table: &str, predicate: &str) -> Arc<PredicateCache> {
        let mut entries = self.entries.lock().expect("no panics while holding the store lock");
        Arc::clone(entries.entry((table.to_string(), predicate.to_string())).or_default())
    }

    /// Number of verdicts cached for `(table, predicate)` (0 when the pair
    /// has never been queried).
    pub fn cached_verdicts(&self, table: &str, predicate: &str) -> usize {
        let entries = self.entries.lock().expect("no panics while holding the store lock");
        entries.get(&(table.to_string(), predicate.to_string())).map_or(0, |e| e.len())
    }

    /// Lifetime cache hits across every [`CachedOracle`] over this store.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime cache misses (records that reached a real oracle).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached entry for `table` (all predicates). Must be
    /// called when a table's data is replaced, so verdicts bought against
    /// the old data can never answer queries over the new data.
    pub fn invalidate_table(&self, table: &str) {
        let mut entries = self.entries.lock().expect("no panics while holding the store lock");
        entries.retain(|(t, _), _| t != table);
    }

    fn record(&self, hits: u64, misses: u64) {
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
    }
}

/// An [`Oracle`] adapter that consults a [`PredicateCache`] before charging
/// the wrapped oracle: cache hits are answered from the store for free,
/// misses are labeled through the inner oracle's `label_batch` and written
/// back.
///
/// Invocation accounting stays exact: [`CachedOracle::calls`] forwards to
/// the inner oracle, so algorithms that meter spend via `oracle.calls()`
/// automatically report only the *misses* — the invocations that actually
/// happened. Per-wrapper hit/miss counts (for one query's result report)
/// are available via [`CachedOracle::hits`] / [`CachedOracle::misses`];
/// the same counts are added to the store's lifetime totals.
///
/// Batches are checked and labeled per call. The draws of one query are
/// without replacement, so concurrent batches never share a record index
/// and every record is labeled at most once; results are bit-identical to
/// the uncached oracle for any thread count or batch size.
pub struct CachedOracle<'a, O> {
    inner: O,
    cache: Arc<PredicateCache>,
    store: &'a LabelStore,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'a, O: Oracle> CachedOracle<'a, O> {
    /// Wraps `inner` with the store's cache entry for `(table, predicate)`.
    pub fn new(inner: O, store: &'a LabelStore, table: &str, predicate: &str) -> Self {
        Self {
            inner,
            cache: store.entry(table, predicate),
            store,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Cache hits since this wrapper was created (records answered without
    /// an oracle invocation).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since this wrapper was created (records that charged
    /// the inner oracle).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Consumes the wrapper, returning the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for CachedOracle<'_, O> {
    fn label_batch(&self, indices: &[usize]) -> Vec<Labeled> {
        // Pass 1 under the read lock: answer hits, collect misses.
        let mut out: Vec<Option<Labeled>> = vec![None; indices.len()];
        let mut miss_pos: Vec<usize> = Vec::new();
        let mut miss_ids: Vec<usize> = Vec::new();
        {
            let map = self.cache.labels.read().expect("no panics while holding the cache lock");
            for (pos, &idx) in indices.iter().enumerate() {
                match map.get(&idx) {
                    Some(&label) => out[pos] = Some(label),
                    None => {
                        miss_pos.push(pos);
                        miss_ids.push(idx);
                    }
                }
            }
        }
        // Pass 2: label the misses through the real oracle, write back.
        if !miss_ids.is_empty() {
            let labeled = self.inner.label_batch(&miss_ids);
            let mut map =
                self.cache.labels.write().expect("no panics while holding the cache lock");
            for ((&pos, idx), label) in miss_pos.iter().zip(miss_ids).zip(labeled) {
                map.insert(idx, label);
                out[pos] = Some(label);
            }
        }
        let hits = (indices.len() - miss_pos.len()) as u64;
        let misses = miss_pos.len() as u64;
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        self.store.record(hits, misses);
        out.into_iter().map(|l| l.expect("every index answered by hit or miss path")).collect()
    }

    fn calls(&self) -> u64 {
        self.inner.calls()
    }

    fn reset_calls(&self) {
        self.inner.reset_calls()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::builder("t", vec![1.0, 2.0, 3.0])
            .predicate("p", vec![true, false, true], vec![0.9, 0.1, 0.8])
            .group_key(vec!["g0".into(), "g1".into()], vec![Some(0), None, Some(1)])
            .build()
            .unwrap()
    }

    #[test]
    fn predicate_oracle_labels_and_counts() {
        let t = table();
        let o = PredicateOracle::new(&t, "p").unwrap();
        assert_eq!(o.calls(), 0);
        let l = o.label(0);
        assert!(l.matches);
        assert_eq!(l.value, 1.0);
        let l = o.label(1);
        assert!(!l.matches);
        assert_eq!(o.calls(), 2);
        o.reset_calls();
        assert_eq!(o.calls(), 0);
    }

    #[test]
    fn batch_labels_match_per_record_labels_and_charge_len() {
        let t = table();
        let o = PredicateOracle::new(&t, "p").unwrap();
        let batch = o.label_batch(&[0, 1, 2]);
        assert_eq!(o.calls(), 3);
        o.reset_calls();
        let singles: Vec<Labeled> = (0..3).map(|i| o.label(i)).collect();
        assert_eq!(batch, singles);
        assert_eq!(o.calls(), 3);
    }

    #[test]
    fn empty_batch_charges_nothing() {
        let t = table();
        let o = PredicateOracle::new(&t, "p").unwrap();
        assert!(o.label_batch(&[]).is_empty());
        assert_eq!(o.calls(), 0);
    }

    #[test]
    fn predicate_oracle_unknown_name_errors() {
        let t = table();
        assert!(PredicateOracle::new(&t, "zzz").is_err());
    }

    #[test]
    fn fn_oracle_wraps_closures() {
        let o = FnOracle::new(|idx| Labeled { matches: idx % 2 == 0, value: idx as f64 });
        assert!(o.label(0).matches);
        assert!(!o.label(1).matches);
        assert_eq!(o.label(4).value, 4.0);
        assert_eq!(o.calls(), 3);
    }

    #[test]
    fn composed_expression_counts_once_per_record() {
        // A conjunction of two predicates is still one oracle invocation.
        let t = table();
        let p = t.predicate("p").unwrap().labels_vec();
        let stats = t.statistics().to_vec();
        let o = FnOracle::new(move |idx| Labeled {
            matches: p[idx] && stats[idx] > 1.5,
            value: stats[idx],
        });
        assert!(!o.label(0).matches); // p true but stat 1.0
        assert!(o.label(2).matches);
        assert_eq!(o.calls(), 2);
    }

    #[test]
    fn counters_are_exact_under_concurrent_batches() {
        let o = FnOracle::new(|idx| Labeled { matches: true, value: idx as f64 });
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for start in 0..50usize {
                        let ids: Vec<usize> = (start..start + 4).collect();
                        o.label_batch(&ids);
                    }
                });
            }
        });
        assert_eq!(o.calls(), 8 * 50 * 4);
    }

    #[test]
    fn group_oracle_labels_groups() {
        let t = table();
        let o = SingleGroupOracle::new(&t).unwrap();
        assert_eq!(o.group_count(), 2);
        assert_eq!(o.label_group(0).group, Some(0));
        assert_eq!(o.label_group(1).group, None);
        assert_eq!(o.label_group(2).group, Some(1));
        assert_eq!(o.calls(), 3);
    }

    #[test]
    fn group_oracle_predicate_view_shares_the_counter() {
        let t = table();
        let o = SingleGroupOracle::new(&t).unwrap();
        // Oracle view: matches ⇔ some group.
        let l = o.label_batch(&[0, 1]);
        assert!(l[0].matches && !l[1].matches);
        // Group view continues the same count.
        o.label_group_batch(&[2]);
        assert_eq!(o.calls(), 3);
        o.reset_calls();
        assert_eq!(o.calls(), 0);
    }

    #[test]
    fn group_oracle_requires_group_key() {
        let t = Table::builder("t", vec![1.0]).build().unwrap();
        assert!(SingleGroupOracle::new(&t).is_none());
    }

    #[test]
    fn invocations_count_batches_not_records() {
        let t = table();
        let o = PredicateOracle::new(&t, "p").unwrap();
        o.label_batch(&[0, 1, 2]);
        o.label_batch(&[0]);
        o.label_batch(&[]); // empty batches are not dispatches
        assert_eq!(o.calls(), 4);
        assert_eq!(o.invocations(), 2);
        o.reset_calls();
        assert_eq!((o.calls(), o.invocations()), (0, 0));
    }

    #[test]
    fn group_oracle_attributes_spend_per_instance_under_shared_batching() {
        // The coalescing batcher shares device *invocations* across
        // sessions, but each session labels its own records through its
        // own oracle instance: simulate two sessions' group-by queries
        // running concurrently and assert neither instance's meter ever
        // includes the other's records — QueryResult budget arithmetic
        // relies on exactly this.
        let t = table();
        let a = SingleGroupOracle::new(&t).unwrap();
        let b = SingleGroupOracle::new(&t).unwrap();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..100 {
                    a.label_group_batch(&[0, 1, 2]);
                }
            });
            scope.spawn(|| {
                for _ in 0..100 {
                    b.label_group_batch(&[2, 0]);
                }
            });
        });
        assert_eq!(a.calls(), 300, "session A charged only its own records");
        assert_eq!(b.calls(), 200, "session B charged only its own records");
        assert_eq!(a.invocations(), 100);
        assert_eq!(b.invocations(), 100);
    }

    #[test]
    fn with_latency_preserves_the_running_count() {
        let t = table();
        let o = PredicateOracle::new(&t, "p").unwrap();
        o.label(0);
        let o = o.with_latency(Duration::from_micros(1));
        assert_eq!(o.calls(), 1, "configuring latency must not reset accounting");
    }

    #[test]
    fn cached_oracle_answers_hits_without_charging() {
        let t = table();
        let store = LabelStore::new();
        let inner = PredicateOracle::new(&t, "p").unwrap();
        let cached = CachedOracle::new(inner, &store, "t", "p");
        // Cold: every record is a miss and charges the inner oracle.
        let cold = cached.label_batch(&[0, 1, 2]);
        assert_eq!(cached.calls(), 3);
        assert_eq!((cached.hits(), cached.misses()), (0, 3));
        // Warm: the same records are free and bit-identical.
        let warm = cached.label_batch(&[0, 1, 2]);
        assert_eq!(warm, cold);
        assert_eq!(cached.calls(), 3, "hits must not charge the oracle");
        assert_eq!((cached.hits(), cached.misses()), (3, 3));
        // Mixed batch: only the unseen record charges.
        cached.label_batch(&[2, 0, 1, 0]);
        assert_eq!(cached.calls(), 3);
        assert_eq!(store.cached_verdicts("t", "p"), 3);
        assert_eq!((store.hits(), store.misses()), (7, 3));
    }

    #[test]
    fn store_survives_the_wrapper_and_serves_new_queries() {
        let t = table();
        let store = LabelStore::new();
        let first = {
            let cached =
                CachedOracle::new(PredicateOracle::new(&t, "p").unwrap(), &store, "t", "p");
            cached.label_batch(&[0, 2])
        };
        // A fresh oracle (new query) over the same store entry: all hits.
        let cached = CachedOracle::new(PredicateOracle::new(&t, "p").unwrap(), &store, "t", "p");
        let again = cached.label_batch(&[0, 2]);
        assert_eq!(again, first);
        assert_eq!(cached.calls(), 0, "a warm store answers repeat queries for free");
        assert_eq!((cached.hits(), cached.misses()), (2, 0));
    }

    #[test]
    fn store_keys_tables_and_predicates_separately() {
        let t = table();
        let store = LabelStore::new();
        let on_p = CachedOracle::new(PredicateOracle::new(&t, "p").unwrap(), &store, "t", "p");
        on_p.label_batch(&[0, 1]);
        // Different predicate key: verdicts must not leak across entries.
        let negated = FnOracle::new(|idx| Labeled { matches: idx != 0, value: 9.0 });
        let on_not_p = CachedOracle::new(negated, &store, "t", "NOT p");
        let l = on_not_p.label_batch(&[0]);
        assert!(!l[0].matches, "entry for `NOT p` must consult its own oracle");
        assert_eq!(store.cached_verdicts("t", "p"), 2);
        assert_eq!(store.cached_verdicts("t", "NOT p"), 1);
        assert_eq!(store.cached_verdicts("other", "p"), 0);
    }

    #[test]
    fn invalidate_table_drops_every_predicate_of_that_table_only() {
        let t = table();
        let store = LabelStore::new();
        for (tbl, pred) in [("t", "p"), ("t", "q"), ("u", "p")] {
            let o = CachedOracle::new(PredicateOracle::new(&t, "p").unwrap(), &store, tbl, pred);
            o.label_batch(&[0, 1]);
        }
        store.invalidate_table("t");
        assert_eq!(store.cached_verdicts("t", "p"), 0);
        assert_eq!(store.cached_verdicts("t", "q"), 0);
        assert_eq!(store.cached_verdicts("u", "p"), 2, "other tables keep their verdicts");
    }

    #[test]
    fn cached_oracle_is_exact_under_concurrent_batches() {
        // Distinct indices across threads (as without-replacement draws
        // guarantee): every record charges exactly once, and the verdicts
        // match the inner oracle's.
        let store = LabelStore::new();
        let inner = FnOracle::new(|idx| Labeled { matches: idx % 2 == 0, value: idx as f64 });
        let cached = CachedOracle::new(inner, &store, "t", "p");
        std::thread::scope(|scope| {
            for worker in 0..8usize {
                let cached = &cached;
                scope.spawn(move || {
                    let ids: Vec<usize> = (worker * 100..(worker + 1) * 100).collect();
                    for chunk in ids.chunks(7) {
                        cached.label_batch(chunk);
                    }
                });
            }
        });
        assert_eq!(cached.calls(), 800);
        assert_eq!((cached.hits(), cached.misses()), (0, 800));
        assert_eq!(store.cached_verdicts("t", "p"), 800);
        let warm = cached.label_batch(&[5]);
        assert_eq!(warm[0], Labeled { matches: false, value: 5.0 });
        assert_eq!(cached.calls(), 800);
    }

    #[test]
    fn latency_knob_sleeps_per_invocation() {
        let o = FnOracle::new(|idx| Labeled { matches: true, value: idx as f64 })
            .with_latency(Duration::from_millis(2));
        // abae-lint: allow(wall_clock) -- this test exists to measure the simulated oracle latency; the clock is the subject, not an input to results
        let start = std::time::Instant::now();
        o.label_batch(&[0, 1, 2, 3, 4]);
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert_eq!(o.calls(), 5);
    }
}
