//! Oracles: the expensive predicate evaluators, with cost accounting.
//!
//! The paper measures query cost "in terms of oracle predicate invocations
//! as it is the dominant cost of query execution by orders of magnitude"
//! (§5.1). Every oracle here counts its invocations through a [`Cell`], so
//! tests and the harness can assert that an algorithm spent exactly its
//! budget. Each experiment trial constructs its own oracle view, so the
//! non-`Sync` counter is not a constraint.

use crate::table::Table;
use std::cell::Cell;

/// Result of one oracle invocation: whether the record satisfies the
/// predicate, and the statistic value `f(x)`.
///
/// The paper assumes "the statistic can be computed in conjunction with the
/// predicates or is cheap to compute" (§2.1), so one invocation yields both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Labeled {
    /// Predicate result `O(x)`.
    pub matches: bool,
    /// Statistic `f(x)`; only meaningful when `matches` is true.
    pub value: f64,
}

/// Result of a single-oracle group-by invocation: which group (if any) the
/// record belongs to, and the statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupLabel {
    /// Group id, or `None` when the record matches no group.
    pub group: Option<u16>,
    /// Statistic `f(x)`.
    pub value: f64,
}

/// An expensive predicate oracle over record indices.
pub trait Oracle {
    /// Labels one record, charging one invocation.
    fn label(&self, idx: usize) -> Labeled;

    /// Invocations so far.
    fn calls(&self) -> u64;

    /// Resets the invocation counter.
    fn reset_calls(&self);
}

/// Oracle for a named predicate column of a [`Table`].
pub struct PredicateOracle<'a> {
    table: &'a Table,
    pred: usize,
    calls: Cell<u64>,
}

impl<'a> PredicateOracle<'a> {
    /// Creates an oracle over `table`'s predicate `pred`.
    pub fn new(table: &'a Table, pred: &str) -> Result<Self, crate::table::TableError> {
        let idx = table.predicate_index(pred)?;
        Ok(Self { table, pred: idx, calls: Cell::new(0) })
    }
}

impl Oracle for PredicateOracle<'_> {
    fn label(&self, idx: usize) -> Labeled {
        self.calls.set(self.calls.get() + 1);
        Labeled {
            matches: self.table.predicates()[self.pred].labels[idx],
            value: self.table.statistic(idx),
        }
    }

    fn calls(&self) -> u64 {
        self.calls.get()
    }

    fn reset_calls(&self) {
        self.calls.set(0);
    }
}

/// A closure-backed oracle; the building block for composed predicates
/// (ABae-MultiPred evaluates a whole boolean expression as one oracle call)
/// and for synthetic oracles in tests.
pub struct FnOracle<F: Fn(usize) -> Labeled> {
    f: F,
    calls: Cell<u64>,
}

impl<F: Fn(usize) -> Labeled> FnOracle<F> {
    /// Wraps a labeling function.
    pub fn new(f: F) -> Self {
        Self { f, calls: Cell::new(0) }
    }
}

impl<F: Fn(usize) -> Labeled> Oracle for FnOracle<F> {
    fn label(&self, idx: usize) -> Labeled {
        self.calls.set(self.calls.get() + 1);
        (self.f)(idx)
    }

    fn calls(&self) -> u64 {
        self.calls.get()
    }

    fn reset_calls(&self) {
        self.calls.set(0);
    }
}

/// A single oracle that "determines the group key directly" (§3.2, first
/// group-by scenario): one invocation returns the record's group.
pub struct SingleGroupOracle<'a> {
    table: &'a Table,
    calls: Cell<u64>,
}

impl<'a> SingleGroupOracle<'a> {
    /// Creates the oracle; the table must carry a group key.
    pub fn new(table: &'a Table) -> Option<Self> {
        table.group_key()?;
        Some(Self { table, calls: Cell::new(0) })
    }

    /// Labels one record with its group id and statistic.
    pub fn label(&self, idx: usize) -> GroupLabel {
        self.calls.set(self.calls.get() + 1);
        GroupLabel {
            group: self.table.group_key().expect("validated at construction").key[idx],
            value: self.table.statistic(idx),
        }
    }

    /// Invocations so far.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Resets the invocation counter.
    pub fn reset_calls(&self) {
        self.calls.set(0);
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.table.group_key().expect("validated at construction").names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::builder("t", vec![1.0, 2.0, 3.0])
            .predicate("p", vec![true, false, true], vec![0.9, 0.1, 0.8])
            .group_key(vec!["g0".into(), "g1".into()], vec![Some(0), None, Some(1)])
            .build()
            .unwrap()
    }

    #[test]
    fn predicate_oracle_labels_and_counts() {
        let t = table();
        let o = PredicateOracle::new(&t, "p").unwrap();
        assert_eq!(o.calls(), 0);
        let l = o.label(0);
        assert!(l.matches);
        assert_eq!(l.value, 1.0);
        let l = o.label(1);
        assert!(!l.matches);
        assert_eq!(o.calls(), 2);
        o.reset_calls();
        assert_eq!(o.calls(), 0);
    }

    #[test]
    fn predicate_oracle_unknown_name_errors() {
        let t = table();
        assert!(PredicateOracle::new(&t, "zzz").is_err());
    }

    #[test]
    fn fn_oracle_wraps_closures() {
        let o = FnOracle::new(|idx| Labeled { matches: idx % 2 == 0, value: idx as f64 });
        assert!(o.label(0).matches);
        assert!(!o.label(1).matches);
        assert_eq!(o.label(4).value, 4.0);
        assert_eq!(o.calls(), 3);
    }

    #[test]
    fn composed_expression_counts_once_per_record() {
        // A conjunction of two predicates is still one oracle invocation.
        let t = table();
        let p = t.predicate("p").unwrap().labels.clone();
        let stats = t.statistics().to_vec();
        let o = FnOracle::new(move |idx| Labeled {
            matches: p[idx] && stats[idx] > 1.5,
            value: stats[idx],
        });
        assert!(!o.label(0).matches); // p true but stat 1.0
        assert!(o.label(2).matches);
        assert_eq!(o.calls(), 2);
    }

    #[test]
    fn group_oracle_labels_groups() {
        let t = table();
        let o = SingleGroupOracle::new(&t).unwrap();
        assert_eq!(o.group_count(), 2);
        assert_eq!(o.label(0).group, Some(0));
        assert_eq!(o.label(1).group, None);
        assert_eq!(o.label(2).group, Some(1));
        assert_eq!(o.calls(), 3);
    }

    #[test]
    fn group_oracle_requires_group_key() {
        let t = Table::builder("t", vec![1.0]).build().unwrap();
        assert!(SingleGroupOracle::new(&t).is_none());
    }
}
