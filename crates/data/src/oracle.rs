//! Oracles: the expensive predicate evaluators, with cost accounting.
//!
//! The paper measures query cost "in terms of oracle predicate invocations
//! as it is the dominant cost of query execution by orders of magnitude"
//! (§5.1) because the oracle is a DNN invoked *in batches* on accelerators.
//! The [`Oracle`] trait is therefore batch-first: [`Oracle::label_batch`]
//! is the primary entry point (one invocation charged per record in the
//! batch), and the per-record [`Oracle::label`] is a one-element batch.
//! Every oracle counts its invocations through an [`AtomicU64`], and the
//! trait requires [`Sync`], so a batch pipeline may fan batches out across
//! threads while tests still assert that an algorithm spent exactly its
//! budget.
//!
//! For offline throughput experiments, each built-in oracle carries an
//! optional simulated per-invocation latency ([`PredicateOracle::with_latency`]
//! and friends): labeling a batch of `m` records then costs `m × latency`
//! of wall-clock sleep on the calling thread, which makes multi-threaded
//! speedups measurable without a real DNN behind the oracle.

use crate::table::Table;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Result of one oracle invocation: whether the record satisfies the
/// predicate, and the statistic value `f(x)`.
///
/// The paper assumes "the statistic can be computed in conjunction with the
/// predicates or is cheap to compute" (§2.1), so one invocation yields both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Labeled {
    /// Predicate result `O(x)`.
    pub matches: bool,
    /// Statistic `f(x)`; only meaningful when `matches` is true.
    pub value: f64,
}

/// Result of a single-oracle group-by invocation: which group (if any) the
/// record belongs to, and the statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupLabel {
    /// Group id, or `None` when the record matches no group.
    pub group: Option<u16>,
    /// Statistic `f(x)`.
    pub value: f64,
}

/// Thread-safe invocation meter shared by the built-in oracles: an atomic
/// call counter plus the optional simulated per-invocation latency.
#[derive(Debug, Default)]
struct Meter {
    calls: AtomicU64,
    latency: Duration,
}

impl Meter {
    /// Charges `n` invocations and, when a latency is configured, sleeps
    /// `n × latency` (the batch's simulated inference time).
    fn charge(&self, n: usize) {
        self.calls.fetch_add(n as u64, Ordering::Relaxed);
        if !self.latency.is_zero() && n > 0 {
            std::thread::sleep(self.latency * n as u32);
        }
    }

    fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
    }
}

/// An expensive predicate oracle over record indices.
///
/// `Sync` is a supertrait: oracles are shared across the labeling threads
/// of `abae_core::pipeline`, and the atomic counter keeps cost accounting
/// exact regardless of how batches are scheduled.
pub trait Oracle: Sync {
    /// Labels a batch of records, in input order, charging one invocation
    /// per record. This is the primary method — it models the batched DNN
    /// inference the paper's cost metric counts.
    fn label_batch(&self, indices: &[usize]) -> Vec<Labeled>;

    /// Labels one record, charging one invocation (a one-element batch).
    fn label(&self, idx: usize) -> Labeled {
        self.label_batch(std::slice::from_ref(&idx))
            .pop()
            .expect("label_batch returns one label per index")
    }

    /// Invocations so far.
    fn calls(&self) -> u64;

    /// Resets the invocation counter.
    fn reset_calls(&self);
}

/// An oracle that "determines the group key directly" (§3.2, first group-by
/// scenario): one invocation returns the record's group rather than a
/// boolean. Extends [`Oracle`] so group-by cost accounting goes through the
/// same `calls`/`reset_calls` interface as every other algorithm path.
pub trait GroupOracle: Oracle {
    /// Labels a batch of records with group ids, in input order, charging
    /// one invocation per record.
    fn label_group_batch(&self, indices: &[usize]) -> Vec<GroupLabel>;

    /// Labels one record with its group id (a one-element batch).
    fn label_group(&self, idx: usize) -> GroupLabel {
        self.label_group_batch(std::slice::from_ref(&idx))
            .pop()
            .expect("label_group_batch returns one label per index")
    }

    /// Number of groups the oracle can report.
    fn group_count(&self) -> usize;
}

/// Oracle for a named predicate column of a [`Table`].
pub struct PredicateOracle<'a> {
    table: &'a Table,
    pred: usize,
    meter: Meter,
}

impl<'a> PredicateOracle<'a> {
    /// Creates an oracle over `table`'s predicate `pred`.
    pub fn new(table: &'a Table, pred: &str) -> Result<Self, crate::table::TableError> {
        let idx = table.predicate_index(pred)?;
        Ok(Self { table, pred: idx, meter: Meter::default() })
    }

    /// Simulates `latency` of inference time per invocation (per record,
    /// charged when its batch is labeled).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.meter.latency = latency;
        self
    }
}

impl Oracle for PredicateOracle<'_> {
    fn label_batch(&self, indices: &[usize]) -> Vec<Labeled> {
        self.meter.charge(indices.len());
        indices
            .iter()
            .map(|&idx| Labeled {
                matches: self.table.predicates()[self.pred].labels[idx],
                value: self.table.statistic(idx),
            })
            .collect()
    }

    fn calls(&self) -> u64 {
        self.meter.calls()
    }

    fn reset_calls(&self) {
        self.meter.reset();
    }
}

/// A closure-backed oracle; the building block for composed predicates
/// (ABae-MultiPred evaluates a whole boolean expression as one oracle call)
/// and for synthetic oracles in tests.
///
/// The struct itself places no bound on `F`; the [`Oracle`] impl requires
/// `F: Fn(usize) -> Labeled + Sync` so a shared reference can label batches
/// from several threads at once.
pub struct FnOracle<F> {
    f: F,
    meter: Meter,
}

impl<F> FnOracle<F> {
    /// Wraps a labeling function.
    pub fn new(f: F) -> Self {
        Self { f, meter: Meter::default() }
    }

    /// Simulates `latency` of inference time per invocation.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.meter.latency = latency;
        self
    }
}

impl<F: Fn(usize) -> Labeled + Sync> Oracle for FnOracle<F> {
    fn label_batch(&self, indices: &[usize]) -> Vec<Labeled> {
        self.meter.charge(indices.len());
        indices.iter().map(|&idx| (self.f)(idx)).collect()
    }

    fn calls(&self) -> u64 {
        self.meter.calls()
    }

    fn reset_calls(&self) {
        self.meter.reset();
    }
}

/// A single oracle that returns the record's group key (§3.2, first
/// group-by scenario), backed by a [`Table`]'s group-key column.
///
/// Implements [`Oracle`] (the predicate view: "belongs to *some* group")
/// and [`GroupOracle`] (the group view); both charge the same counter, so
/// group-by cost accounting is interchangeable with every other oracle's.
pub struct SingleGroupOracle<'a> {
    table: &'a Table,
    meter: Meter,
}

impl<'a> SingleGroupOracle<'a> {
    /// Creates the oracle; the table must carry a group key.
    pub fn new(table: &'a Table) -> Option<Self> {
        table.group_key()?;
        Some(Self { table, meter: Meter::default() })
    }

    /// Simulates `latency` of inference time per invocation.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.meter.latency = latency;
        self
    }
}

impl Oracle for SingleGroupOracle<'_> {
    fn label_batch(&self, indices: &[usize]) -> Vec<Labeled> {
        // Predicate view of the group key: `matches` ⇔ in any group.
        let key = self.table.group_key().expect("validated at construction");
        self.meter.charge(indices.len());
        indices
            .iter()
            .map(|&idx| Labeled {
                matches: key.key[idx].is_some(),
                value: self.table.statistic(idx),
            })
            .collect()
    }

    fn calls(&self) -> u64 {
        self.meter.calls()
    }

    fn reset_calls(&self) {
        self.meter.reset();
    }
}

impl GroupOracle for SingleGroupOracle<'_> {
    fn label_group_batch(&self, indices: &[usize]) -> Vec<GroupLabel> {
        let key = self.table.group_key().expect("validated at construction");
        self.meter.charge(indices.len());
        indices
            .iter()
            .map(|&idx| GroupLabel { group: key.key[idx], value: self.table.statistic(idx) })
            .collect()
    }

    fn group_count(&self) -> usize {
        self.table.group_key().expect("validated at construction").names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::builder("t", vec![1.0, 2.0, 3.0])
            .predicate("p", vec![true, false, true], vec![0.9, 0.1, 0.8])
            .group_key(vec!["g0".into(), "g1".into()], vec![Some(0), None, Some(1)])
            .build()
            .unwrap()
    }

    #[test]
    fn predicate_oracle_labels_and_counts() {
        let t = table();
        let o = PredicateOracle::new(&t, "p").unwrap();
        assert_eq!(o.calls(), 0);
        let l = o.label(0);
        assert!(l.matches);
        assert_eq!(l.value, 1.0);
        let l = o.label(1);
        assert!(!l.matches);
        assert_eq!(o.calls(), 2);
        o.reset_calls();
        assert_eq!(o.calls(), 0);
    }

    #[test]
    fn batch_labels_match_per_record_labels_and_charge_len() {
        let t = table();
        let o = PredicateOracle::new(&t, "p").unwrap();
        let batch = o.label_batch(&[0, 1, 2]);
        assert_eq!(o.calls(), 3);
        o.reset_calls();
        let singles: Vec<Labeled> = (0..3).map(|i| o.label(i)).collect();
        assert_eq!(batch, singles);
        assert_eq!(o.calls(), 3);
    }

    #[test]
    fn empty_batch_charges_nothing() {
        let t = table();
        let o = PredicateOracle::new(&t, "p").unwrap();
        assert!(o.label_batch(&[]).is_empty());
        assert_eq!(o.calls(), 0);
    }

    #[test]
    fn predicate_oracle_unknown_name_errors() {
        let t = table();
        assert!(PredicateOracle::new(&t, "zzz").is_err());
    }

    #[test]
    fn fn_oracle_wraps_closures() {
        let o = FnOracle::new(|idx| Labeled { matches: idx % 2 == 0, value: idx as f64 });
        assert!(o.label(0).matches);
        assert!(!o.label(1).matches);
        assert_eq!(o.label(4).value, 4.0);
        assert_eq!(o.calls(), 3);
    }

    #[test]
    fn composed_expression_counts_once_per_record() {
        // A conjunction of two predicates is still one oracle invocation.
        let t = table();
        let p = t.predicate("p").unwrap().labels.clone();
        let stats = t.statistics().to_vec();
        let o = FnOracle::new(move |idx| Labeled {
            matches: p[idx] && stats[idx] > 1.5,
            value: stats[idx],
        });
        assert!(!o.label(0).matches); // p true but stat 1.0
        assert!(o.label(2).matches);
        assert_eq!(o.calls(), 2);
    }

    #[test]
    fn counters_are_exact_under_concurrent_batches() {
        let o = FnOracle::new(|idx| Labeled { matches: true, value: idx as f64 });
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for start in 0..50usize {
                        let ids: Vec<usize> = (start..start + 4).collect();
                        o.label_batch(&ids);
                    }
                });
            }
        });
        assert_eq!(o.calls(), 8 * 50 * 4);
    }

    #[test]
    fn group_oracle_labels_groups() {
        let t = table();
        let o = SingleGroupOracle::new(&t).unwrap();
        assert_eq!(o.group_count(), 2);
        assert_eq!(o.label_group(0).group, Some(0));
        assert_eq!(o.label_group(1).group, None);
        assert_eq!(o.label_group(2).group, Some(1));
        assert_eq!(o.calls(), 3);
    }

    #[test]
    fn group_oracle_predicate_view_shares_the_counter() {
        let t = table();
        let o = SingleGroupOracle::new(&t).unwrap();
        // Oracle view: matches ⇔ some group.
        let l = o.label_batch(&[0, 1]);
        assert!(l[0].matches && !l[1].matches);
        // Group view continues the same count.
        o.label_group_batch(&[2]);
        assert_eq!(o.calls(), 3);
        o.reset_calls();
        assert_eq!(o.calls(), 0);
    }

    #[test]
    fn group_oracle_requires_group_key() {
        let t = Table::builder("t", vec![1.0]).build().unwrap();
        assert!(SingleGroupOracle::new(&t).is_none());
    }

    #[test]
    fn with_latency_preserves_the_running_count() {
        let t = table();
        let o = PredicateOracle::new(&t, "p").unwrap();
        o.label(0);
        let o = o.with_latency(Duration::from_micros(1));
        assert_eq!(o.calls(), 1, "configuring latency must not reset accounting");
    }

    #[test]
    fn latency_knob_sleeps_per_invocation() {
        let o = FnOracle::new(|idx| Labeled { matches: true, value: idx as f64 })
            .with_latency(Duration::from_millis(2));
        let start = std::time::Instant::now();
        o.label_batch(&[0, 1, 2, 3, 4]);
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert_eq!(o.calls(), 5);
    }
}
