//! Trained proxy artifacts and their registry.
//!
//! The paper assumes proxy scores are "computed exhaustively" before
//! sampling begins (§2.1); when the engine trains a proxy *in-engine*
//! (`CREATE PROXY`), the product is a [`TrainedProxy`]: the materialized
//! full-table score column plus everything a user (or `EXPLAIN`) needs to
//! audit it — the model family and fitted summary, how many oracle labels
//! the training draw spent, and the expected calibration error measured on
//! that draw.
//!
//! Artifacts live in a [`ProxyRegistry`] owned by the query catalog. Like
//! the [`crate::LabelStore`], the registry is internally synchronized
//! (`RwLock`): the catalog is frozen behind the engine's `Arc`, yet
//! sessions can still register proxies at run time, and concurrent readers
//! (query planning) never block each other. Registration order is
//! preserved per table so `SHOW PROXIES` output is deterministic.

use abae_ml::ModelSummary;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// A trained, materialized proxy for one predicate of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedProxy {
    /// Registered artifact name (the `CREATE PROXY <name>` identifier).
    pub name: String,
    /// Table the proxy was trained and scored on.
    pub table: String,
    /// Predicate column the training labels came from.
    pub predicate: String,
    /// Fitted-model summary (family + scalar parameters).
    pub summary: ModelSummary,
    /// Whether the model was Platt-calibrated after fitting.
    pub calibrated: bool,
    /// Full-table proxy scores in `[0, 1]`, one per record.
    pub scores: Vec<f64>,
    /// Records drawn (and labeled) for training.
    pub train_limit: usize,
    /// Oracle invocations actually charged while labeling the training
    /// draw (cache hits are free, so this can be below `train_limit`).
    pub oracle_spend: u64,
    /// Expected calibration error of the fitted scores on the training
    /// draw (10 reliability bins).
    pub ece: f64,
    /// Whether the family was auto-selected by predicted MSE (§3.4)
    /// rather than named explicitly in the statement.
    pub auto_selected: bool,
}

impl TrainedProxy {
    /// One-line human description, shared by `SHOW PROXIES` and `EXPLAIN`.
    pub fn describe(&self) -> String {
        format!(
            "{} ON {}({}) — {}{}, trained on {} labels ({} oracle calls), ECE {:.4}{}",
            self.name,
            self.table,
            self.predicate,
            self.summary,
            if self.calibrated { ", calibrated" } else { "" },
            self.train_limit,
            self.oracle_spend,
            self.ece,
            if self.auto_selected { ", family auto-selected (§3.4)" } else { "" },
        )
    }
}

/// A thread-safe registry of [`TrainedProxy`] artifacts, keyed by table
/// and artifact name. Registering under an existing `(table, name)` pair
/// replaces the previous artifact in place (its registration slot is
/// kept, so listing order stays stable).
#[derive(Debug, Default)]
pub struct ProxyRegistry {
    /// Per-table artifacts in registration order, keyed by table name in
    /// structural (sorted) order so iteration is deterministic.
    entries: RwLock<BTreeMap<String, Vec<Arc<TrainedProxy>>>>,
}

impl ProxyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an artifact, replacing any previous proxy with the same
    /// `(table, name)`.
    pub fn register(&self, proxy: TrainedProxy) -> Arc<TrainedProxy> {
        let proxy = Arc::new(proxy);
        let mut entries =
            self.entries.write().expect("no panics while holding the registry lock");
        let list = entries.entry(proxy.table.clone()).or_default();
        match list.iter_mut().find(|p| p.name == proxy.name) {
            Some(slot) => *slot = Arc::clone(&proxy),
            None => list.push(Arc::clone(&proxy)),
        }
        proxy
    }

    /// Looks up a proxy by table and name.
    pub fn get(&self, table: &str, name: &str) -> Option<Arc<TrainedProxy>> {
        let entries = self.entries.read().expect("no panics while holding the registry lock");
        entries.get(table)?.iter().find(|p| p.name == name).cloned()
    }

    /// All proxies of one table, in registration order.
    pub fn list(&self, table: &str) -> Vec<Arc<TrainedProxy>> {
        let entries = self.entries.read().expect("no panics while holding the registry lock");
        entries.get(table).cloned().unwrap_or_default()
    }

    /// All proxies of every table, sorted by table then registration
    /// order (deterministic `SHOW PROXIES` output). The map is ordered,
    /// so plain iteration is already table-sorted.
    pub fn list_all(&self) -> Vec<Arc<TrainedProxy>> {
        let entries = self.entries.read().expect("no panics while holding the registry lock");
        entries.values().flat_map(|list| list.iter().cloned()).collect()
    }

    /// Names of one table's proxies, in registration order.
    pub fn names(&self, table: &str) -> Vec<String> {
        self.list(table).iter().map(|p| p.name.clone()).collect()
    }

    /// Total artifact count across tables.
    pub fn len(&self) -> usize {
        let entries = self.entries.read().expect("no panics while holding the registry lock");
        entries.values().map(Vec::len).sum()
    }

    /// Whether the registry holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every artifact trained against `table`. Must be called when
    /// the table's data is replaced: the materialized scores were computed
    /// against the old records and would silently mis-stratify the new
    /// ones.
    pub fn invalidate_table(&self, table: &str) {
        let mut entries =
            self.entries.write().expect("no panics while holding the registry lock");
        entries.remove(table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(table: &str, name: &str) -> TrainedProxy {
        TrainedProxy {
            name: name.to_string(),
            table: table.to_string(),
            predicate: "is_spam".to_string(),
            summary: ModelSummary {
                family: "logistic".to_string(),
                params: vec![("dim".to_string(), 64.0)],
            },
            calibrated: true,
            scores: vec![0.1, 0.9],
            train_limit: 100,
            oracle_spend: 100,
            ece: 0.05,
            auto_selected: false,
        }
    }

    #[test]
    fn register_get_list_roundtrip() {
        let reg = ProxyRegistry::new();
        assert!(reg.is_empty());
        reg.register(artifact("t", "a"));
        reg.register(artifact("t", "b"));
        reg.register(artifact("u", "c"));
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.get("t", "a").unwrap().name, "a");
        assert!(reg.get("t", "c").is_none(), "names are per-table");
        assert_eq!(reg.names("t"), vec!["a", "b"]);
        assert_eq!(
            reg.list_all().iter().map(|p| p.name.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn re_registering_replaces_in_place() {
        let reg = ProxyRegistry::new();
        reg.register(artifact("t", "a"));
        reg.register(artifact("t", "b"));
        let mut replacement = artifact("t", "a");
        replacement.ece = 0.5;
        reg.register(replacement);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names("t"), vec!["a", "b"], "listing order is stable");
        assert_eq!(reg.get("t", "a").unwrap().ece, 0.5);
    }

    #[test]
    fn invalidation_is_per_table() {
        let reg = ProxyRegistry::new();
        reg.register(artifact("t", "a"));
        reg.register(artifact("u", "b"));
        reg.invalidate_table("t");
        assert!(reg.get("t", "a").is_none());
        assert_eq!(reg.names("u"), vec!["b"], "other tables keep their artifacts");
    }

    #[test]
    fn registry_is_send_sync_for_catalog_sharing() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProxyRegistry>();
    }

    #[test]
    fn describe_mentions_the_load_bearing_facts() {
        let mut p = artifact("emails", "spamnet");
        p.auto_selected = true;
        let d = p.describe();
        for needle in ["spamnet", "emails", "is_spam", "logistic", "calibrated", "100", "0.05"] {
            assert!(d.contains(needle), "`{needle}` missing from `{d}`");
        }
        assert!(d.contains("auto-selected"), "{d}");
    }
}
