//! The Table 2 dataset inventory.
//!
//! Mirrors the paper's Table 2 ("Summary of datasets, predicates, target
//! DNNs, and proxies") with, per dataset, the metadata the paper reports
//! plus what this reproduction substitutes for the DNN oracle and proxy.
//! [`summarize`] measures the quantities the emulators were calibrated to
//! (size, positive rate, proxy AUC, exact answer) so the harness's `table2`
//! binary can print paper-vs-built side by side.

use crate::emulators::{
    amazon_movies, amazon_office, celeba, night_street, taipei, trec05p, EmulatorOptions,
};
use crate::table::Table;
use abae_ml::metrics::auc;

/// Static metadata for one paper dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Record count reported in Table 2.
    pub paper_size: usize,
    /// Predicate description from Table 2.
    pub predicate: &'static str,
    /// The paper's oracle ("target DNN") and our substitution.
    pub oracle: &'static str,
    /// The paper's proxy model and our substitution.
    pub proxy: &'static str,
    /// Name of the primary predicate column in the emulated table.
    pub predicate_column: &'static str,
}

/// All six paper datasets in Table 2 order.
pub const PAPER_DATASETS: [DatasetInfo; 6] = [
    DatasetInfo {
        name: "night-street",
        paper_size: 973_136,
        predicate: "At least one car",
        oracle: "Mask R-CNN -> latent-intensity generator",
        proxy: "TASTI -> noisy calibrated propensity",
        predicate_column: "has_car",
    },
    DatasetInfo {
        name: "taipei",
        paper_size: 1_187_850,
        predicate: "At least one car",
        oracle: "Mask R-CNN -> latent-intensity generator",
        proxy: "TASTI -> noisy calibrated propensity",
        predicate_column: "has_car",
    },
    DatasetInfo {
        name: "celeba",
        paper_size: 202_599,
        predicate: "Blonde hair",
        oracle: "Human labels -> attribute generator",
        proxy: "MobileNetV2 -> noisy calibrated propensity",
        predicate_column: "blonde_hair",
    },
    DatasetInfo {
        name: "amazon-movies",
        paper_size: 35_815,
        predicate: "Contains woman",
        oracle: "MT-CNN + VGGFace -> attribute generator",
        proxy: "MobileNetV2 -> noisy calibrated propensity",
        predicate_column: "female_face",
    },
    DatasetInfo {
        name: "trec05p",
        paper_size: 52_578,
        predicate: "Is spam",
        oracle: "Human labels -> token-stream generator",
        proxy: "Keyword-based -> real keyword proxy over generated tokens",
        predicate_column: "is_spam",
    },
    DatasetInfo {
        name: "amazon-office",
        paper_size: 800_144,
        predicate: "Strong positive sentiment",
        oracle: "FlairNLP BERT -> sentiment generator",
        proxy: "NLTK sentiment -> noisy calibrated propensity",
        predicate_column: "strongly_positive",
    },
];

/// Builds an emulated dataset by paper name. Returns `None` for unknown
/// names.
pub fn build_dataset(name: &str, opts: &EmulatorOptions) -> Option<Table> {
    match name {
        "night-street" => Some(night_street(opts)),
        "taipei" => Some(taipei(opts)),
        "celeba" => Some(celeba(opts)),
        "amazon-movies" => Some(amazon_movies(opts)),
        "trec05p" => Some(trec05p(opts)),
        "amazon-office" => Some(amazon_office(opts)),
        _ => None,
    }
}

/// Measured characteristics of an emulated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Generated record count.
    pub size: usize,
    /// Ground-truth positive rate of the primary predicate.
    pub positive_rate: f64,
    /// AUC of the primary proxy against the oracle.
    pub proxy_auc: f64,
    /// Exact value of the paper's aggregation query.
    pub exact_answer: f64,
}

/// Measures the calibration quantities for one emulated dataset.
pub fn summarize(table: &Table, predicate: &str) -> DatasetSummary {
    let pred = table.predicate(predicate).expect("registry predicate exists");
    DatasetSummary {
        name: table.name().to_string(),
        size: table.len(),
        positive_rate: table.positive_rate(predicate).expect("predicate exists"),
        proxy_auc: auc(&pred.proxy, &pred.labels).unwrap_or(f64::NAN),
        exact_answer: table.exact_avg(predicate).expect("predicate exists"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_paper_datasets() {
        assert_eq!(PAPER_DATASETS.len(), 6);
        let total: usize = PAPER_DATASETS.iter().map(|d| d.paper_size).sum();
        // Table 2 sizes sum to 3,252,122 records.
        assert_eq!(total, 3_252_122);
    }

    #[test]
    fn build_dataset_dispatches_every_name() {
        let opts = EmulatorOptions { scale: 0.005, seed: 3 };
        for info in &PAPER_DATASETS {
            let t = build_dataset(info.name, &opts).expect("known dataset");
            assert_eq!(t.name(), info.name);
            assert!(t.predicate(info.predicate_column).is_ok());
        }
        assert!(build_dataset("unknown", &opts).is_none());
    }

    #[test]
    fn summaries_report_sane_values() {
        let opts = EmulatorOptions { scale: 0.02, seed: 5 };
        for info in &PAPER_DATASETS {
            let t = build_dataset(info.name, &opts).unwrap();
            let s = summarize(&t, info.predicate_column);
            assert!(s.size >= 1000);
            assert!(s.positive_rate > 0.0 && s.positive_rate < 1.0, "{}", info.name);
            assert!(s.proxy_auc > 0.55, "{} AUC {}", info.name, s.proxy_auc);
            assert!(s.exact_answer.is_finite());
        }
    }
}
