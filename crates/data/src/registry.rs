//! The Table 2 dataset inventory.
//!
//! Mirrors the paper's Table 2 ("Summary of datasets, predicates, target
//! DNNs, and proxies") with, per dataset, the metadata the paper reports
//! plus what this reproduction substitutes for the DNN oracle and proxy.
//! [`summarize`] measures the quantities the emulators were calibrated to
//! (size, positive rate, proxy AUC, exact answer) so the harness's `table2`
//! binary can print paper-vs-built side by side.

use crate::emulators::{
    amazon_movies, amazon_office, celeba, night_street, taipei, trec05p, EmulatorOptions,
};
use crate::table::Table;
use abae_ml::metrics::auc;
use std::path::{Path, PathBuf};

/// Static metadata for one paper dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Record count reported in Table 2.
    pub paper_size: usize,
    /// Predicate description from Table 2.
    pub predicate: &'static str,
    /// The paper's oracle ("target DNN") and our substitution.
    pub oracle: &'static str,
    /// The paper's proxy model and our substitution.
    pub proxy: &'static str,
    /// Name of the primary predicate column in the emulated table.
    pub predicate_column: &'static str,
}

/// All six paper datasets in Table 2 order.
pub const PAPER_DATASETS: [DatasetInfo; 6] = [
    DatasetInfo {
        name: "night-street",
        paper_size: 973_136,
        predicate: "At least one car",
        oracle: "Mask R-CNN -> latent-intensity generator",
        proxy: "TASTI -> noisy calibrated propensity",
        predicate_column: "has_car",
    },
    DatasetInfo {
        name: "taipei",
        paper_size: 1_187_850,
        predicate: "At least one car",
        oracle: "Mask R-CNN -> latent-intensity generator",
        proxy: "TASTI -> noisy calibrated propensity",
        predicate_column: "has_car",
    },
    DatasetInfo {
        name: "celeba",
        paper_size: 202_599,
        predicate: "Blonde hair",
        oracle: "Human labels -> attribute generator",
        proxy: "MobileNetV2 -> noisy calibrated propensity",
        predicate_column: "blonde_hair",
    },
    DatasetInfo {
        name: "amazon-movies",
        paper_size: 35_815,
        predicate: "Contains woman",
        oracle: "MT-CNN + VGGFace -> attribute generator",
        proxy: "MobileNetV2 -> noisy calibrated propensity",
        predicate_column: "female_face",
    },
    DatasetInfo {
        name: "trec05p",
        paper_size: 52_578,
        predicate: "Is spam",
        oracle: "Human labels -> token-stream generator",
        proxy: "Keyword-based -> real keyword proxy over generated tokens",
        predicate_column: "is_spam",
    },
    DatasetInfo {
        name: "amazon-office",
        paper_size: 800_144,
        predicate: "Strong positive sentiment",
        oracle: "FlairNLP BERT -> sentiment generator",
        proxy: "NLTK sentiment -> noisy calibrated propensity",
        predicate_column: "strongly_positive",
    },
];

/// Builds an emulated dataset by paper name. Returns `None` for unknown
/// names.
pub fn build_dataset(name: &str, opts: &EmulatorOptions) -> Option<Table> {
    match name {
        "night-street" => Some(night_street(opts)),
        "taipei" => Some(taipei(opts)),
        "celeba" => Some(celeba(opts)),
        "amazon-movies" => Some(amazon_movies(opts)),
        "trec05p" => Some(trec05p(opts)),
        "amazon-office" => Some(amazon_office(opts)),
        _ => None,
    }
}

/// Cache-file path for one `(name, opts)` emulator configuration.
///
/// The key folds in the scale's exact bit pattern, the seed, and the
/// binary format version, so any change to the configuration — or to the
/// on-disk layout — misses the cache instead of loading stale bytes.
pub fn cache_path(dir: &Path, name: &str, opts: &EmulatorOptions) -> PathBuf {
    dir.join(format!(
        "{name}-s{:016x}-r{}.v{}.abcol",
        opts.scale.to_bits(),
        opts.seed,
        crate::columnar::VERSION
    ))
}

/// Builds an emulated dataset, caching the columnar binary under `dir`.
///
/// On a cache hit the table is decoded straight from the `.abcol` file —
/// no emulator RNG runs. On a miss (absent, unreadable, corrupt, or
/// written by a different format version) the emulator runs and the
/// result is written back; a write failure degrades to building without a
/// cache rather than erroring. Returns `None` for unknown dataset names.
///
/// Cached loads are exact: `Table::save_binary`/`load_binary` roundtrip
/// every column bit-for-bit, so downstream estimates are identical either
/// way.
pub fn load_or_build(name: &str, opts: &EmulatorOptions, dir: &Path) -> Option<Table> {
    let path = cache_path(dir, name, opts);
    if let Ok(table) = Table::load_binary(name, &path) {
        return Some(table);
    }
    let table = build_dataset(name, opts)?;
    let _ = std::fs::create_dir_all(dir);
    if let Err(e) = table.save_binary(&path) {
        eprintln!("# dataset cache write failed ({}): {e}", path.display());
    }
    Some(table)
}

/// Measured characteristics of an emulated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Generated record count.
    pub size: usize,
    /// Ground-truth positive rate of the primary predicate.
    pub positive_rate: f64,
    /// AUC of the primary proxy against the oracle.
    pub proxy_auc: f64,
    /// Exact value of the paper's aggregation query.
    pub exact_answer: f64,
}

/// Measures the calibration quantities for one emulated dataset.
pub fn summarize(table: &Table, predicate: &str) -> DatasetSummary {
    let pred = table.predicate(predicate).expect("registry predicate exists");
    DatasetSummary {
        name: table.name().to_string(),
        size: table.len(),
        positive_rate: table.positive_rate(predicate).expect("predicate exists"),
        proxy_auc: auc(pred.proxy(), &pred.labels_vec()).unwrap_or(f64::NAN),
        exact_answer: table.exact_avg(predicate).expect("predicate exists"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_paper_datasets() {
        assert_eq!(PAPER_DATASETS.len(), 6);
        let total: usize = PAPER_DATASETS.iter().map(|d| d.paper_size).sum();
        // Table 2 sizes sum to 3,252,122 records.
        assert_eq!(total, 3_252_122);
    }

    #[test]
    fn build_dataset_dispatches_every_name() {
        let opts = EmulatorOptions { scale: 0.005, seed: 3 };
        for info in &PAPER_DATASETS {
            let t = build_dataset(info.name, &opts).expect("known dataset");
            assert_eq!(t.name(), info.name);
            assert!(t.predicate(info.predicate_column).is_ok());
        }
        assert!(build_dataset("unknown", &opts).is_none());
    }

    #[test]
    fn load_or_build_caches_and_roundtrips_exactly() {
        let opts = EmulatorOptions { scale: 0.001, seed: 41 };
        let dir = std::env::temp_dir().join(format!("abae-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let built = load_or_build("celeba", &opts, &dir).expect("known dataset");
        assert!(cache_path(&dir, "celeba", &opts).exists(), "first call populates the cache");
        let cached = load_or_build("celeba", &opts, &dir).expect("known dataset");
        assert_eq!(built, cached, "cached load must be bit-identical to the build");

        // A different seed keys a different file.
        let other = EmulatorOptions { scale: 0.001, seed: 42 };
        assert_ne!(cache_path(&dir, "celeba", &opts), cache_path(&dir, "celeba", &other));

        // Corrupt cache entries are rebuilt, not trusted.
        std::fs::write(cache_path(&dir, "celeba", &opts), b"garbage").unwrap();
        let rebuilt = load_or_build("celeba", &opts, &dir).expect("known dataset");
        assert_eq!(built, rebuilt);

        assert!(load_or_build("unknown", &opts, &dir).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summaries_report_sane_values() {
        let opts = EmulatorOptions { scale: 0.02, seed: 5 };
        for info in &PAPER_DATASETS {
            let t = build_dataset(info.name, &opts).unwrap();
            let s = summarize(&t, info.predicate_column);
            assert!(s.size >= 1000);
            assert!(s.positive_rate > 0.0 && s.positive_rate < 1.0, "{}", info.name);
            assert!(s.proxy_auc > 0.55, "{} AUC {}", info.name, s.proxy_auc);
            assert!(s.exact_answer.is_finite());
        }
    }
}
