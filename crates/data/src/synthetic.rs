//! Seeded latent-variable dataset generators.
//!
//! ABae's behaviour depends on the data only through the per-record triple
//! `(P(x), O(x), f(x))` — proxy score, oracle label, statistic. These
//! generators control that joint distribution directly:
//!
//! * Each record draws a latent propensity `q ~ Beta(μ·c, (1−μ)·c)` with
//!   mean `μ` (the target positive rate) and concentration `c`. Small `c`
//!   spreads propensities toward 0/1 (an informative proxy); large `c`
//!   concentrates them at `μ` (an uninformative proxy).
//! * The oracle label is `Bernoulli(q)` — so the propensity is *exactly*
//!   the quantity a perfectly calibrated proxy would output.
//! * The proxy is `σ(logit(q) + ε)`, `ε ~ N(0, noise)` — logit-space noise
//!   keeps scores in `[0, 1]` and degrades AUC smoothly, which the proxy
//!   quality ablation sweeps.
//! * The statistic follows a configurable family
//!   ([`StatisticModel`]), optionally *coupled* to `q` so that per-stratum
//!   means and variances vary (the σ_k heterogeneity that stratified
//!   sampling exploits).
//!
//! [`GroupSpec`] generates group-by datasets: disjoint group membership with
//! per-group perfectly calibrated proxies, the construction the paper's
//! synthetic group-by experiments describe ("the predicate was generated as
//! a Bernoulli with the proxy probability", §5.2).

use crate::table::{Table, TableError};
use abae_stats::dist::{Beta, Normal, Poisson};
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Clamps `q` away from 0/1 and takes its logit.
fn logit(q: f64) -> f64 {
    let q = q.clamp(1e-9, 1.0 - 1e-9);
    (q / (1.0 - q)).ln()
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Beta distribution parametrized by mean and concentration.
fn beta_mean_conc(mean: f64, concentration: f64) -> Beta {
    let mean = mean.clamp(1e-6, 1.0 - 1e-6);
    Beta::new(mean * concentration, (1.0 - mean) * concentration)
        .expect("mean/concentration validated by caller")
}

/// Latent model for one expensive predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateModel {
    /// Predicate name.
    pub name: String,
    /// Target positive rate (mean of the latent propensity).
    pub base_rate: f64,
    /// Beta concentration of the propensity. Lower = proxy more
    /// informative. Typical range 0.5 (near-perfect) to 50 (near-useless).
    pub concentration: f64,
    /// Standard deviation of logit-space proxy noise.
    pub proxy_noise: f64,
}

impl PredicateModel {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, base_rate: f64, concentration: f64, proxy_noise: f64) -> Self {
        Self { name: name.into(), base_rate, concentration, proxy_noise }
    }
}

/// Statistic families used by the dataset emulators. `coupling` ties the
/// statistic's location to the predicate propensity `q`, creating the
/// per-stratum mean/variance structure stratified sampling exploits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatisticModel {
    /// Gaussian `N(mean + coupling·(q − rate), sd)`.
    Normal {
        /// Location at `q = base_rate`.
        mean: f64,
        /// Scale.
        sd: f64,
        /// Linear dependence on the propensity.
        coupling: f64,
    },
    /// Car-count style: `1 + Poisson(base + coupling·q)` (≥ 1, integral).
    ShiftedPoisson {
        /// Poisson rate at `q = 0`.
        base: f64,
        /// Linear dependence of the rate on the propensity.
        coupling: f64,
    },
    /// Star-rating style: Gaussian rounded and clamped to `1..=5`.
    Rating {
        /// Location at `q = base_rate`.
        mean: f64,
        /// Scale before rounding.
        sd: f64,
        /// Linear dependence on the propensity.
        coupling: f64,
    },
    /// Binary percentage (0 or 100), e.g. `PERCENTAGE(is_smiling)`.
    BinaryPercent {
        /// Success probability at `q = base_rate`.
        rate: f64,
        /// Linear dependence on the propensity.
        coupling: f64,
    },
    /// Heavy-tailed count, e.g. links per email:
    /// `⌊exp(N(mu + coupling·q, sigma))⌋`.
    LogNormalCount {
        /// Log-location at `q = 0`.
        mu: f64,
        /// Log-scale.
        sigma: f64,
        /// Linear dependence of the log-location on the propensity.
        coupling: f64,
    },
}

impl StatisticModel {
    /// Samples one statistic value given the record's propensity `q` and
    /// the predicate's base rate.
    pub fn sample<R: Rng + ?Sized>(&self, q: f64, base_rate: f64, rng: &mut R) -> f64 {
        match *self {
            StatisticModel::Normal { mean, sd, coupling } => {
                let m = mean + coupling * (q - base_rate);
                Normal::new(m, sd).expect("sd validated").sample(rng)
            }
            StatisticModel::ShiftedPoisson { base, coupling } => {
                let lambda = (base + coupling * q).max(0.05);
                1.0 + Poisson::new(lambda).expect("lambda > 0").sample(rng) as f64
            }
            StatisticModel::Rating { mean, sd, coupling } => {
                let m = mean + coupling * (q - base_rate);
                let raw = Normal::new(m, sd).expect("sd validated").sample(rng);
                raw.round().clamp(1.0, 5.0)
            }
            StatisticModel::BinaryPercent { rate, coupling } => {
                let p = (rate + coupling * (q - base_rate)).clamp(0.0, 1.0);
                if rng.gen::<f64>() < p {
                    100.0
                } else {
                    0.0
                }
            }
            StatisticModel::LogNormalCount { mu, sigma, coupling } => {
                let m = mu + coupling * q;
                let raw = Normal::new(m, sigma).expect("sigma validated").sample(rng).exp();
                raw.floor().max(0.0)
            }
        }
    }
}

/// Specification of a synthetic dataset with one or more predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Dataset name.
    pub name: String,
    /// Record count.
    pub n: usize,
    /// Predicate models; the first predicate's propensity drives the
    /// statistic coupling.
    pub predicates: Vec<PredicateModel>,
    /// Statistic family.
    pub statistic: StatisticModel,
    /// RNG seed — same seed, same dataset.
    pub seed: u64,
}

impl SyntheticSpec {
    /// Generates the dataset.
    ///
    /// # Errors
    /// Propagates table-validation failures (which indicate a bad spec,
    /// e.g. `n == 0`).
    pub fn generate(&self) -> Result<Table, TableError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.n;
        let mut statistic = Vec::with_capacity(n);
        let mut labels: Vec<Vec<bool>> = self.predicates.iter().map(|_| Vec::with_capacity(n)).collect();
        let mut proxies: Vec<Vec<f64>> = self.predicates.iter().map(|_| Vec::with_capacity(n)).collect();
        let betas: Vec<Beta> = self
            .predicates
            .iter()
            .map(|p| beta_mean_conc(p.base_rate, p.concentration))
            .collect();

        for _ in 0..n {
            let mut primary_q = 0.5;
            for (j, pm) in self.predicates.iter().enumerate() {
                let q = betas[j].sample(&mut rng);
                if j == 0 {
                    primary_q = q;
                }
                labels[j].push(rng.gen::<f64>() < q);
                let noise = if pm.proxy_noise > 0.0 {
                    Normal::new(0.0, pm.proxy_noise).expect("noise >= 0").sample(&mut rng)
                } else {
                    0.0
                };
                proxies[j].push(sigmoid(logit(q) + noise));
            }
            statistic.push(self.statistic.sample(
                primary_q,
                self.predicates.first().map(|p| p.base_rate).unwrap_or(0.5),
                &mut rng,
            ));
        }

        let mut builder = Table::builder(self.name.clone(), statistic);
        for (j, pm) in self.predicates.iter().enumerate() {
            builder = builder.predicate(
                pm.name.clone(),
                std::mem::take(&mut labels[j]),
                std::mem::take(&mut proxies[j]),
            );
        }
        builder.build()
    }
}

/// Specification of a synthetic group-by dataset.
///
/// Per group `g`, each record draws an independent propensity with mean
/// `rates[g]`; the record's group key is the first group whose Bernoulli
/// fires (rates are small, so overlap is negligible), and each group's proxy
/// is its (noisy) propensity — perfectly calibrated at `proxy_noise = 0`,
/// matching the paper's synthetic construction.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    /// Dataset name.
    pub name: String,
    /// Record count.
    pub n: usize,
    /// Group names.
    pub group_names: Vec<String>,
    /// Per-group positive rates.
    pub rates: Vec<f64>,
    /// Beta concentration of the per-group propensities.
    pub concentration: f64,
    /// Logit-space proxy noise.
    pub proxy_noise: f64,
    /// Per-group statistic families.
    pub group_stats: Vec<StatisticModel>,
    /// Statistic family for records in no group.
    pub background_stat: StatisticModel,
    /// RNG seed.
    pub seed: u64,
}

impl GroupSpec {
    /// Generates the dataset with per-group predicate columns and a group
    /// key.
    ///
    /// # Panics
    /// Panics if `rates`, `group_names` and `group_means` lengths differ —
    /// that is a spec-construction bug.
    pub fn generate(&self) -> Result<Table, TableError> {
        assert_eq!(self.rates.len(), self.group_names.len(), "rates/names mismatch");
        assert_eq!(self.rates.len(), self.group_stats.len(), "rates/stats mismatch");
        let g = self.rates.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let betas: Vec<Beta> =
            self.rates.iter().map(|&r| beta_mean_conc(r, self.concentration)).collect();

        let mut statistic = Vec::with_capacity(self.n);
        let mut labels: Vec<Vec<bool>> = (0..g).map(|_| Vec::with_capacity(self.n)).collect();
        let mut proxies: Vec<Vec<f64>> = (0..g).map(|_| Vec::with_capacity(self.n)).collect();
        let mut key: Vec<Option<u16>> = Vec::with_capacity(self.n);

        for _ in 0..self.n {
            let mut assigned: Option<u16> = None;
            let mut assigned_q = 0.5;
            for j in 0..g {
                let q = betas[j].sample(&mut rng);
                let fired = rng.gen::<f64>() < q;
                // Disjoint group key: first firing group wins.
                let label = fired && assigned.is_none();
                if label {
                    assigned = Some(j as u16);
                    assigned_q = q;
                }
                labels[j].push(label);
                let noise = if self.proxy_noise > 0.0 {
                    Normal::new(0.0, self.proxy_noise).expect("noise >= 0").sample(&mut rng)
                } else {
                    0.0
                };
                proxies[j].push(sigmoid(logit(q) + noise));
            }
            key.push(assigned);
            let value = match assigned {
                Some(j) => self.group_stats[j as usize].sample(
                    assigned_q,
                    self.rates[j as usize],
                    &mut rng,
                ),
                None => self.background_stat.sample(0.5, 0.5, &mut rng),
            };
            statistic.push(value);
        }

        let mut builder = Table::builder(self.name.clone(), statistic);
        for (j, gname) in self.group_names.iter().enumerate() {
            builder = builder.predicate(
                format!("is_{gname}"),
                std::mem::take(&mut labels[j]),
                std::mem::take(&mut proxies[j]),
            );
        }
        builder = builder.group_key(self.group_names.clone(), key);
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_ml::metrics::auc;

    fn base_spec() -> SyntheticSpec {
        SyntheticSpec {
            name: "syn".to_string(),
            n: 20_000,
            predicates: vec![PredicateModel::new("p", 0.3, 2.0, 0.3)],
            statistic: StatisticModel::Normal { mean: 5.0, sd: 1.0, coupling: 2.0 },
            seed: 42,
        }
    }

    #[test]
    fn positive_rate_matches_target() {
        let t = base_spec().generate().unwrap();
        let rate = t.positive_rate("p").unwrap();
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = base_spec().generate().unwrap();
        let b = base_spec().generate().unwrap();
        assert_eq!(a, b);
        let mut spec = base_spec();
        spec.seed = 43;
        let c = spec.generate().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn lower_concentration_means_higher_auc() {
        let mut sharp = base_spec();
        sharp.predicates[0].concentration = 0.5;
        sharp.predicates[0].proxy_noise = 0.0;
        let mut blunt = base_spec();
        blunt.predicates[0].concentration = 40.0;
        blunt.predicates[0].proxy_noise = 0.0;

        let auc_of = |t: &Table| {
            let p = t.predicate("p").unwrap();
            auc(p.proxy(), &p.labels_vec()).unwrap()
        };
        let a_sharp = auc_of(&sharp.generate().unwrap());
        let a_blunt = auc_of(&blunt.generate().unwrap());
        assert!(a_sharp > 0.9, "sharp AUC {a_sharp}");
        assert!(a_blunt < 0.65, "blunt AUC {a_blunt}");
    }

    #[test]
    fn proxy_noise_degrades_auc() {
        let clean = base_spec();
        let mut noisy = base_spec();
        noisy.predicates[0].proxy_noise = 3.0;
        let auc_of = |t: &Table| {
            let p = t.predicate("p").unwrap();
            auc(p.proxy(), &p.labels_vec()).unwrap()
        };
        assert!(auc_of(&clean.generate().unwrap()) > auc_of(&noisy.generate().unwrap()) + 0.03);
    }

    #[test]
    fn statistic_families_have_expected_support() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let q: f64 = rng.gen();
            let v = StatisticModel::ShiftedPoisson { base: 1.0, coupling: 2.0 }.sample(q, 0.3, &mut rng);
            assert!(v >= 1.0 && v.fract() == 0.0, "poisson {v}");
            let v = StatisticModel::Rating { mean: 4.2, sd: 0.8, coupling: 0.5 }.sample(q, 0.3, &mut rng);
            assert!((1.0..=5.0).contains(&v) && v.fract() == 0.0, "rating {v}");
            let v = StatisticModel::BinaryPercent { rate: 0.5, coupling: 0.2 }.sample(q, 0.3, &mut rng);
            assert!(v == 0.0 || v == 100.0, "percent {v}");
            let v = StatisticModel::LogNormalCount { mu: 1.0, sigma: 0.8, coupling: 1.0 }
                .sample(q, 0.3, &mut rng);
            assert!(v >= 0.0 && v.fract() == 0.0, "links {v}");
        }
    }

    #[test]
    fn coupling_creates_mean_heterogeneity() {
        // With positive coupling, positives (high q) should have a higher
        // mean statistic than the overall population.
        let t = base_spec().generate().unwrap();
        let p = t.predicate("p").unwrap();
        let pos_mean = t.exact_avg("p").unwrap();
        let all_mean: f64 = t.statistics().iter().sum::<f64>() / t.len() as f64;
        assert!(pos_mean > all_mean + 0.1, "pos {pos_mean} vs all {all_mean}");
        assert!(p.labels().count_ones() > 0);
    }

    #[test]
    fn multi_predicate_spec_generates_independent_columns() {
        let spec = SyntheticSpec {
            name: "two".into(),
            n: 10_000,
            predicates: vec![
                PredicateModel::new("a", 0.4, 2.0, 0.2),
                PredicateModel::new("b", 0.6, 2.0, 0.2),
            ],
            statistic: StatisticModel::Normal { mean: 0.0, sd: 1.0, coupling: 1.0 },
            seed: 7,
        };
        let t = spec.generate().unwrap();
        assert!((t.positive_rate("a").unwrap() - 0.4).abs() < 0.03);
        assert!((t.positive_rate("b").unwrap() - 0.6).abs() < 0.03);
        // Labels should be (roughly) independent: P(a ∧ b) ≈ P(a)·P(b).
        let a = t.predicate("a").unwrap().labels();
        let b = t.predicate("b").unwrap().labels();
        let both = a.bitmap().and(b.bitmap()).count_ones() as f64 / t.len() as f64;
        assert!((both - 0.24).abs() < 0.03, "joint {both}");
    }

    fn group_spec() -> GroupSpec {
        let stat = |mean: f64| StatisticModel::Normal { mean, sd: 0.5, coupling: 0.0 };
        GroupSpec {
            name: "grp".into(),
            n: 30_000,
            group_names: vec!["g0".into(), "g1".into(), "g2".into(), "g3".into()],
            rates: vec![0.16, 0.12, 0.09, 0.05],
            concentration: 1.5,
            proxy_noise: 0.0,
            group_stats: vec![stat(1.0), stat(2.0), stat(3.0), stat(4.0)],
            background_stat: stat(0.0),
            seed: 99,
        }
    }

    #[test]
    fn group_key_is_disjoint_and_rates_approximate_targets() {
        let t = group_spec().generate().unwrap();
        let gk = t.group_key().unwrap();
        assert_eq!(gk.num_groups(), 4);
        // Group rates approximate targets (first-wins assignment shaves a
        // little off later groups).
        for (g, &target) in group_spec().rates.iter().enumerate() {
            let measured = t.exact_group_count(g as u16).unwrap() / t.len() as f64;
            assert!(
                (measured - target).abs() < 0.035,
                "group {g}: measured {measured}, target {target}"
            );
        }
        // Labels equal group key (disjointness).
        for (j, p) in t.predicates().iter().enumerate() {
            for (i, l) in p.labels().iter().enumerate() {
                assert_eq!(l, gk.get(i) == Some(j as u16));
            }
        }
    }

    #[test]
    fn group_statistic_means_separate() {
        let t = group_spec().generate().unwrap();
        for (g, mean) in [1.0, 2.0, 3.0, 4.0].into_iter().enumerate() {
            let measured = t.exact_group_avg(g as u16).unwrap();
            assert!((measured - mean).abs() < 0.1, "group {g}: {measured} vs {mean}");
        }
    }

    #[test]
    fn group_generation_is_deterministic() {
        assert_eq!(group_spec().generate().unwrap(), group_spec().generate().unwrap());
    }
}
