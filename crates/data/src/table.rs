//! In-memory columnar tables.
//!
//! A [`Table`] stores, per record: the aggregated statistic `f(x)`, one
//! column per expensive predicate (ground-truth label `O(x)` and proxy score
//! `P(x)`), an optional group key, and optional text payloads (used by the
//! emulated spam corpus, whose proxy actually scans tokens). The ground
//! truth stays *hidden* from the sampling algorithms — they only see it
//! through [`crate::oracle`] implementations that charge the budget — but is
//! available to the evaluation harness for exact answers.

use std::collections::HashMap;

/// A named expensive predicate: ground-truth labels and exhaustively
/// computed proxy scores.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Predicate name (e.g. `"contains_car"`).
    pub name: String,
    /// Ground-truth oracle results, one per record.
    pub labels: Vec<bool>,
    /// Proxy scores in `[0, 1]`, one per record.
    pub proxy: Vec<f64>,
}

/// A group-by key column: per-record group id (or `None`) plus group names.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupKey {
    /// Names of the groups, indexed by group id.
    pub names: Vec<String>,
    /// Group membership per record; `None` when the record matches no group.
    pub key: Vec<Option<u16>>,
}

/// Errors from table construction or lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// A column's length differs from the table's record count.
    LengthMismatch {
        /// Which column was inconsistent.
        column: String,
        /// Expected record count.
        expected: usize,
        /// Actual column length.
        actual: usize,
    },
    /// A predicate name was registered twice.
    DuplicatePredicate(String),
    /// A lookup referenced an unknown predicate.
    UnknownPredicate(String),
    /// A proxy score was outside `[0, 1]` or not finite.
    InvalidProxyScore {
        /// Offending predicate.
        predicate: String,
        /// Offending record index.
        index: usize,
        /// The bad value.
        value: f64,
    },
    /// The table has no records.
    Empty,
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::LengthMismatch { column, expected, actual } => {
                write!(f, "column `{column}` has {actual} rows, expected {expected}")
            }
            TableError::DuplicatePredicate(name) => write!(f, "duplicate predicate `{name}`"),
            TableError::UnknownPredicate(name) => write!(f, "unknown predicate `{name}`"),
            TableError::InvalidProxyScore { predicate, index, value } => {
                write!(f, "proxy `{predicate}` has invalid score {value} at record {index}")
            }
            TableError::Empty => write!(f, "table has no records"),
        }
    }
}

impl std::error::Error for TableError {}

/// An immutable columnar dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    statistic: Vec<f64>,
    predicates: Vec<Predicate>,
    by_name: HashMap<String, usize>,
    group_key: Option<GroupKey>,
    texts: Option<Vec<String>>,
}

impl Table {
    /// Starts building a table with the given name and statistic column.
    ///
    /// ```
    /// use abae_data::Table;
    ///
    /// let table = Table::builder("emails", vec![3.0, 1.0, 2.0])
    ///     .predicate("is_spam", vec![true, false, true], vec![0.9, 0.1, 0.7])
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(table.len(), 3);
    /// assert_eq!(table.exact_avg("is_spam").unwrap(), 2.5); // (3 + 2) / 2
    /// assert_eq!(table.exact_count("is_spam").unwrap(), 2.0);
    /// ```
    pub fn builder(name: impl Into<String>, statistic: Vec<f64>) -> TableBuilder {
        TableBuilder {
            name: name.into(),
            statistic,
            predicates: Vec::new(),
            group_key: None,
            texts: None,
        }
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.statistic.len()
    }

    /// True when the table has no records (never constructed; builder
    /// rejects empty tables).
    pub fn is_empty(&self) -> bool {
        self.statistic.is_empty()
    }

    /// The statistic column.
    pub fn statistics(&self) -> &[f64] {
        &self.statistic
    }

    /// Statistic of one record.
    pub fn statistic(&self, idx: usize) -> f64 {
        self.statistic[idx]
    }

    /// All predicates.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Looks up a predicate by name.
    pub fn predicate(&self, name: &str) -> Result<&Predicate, TableError> {
        self.by_name
            .get(name)
            .map(|&i| &self.predicates[i])
            .ok_or_else(|| TableError::UnknownPredicate(name.to_string()))
    }

    /// Index of a predicate by name.
    pub fn predicate_index(&self, name: &str) -> Result<usize, TableError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TableError::UnknownPredicate(name.to_string()))
    }

    /// The group key column, when present.
    pub fn group_key(&self) -> Option<&GroupKey> {
        self.group_key.as_ref()
    }

    /// Text payloads, when present.
    pub fn texts(&self) -> Option<&[String]> {
        self.texts.as_deref()
    }

    /// Exact positive rate of a predicate (ground truth).
    pub fn positive_rate(&self, pred: &str) -> Result<f64, TableError> {
        let p = self.predicate(pred)?;
        Ok(p.labels.iter().filter(|&&l| l).count() as f64 / self.len() as f64)
    }

    /// Exact `AVG(statistic) WHERE pred` over the ground truth. Returns 0
    /// when no record matches (mirroring the estimators' convention).
    pub fn exact_avg(&self, pred: &str) -> Result<f64, TableError> {
        let p = self.predicate(pred)?;
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, &l) in p.labels.iter().enumerate() {
            if l {
                sum += self.statistic[i];
                count += 1;
            }
        }
        Ok(if count == 0 { 0.0 } else { sum / count as f64 })
    }

    /// Exact `SUM(statistic) WHERE pred` over the ground truth.
    pub fn exact_sum(&self, pred: &str) -> Result<f64, TableError> {
        let p = self.predicate(pred)?;
        Ok(p
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(i, _)| self.statistic[i])
            .sum())
    }

    /// Exact `COUNT(*) WHERE pred` over the ground truth.
    pub fn exact_count(&self, pred: &str) -> Result<f64, TableError> {
        let p = self.predicate(pred)?;
        Ok(p.labels.iter().filter(|&&l| l).count() as f64)
    }

    /// Exact conditional average for records in group `g` (single-oracle
    /// group-by semantics). Returns 0 when the group is empty.
    pub fn exact_group_avg(&self, g: u16) -> Option<f64> {
        let gk = self.group_key.as_ref()?;
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, key) in gk.key.iter().enumerate() {
            if *key == Some(g) {
                sum += self.statistic[i];
                count += 1;
            }
        }
        Some(if count == 0 { 0.0 } else { sum / count as f64 })
    }

    /// Exact count of records in group `g`.
    pub fn exact_group_count(&self, g: u16) -> Option<f64> {
        let gk = self.group_key.as_ref()?;
        Some(gk.key.iter().filter(|k| **k == Some(g)).count() as f64)
    }
}

/// Builder for [`Table`], validating column lengths and proxy ranges.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    statistic: Vec<f64>,
    predicates: Vec<Predicate>,
    group_key: Option<GroupKey>,
    texts: Option<Vec<String>>,
}

impl TableBuilder {
    /// Adds a predicate column.
    pub fn predicate(
        mut self,
        name: impl Into<String>,
        labels: Vec<bool>,
        proxy: Vec<f64>,
    ) -> Self {
        self.predicates.push(Predicate { name: name.into(), labels, proxy });
        self
    }

    /// Sets the group key column.
    pub fn group_key(mut self, names: Vec<String>, key: Vec<Option<u16>>) -> Self {
        self.group_key = Some(GroupKey { names, key });
        self
    }

    /// Attaches text payloads.
    pub fn texts(mut self, texts: Vec<String>) -> Self {
        self.texts = Some(texts);
        self
    }

    /// Validates and builds the table.
    pub fn build(self) -> Result<Table, TableError> {
        let n = self.statistic.len();
        if n == 0 {
            return Err(TableError::Empty);
        }
        let mut by_name = HashMap::new();
        for (i, p) in self.predicates.iter().enumerate() {
            if by_name.insert(p.name.clone(), i).is_some() {
                return Err(TableError::DuplicatePredicate(p.name.clone()));
            }
            if p.labels.len() != n {
                return Err(TableError::LengthMismatch {
                    column: format!("{}(labels)", p.name),
                    expected: n,
                    actual: p.labels.len(),
                });
            }
            if p.proxy.len() != n {
                return Err(TableError::LengthMismatch {
                    column: format!("{}(proxy)", p.name),
                    expected: n,
                    actual: p.proxy.len(),
                });
            }
            for (idx, &s) in p.proxy.iter().enumerate() {
                if !s.is_finite() || !(0.0..=1.0).contains(&s) {
                    return Err(TableError::InvalidProxyScore {
                        predicate: p.name.clone(),
                        index: idx,
                        value: s,
                    });
                }
            }
        }
        if let Some(gk) = &self.group_key {
            if gk.key.len() != n {
                return Err(TableError::LengthMismatch {
                    column: "group_key".to_string(),
                    expected: n,
                    actual: gk.key.len(),
                });
            }
        }
        if let Some(texts) = &self.texts {
            if texts.len() != n {
                return Err(TableError::LengthMismatch {
                    column: "texts".to_string(),
                    expected: n,
                    actual: texts.len(),
                });
            }
        }
        Ok(Table {
            name: self.name,
            statistic: self.statistic,
            predicates: self.predicates,
            by_name,
            group_key: self.group_key,
            texts: self.texts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        Table::builder("t", vec![1.0, 2.0, 3.0, 4.0])
            .predicate("even", vec![false, true, false, true], vec![0.1, 0.9, 0.2, 0.8])
            .build()
            .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let t = sample_table();
        assert_eq!(t.len(), 4);
        assert_eq!(t.name(), "t");
        assert_eq!(t.statistic(2), 3.0);
        assert!(t.predicate("even").unwrap().labels[1]);
        assert_eq!(t.predicate_index("even").unwrap(), 0);
    }

    #[test]
    fn exact_aggregates() {
        let t = sample_table();
        assert_eq!(t.exact_avg("even").unwrap(), 3.0); // (2 + 4) / 2
        assert_eq!(t.exact_sum("even").unwrap(), 6.0);
        assert_eq!(t.exact_count("even").unwrap(), 2.0);
        assert_eq!(t.positive_rate("even").unwrap(), 0.5);
    }

    #[test]
    fn empty_predicate_average_is_zero() {
        let t = Table::builder("t", vec![1.0, 2.0])
            .predicate("never", vec![false, false], vec![0.0, 0.0])
            .build()
            .unwrap();
        assert_eq!(t.exact_avg("never").unwrap(), 0.0);
        assert_eq!(t.exact_count("never").unwrap(), 0.0);
    }

    #[test]
    fn unknown_predicate_errors() {
        let t = sample_table();
        assert_eq!(
            t.exact_avg("nope").unwrap_err(),
            TableError::UnknownPredicate("nope".to_string())
        );
    }

    #[test]
    fn builder_rejects_empty_table() {
        assert_eq!(Table::builder("t", vec![]).build().unwrap_err(), TableError::Empty);
    }

    #[test]
    fn builder_rejects_ragged_columns() {
        let err = Table::builder("t", vec![1.0, 2.0])
            .predicate("p", vec![true], vec![0.5, 0.5])
            .build()
            .unwrap_err();
        assert!(matches!(err, TableError::LengthMismatch { .. }));
    }

    #[test]
    fn builder_rejects_duplicate_predicates() {
        let err = Table::builder("t", vec![1.0])
            .predicate("p", vec![true], vec![0.5])
            .predicate("p", vec![false], vec![0.5])
            .build()
            .unwrap_err();
        assert_eq!(err, TableError::DuplicatePredicate("p".to_string()));
    }

    #[test]
    fn builder_rejects_out_of_range_proxy() {
        let err = Table::builder("t", vec![1.0, 2.0])
            .predicate("p", vec![true, false], vec![0.5, 1.5])
            .build()
            .unwrap_err();
        assert!(matches!(err, TableError::InvalidProxyScore { index: 1, .. }));
        let err = Table::builder("t", vec![1.0])
            .predicate("p", vec![true], vec![f64::NAN])
            .build()
            .unwrap_err();
        assert!(matches!(err, TableError::InvalidProxyScore { .. }));
    }

    #[test]
    fn group_key_aggregates() {
        let t = Table::builder("g", vec![10.0, 20.0, 30.0, 40.0])
            .group_key(
                vec!["a".into(), "b".into()],
                vec![Some(0), Some(1), Some(0), None],
            )
            .build()
            .unwrap();
        assert_eq!(t.exact_group_avg(0), Some(20.0));
        assert_eq!(t.exact_group_avg(1), Some(20.0));
        assert_eq!(t.exact_group_count(0), Some(2.0));
        assert_eq!(t.exact_group_avg(9), Some(0.0)); // empty group
    }

    #[test]
    fn group_key_length_validated() {
        let err = Table::builder("g", vec![1.0, 2.0])
            .group_key(vec!["a".into()], vec![Some(0)])
            .build()
            .unwrap_err();
        assert!(matches!(err, TableError::LengthMismatch { .. }));
    }

    #[test]
    fn texts_roundtrip() {
        let t = Table::builder("txt", vec![1.0])
            .texts(vec!["hello world".into()])
            .build()
            .unwrap();
        assert_eq!(t.texts().unwrap()[0], "hello world");
    }
}
