//! In-memory columnar tables.
//!
//! A [`Table`] stores, per record: the aggregated statistic `f(x)`, one
//! column per expensive predicate (ground-truth label `O(x)` and proxy score
//! `P(x)`), an optional group key, and optional text payloads (used by the
//! emulated spam corpus, whose proxy actually scans tokens). The ground
//! truth stays *hidden* from the sampling algorithms — they only see it
//! through [`crate::oracle`] implementations that charge the budget — but is
//! available to the evaluation harness for exact answers.
//!
//! Storage is columnar throughout ([`crate::columnar`]): the statistic and
//! proxy columns are contiguous `f64` vectors, labels are packed bitmaps,
//! the group key is dictionary-encoded, and texts live in one UTF-8 arena.
//! All columns are `Arc`-backed, so cloning a column into a query plan is
//! O(1). The per-record [`RowRecord`] view ([`Table::rows`] /
//! [`Table::from_rows`]) remains as a thin compatibility layer — and as the
//! reference path the differential tests pin the columnar hot path against.

use crate::columnar::{
    read_columns, write_columns, BinError, Bitmap, BoolColumn, Column, ColumnRole, DictBuilder,
    DictColumn, F64Column, NamedColumn, StrColumn,
};
use std::collections::BTreeMap;
use std::path::Path;

/// A named expensive predicate: ground-truth labels (packed bitmap) and
/// exhaustively computed proxy scores (contiguous `f64` column).
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    name: String,
    labels: BoolColumn,
    proxy: F64Column,
}

impl Predicate {
    /// Predicate name (e.g. `"contains_car"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ground-truth label of one record.
    #[inline]
    pub fn label(&self, idx: usize) -> bool {
        self.labels.get(idx)
    }

    /// The packed ground-truth label column.
    pub fn labels(&self) -> &BoolColumn {
        &self.labels
    }

    /// Materializes the labels as a `Vec<bool>` (compatibility view;
    /// allocates — batch consumers should use [`Predicate::labels`]).
    pub fn labels_vec(&self) -> Vec<bool> {
        self.labels.to_vec()
    }

    /// Proxy scores in `[0, 1]`, one per record.
    #[inline]
    pub fn proxy(&self) -> &[f64] {
        self.proxy.as_slice()
    }

    /// The proxy column (O(1) to clone into a plan).
    pub fn proxy_column(&self) -> &F64Column {
        &self.proxy
    }
}

/// A group-by key column: dictionary-encoded group membership per record
/// (`None` when the record matches no group), plus the group names.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupKey {
    dict: DictColumn,
}

impl GroupKey {
    /// Wraps a dictionary column as a group key. Fails when the dictionary
    /// has more than `u16::MAX + 1` distinct groups (group ids are `u16`).
    pub fn from_dict(dict: DictColumn) -> Result<Self, TableError> {
        if dict.distinct() > usize::from(u16::MAX) + 1 {
            return Err(TableError::SchemaMismatch(format!(
                "group key has {} distinct groups; at most {} supported",
                dict.distinct(),
                usize::from(u16::MAX) + 1
            )));
        }
        Ok(Self { dict })
    }

    /// Names of the groups, indexed by group id.
    pub fn names(&self) -> &[String] {
        self.dict.dict()
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.dict.distinct()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    /// True when the column holds no records.
    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// Group id of one record, or `None` when it matches no group.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<u16> {
        self.dict.code(idx).map(|c| c as u16)
    }

    /// Iterates per-record group ids in record order.
    pub fn iter(&self) -> impl Iterator<Item = Option<u16>> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// The backing dictionary column.
    pub fn dict(&self) -> &DictColumn {
        &self.dict
    }
}

/// Errors from table construction or lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// A column's length differs from the table's record count.
    LengthMismatch {
        /// Which column was inconsistent.
        column: String,
        /// Expected record count.
        expected: usize,
        /// Actual column length.
        actual: usize,
    },
    /// A predicate name was registered twice.
    DuplicatePredicate(String),
    /// A lookup referenced an unknown predicate.
    UnknownPredicate(String),
    /// A proxy score was outside `[0, 1]` or not finite.
    InvalidProxyScore {
        /// Offending predicate.
        predicate: String,
        /// Offending record index.
        index: usize,
        /// The bad value.
        value: f64,
    },
    /// A record referenced a group id outside the group-name table.
    InvalidGroupId {
        /// Offending record index.
        index: usize,
        /// The out-of-range id.
        id: u16,
        /// Number of known groups.
        groups: usize,
    },
    /// Columns or rows did not fit the expected table shape (missing
    /// statistic, unpaired label/proxy, wrong column type, unknown group
    /// name, too many groups, …).
    SchemaMismatch(String),
    /// The table has no records.
    Empty,
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::LengthMismatch { column, expected, actual } => {
                write!(f, "column `{column}` has {actual} rows, expected {expected}")
            }
            TableError::DuplicatePredicate(name) => write!(f, "duplicate predicate `{name}`"),
            TableError::UnknownPredicate(name) => write!(f, "unknown predicate `{name}`"),
            TableError::InvalidProxyScore { predicate, index, value } => {
                write!(f, "proxy `{predicate}` has invalid score {value} at record {index}")
            }
            TableError::InvalidGroupId { index, id, groups } => {
                write!(f, "record {index} has group id {id}, but only {groups} groups exist")
            }
            TableError::SchemaMismatch(what) => write!(f, "schema mismatch: {what}"),
            TableError::Empty => write!(f, "table has no records"),
        }
    }
}

impl std::error::Error for TableError {}

/// Failure while persisting or loading a table in the binary format:
/// either the storage layer rejected the bytes or the decoded columns do
/// not assemble into a valid table.
#[derive(Debug)]
pub enum TableIoError {
    /// The storage layer rejected the file.
    Bin(BinError),
    /// Decoded columns failed table validation.
    Table(TableError),
}

impl std::fmt::Display for TableIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableIoError::Bin(e) => write!(f, "{e}"),
            TableIoError::Table(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TableIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableIoError::Bin(e) => Some(e),
            TableIoError::Table(e) => Some(e),
        }
    }
}

impl From<BinError> for TableIoError {
    fn from(e: BinError) -> Self {
        TableIoError::Bin(e)
    }
}

impl From<TableError> for TableIoError {
    fn from(e: TableError) -> Self {
        TableIoError::Table(e)
    }
}

/// The column layout of a table's row view: predicate names in column
/// order, group names (when a group key exists), and whether records carry
/// text payloads. [`Table::from_rows`] needs this to rebuild columns —
/// group names must survive even when no row references them.
#[derive(Debug, Clone, PartialEq)]
pub struct RowSchema {
    /// Predicate names, in column order.
    pub predicates: Vec<String>,
    /// Group names indexed by group id, when the table has a group key.
    pub group_names: Option<Vec<String>>,
    /// Whether records carry text payloads.
    pub has_texts: bool,
}

/// One materialized record — the row-oriented compatibility view. This is
/// deliberately an owned, allocating struct: it is what the columnar hot
/// path exists to avoid, and what the differential tests and the scan
/// bench use as the row baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RowRecord {
    /// The aggregated statistic `f(x)`.
    pub statistic: f64,
    /// Ground-truth labels, one per predicate in schema order.
    pub labels: Vec<bool>,
    /// Proxy scores, one per predicate in schema order.
    pub proxies: Vec<f64>,
    /// Group name, or `None` when the record matches no group (or the
    /// table has no group key).
    pub group: Option<String>,
    /// Text payload, when the table carries texts.
    pub text: Option<String>,
}

/// An immutable columnar dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    statistic: F64Column,
    predicates: Vec<Predicate>,
    by_name: BTreeMap<String, usize>,
    group_key: Option<GroupKey>,
    texts: Option<StrColumn>,
}

impl Table {
    /// Starts building a table with the given name and statistic column.
    ///
    /// ```
    /// use abae_data::Table;
    ///
    /// let table = Table::builder("emails", vec![3.0, 1.0, 2.0])
    ///     .predicate("is_spam", vec![true, false, true], vec![0.9, 0.1, 0.7])
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(table.len(), 3);
    /// assert_eq!(table.exact_avg("is_spam").unwrap(), 2.5); // (3 + 2) / 2
    /// assert_eq!(table.exact_count("is_spam").unwrap(), 2.0);
    /// ```
    pub fn builder(name: impl Into<String>, statistic: Vec<f64>) -> TableBuilder {
        TableBuilder {
            name: name.into(),
            statistic: statistic.into(),
            predicates: Vec::new(),
            group_key: None,
            texts: None,
        }
    }

    /// Validates columns and assembles the table (the single construction
    /// path: the builder, `from_rows`, and `from_columns` all land here).
    fn assemble(
        name: String,
        statistic: F64Column,
        predicates: Vec<Predicate>,
        group_key: Option<GroupKey>,
        texts: Option<StrColumn>,
    ) -> Result<Table, TableError> {
        let n = statistic.len();
        if n == 0 {
            return Err(TableError::Empty);
        }
        let mut by_name = BTreeMap::new();
        for (i, p) in predicates.iter().enumerate() {
            if by_name.insert(p.name.clone(), i).is_some() {
                return Err(TableError::DuplicatePredicate(p.name.clone()));
            }
            if p.labels.len() != n {
                return Err(TableError::LengthMismatch {
                    column: format!("{}(labels)", p.name),
                    expected: n,
                    actual: p.labels.len(),
                });
            }
            if p.proxy.len() != n {
                return Err(TableError::LengthMismatch {
                    column: format!("{}(proxy)", p.name),
                    expected: n,
                    actual: p.proxy.len(),
                });
            }
            for (idx, &s) in p.proxy.as_slice().iter().enumerate() {
                if !s.is_finite() || !(0.0..=1.0).contains(&s) {
                    return Err(TableError::InvalidProxyScore {
                        predicate: p.name.clone(),
                        index: idx,
                        value: s,
                    });
                }
            }
        }
        if let Some(gk) = &group_key {
            if gk.len() != n {
                return Err(TableError::LengthMismatch {
                    column: "group_key".to_string(),
                    expected: n,
                    actual: gk.len(),
                });
            }
        }
        if let Some(texts) = &texts {
            if texts.len() != n {
                return Err(TableError::LengthMismatch {
                    column: "texts".to_string(),
                    expected: n,
                    actual: texts.len(),
                });
            }
        }
        Ok(Table { name, statistic, predicates, by_name, group_key, texts })
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.statistic.len()
    }

    /// True when the table has no records (never constructed; builder
    /// rejects empty tables).
    pub fn is_empty(&self) -> bool {
        self.statistic.is_empty()
    }

    /// The statistic column.
    pub fn statistics(&self) -> &[f64] {
        self.statistic.as_slice()
    }

    /// The statistic column as an `Arc`-backed column (O(1) to clone).
    pub fn statistic_column(&self) -> &F64Column {
        &self.statistic
    }

    /// Statistic of one record.
    pub fn statistic(&self, idx: usize) -> f64 {
        self.statistic.get(idx)
    }

    /// All predicates.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Looks up a predicate by name.
    pub fn predicate(&self, name: &str) -> Result<&Predicate, TableError> {
        self.by_name
            .get(name)
            .map(|&i| &self.predicates[i])
            .ok_or_else(|| TableError::UnknownPredicate(name.to_string()))
    }

    /// Index of a predicate by name.
    pub fn predicate_index(&self, name: &str) -> Result<usize, TableError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TableError::UnknownPredicate(name.to_string()))
    }

    /// The group key column, when present.
    pub fn group_key(&self) -> Option<&GroupKey> {
        self.group_key.as_ref()
    }

    /// Text payloads, when present.
    pub fn texts(&self) -> Option<&StrColumn> {
        self.texts.as_ref()
    }

    /// Exact positive rate of a predicate (ground truth).
    pub fn positive_rate(&self, pred: &str) -> Result<f64, TableError> {
        let p = self.predicate(pred)?;
        Ok(p.labels.count_ones() as f64 / self.len() as f64)
    }

    /// Exact `AVG(statistic) WHERE pred` over the ground truth. Returns 0
    /// when no record matches (mirroring the estimators' convention).
    pub fn exact_avg(&self, pred: &str) -> Result<f64, TableError> {
        let p = self.predicate(pred)?;
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in p.labels.iter_ones() {
            sum += self.statistic.get(i);
            count += 1;
        }
        Ok(if count == 0 { 0.0 } else { sum / count as f64 })
    }

    /// Exact `SUM(statistic) WHERE pred` over the ground truth.
    pub fn exact_sum(&self, pred: &str) -> Result<f64, TableError> {
        let p = self.predicate(pred)?;
        Ok(p.labels.iter_ones().map(|i| self.statistic.get(i)).sum())
    }

    /// Exact `COUNT(*) WHERE pred` over the ground truth.
    pub fn exact_count(&self, pred: &str) -> Result<f64, TableError> {
        let p = self.predicate(pred)?;
        Ok(p.labels.count_ones() as f64)
    }

    /// Exact conditional average for records in group `g` (single-oracle
    /// group-by semantics). Returns 0 when the group is empty.
    pub fn exact_group_avg(&self, g: u16) -> Option<f64> {
        let gk = self.group_key.as_ref()?;
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, key) in gk.iter().enumerate() {
            if key == Some(g) {
                sum += self.statistic.get(i);
                count += 1;
            }
        }
        Some(if count == 0 { 0.0 } else { sum / count as f64 })
    }

    /// Exact count of records in group `g`.
    pub fn exact_group_count(&self, g: u16) -> Option<f64> {
        let gk = self.group_key.as_ref()?;
        Some(gk.iter().filter(|k| *k == Some(g)).count() as f64)
    }

    // ------------------------------------------------------------------
    // Row-record compatibility view
    // ------------------------------------------------------------------

    /// The table's row-view schema.
    pub fn schema(&self) -> RowSchema {
        RowSchema {
            predicates: self.predicates.iter().map(|p| p.name.clone()).collect(),
            group_names: self.group_key.as_ref().map(|gk| gk.names().to_vec()),
            has_texts: self.texts.is_some(),
        }
    }

    /// Materializes one record as an owned row struct.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    pub fn row(&self, idx: usize) -> RowRecord {
        RowRecord {
            statistic: self.statistic.get(idx),
            labels: self.predicates.iter().map(|p| p.labels.get(idx)).collect(),
            proxies: self.predicates.iter().map(|p| p.proxy.get(idx)).collect(),
            group: self
                .group_key
                .as_ref()
                .and_then(|gk| gk.dict().value(idx).map(str::to_string)),
            text: self.texts.as_ref().map(|t| t.get(idx).to_string()),
        }
    }

    /// Iterates all records as owned row structs (the row-oriented
    /// compatibility path; allocates per record).
    pub fn rows(&self) -> impl Iterator<Item = RowRecord> + '_ {
        (0..self.len()).map(|i| self.row(i))
    }

    /// Rebuilds a table from a row stream and its schema — the inverse of
    /// [`Table::rows`]: `Table::from_rows(t.name(), &t.schema(), t.rows())`
    /// reproduces `t` exactly.
    pub fn from_rows(
        name: impl Into<String>,
        schema: &RowSchema,
        rows: impl IntoIterator<Item = RowRecord>,
    ) -> Result<Table, TableError> {
        let n_preds = schema.predicates.len();
        let mut statistic = Vec::new();
        let mut labels: Vec<Bitmap> = (0..n_preds).map(|_| Bitmap::default()).collect();
        let mut proxies: Vec<Vec<f64>> = vec![Vec::new(); n_preds];
        let group_ids: Option<BTreeMap<&str, u32>> = schema.group_names.as_ref().map(|names| {
            names.iter().enumerate().map(|(i, n)| (n.as_str(), i as u32)).collect()
        });
        let mut group = schema.group_names.is_some().then(DictBuilder::new);
        let mut texts = schema.has_texts.then(crate::columnar::StrBuilder::new);

        for (idx, row) in rows.into_iter().enumerate() {
            if row.labels.len() != n_preds || row.proxies.len() != n_preds {
                return Err(TableError::LengthMismatch {
                    column: format!("row {idx}"),
                    expected: n_preds,
                    actual: row.labels.len().max(row.proxies.len()),
                });
            }
            statistic.push(row.statistic);
            for (p, &l) in labels.iter_mut().zip(&row.labels) {
                p.push(l);
            }
            for (p, &s) in proxies.iter_mut().zip(&row.proxies) {
                p.push(s);
            }
            match (&mut group, &row.group) {
                (Some(b), Some(g)) => {
                    let ids = group_ids.as_ref().expect("built alongside the dict builder");
                    if !ids.contains_key(g.as_str()) {
                        return Err(TableError::SchemaMismatch(format!(
                            "row {idx} names unknown group `{g}`"
                        )));
                    }
                    b.push(Some(g));
                }
                (Some(b), None) => b.push(None),
                (None, Some(_)) => {
                    return Err(TableError::SchemaMismatch(format!(
                        "row {idx} carries a group but the schema has none"
                    )))
                }
                (None, None) => {}
            }
            match (&mut texts, row.text) {
                (Some(b), Some(t)) => b.push(&t),
                (Some(b), None) => b.push(""),
                (None, Some(_)) => {
                    return Err(TableError::SchemaMismatch(format!(
                        "row {idx} carries a text but the schema has none"
                    )))
                }
                (None, None) => {}
            }
        }

        // The dict builder interned in row order; remap onto the schema's
        // group-id order so ids (and empty groups) survive the roundtrip.
        let group_key = match (group, &schema.group_names) {
            (Some(b), Some(names)) => {
                let built = b.finish();
                let ids = group_ids.expect("present when schema has groups");
                let codes: Vec<u32> = built
                    .codes()
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        if built.validity().get(i) {
                            ids[built.dict()[c as usize].as_str()]
                        } else {
                            0
                        }
                    })
                    .collect();
                let dict =
                    DictColumn::from_parts(names.clone(), codes, built.validity().clone())
                        .ok_or_else(|| {
                            TableError::SchemaMismatch("group ids out of range".to_string())
                        })?;
                Some(GroupKey::from_dict(dict)?)
            }
            _ => None,
        };

        let predicates = schema
            .predicates
            .iter()
            .zip(labels.into_iter().zip(proxies))
            .map(|(name, (l, p))| Predicate {
                name: name.clone(),
                labels: BoolColumn::from(l),
                proxy: F64Column::from(p),
            })
            .collect();
        Table::assemble(
            name.into(),
            F64Column::from(statistic),
            predicates,
            group_key,
            texts.map(|b| b.finish()),
        )
    }

    // ------------------------------------------------------------------
    // Columnar export / import and the binary cache
    // ------------------------------------------------------------------

    /// Exports the table as named, role-tagged columns (the binary file
    /// format's unit). Order: statistic, then label+proxy per predicate,
    /// then group, then text.
    pub fn to_columns(&self) -> Vec<NamedColumn> {
        let mut out = Vec::with_capacity(2 + 2 * self.predicates.len());
        out.push(NamedColumn {
            name: "statistic".to_string(),
            role: ColumnRole::Statistic,
            column: Column::F64(self.statistic.clone()),
        });
        for p in &self.predicates {
            out.push(NamedColumn {
                name: p.name.clone(),
                role: ColumnRole::Label,
                column: Column::Bool(p.labels.clone()),
            });
            out.push(NamedColumn {
                name: p.name.clone(),
                role: ColumnRole::Proxy,
                column: Column::F64(p.proxy.clone()),
            });
        }
        if let Some(gk) = &self.group_key {
            out.push(NamedColumn {
                name: "group".to_string(),
                role: ColumnRole::Group,
                column: Column::Dict(gk.dict().clone()),
            });
        }
        if let Some(t) = &self.texts {
            out.push(NamedColumn {
                name: "text".to_string(),
                role: ColumnRole::Text,
                column: Column::Str(t.clone()),
            });
        }
        out
    }

    /// Assembles a table from named, role-tagged columns — the inverse of
    /// [`Table::to_columns`]. Label and proxy columns pair by name; every
    /// invariant the builder enforces is re-checked (the columns may come
    /// from an untrusted file).
    pub fn from_columns(
        name: impl Into<String>,
        columns: Vec<NamedColumn>,
    ) -> Result<Table, TableError> {
        let mut statistic = None;
        let mut order: Vec<String> = Vec::new();
        let mut label_cols: BTreeMap<String, BoolColumn> = BTreeMap::new();
        let mut proxy_cols: BTreeMap<String, F64Column> = BTreeMap::new();
        let mut group_key = None;
        let mut texts = None;
        for nc in columns {
            match (nc.role, nc.column) {
                (ColumnRole::Statistic, Column::F64(c)) => {
                    if statistic.replace(c).is_some() {
                        return Err(TableError::SchemaMismatch(
                            "multiple statistic columns".to_string(),
                        ));
                    }
                }
                (ColumnRole::Label, Column::Bool(c)) => {
                    if !order.contains(&nc.name) {
                        order.push(nc.name.clone());
                    }
                    if label_cols.insert(nc.name.clone(), c).is_some() {
                        return Err(TableError::DuplicatePredicate(nc.name));
                    }
                }
                (ColumnRole::Proxy, Column::F64(c)) => {
                    if !order.contains(&nc.name) {
                        order.push(nc.name.clone());
                    }
                    if proxy_cols.insert(nc.name.clone(), c).is_some() {
                        return Err(TableError::DuplicatePredicate(nc.name));
                    }
                }
                (ColumnRole::Group, Column::Dict(c)) => {
                    if group_key.replace(GroupKey::from_dict(c)?).is_some() {
                        return Err(TableError::SchemaMismatch(
                            "multiple group columns".to_string(),
                        ));
                    }
                }
                (ColumnRole::Text, Column::Str(c)) => {
                    if texts.replace(c).is_some() {
                        return Err(TableError::SchemaMismatch(
                            "multiple text columns".to_string(),
                        ));
                    }
                }
                (role, column) => {
                    return Err(TableError::SchemaMismatch(format!(
                        "column `{}` has type {} which does not fit role {role:?}",
                        nc.name,
                        column.type_name()
                    )))
                }
            }
        }
        let statistic = statistic.ok_or_else(|| {
            TableError::SchemaMismatch("missing statistic column".to_string())
        })?;
        let mut predicates = Vec::with_capacity(order.len());
        for pname in order {
            let labels = label_cols.remove(&pname).ok_or_else(|| {
                TableError::SchemaMismatch(format!("predicate `{pname}` has no label column"))
            })?;
            let proxy = proxy_cols.remove(&pname).ok_or_else(|| {
                TableError::SchemaMismatch(format!("predicate `{pname}` has no proxy column"))
            })?;
            predicates.push(Predicate { name: pname, labels, proxy });
        }
        Table::assemble(name.into(), statistic, predicates, group_key, texts)
    }

    /// Writes the table to `path` in the binary `.abcol` format
    /// (atomically; see [`crate::columnar::file`] for the layout).
    pub fn save_binary(&self, path: &Path) -> Result<(), BinError> {
        write_columns(path, &self.to_columns())
    }

    /// Loads a table from the binary `.abcol` format, re-validating every
    /// table invariant (the file is untrusted input).
    pub fn load_binary(name: impl Into<String>, path: &Path) -> Result<Table, TableIoError> {
        let columns = read_columns(path)?;
        Ok(Table::from_columns(name, columns)?)
    }
}

/// The builder's group-key input: either the classic `(names, ids)` pair
/// or a pre-encoded dictionary column.
#[derive(Debug, Clone)]
enum GroupInput {
    NamesKey(Vec<String>, Vec<Option<u16>>),
    Dict(DictColumn),
}

/// Builder for [`Table`], validating column lengths and proxy ranges.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    statistic: F64Column,
    predicates: Vec<Predicate>,
    group_key: Option<GroupInput>,
    texts: Option<StrColumn>,
}

impl TableBuilder {
    /// Adds a predicate column from plain vectors.
    pub fn predicate(
        self,
        name: impl Into<String>,
        labels: Vec<bool>,
        proxy: Vec<f64>,
    ) -> Self {
        self.predicate_columns(name, labels.into(), proxy.into())
    }

    /// Adds a predicate from already-built columns (the streaming-ingest
    /// path: no intermediate `Vec<bool>`).
    pub fn predicate_columns(
        mut self,
        name: impl Into<String>,
        labels: BoolColumn,
        proxy: F64Column,
    ) -> Self {
        self.predicates.push(Predicate { name: name.into(), labels, proxy });
        self
    }

    /// Sets the group key column from group names plus per-record ids.
    pub fn group_key(mut self, names: Vec<String>, key: Vec<Option<u16>>) -> Self {
        self.group_key = Some(GroupInput::NamesKey(names, key));
        self
    }

    /// Sets the group key from a pre-encoded dictionary column (the
    /// streaming-ingest path).
    pub fn group_dict(mut self, dict: DictColumn) -> Self {
        self.group_key = Some(GroupInput::Dict(dict));
        self
    }

    /// Attaches text payloads.
    pub fn texts(mut self, texts: Vec<String>) -> Self {
        self.texts = Some(texts.iter().collect());
        self
    }

    /// Attaches text payloads from an already-built column (the
    /// streaming-ingest path).
    pub fn texts_column(mut self, texts: StrColumn) -> Self {
        self.texts = Some(texts);
        self
    }

    /// Validates and builds the table.
    pub fn build(self) -> Result<Table, TableError> {
        let group_key = match self.group_key {
            Some(GroupInput::NamesKey(names, key)) => {
                let mut validity = Bitmap::new(key.len());
                let mut codes = Vec::with_capacity(key.len());
                for (i, k) in key.iter().enumerate() {
                    match k {
                        Some(id) => {
                            if usize::from(*id) >= names.len() {
                                return Err(TableError::InvalidGroupId {
                                    index: i,
                                    id: *id,
                                    groups: names.len(),
                                });
                            }
                            validity.set(i, true);
                            codes.push(u32::from(*id));
                        }
                        None => codes.push(0),
                    }
                }
                let dict = DictColumn::from_parts(names, codes, validity)
                    .expect("codes validated above");
                Some(GroupKey::from_dict(dict)?)
            }
            Some(GroupInput::Dict(dict)) => Some(GroupKey::from_dict(dict)?),
            None => None,
        };
        Table::assemble(self.name, self.statistic, self.predicates, group_key, self.texts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        Table::builder("t", vec![1.0, 2.0, 3.0, 4.0])
            .predicate("even", vec![false, true, false, true], vec![0.1, 0.9, 0.2, 0.8])
            .build()
            .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let t = sample_table();
        assert_eq!(t.len(), 4);
        assert_eq!(t.name(), "t");
        assert_eq!(t.statistic(2), 3.0);
        assert!(t.predicate("even").unwrap().label(1));
        assert_eq!(t.predicate_index("even").unwrap(), 0);
        assert_eq!(t.predicates()[0].name(), "even");
        assert_eq!(t.predicates()[0].proxy(), &[0.1, 0.9, 0.2, 0.8]);
    }

    #[test]
    fn exact_aggregates() {
        let t = sample_table();
        assert_eq!(t.exact_avg("even").unwrap(), 3.0); // (2 + 4) / 2
        assert_eq!(t.exact_sum("even").unwrap(), 6.0);
        assert_eq!(t.exact_count("even").unwrap(), 2.0);
        assert_eq!(t.positive_rate("even").unwrap(), 0.5);
    }

    #[test]
    fn empty_predicate_average_is_zero() {
        let t = Table::builder("t", vec![1.0, 2.0])
            .predicate("never", vec![false, false], vec![0.0, 0.0])
            .build()
            .unwrap();
        assert_eq!(t.exact_avg("never").unwrap(), 0.0);
        assert_eq!(t.exact_count("never").unwrap(), 0.0);
    }

    #[test]
    fn unknown_predicate_errors() {
        let t = sample_table();
        assert_eq!(
            t.exact_avg("nope").unwrap_err(),
            TableError::UnknownPredicate("nope".to_string())
        );
    }

    #[test]
    fn builder_rejects_empty_table() {
        assert_eq!(Table::builder("t", vec![]).build().unwrap_err(), TableError::Empty);
    }

    #[test]
    fn builder_rejects_ragged_columns() {
        let err = Table::builder("t", vec![1.0, 2.0])
            .predicate("p", vec![true], vec![0.5, 0.5])
            .build()
            .unwrap_err();
        assert!(matches!(err, TableError::LengthMismatch { .. }));
    }

    #[test]
    fn builder_rejects_duplicate_predicates() {
        let err = Table::builder("t", vec![1.0])
            .predicate("p", vec![true], vec![0.5])
            .predicate("p", vec![false], vec![0.5])
            .build()
            .unwrap_err();
        assert_eq!(err, TableError::DuplicatePredicate("p".to_string()));
    }

    #[test]
    fn builder_rejects_out_of_range_proxy() {
        let err = Table::builder("t", vec![1.0, 2.0])
            .predicate("p", vec![true, false], vec![0.5, 1.5])
            .build()
            .unwrap_err();
        assert!(matches!(err, TableError::InvalidProxyScore { index: 1, .. }));
        let err = Table::builder("t", vec![1.0])
            .predicate("p", vec![true], vec![f64::NAN])
            .build()
            .unwrap_err();
        assert!(matches!(err, TableError::InvalidProxyScore { .. }));
    }

    #[test]
    fn builder_rejects_out_of_range_group_id() {
        let err = Table::builder("g", vec![1.0, 2.0])
            .group_key(vec!["a".into()], vec![Some(0), Some(3)])
            .build()
            .unwrap_err();
        assert_eq!(err, TableError::InvalidGroupId { index: 1, id: 3, groups: 1 });
    }

    #[test]
    fn group_key_aggregates() {
        let t = Table::builder("g", vec![10.0, 20.0, 30.0, 40.0])
            .group_key(
                vec!["a".into(), "b".into()],
                vec![Some(0), Some(1), Some(0), None],
            )
            .build()
            .unwrap();
        assert_eq!(t.exact_group_avg(0), Some(20.0));
        assert_eq!(t.exact_group_avg(1), Some(20.0));
        assert_eq!(t.exact_group_count(0), Some(2.0));
        assert_eq!(t.exact_group_avg(9), Some(0.0)); // empty group
        let gk = t.group_key().unwrap();
        assert_eq!(gk.names(), &["a".to_string(), "b".to_string()]);
        assert_eq!(gk.iter().collect::<Vec<_>>(), vec![Some(0), Some(1), Some(0), None]);
        assert_eq!(gk.get(3), None);
        assert_eq!(gk.num_groups(), 2);
    }

    #[test]
    fn group_key_length_validated() {
        let err = Table::builder("g", vec![1.0, 2.0])
            .group_key(vec!["a".into()], vec![Some(0)])
            .build()
            .unwrap_err();
        assert!(matches!(err, TableError::LengthMismatch { .. }));
    }

    #[test]
    fn texts_roundtrip() {
        let t = Table::builder("txt", vec![1.0])
            .texts(vec!["hello world".into()])
            .build()
            .unwrap();
        assert_eq!(t.texts().unwrap().get(0), "hello world");
    }

    fn full_table() -> Table {
        Table::builder("full", vec![1.0, 2.0, 3.0, 4.0, 5.0])
            .predicate(
                "p",
                vec![true, false, true, false, true],
                vec![0.9, 0.1, 0.8, 0.2, 0.7],
            )
            .predicate(
                "q",
                vec![false, false, true, true, false],
                vec![0.3, 0.4, 0.6, 0.9, 0.1],
            )
            .group_key(
                vec!["x".into(), "y".into(), "unused".into()],
                vec![Some(0), Some(1), None, Some(0), Some(1)],
            )
            .texts(vec!["a".into(), "bb".into(), "".into(), "dd d".into(), "e".into()])
            .build()
            .unwrap()
    }

    #[test]
    fn row_view_roundtrip_is_exact() {
        let t = full_table();
        let schema = t.schema();
        assert_eq!(schema.predicates, vec!["p".to_string(), "q".to_string()]);
        assert_eq!(schema.group_names.as_deref().unwrap().len(), 3);
        let r = t.row(1);
        assert_eq!(r.statistic, 2.0);
        assert_eq!(r.labels, vec![false, false]);
        assert_eq!(r.proxies, vec![0.1, 0.4]);
        assert_eq!(r.group.as_deref(), Some("y"));
        assert_eq!(r.text.as_deref(), Some("bb"));
        let rebuilt = Table::from_rows(t.name(), &schema, t.rows()).unwrap();
        assert_eq!(rebuilt, t, "rows() -> from_rows must reproduce the table exactly");
        // The unused group survives via the schema.
        assert_eq!(rebuilt.group_key().unwrap().names()[2], "unused");
    }

    #[test]
    fn from_rows_rejects_schema_violations() {
        let t = full_table();
        let schema = t.schema();
        let mut bad = t.row(0);
        bad.labels.pop();
        assert!(matches!(
            Table::from_rows("t", &schema, vec![bad]),
            Err(TableError::LengthMismatch { .. })
        ));
        let mut bad = t.row(0);
        bad.group = Some("nonexistent".into());
        assert!(matches!(
            Table::from_rows("t", &schema, vec![bad]),
            Err(TableError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn columns_roundtrip_is_exact() {
        let t = full_table();
        let cols = t.to_columns();
        assert_eq!(cols.len(), 1 + 2 * 2 + 1 + 1);
        let rebuilt = Table::from_columns(t.name(), cols).unwrap();
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn from_columns_rejects_unpaired_predicates() {
        let t = full_table();
        let mut cols = t.to_columns();
        cols.remove(2); // p's proxy column
        assert!(matches!(
            Table::from_columns("t", cols),
            Err(TableError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let t = full_table();
        let dir = std::env::temp_dir().join("abae_table_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("full.abcol");
        t.save_binary(&path).unwrap();
        let back = Table::load_binary(t.name(), &path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(&path).ok();
    }
}
