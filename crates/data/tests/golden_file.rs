//! Golden-file test pinning the `.abcol` on-disk binary layout.
//!
//! The checked-in file `tests/golden/v1_small.abcol` was produced by
//! `encode_columns` for the fixed table below. If an intentional format
//! change lands, bump [`abae_data::columnar::VERSION`] and regenerate with:
//!
//! ```text
//! ABAE_REGEN_GOLDEN=1 cargo test -p abae_data --test golden_file
//! ```
//!
//! Any byte-level drift without a version bump is a bug: files written by
//! older builds must keep loading in newer ones.

use abae_data::columnar::{decode_columns, encode_columns, MAGIC, VERSION};
use abae_data::table::Table;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/v1_small.abcol")
}

/// A small table exercising every column type: statistic (f64), two
/// predicates (bool labels + f64 proxies), a dict group key with an
/// unkeyed record and an empty group, and a UTF-8 text column.
fn golden_table() -> Table {
    let statistic = vec![1.0, 2.5, 0.0, -3.25, 4.0, 1e-9];
    let names = vec!["alpha".to_string(), "beta".to_string(), "gamma".to_string()];
    let key = vec![Some(0), Some(1), None, Some(0), Some(1), Some(0)];
    let texts = vec![
        "hello".to_string(),
        "wörld".to_string(),
        String::new(),
        "spam spam".to_string(),
        "日本語".to_string(),
        "tail".to_string(),
    ];
    Table::builder("golden", statistic)
        .predicate(
            "p",
            vec![true, false, true, false, true, false],
            vec![0.9, 0.1, 0.8, 0.2, 0.7, 0.3],
        )
        .predicate(
            "q",
            vec![false, false, true, true, false, true],
            vec![0.05, 0.15, 0.95, 0.85, 0.25, 0.75],
        )
        .group_key(names, key)
        .texts(texts)
        .build()
        .expect("valid table")
}

#[test]
fn golden_bytes_are_stable() {
    let table = golden_table();
    let bytes = encode_columns(&table.to_columns());

    let path = golden_path();
    if std::env::var_os("ABAE_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &bytes).expect("write golden file");
        return;
    }

    let golden = std::fs::read(&path).expect(
        "golden file missing; regenerate with ABAE_REGEN_GOLDEN=1 cargo test -p abae_data --test golden_file",
    );
    assert_eq!(
        bytes.len(),
        golden.len(),
        "encoded length changed; the on-disk layout drifted without a version bump"
    );
    if bytes != golden {
        let first = bytes.iter().zip(&golden).position(|(a, b)| a != b).unwrap();
        panic!(
            "encoded bytes differ from golden file at offset {first} \
             (got {:#04x}, golden {:#04x}); the on-disk layout drifted without a version bump",
            bytes[first], golden[first]
        );
    }
}

#[test]
fn golden_file_loads_into_identical_table() {
    let golden = std::fs::read(golden_path()).expect("golden file present");
    let cols = decode_columns(&golden).expect("golden file decodes");
    let loaded = Table::from_columns("golden", cols).expect("golden columns form a table");
    assert_eq!(loaded, golden_table());
}

#[test]
fn golden_header_fields_are_pinned() {
    let golden = std::fs::read(golden_path()).expect("golden file present");
    assert_eq!(&golden[0..8], &MAGIC);
    assert_eq!(u32::from_le_bytes(golden[8..12].try_into().unwrap()), VERSION);
    // statistic + 2 labels + 2 proxies + group + text = 7 columns, 6 rows.
    assert_eq!(u32::from_le_bytes(golden[12..16].try_into().unwrap()), 7);
    assert_eq!(u64::from_le_bytes(golden[16..24].try_into().unwrap()), 6);
}
