//! Property tests for the columnar storage primitives.
//!
//! Four invariant families, each randomized over sizes and contents:
//!
//! * dictionary encode/decode roundtrips (`DictColumn::encode` ≡ input),
//! * validity-bitmap get/set/count/word-canonicality invariants,
//! * column builders → `encode_columns` → `decode_columns` → equality,
//! * hostile bytes (truncations, flipped bytes, wrong version) decode to
//!   **typed errors, never panics**.

use abae_data::columnar::{
    decode_columns, encode_columns, BinError, Bitmap, Column, ColumnRole, DictColumn, F64Column,
    I64Column, NamedColumn, StrColumn, MAGIC,
};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dict encode → per-index decode reproduces the input exactly, the
    /// dictionary holds exactly the distinct present values, and
    /// `count_code` sums match.
    #[test]
    fn dict_roundtrips(raw in vec((0u8..4, 0u32..8), 0usize..200)) {
        let items: Vec<Option<String>> = raw
            .iter()
            .map(|&(none, v)| (none != 0).then(|| format!("v{v}")))
            .collect();
        let refs: Vec<Option<&str>> = items.iter().map(|o| o.as_deref()).collect();
        let col = DictColumn::encode(refs.iter().copied());

        prop_assert_eq!(col.len(), items.len());
        let decoded: Vec<Option<&str>> = col.iter().collect();
        prop_assert_eq!(&decoded, &refs);

        // The dictionary is exactly the distinct present values, first-seen
        // order, with no duplicates.
        let mut seen: Vec<&str> = Vec::new();
        for r in refs.iter().flatten() {
            if !seen.contains(r) {
                seen.push(r);
            }
        }
        prop_assert_eq!(col.dict().len(), seen.len());
        for (d, s) in col.dict().iter().zip(&seen) {
            prop_assert_eq!(d.as_str(), *s);
        }

        // count_code agrees with a scalar scan, and codes sum to the number
        // of present values.
        let present = refs.iter().filter(|r| r.is_some()).count();
        let total: usize = (0..col.distinct() as u32).map(|c| col.count_code(c)).sum();
        prop_assert_eq!(total, present);
        prop_assert_eq!(col.validity().count_ones(), present);
    }

    /// Bitmap invariants: construction from bools roundtrips, count_ones
    /// matches, the word representation is canonical (tail bits zero), and
    /// and/or/not agree with per-bit boolean algebra.
    #[test]
    fn bitmap_invariants(a in vec(proptest::bool::ANY, 0usize..300), flip in 0usize..300) {
        let bm = Bitmap::from_bools(&a);
        prop_assert_eq!(bm.len(), a.len());
        prop_assert_eq!(bm.count_ones(), a.iter().filter(|&&b| b).count());
        prop_assert_eq!(&bm.to_bools(), &a);

        // Canonical tail: rebuilding from the words must succeed (words are
        // validated as canonical) and compare equal.
        let rebuilt = Bitmap::from_words(bm.words().to_vec(), bm.len());
        prop_assert!(rebuilt.is_some(), "canonical words must revalidate");
        prop_assert_eq!(&rebuilt.unwrap(), &bm);

        // set() flips exactly one position and nothing else.
        if !a.is_empty() {
            let i = flip % a.len();
            let mut edited = bm.clone();
            edited.set(i, !a[i]);
            for (j, &orig) in a.iter().enumerate() {
                prop_assert_eq!(edited.get(j), if j == i { !orig } else { orig });
            }
            prop_assert_eq!(
                edited.count_ones(),
                if a[i] { bm.count_ones() - 1 } else { bm.count_ones() + 1 }
            );
        }

        // Boolean algebra against a second operand of the same length.
        let b: Vec<bool> = a.iter().map(|&x| !x).collect();
        let bn = Bitmap::from_bools(&b);
        prop_assert_eq!(bm.and(&bn).count_ones(), 0);
        prop_assert_eq!(bm.or(&bn).count_ones(), a.len());
        prop_assert_eq!(&bm.not(), &bn);
        let ones: Vec<usize> = bm.iter_ones().collect();
        let expect: Vec<usize> =
            a.iter().enumerate().filter(|(_, &v)| v).map(|(i, _)| i).collect();
        prop_assert_eq!(ones, expect);
    }

    /// Every column type survives encode → decode bit-for-bit, including
    /// names, roles, and ordering.
    #[test]
    fn columns_roundtrip_through_bytes(
        f in vec(-1.0e12..1.0e12, 0usize..120),
        ints in vec(-1_000_000i64..1_000_000, 0usize..120),
        bools in vec(proptest::bool::ANY, 0usize..120),
        raw_strs in vec(0u32..50, 0usize..120),
        raw_dict in vec((0u8..5, 0u32..6), 0usize..120),
    ) {
        // Every column in one file shares n_rows; clamp all to the shortest.
        let n = f.len().min(ints.len()).min(bools.len()).min(raw_strs.len()).min(raw_dict.len());
        let f = f[..n].to_vec();
        let ints = ints[..n].to_vec();
        let bools = bools[..n].to_vec();
        let strs: Vec<String> = raw_strs[..n]
            .iter()
            .map(|&v| "s".repeat(v as usize % 11) + &v.to_string())
            .collect();
        let dict_items: Vec<Option<String>> =
            raw_dict[..n].iter().map(|&(none, v)| (none != 0).then(|| format!("g{v}"))).collect();

        let cols = vec![
            NamedColumn {
                name: "f".into(),
                role: ColumnRole::Statistic,
                column: Column::F64(F64Column::from(f.clone())),
            },
            NamedColumn {
                name: "i".into(),
                role: ColumnRole::Statistic,
                column: Column::I64(I64Column::from(ints.clone())),
            },
            NamedColumn {
                name: "b".into(),
                role: ColumnRole::Label,
                column: Column::Bool(Bitmap::from_bools(&bools).into()),
            },
            NamedColumn {
                name: "s".into(),
                role: ColumnRole::Text,
                column: Column::Str(strs.iter().collect::<StrColumn>()),
            },
            NamedColumn {
                name: "d".into(),
                role: ColumnRole::Group,
                column: Column::Dict(DictColumn::encode(dict_items.iter().map(|o| o.as_deref()))),
            },
        ];
        let bytes = encode_columns(&cols);
        let decoded = decode_columns(&bytes);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        prop_assert_eq!(decoded.unwrap(), cols);
    }

    /// Hostile inputs: every truncation and every single-byte corruption of
    /// a valid file either decodes (when the byte was slack, e.g. padding)
    /// or returns a typed error — never a panic, never an inconsistent
    /// table.
    #[test]
    fn hostile_bytes_never_panic(
        f in vec(-10.0..10.0, 1usize..40),
        raw_bools in vec(proptest::bool::ANY, 1usize..40),
        cut in 0usize..4096,
        stomp in (0usize..4096, 1u8..=255),
    ) {
        let n = f.len().min(raw_bools.len());
        let cols = vec![
            NamedColumn {
                name: "f".into(),
                role: ColumnRole::Proxy,
                column: Column::F64(F64Column::from(f[..n].to_vec())),
            },
            NamedColumn {
                name: "b".into(),
                role: ColumnRole::Label,
                column: Column::Bool(Bitmap::from_bools(&raw_bools[..n]).into()),
            },
        ];
        let bytes = encode_columns(&cols);

        // Truncation at any length: must not panic; only the full length
        // may decode successfully.
        let t = cut % (bytes.len() + 1);
        let res = decode_columns(&bytes[..t]);
        if t < bytes.len() {
            prop_assert!(res.is_err(), "truncated to {t} of {} decoded", bytes.len());
        } else {
            prop_assert!(res.is_ok());
        }

        // Single-byte stomp anywhere: decode must return Ok or a typed
        // error (exercised simply by calling it — a panic fails the test).
        let (pos, delta) = stomp;
        let mut evil = bytes.clone();
        let p = pos % evil.len();
        evil[p] ^= delta;
        let _ = decode_columns(&evil);

        // Wrong version: typed error.
        let mut wrong = bytes.clone();
        wrong[8] = 0xFE;
        let wrong_res = decode_columns(&wrong);
        assert!(
            matches!(wrong_res, Err(BinError::UnsupportedVersion(_)) | Err(BinError::Corrupt { .. })),
            "wrong version decoded: {wrong_res:?}"
        );

        // Wrong magic: typed error.
        let mut nomagic = bytes.clone();
        nomagic[0] ^= 0xFF;
        assert!(matches!(decode_columns(&nomagic), Err(BinError::BadMagic)));
        prop_assert_eq!(&bytes[..8], MAGIC.as_slice());
    }
}

/// Regression: a stomped header row count (bytes 16..24, little-endian
/// u64) must surface as a typed error, not an arithmetic-overflow panic
/// in the segment-size math (`n_rows * 8` et al. under debug overflow
/// checks). The proptest above only hits these bytes probabilistically;
/// this pins every high byte deterministically.
#[test]
fn huge_row_count_is_typed_error_not_overflow() {
    let cols = vec![NamedColumn {
        name: "f".into(),
        role: ColumnRole::Proxy,
        column: Column::F64(F64Column::from(vec![1.0, 2.0, 3.0])),
    }];
    let bytes = encode_columns(&cols);
    for byte in 16..24 {
        let mut evil = bytes.clone();
        evil[byte] = 0xFF;
        let res = decode_columns(&evil);
        assert!(res.is_err(), "row-count stomp at byte {byte} decoded: {res:?}");
    }
    // All-ones row count: every segment-size multiply would overflow.
    let mut evil = bytes.clone();
    evil[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(decode_columns(&evil).is_err());
}
