//! Path classification: which rules apply where.
//!
//! Every scanned file gets a [`FileClass`] derived purely from its
//! workspace-relative path (forward slashes, no leading `./`). The rule
//! modules consult these flags instead of re-deriving path logic, so the
//! applicability matrix lives in exactly one place.

/// Crates whose source participates in producing query results. Rules
/// about result determinism (`hash_iter`, `float_order`) apply to their
/// `src/` trees.
pub const RESULT_PATH_CRATES: &[&str] =
    &["crates/core/src/", "crates/sampling/src/", "crates/query/src/", "crates/data/src/", "crates/ml/src/"];

/// Never-panic modules: decode paths fed by untrusted bytes must return
/// a typed error on hostile input, never panic (`no_panic_decode`) — the
/// `.abcol` file decoder and the Postgres-wire message codec, which any
/// TCP peer can feed arbitrary bytes.
pub const NEVER_PANIC_FILES: &[&str] =
    &["crates/data/src/columnar/file.rs", "crates/server/src/codec.rs"];

/// Blessed RNG modules: the only places allowed to seed a generator
/// directly, because every seed there demonstrably descends from the
/// engine seed (or *is* the user-provided dataset/bench seed).
pub const BLESSED_RNG_PATHS: &[&str] = &[
    "crates/query/src/engine.rs",
    "crates/query/src/session.rs",
    "crates/query/src/prepared.rs",
    "crates/data/src/synthetic.rs",
    "crates/data/src/emulators/",
    "crates/bench/src/",
];

/// Pinned floating-point kernels: summation order here is already fixed
/// by construction (sequential folds / mergeable-statistics algebra), so
/// `float_order` does not second-guess them.
pub const PINNED_FLOAT_PATHS: &[&str] =
    &["crates/stats/src/", "crates/core/src/stratum_stats.rs", "crates/data/src/columnar/"];

/// Directory names never scanned (vendored stand-ins, build output, VCS).
pub const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "scratch"];

/// Rule-applicability flags for one file, derived from its path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileClass {
    /// Inside a result-path crate's `src/` tree.
    pub result_path: bool,
    /// A designated never-panic module.
    pub never_panic: bool,
    /// Allowed to seed RNGs directly.
    pub blessed_rng: bool,
    /// A pinned floating-point kernel module.
    pub pinned_float: bool,
    /// Part of the bench crate.
    pub bench: bool,
    /// A binary target (`src/bin/…` or a crate's `src/main.rs`).
    pub bin: bool,
    /// Under an `examples/` directory.
    pub example: bool,
    /// Under a `tests/` directory (integration tests).
    pub tests_dir: bool,
}

impl FileClass {
    /// True for contexts exempt from determinism-of-output rules because
    /// they are not part of the library result path: benches, binaries,
    /// examples, integration tests.
    pub fn harness(&self) -> bool {
        self.bench || self.bin || self.example || self.tests_dir
    }
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    let starts = |prefixes: &[&str]| prefixes.iter().any(|p| rel.starts_with(p));
    FileClass {
        result_path: starts(RESULT_PATH_CRATES),
        never_panic: NEVER_PANIC_FILES.contains(&rel),
        blessed_rng: starts(BLESSED_RNG_PATHS),
        pinned_float: starts(PINNED_FLOAT_PATHS),
        bench: rel.starts_with("crates/bench/"),
        bin: rel.contains("/bin/") || rel.ends_with("src/main.rs"),
        example: rel.starts_with("examples/") || rel.contains("/examples/"),
        tests_dir: rel.starts_with("tests/") || rel.contains("/tests/"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_result_path_and_harness() {
        let c = classify("crates/core/src/groupby.rs");
        assert!(c.result_path && !c.harness());
        let b = classify("crates/bench/src/bin/scan.rs");
        assert!(b.bench && b.bin && b.harness() && !b.result_path);
        let t = classify("tests/invariants.rs");
        assert!(t.tests_dir && t.harness());
        let e = classify("examples/tv_news.rs");
        assert!(e.example && e.harness());
    }

    #[test]
    fn special_modules() {
        assert!(classify("crates/data/src/columnar/file.rs").never_panic);
        assert!(classify("crates/server/src/codec.rs").never_panic);
        assert!(!classify("crates/server/src/server.rs").never_panic);
        assert!(!classify("crates/data/src/columnar/column.rs").never_panic);
        assert!(classify("crates/query/src/session.rs").blessed_rng);
        assert!(classify("crates/data/src/emulators/jackson.rs").blessed_rng);
        assert!(classify("crates/stats/src/ci.rs").pinned_float);
        assert!(classify("crates/core/src/stratum_stats.rs").pinned_float);
        assert!(!classify("crates/core/src/pipeline.rs").pinned_float);
    }

    #[test]
    fn lint_crate_itself_is_not_result_path() {
        let c = classify("crates/lint/src/lib.rs");
        assert!(!c.result_path && !c.never_panic && !c.blessed_rng);
        assert!(classify("crates/lint/src/main.rs").bin);
    }
}
