//! Diagnostics, the in-source allowlist, and JSON rendering.

use crate::source::Comment;

/// The canonical rule names, in report order.
pub const RULES: &[&str] = &[
    "hash_iter",
    "no_panic_decode",
    "rng_discipline",
    "wall_clock",
    "float_order",
    "unsafe_safety_comment",
    "bad_allowlist",
];

/// One finding, denied by default unless an allowlist entry covers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// `Some(reason)` when an allowlist entry suppressed this finding.
    pub allowed: Option<String>,
}

impl Diagnostic {
    /// Renders the conventional `path:line: [rule] message` form.
    pub fn render(&self) -> String {
        let status = if self.allowed.is_some() { "allowed" } else { "denied" };
        format!("{}:{}: [{}] ({}) {}\n    | {}", self.path, self.line, self.rule, status, self.message, self.snippet)
    }
}

/// A parsed `// abae-lint: allow(rule, …) -- reason` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the comment sits on.
    pub line: usize,
    /// Rules it suppresses.
    pub rules: Vec<String>,
    /// Mandatory justification.
    pub reason: String,
}

/// Extracts allowlist entries from a file's comments. Malformed entries
/// (missing `allow(...)`, unknown rule name, or a missing/empty
/// `-- reason`) become `bad_allowlist` diagnostics instead of silently
/// suppressing anything.
pub fn parse_allows(path: &str, comments: &[Comment], errors: &mut Vec<Diagnostic>) -> Vec<Allow> {
    const MARK: &str = "abae-lint:";
    let mut allows = Vec::new();
    for c in comments {
        // Doc comments never carry allow entries — they are prose (and
        // routinely *describe* the syntax, as this crate's own docs do).
        let doc = ["///", "//!", "/**", "/*!"].iter().any(|p| c.text.starts_with(p));
        if doc {
            continue;
        }
        let Some(idx) = c.text.find(MARK) else { continue };
        let rest = c.text[idx + MARK.len()..].trim_start();
        let bad = |msg: String| Diagnostic {
            rule: "bad_allowlist",
            path: path.to_string(),
            line: c.line,
            message: msg,
            snippet: c.text.trim().to_string(),
            allowed: None,
        };
        let Some(args) = rest.strip_prefix("allow").map(str::trim_start) else {
            errors.push(bad("expected `abae-lint: allow(<rule>) -- <reason>`".to_string()));
            continue;
        };
        let (Some(open), Some(close)) = (args.find('('), args.find(')')) else {
            errors.push(bad("missing `(<rule>)` after `allow`".to_string()));
            continue;
        };
        if open != 0 || close < open {
            errors.push(bad("missing `(<rule>)` after `allow`".to_string()));
            continue;
        }
        let rules: Vec<String> =
            args[open + 1..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
        if rules.is_empty() {
            errors.push(bad("allow() names no rules".to_string()));
            continue;
        }
        let mut ok = true;
        for r in &rules {
            if !RULES.contains(&r.as_str()) {
                errors.push(bad(format!("unknown rule `{r}` (known: {})", RULES.join(", "))));
                ok = false;
            }
        }
        let tail = args[close + 1..].trim_start();
        let Some(reason) = tail.strip_prefix("--").map(str::trim) else {
            errors.push(bad("allowlist entry lacks a `-- <reason>` justification".to_string()));
            continue;
        };
        if reason.is_empty() {
            errors.push(bad("allowlist reason is empty; write why the violation is acceptable".to_string()));
            continue;
        }
        if ok {
            allows.push(Allow { line: c.line, rules, reason: reason.to_string() });
        }
    }
    allows
}

/// Minimal JSON string escaping (the only JSON writer this crate needs).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one diagnostic as a JSON object.
pub fn diagnostic_json(d: &Diagnostic) -> String {
    let allowed = match &d.allowed {
        Some(reason) => format!("\"{}\"", json_escape(reason)),
        None => "null".to_string(),
    };
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"snippet\":\"{}\",\"allowed\":{}}}",
        d.rule,
        json_escape(&d.path),
        d.line,
        json_escape(&d.message),
        json_escape(&d.snippet),
        allowed
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Scanned;

    fn allows_of(src: &str) -> (Vec<Allow>, Vec<Diagnostic>) {
        let s = Scanned::new(src);
        let mut errs = Vec::new();
        let allows = parse_allows("x.rs", &s.comments, &mut errs);
        (allows, errs)
    }

    #[test]
    fn parses_single_and_multi_rule_allows() {
        let (allows, errs) = allows_of(
            "// abae-lint: allow(hash_iter) -- lookup-only interner\nlet x = 1; // abae-lint: allow(wall_clock, hash_iter) -- test measures latency\n",
        );
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].rules, vec!["hash_iter"]);
        assert_eq!(allows[0].reason, "lookup-only interner");
        assert_eq!(allows[1].rules, vec!["wall_clock", "hash_iter"]);
        assert_eq!(allows[1].line, 2);
    }

    #[test]
    fn missing_reason_is_a_bad_allowlist_diagnostic() {
        for src in [
            "// abae-lint: allow(hash_iter)\n",
            "// abae-lint: allow(hash_iter) --\n",
            "// abae-lint: allow(hash_iter) --   \n",
        ] {
            let (allows, errs) = allows_of(src);
            assert!(allows.is_empty(), "{src:?}");
            assert_eq!(errs.len(), 1, "{src:?}");
            assert_eq!(errs[0].rule, "bad_allowlist");
        }
    }

    #[test]
    fn unknown_rule_and_malformed_syntax_are_rejected() {
        let (allows, errs) = allows_of("// abae-lint: allow(no_such_rule) -- why\n");
        assert!(allows.is_empty());
        assert!(errs[0].message.contains("unknown rule"));
        let (allows, errs) = allows_of("// abae-lint: suppress everything\n");
        assert!(allows.is_empty());
        assert_eq!(errs.len(), 1);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let d = Diagnostic {
            rule: "hash_iter",
            path: "a.rs".into(),
            line: 3,
            message: "m".into(),
            snippet: "s".into(),
            allowed: None,
        };
        let j = diagnostic_json(&d);
        assert!(j.contains("\"rule\":\"hash_iter\"") && j.contains("\"allowed\":null"));
    }
}
