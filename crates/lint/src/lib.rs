//! `abae-lint`: the workspace invariant checker.
//!
//! The ABAE reproduction's core promises — bit-identical estimates across
//! thread counts and storage layouts, a `.abcol` decoder that never
//! panics on hostile bytes, every random draw descending from the engine
//! seed — are contracts the compiler cannot see. This crate enforces them
//! statically: it walks the workspace source, reduces each file to masked
//! tokens (no `syn`; the build environment is offline, so the crate is
//! dependency-free), and applies a small deny-by-default rule set with
//! `file:line` spans, machine-readable JSON, and an explicit in-source
//! allowlist:
//!
//! ```text
//! // abae-lint: allow(<rule>[, <rule>...]) -- <mandatory reason>
//! ```
//!
//! An entry covers its own line and the next code line; a missing or
//! empty reason is itself a denied diagnostic (`bad_allowlist`).
//!
//! Run it as `cargo run -p abae-lint -- --workspace --deny-all`.
//! See DESIGN.md's "Statically enforced invariants" for the rule matrix.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod rules;
pub mod scan;
pub mod source;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use config::{classify, FileClass};
pub use diag::{Allow, Diagnostic, RULES};
pub use source::Scanned;

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Lints one file's source text under its workspace-relative path.
/// Returns every diagnostic — denied ones with `allowed: None`,
/// suppressed ones carrying the allowlist reason — plus `bad_allowlist`
/// findings for malformed entries.
pub fn lint_source(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    let class = config::classify(rel_path);
    let scanned = Scanned::new(text);
    let ctx = rules::FileCtx { path: rel_path, class, scanned: &scanned };
    let mut diags = rules::run_all(&ctx);
    let mut bad = Vec::new();
    let allows = diag::parse_allows(rel_path, &scanned.comments, &mut bad);
    for d in &mut diags {
        let hit = allows
            .iter()
            .find(|a| a.rules.iter().any(|r| r == d.rule) && allow_covers(&scanned, a, d.line));
        if let Some(a) = hit {
            d.allowed = Some(a.reason.clone());
        }
    }
    diags.extend(bad);
    diags.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    diags
}

/// An allow entry covers its own line and the next non-blank code line
/// (comment-only lines are blank in the masked text, so a stack of
/// comments between the entry and the code does not break coverage).
fn allow_covers(scanned: &Scanned, allow: &Allow, line: usize) -> bool {
    if line == allow.line {
        return true;
    }
    let next_code = scanned
        .masked
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .find(|(n, l)| *n > allow.line && !l.trim().is_empty())
        .map(|(n, _)| n);
    next_code == Some(line)
}

/// The result of linting a tree: every diagnostic plus scan statistics.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All diagnostics, in (path, line, rule) order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Diagnostics not covered by an allowlist entry.
    pub fn denied(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.allowed.is_none())
    }

    /// Diagnostics suppressed by an allowlist entry.
    pub fn allowed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.allowed.is_some())
    }

    /// Per-rule `(denied, allowed)` counts, every known rule present.
    pub fn rule_counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> =
            RULES.iter().map(|r| (*r, (0, 0))).collect();
        for d in &self.diagnostics {
            let slot = counts.entry(d.rule).or_insert((0, 0));
            if d.allowed.is_none() {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
        counts
    }

    /// Renders the whole report as a JSON object. `wall_ms` is included
    /// when the caller measured one (the CLI does; library users may not).
    pub fn to_json(&self, wall_ms: Option<f64>) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        s.push_str(&format!("\"denied\":{},", self.denied().count()));
        s.push_str(&format!("\"allowed\":{},", self.allowed().count()));
        if let Some(ms) = wall_ms {
            s.push_str(&format!("\"wall_ms\":{ms:.3},"));
        }
        s.push_str("\"rule_counts\":{");
        let counts: Vec<String> = self
            .rule_counts()
            .iter()
            .map(|(rule, (den, alw))| format!("\"{rule}\":{{\"denied\":{den},\"allowed\":{alw}}}"))
            .collect();
        s.push_str(&counts.join(","));
        s.push_str("},\"diagnostics\":[");
        let diags: Vec<String> = self.diagnostics.iter().map(diag::diagnostic_json).collect();
        s.push_str(&diags.join(","));
        s.push_str("]}");
        s
    }
}

/// Lints every `.rs` file under `root` (skipping `vendor/`, `target/`,
/// dot-directories).
pub fn lint_root(root: &Path) -> io::Result<Report> {
    let files = scan::collect_rs_files(root)?;
    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    for rel in &files {
        let text = fs::read_to_string(root.join(rel))?;
        diagnostics.extend(lint_source(rel, &text));
    }
    diagnostics.sort_by(|a, b| {
        a.path.cmp(&b.path).then_with(|| a.line.cmp(&b.line)).then_with(|| a.rule.cmp(b.rule))
    });
    Ok(Report { files_scanned, diagnostics })
}
