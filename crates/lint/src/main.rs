//! CLI for `abae-lint`.
//!
//! ```text
//! cargo run -p abae-lint -- --workspace --deny-all
//! cargo run -p abae-lint -- --root some/tree --json
//! ```
//!
//! Diagnostics are deny-by-default: the process exits 1 whenever any
//! unallowlisted finding (or malformed allowlist entry) exists.
//! `--deny-all` states that explicitly and is reserved for a future
//! per-rule severity knob; today it is the only behavior. `--json`
//! prints the machine-readable report to stdout (human diagnostics go
//! to stderr so the JSON stays parseable).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use abae_lint::{lint_root, workspace_root};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => root = Some(workspace_root()),
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory argument"),
            },
            "--deny-all" => {} // deny is the default (and only) severity
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = root.unwrap_or_else(workspace_root);

    let started = Instant::now();
    let report = match lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("abae-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    for d in report.denied() {
        eprintln!("{}", d.render());
    }
    let denied = report.denied().count();
    let allowed = report.allowed().count();
    eprintln!(
        "abae-lint: {} files scanned, {denied} denied, {allowed} allowed ({wall_ms:.1} ms)",
        report.files_scanned
    );
    if json {
        println!("{}", report.to_json(Some(wall_ms)));
    }
    if denied > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

const USAGE: &str = "abae-lint: workspace invariant checker
usage: abae-lint [--workspace | --root <dir>] [--deny-all] [--json]
  --workspace   lint the containing cargo workspace (default)
  --root <dir>  lint an arbitrary tree instead
  --deny-all    deny every diagnostic (the default severity)
  --json        print the machine-readable report to stdout";

fn usage(msg: &str) -> ExitCode {
    eprintln!("abae-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
