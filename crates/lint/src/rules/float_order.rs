//! `float_order`: no order-sensitive float folds in parallel modules.
//!
//! Float addition is not associative, so a `.sum()` / `.product()` whose
//! operand order depends on scheduling breaks bit-identical results. The
//! rule only fires in result-path files that actually spawn work
//! (`thread::scope`, `.spawn`, rayon's `par_iter` family) outside tests;
//! the pinned kernel modules (`stats`, `stratum_stats`, columnar
//! kernels) fix their fold order by construction and are exempt.

use super::{is_path_seq, FileCtx};
use crate::diag::Diagnostic;

const PAR_IDENTS: &[&str] = &["spawn", "par_iter", "into_par_iter", "par_chunks", "par_bridge"];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.class.result_path || ctx.class.pinned_float {
        return;
    }
    let (m, toks) = (ctx.masked(), ctx.tokens());
    let parallel = toks.iter().enumerate().any(|(i, t)| {
        !ctx.scanned.in_test(t.line)
            && (PAR_IDENTS.contains(&t.text(m)) || is_path_seq(ctx, i, "thread", "scope"))
    });
    if !parallel {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if ctx.scanned.in_test(t.line) {
            continue;
        }
        let text = t.text(m);
        if (text == "sum" || text == "product")
            && i > 0
            && toks[i - 1].is_punct(m, '.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct(m, '(') || n.is_punct(m, ':'))
        {
            out.push(ctx.diag(
                "float_order",
                t.line,
                format!(
                    "`.{text}()` in a module that spawns parallel work; fold floats in a pinned \
                     order (sequential loop or the mergeable-statistics algebra) instead"
                ),
            ));
        }
    }
}
