//! `hash_iter`: no `HashMap`/`HashSet` in result-path crates.
//!
//! `std`'s hash containers iterate in a per-process random order
//! (`RandomState`); if that order ever reaches query output, the engine's
//! bit-identical-results contract breaks silently. Result-path crates
//! must use `BTreeMap`/`BTreeSet` (structural order) or carry an
//! allowlist entry proving the container is never iterated (e.g. a
//! hot-path lookup-only cache).

use super::FileCtx;
use crate::diag::Diagnostic;

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.class.result_path {
        return;
    }
    for t in ctx.tokens() {
        let name = t.text(ctx.masked());
        if (name == "HashMap" || name == "HashSet") && !ctx.scanned.in_test(t.line) {
            out.push(ctx.diag(
                "hash_iter",
                t.line,
                format!(
                    "`{name}` in a result-path crate: iteration order is per-process random and can reach \
                     query output; use BTreeMap/BTreeSet, or allowlist with a reason if it is never iterated"
                ),
            ));
        }
    }
}
