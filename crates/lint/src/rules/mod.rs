//! The rule set. Each rule is a function from a preprocessed file to
//! zero or more [`Diagnostic`]s; `run_all` is the only entry point.

mod float_order;
mod hash_iter;
mod no_panic_decode;
mod rng_discipline;
mod unsafe_safety;
mod wall_clock;

use crate::config::FileClass;
use crate::diag::Diagnostic;
use crate::source::{Scanned, Token};

/// Everything a rule may look at for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path (forward slashes).
    pub path: &'a str,
    /// Path-derived rule applicability.
    pub class: FileClass,
    /// Masked text, tokens, comments, test regions.
    pub scanned: &'a Scanned,
}

impl FileCtx<'_> {
    fn masked(&self) -> &str {
        &self.scanned.masked
    }

    fn tokens(&self) -> &[Token] {
        &self.scanned.tokens
    }

    fn diag(&self, rule: &'static str, line: usize, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            path: self.path.to_string(),
            line,
            message,
            snippet: self.scanned.line_text(line).trim().to_string(),
            allowed: None,
        }
    }
}

/// Runs every rule over one file.
pub fn run_all(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    hash_iter::check(ctx, &mut out);
    no_panic_decode::check(ctx, &mut out);
    rng_discipline::check(ctx, &mut out);
    wall_clock::check(ctx, &mut out);
    float_order::check(ctx, &mut out);
    unsafe_safety::check(ctx, &mut out);
    out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    out
}

/// True when a token's text is an identifier or number (starts with an
/// identifier byte), as opposed to punctuation.
fn is_ident_text(s: &str) -> bool {
    s.bytes().next().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// True when tokens starting at `i` spell `a :: b` (path separator).
fn is_path_seq(ctx: &FileCtx<'_>, i: usize, a: &str, b: &str) -> bool {
    let (m, toks) = (ctx.masked(), ctx.tokens());
    toks.get(i).is_some_and(|t| t.is_ident(m, a))
        && toks.get(i + 1).is_some_and(|t| t.is_punct(m, ':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(m, ':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(m, b))
}
