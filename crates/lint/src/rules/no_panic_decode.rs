//! `no_panic_decode`: designated never-panic modules (the `.abcol`
//! decode path) must return `BinError` on hostile bytes, never panic.
//!
//! Flags `.unwrap()` / `.expect()`, the panicking macros (`panic!`,
//! `assert!`, `assert_eq!`, `assert_ne!`, `unreachable!`, `todo!`,
//! `unimplemented!`), and direct slice indexing `x[…]`. `debug_assert*`
//! is allowed (compiled out of release decoders), as is indexing in
//! `#[cfg(test)]` code.

use super::FileCtx;
use crate::diag::Diagnostic;

const PANIC_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

/// Keywords that legitimately precede `[` without it being an index
/// expression (`&mut [u8]`, `dyn [`, `impl [`, `in [..]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "dyn", "impl", "in", "as", "return", "else", "match", "where", "const",
    "static", "let", "if", "while", "for", "loop", "move", "box", "use", "pub", "crate",
    "fn", "type", "break", "continue", "unsafe", "yield",
];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.class.never_panic {
        return;
    }
    let (m, toks) = (ctx.masked(), ctx.tokens());
    for (i, t) in toks.iter().enumerate() {
        if ctx.scanned.in_test(t.line) {
            continue;
        }
        let text = t.text(m);
        // `.unwrap(` / `.expect(`
        if (text == "unwrap" || text == "expect")
            && i > 0
            && toks[i - 1].is_punct(m, '.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct(m, '('))
        {
            out.push(ctx.diag(
                "no_panic_decode",
                t.line,
                format!("`.{text}()` in a never-panic decode module; return a `BinError` instead"),
            ));
            continue;
        }
        // `panic!` and friends (but not `debug_assert*!`).
        if PANIC_MACROS.contains(&text) && toks.get(i + 1).is_some_and(|n| n.is_punct(m, '!')) {
            out.push(ctx.diag(
                "no_panic_decode",
                t.line,
                format!("`{text}!` in a never-panic decode module; return a `BinError` instead"),
            ));
            continue;
        }
        // Direct indexing `expr[…]`: `[` whose previous token ends an
        // expression (identifier, `)`, `]`, or `?`) — excluding keywords,
        // attributes (`#[`, `#![`), and macro bangs (`vec![`).
        if t.is_punct(m, '[') && i > 0 {
            let prev = &toks[i - 1];
            let prev_text = prev.text(m);
            // `&'a [u8]`: the lifetime name before `[` is not an expression.
            let lifetime = i >= 2 && toks[i - 2].is_punct(m, '\'');
            let ends_expr = (super::is_ident_text(prev_text)
                && !NON_INDEX_KEYWORDS.contains(&prev_text)
                && !lifetime)
                || prev.is_punct(m, ')')
                || prev.is_punct(m, ']')
                || prev.is_punct(m, '?');
            let macro_or_attr = prev.is_punct(m, '!') || prev.is_punct(m, '#');
            if ends_expr && !macro_or_attr {
                out.push(ctx.diag(
                    "no_panic_decode",
                    t.line,
                    "direct slice indexing in a never-panic decode module; use `.get(..)` and map \
                     the miss to `BinError::Truncated`"
                        .to_string(),
                ));
            }
        }
    }
}
