//! `rng_discipline`: every random draw must descend from the engine seed.
//!
//! Two sub-checks:
//!
//! * **Entropy sources** (`thread_rng`, `from_entropy`, `OsRng`,
//!   `getrandom`, `rand::random`, …) are banned *everywhere*, tests
//!   included — a single OS-entropy draw makes a run unreproducible.
//! * **Raw seeding** (`seed_from_u64`, `from_seed`) is confined to the
//!   blessed modules (engine/session/prepared, dataset generators, bench)
//!   where the seed demonstrably derives from the engine seed or *is* the
//!   user-provided dataset seed. Tests, examples, binaries, and the bench
//!   crate may seed freely — they are the roots of the seed tree.

use super::{is_path_seq, FileCtx};
use crate::diag::Diagnostic;

const ENTROPY_IDENTS: &[&str] =
    &["thread_rng", "ThreadRng", "from_entropy", "OsRng", "from_os_rng", "getrandom", "EntropyRng"];

const SEED_IDENTS: &[&str] = &["seed_from_u64", "from_seed"];

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let (m, toks) = (ctx.masked(), ctx.tokens());
    let seeding_exempt = ctx.class.blessed_rng || ctx.class.harness();
    for (i, t) in toks.iter().enumerate() {
        let text = t.text(m);
        if ENTROPY_IDENTS.contains(&text) {
            out.push(ctx.diag(
                "rng_discipline",
                t.line,
                format!(
                    "`{text}` draws OS entropy; every RNG must descend from the engine seed \
                     (derive one via the session's seed tree)"
                ),
            ));
            continue;
        }
        if is_path_seq(ctx, i, "rand", "random") {
            out.push(ctx.diag(
                "rng_discipline",
                t.line,
                "`rand::random` uses the thread-local entropy RNG; derive a seeded RNG instead"
                    .to_string(),
            ));
            continue;
        }
        if SEED_IDENTS.contains(&text) && !seeding_exempt && !ctx.scanned.in_test(t.line) {
            out.push(ctx.diag(
                "rng_discipline",
                t.line,
                format!(
                    "raw `{text}` outside the blessed seed modules; library code must receive an \
                     already-derived RNG (or a derived seed) from the session"
                ),
            ));
        }
    }
}
