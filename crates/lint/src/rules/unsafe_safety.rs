//! `unsafe_safety_comment`: every `unsafe` must be justified by a
//! `// SAFETY:` comment on the same line or within the three lines above.
//!
//! Applies everywhere (tests included) — the workspace is expected to be
//! `#![forbid(unsafe_code)]` almost universally, so the rare legitimate
//! `unsafe` deserves a written argument.

use super::FileCtx;
use crate::diag::Diagnostic;

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let m = ctx.masked();
    for t in ctx.tokens() {
        if !t.is_ident(m, "unsafe") {
            continue;
        }
        let justified = ctx.scanned.comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.line + 3 >= t.line && c.line <= t.line
        });
        if !justified {
            out.push(ctx.diag(
                "unsafe_safety_comment",
                t.line,
                "`unsafe` without a `// SAFETY:` comment on the same line or the three lines above"
                    .to_string(),
            ));
        }
    }
}
