//! `wall_clock`: no `Instant::now` / `SystemTime::now` outside
//! bench/bin/example code.
//!
//! Result-path behavior must be a pure function of (data, query, seed);
//! reading the clock invites time-dependent branches (and flaky tests).
//! Benches, binaries, and examples measure wall time legitimately and are
//! exempt wholesale. Tests are *not* exempt — a test that genuinely
//! measures latency carries an allowlist entry saying so.

use super::{is_path_seq, FileCtx};
use crate::diag::Diagnostic;

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.class.bench || ctx.class.bin || ctx.class.example {
        return;
    }
    for (i, t) in ctx.tokens().iter().enumerate() {
        for ty in ["Instant", "SystemTime"] {
            if is_path_seq(ctx, i, ty, "now") {
                out.push(ctx.diag(
                    "wall_clock",
                    t.line,
                    format!(
                        "`{ty}::now` outside bench/bin/example code; results must not depend on \
                         the wall clock"
                    ),
                ));
            }
        }
    }
}
