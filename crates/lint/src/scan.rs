//! Workspace walking: find every `.rs` file under a root, in a
//! deterministic order, skipping vendored stand-ins and build output.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::SKIP_DIRS;

/// Collects workspace-relative paths (forward slashes) of every `.rs`
/// file under `root`, sorted. Skips [`SKIP_DIRS`] and dot-directories.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, Path::new(""), &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, rel: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(root.join(rel))? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let sub: PathBuf = rel.join(name.as_ref());
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &sub, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(sub.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}
