//! Lexical preprocessing: comment/string masking, tokens, and
//! `#[cfg(test)]` region tracking.
//!
//! The linter has no parser dependency (the build environment is offline),
//! so rules never see a syntax tree. Instead every file is reduced to a
//! *masked* copy — byte-for-byte the same length as the original, with the
//! contents of comments and string/char literals blanked to spaces — plus
//! the comment list (rules that read comments, like the allowlist and
//! `SAFETY:` checks, need them) and a per-line "inside `#[cfg(test)]`"
//! flag. Rules then scan identifier/punctuation tokens of the masked text,
//! which cannot be fooled by a flagged name appearing in a string literal
//! or a doc comment.

/// One comment (line or block) with the line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// Full comment text, including the `//` / `/* */` delimiters.
    pub text: String,
}

/// A token of the masked source: an identifier/number or a single
/// punctuation character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// 1-based line number.
    pub line: usize,
    /// Byte range start in the masked text.
    pub start: usize,
    /// Byte range end (exclusive).
    pub end: usize,
}

impl Token {
    /// The token's text within `masked`.
    pub fn text<'a>(&self, masked: &'a str) -> &'a str {
        &masked[self.start..self.end]
    }

    /// True when the token is the exact identifier `name`.
    pub fn is_ident(&self, masked: &str, name: &str) -> bool {
        self.text(masked) == name && starts_ident(self.text(masked))
    }

    /// True when the token is the exact punctuation character `c`.
    pub fn is_punct(&self, masked: &str, c: char) -> bool {
        let t = self.text(masked);
        t.len() == c.len_utf8() && t.starts_with(c)
    }
}

fn starts_ident(s: &str) -> bool {
    s.bytes().next().is_some_and(|b| b.is_ascii_alphabetic() || b == b'_')
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// A preprocessed source file.
#[derive(Debug)]
pub struct Scanned {
    /// Original text, split for snippet rendering.
    pub text: String,
    /// Masked text (comments and literals blanked, newlines kept).
    pub masked: String,
    /// All comments in order.
    pub comments: Vec<Comment>,
    /// Tokens of the masked text.
    pub tokens: Vec<Token>,
    /// `test_lines[line]` (1-based) is true inside a `#[cfg(test)]` item.
    pub test_lines: Vec<bool>,
}

impl Scanned {
    /// Preprocesses `text`.
    pub fn new(text: &str) -> Scanned {
        let (masked, comments) = mask(text);
        let tokens = tokenize(&masked);
        let n_lines = text.lines().count() + 1;
        let mut test_lines = vec![false; n_lines + 1];
        mark_cfg_test_regions(&masked, &tokens, &mut test_lines);
        Scanned { text: text.to_string(), masked, comments, tokens, test_lines }
    }

    /// True when `line` (1-based) lies inside a `#[cfg(test)]` item.
    pub fn in_test(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }

    /// The original source line (1-based), for snippets.
    pub fn line_text(&self, line: usize) -> &str {
        self.text.lines().nth(line.saturating_sub(1)).unwrap_or("")
    }
}

fn blank(masked: &mut [u8], start: usize, end: usize) {
    for b in masked.iter_mut().take(end).skip(start) {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Blanks comments and string/char literals, preserving length and
/// newlines. Handles line/block (nested) comments, plain and raw strings
/// (`r"…"`, `r#"…"#`, …), byte strings, char/byte-char literals, and
/// distinguishes lifetimes (`'a`) from char literals (`'a'`).
fn mask(text: &str) -> (String, Vec<Comment>) {
    let bytes = text.as_bytes();
    let mut masked = bytes.to_vec();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            comments.push(Comment { line, text: text[start..i].to_string() });
            blank(&mut masked, start, i);
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let (start, start_line) = (i, line);
            let mut depth = 1usize;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            comments.push(Comment { line: start_line, text: text[start..i].to_string() });
            blank(&mut masked, start, i);
        } else if b == b'"' {
            i = skip_plain_string(bytes, i, &mut masked, &mut line);
        } else if b == b'\'' {
            i = skip_char_or_lifetime(text, bytes, i, &mut masked, &mut line);
        } else if is_ident_byte(b) && !b.is_ascii_digit() {
            // Scan a full identifier, then check for raw/byte literal
            // prefixes (`r"`, `r#"`, `b"`, `br#"`, `b'`). A raw
            // *identifier* (`r#match`) has an ident byte after the `#`s
            // instead of a quote and is left alone.
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            let ident = &text[start..i];
            if matches!(ident, "r" | "br") {
                // Raw (possibly byte) string: `r"…"`, `r#"…"#`, `br##"…"##`.
                // Raw strings have no escapes; `r#ident` (raw identifier)
                // has an ident byte after the `#` and falls through.
                let mut j = i;
                while bytes.get(j) == Some(&b'#') {
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    i = skip_raw_string(bytes, j, j - i, &mut masked, &mut line);
                    blank(&mut masked, start, j);
                }
            } else if ident == "b" {
                // Byte string / byte-char literal: escapes behave as in
                // plain strings.
                if bytes.get(i) == Some(&b'"') {
                    i = skip_plain_string(bytes, i, &mut masked, &mut line);
                    blank(&mut masked, start, start + 1);
                } else if bytes.get(i) == Some(&b'\'') {
                    i = skip_char_or_lifetime(text, bytes, i, &mut masked, &mut line);
                    blank(&mut masked, start, start + 1);
                }
            }
        } else {
            i += 1;
        }
    }
    let masked = String::from_utf8(masked).expect("blanking whole literals keeps UTF-8 valid");
    (masked, comments)
}

fn skip_plain_string(bytes: &[u8], start: usize, masked: &mut [u8], line: &mut usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // A line continuation (`\` + newline) skips a newline; the
                // line counter must still see it or every Comment.line
                // after the string drifts.
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => {
                i += 1;
                break;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    blank(masked, start, i.min(bytes.len()));
    i
}

fn skip_raw_string(
    bytes: &[u8],
    quote: usize,
    hashes: usize,
    masked: &mut [u8],
    line: &mut usize,
) -> usize {
    let mut i = quote + 1;
    'outer: while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"' {
            for k in 0..hashes {
                if bytes.get(i + 1 + k) != Some(&b'#') {
                    i += 1;
                    continue 'outer;
                }
            }
            i += 1 + hashes;
            break;
        } else {
            i += 1;
        }
    }
    blank(masked, quote, i.min(bytes.len()));
    i
}

/// At a `'`: a char literal (blanked) or a lifetime (kept).
fn skip_char_or_lifetime(
    text: &str,
    bytes: &[u8],
    start: usize,
    masked: &mut [u8],
    line: &mut usize,
) -> usize {
    let next = bytes.get(start + 1).copied();
    if next == Some(b'\\') {
        // Escaped char literal: scan to the closing quote, counting any
        // newline skipped on the way (malformed/unterminated literals can
        // span lines; silently skipping one drifts every later
        // Comment.line).
        let mut i = start + 2;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => {
                    if bytes.get(i + 1) == Some(&b'\n') {
                        *line += 1;
                    }
                    i += 2;
                }
                b'\'' => {
                    i += 1;
                    break;
                }
                b'\n' => {
                    *line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        blank(masked, start, i.min(bytes.len()));
        return i;
    }
    // Simple char literal `'x'` where x is one (possibly multibyte) char.
    if let Some(c) = text[start + 1..].chars().next() {
        let close = start + 1 + c.len_utf8();
        if c != '\'' && bytes.get(close) == Some(&b'\'') {
            if c == '\n' {
                *line += 1;
            }
            blank(masked, start, close + 1);
            return close + 1;
        }
    }
    // Lifetime: skip just the tick.
    start + 1
}

fn tokenize(masked: &str) -> Vec<Token> {
    let bytes = masked.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
        } else if b.is_ascii_whitespace() {
            i += 1;
        } else if is_ident_byte(b) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            tokens.push(Token { line, start, end: i });
        } else {
            // One punctuation token per char (multibyte chars included).
            let len = masked[i..].chars().next().map_or(1, char::len_utf8);
            tokens.push(Token { line, start: i, end: i + len });
            i += len;
        }
    }
    tokens
}

/// Marks every line belonging to a `#[cfg(test)]` item (attribute through
/// the item's closing brace or semicolon). In-file unit-test modules are
/// compiled out of release artifacts, so most rules skip them; rules that
/// deliberately cover tests ignore this flag.
fn mark_cfg_test_regions(masked: &str, tokens: &[Token], test_lines: &mut [bool]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(masked, tokens, i) {
            let attr_line = tokens[i].line;
            // Skip this attribute and any further `#[...]` attributes.
            let mut j = skip_attr(masked, tokens, i);
            while j < tokens.len() && tokens[j].is_punct(masked, '#') {
                j = skip_attr(masked, tokens, j);
            }
            // Find the item's extent: first top-level `{` brace-matched,
            // or a `;` before any brace.
            let mut end_line = tokens.get(j).map_or(attr_line, |t| t.line);
            let mut depth = 0usize;
            while j < tokens.len() {
                if tokens[j].is_punct(masked, '{') {
                    depth += 1;
                } else if tokens[j].is_punct(masked, '}') {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end_line = tokens[j].line;
                        break;
                    }
                } else if depth == 0 && tokens[j].is_punct(masked, ';') {
                    end_line = tokens[j].line;
                    break;
                }
                end_line = tokens[j].line;
                j += 1;
            }
            for l in attr_line..=end_line {
                if let Some(slot) = test_lines.get_mut(l) {
                    *slot = true;
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// True when tokens at `i` are a `#[cfg(...)]` attribute whose predicate
/// mentions the identifier `test` — `#[cfg(test)]`, `#[cfg(all(test,
/// feature = "x"))]`, `#[cfg(any(test, ...))]`. A predicate containing
/// `not` is never treated as test (over-approximating `not(test)` as a
/// test region would *exempt* release code from lint rules; declining to
/// match merely lints test code, which fails closed).
fn is_cfg_test_attr(masked: &str, tokens: &[Token], i: usize) -> bool {
    let head: [&dyn Fn(&Token) -> bool; 4] = [
        &|t| t.is_punct(masked, '#'),
        &|t| t.is_punct(masked, '['),
        &|t| t.is_ident(masked, "cfg"),
        &|t| t.is_punct(masked, '('),
    ];
    if !head.iter().enumerate().all(|(k, check)| tokens.get(i + k).is_some_and(check)) {
        return false;
    }
    let end = skip_attr(masked, tokens, i).min(tokens.len());
    let body = &tokens[(i + 4).min(end)..end];
    body.iter().any(|t| t.is_ident(masked, "test"))
        && !body.iter().any(|t| t.is_ident(masked, "not"))
}

/// From a `#` token, returns the index just past its `[...]` attribute.
fn skip_attr(masked: &str, tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if !tokens.get(j).is_some_and(|t| t.is_punct(masked, '[')) {
        return i + 1;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct(masked, '[') {
            depth += 1;
        } else if tokens[j].is_punct(masked, ']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let src = "let a = 1; // HashMap here\n/* thread_rng\n spans */ let b = 2;\n";
        let s = Scanned::new(src);
        assert!(!s.masked.contains("HashMap"));
        assert!(!s.masked.contains("thread_rng"));
        assert!(s.masked.contains("let b"));
        assert_eq!(s.comments.len(), 2);
        assert_eq!(s.comments[0].line, 1);
        assert_eq!(s.comments[1].line, 2);
        assert!(s.comments[1].text.contains("spans"));
        assert_eq!(s.masked.len(), src.len());
    }

    #[test]
    fn masks_string_char_and_raw_literals() {
        let src = r####"let s = "HashMap"; let r = r#"unwrap()"#; let c = 'x'; let b = b"OsRng"; let l: &'static str = "";"####;
        let s = Scanned::new(src);
        for needle in ["HashMap", "unwrap", "OsRng", "'x'"] {
            assert!(!s.masked.contains(needle), "unmasked `{needle}`: {}", s.masked);
        }
        assert!(s.masked.contains("static"), "lifetimes must survive");
        assert_eq!(s.masked.len(), src.len());
    }

    #[test]
    fn multibyte_contents_stay_valid_utf8() {
        let src = "let s = \"wörld 🦀\"; // ünicode\nlet x = 'ß';\n";
        let s = Scanned::new(src);
        assert_eq!(s.masked.len(), src.len());
        assert!(!s.masked.contains("wörld"));
    }

    #[test]
    fn cfg_test_regions_cover_the_module() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let s = Scanned::new(src);
        assert!(!s.in_test(1));
        assert!(s.in_test(2), "attribute line");
        assert!(s.in_test(3));
        assert!(s.in_test(4));
        assert!(s.in_test(5), "closing brace");
        assert!(!s.in_test(6));
    }

    #[test]
    fn cfg_test_with_extra_attributes_and_semicolon_items() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod helper;\nfn live() {}\n";
        let s = Scanned::new(src);
        assert!(s.in_test(1) && s.in_test(2) && s.in_test(3));
        assert!(!s.in_test(4));
    }

    #[test]
    fn line_continuation_in_string_keeps_comment_lines_aligned() {
        // The `\` + newline continuation must count its newline, or every
        // comment line after the string drifts by one.
        let src = "let s = \"ab\\\ncd\";\n// marker\nlet x = 1;\n";
        let s = Scanned::new(src);
        let marker = s.comments.iter().find(|c| c.text.contains("marker")).expect("comment found");
        assert_eq!(marker.line, 3, "comment line drifted: {:?}", s.comments);
    }

    #[test]
    fn cfg_test_with_all_any_predicates() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() {} }\nfn live() {}\n";
        let s = Scanned::new(src);
        assert!(s.in_test(1) && s.in_test(2), "all(test, ...) is a test region");
        assert!(!s.in_test(3));

        let src = "#[cfg(any(test, fuzzing))]\nmod t;\nfn live() {}\n";
        let s = Scanned::new(src);
        assert!(s.in_test(1) && s.in_test(2), "any(test, ...) is a test region");
        assert!(!s.in_test(3));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn release_only() {}\n";
        let s = Scanned::new(src);
        assert!(!s.in_test(1) && !s.in_test(2), "not(test) must stay linted");
    }

    #[test]
    fn tokens_have_lines_and_text() {
        let s = Scanned::new("foo::bar(1);\nInstant::now()\n");
        let texts: Vec<(&str, usize)> =
            s.tokens.iter().map(|t| (t.text(&s.masked), t.line)).collect();
        assert!(texts.contains(&("foo", 1)));
        assert!(texts.contains(&("Instant", 2)));
        assert!(texts.contains(&("now", 2)));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let s = Scanned::new("/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(s.masked.contains("let x"));
        assert!(!s.masked.contains("outer"));
        assert_eq!(s.comments.len(), 1);
    }
}
