//! Fixture tests: one positive and one negative case (at least) per rule,
//! plus the allowlist mechanics.
//!
//! Fixtures are inline strings handed to [`abae_lint::lint_source`] under
//! *virtual* paths, so the path-classification matrix is exercised without
//! planting violating `.rs` files in the tree (which the workspace
//! self-check would then flag). The violating tokens below only ever
//! appear inside string literals, which the linter's own masking hides
//! from the self-scan.

use abae_lint::{lint_source, Diagnostic};

/// Denied `(rule, line)` pairs for one fixture.
fn denied(path: &str, src: &str) -> Vec<(String, usize)> {
    lint_source(path, src)
        .into_iter()
        .filter(|d| d.allowed.is_none())
        .map(|d| (d.rule.to_string(), d.line))
        .collect()
}

/// Allowed (suppressed) diagnostics for one fixture.
fn allowed(path: &str, src: &str) -> Vec<Diagnostic> {
    lint_source(path, src).into_iter().filter(|d| d.allowed.is_some()).collect()
}

// ---------------------------------------------------------------- hash_iter

#[test]
fn hash_iter_positive_in_result_path_crate() {
    let src = "use std::collections::HashMap;\nstruct S { m: HashSet<u32> }\n";
    let d = denied("crates/core/src/x.rs", src);
    assert_eq!(
        d,
        vec![("hash_iter".to_string(), 1), ("hash_iter".to_string(), 2)],
        "both hash containers flagged"
    );
}

#[test]
fn hash_iter_negative_outside_result_path_and_in_tests() {
    let src = "use std::collections::HashMap;\n";
    assert!(denied("crates/bench/src/x.rs", src).is_empty(), "bench crate exempt");
    assert!(denied("crates/optim/src/x.rs", src).is_empty(), "non-result-path crate exempt");
    let in_test = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
    assert!(denied("crates/core/src/x.rs", in_test).is_empty(), "unit tests exempt");
    let btree = "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, u32>) {}\n";
    assert!(denied("crates/core/src/x.rs", btree).is_empty(), "ordered maps fine");
}

#[test]
fn hash_iter_ignores_strings_and_comments() {
    let src = "// a HashMap in prose\nlet s = \"HashMap\";\n";
    assert!(denied("crates/core/src/x.rs", src).is_empty());
}

// ---------------------------------------------------------- no_panic_decode

const DECODE_PATH: &str = "crates/data/src/columnar/file.rs";

#[test]
fn no_panic_decode_positive_unwrap_macros_indexing() {
    let src = "fn d(b: &[u8]) -> u8 {\n    let x = b.first().unwrap();\n    assert!(b.len() > 2);\n    panic!(\"no\");\n    b[0]\n}\n";
    let rules: Vec<(String, usize)> = denied(DECODE_PATH, src);
    assert_eq!(
        rules,
        vec![
            ("no_panic_decode".to_string(), 2),
            ("no_panic_decode".to_string(), 3),
            ("no_panic_decode".to_string(), 4),
            ("no_panic_decode".to_string(), 5),
        ]
    );
}

#[test]
fn no_panic_decode_negative_other_files_and_safe_forms() {
    let src = "fn d(b: &[u8]) -> u8 { b.first().unwrap() }\n";
    assert!(denied("crates/data/src/columnar/column.rs", src).is_empty(), "only designated files");
    let safe = "fn d<'a>(b: &'a [u8]) -> Option<&'a [u8]> {\n    debug_assert_eq!(b.len() % 8, 0);\n    let v = vec![1u8];\n    #[allow(dead_code)]\n    fn g() {}\n    b.get(..4)\n}\n";
    assert!(denied(DECODE_PATH, safe).is_empty(), "get/debug_assert/vec!/attrs/slice types fine");
    let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let b = [1u8]; assert_eq!(b[0], 1); }\n}\n";
    assert!(denied(DECODE_PATH, in_test).is_empty(), "decode module's tests may assert");
}

#[test]
fn no_panic_decode_covers_the_pgwire_codec() {
    // The server's wire codec is the second designated never-panic file:
    // any TCP peer can hand it arbitrary bytes, so the same hostile-input
    // contract as the `.abcol` decoder applies.
    let wire = "crates/server/src/codec.rs";
    let src = "fn decode_startup(b: &[u8]) -> u32 {\n    let len = u32::from_be_bytes(b[..4].try_into().unwrap());\n    len\n}\n";
    let rules: Vec<String> = denied(wire, src).into_iter().map(|(r, _)| r).collect();
    assert_eq!(
        rules,
        vec!["no_panic_decode".to_string(), "no_panic_decode".to_string()],
        "indexing and unwrap both flagged in the wire codec"
    );
    let safe = "fn decode_startup(b: &[u8]) -> Option<u32> {\n    let p: [u8; 4] = b.get(..4)?.try_into().ok()?;\n    Some(u32::from_be_bytes(p))\n}\n";
    assert!(denied(wire, safe).is_empty(), "get-based prefix reads pass");
    assert!(
        denied("crates/server/src/server.rs", src).is_empty(),
        "only the codec module carries the contract, not the whole server crate"
    );
}

// ---------------------------------------------------------- rng_discipline

#[test]
fn rng_discipline_positive_entropy_everywhere() {
    let src = "let mut r = rand::thread_rng();\n";
    for path in ["crates/core/src/x.rs", "tests/t.rs", "crates/bench/src/bin/b.rs"] {
        let d = denied(path, src);
        assert_eq!(d, vec![("rng_discipline".to_string(), 1)], "entropy banned in {path}");
    }
    let os = "let r = StdRng::from_entropy();\nlet v: u8 = rand::random();\n";
    assert_eq!(denied("crates/data/src/x.rs", os).len(), 2);
}

#[test]
fn rng_discipline_positive_raw_seeding_outside_blessed_modules() {
    let src = "let mut r = StdRng::seed_from_u64(42);\n";
    assert_eq!(denied("crates/core/src/x.rs", src), vec![("rng_discipline".to_string(), 1)]);
}

#[test]
fn rng_discipline_negative_blessed_and_harness_seeding() {
    let src = "let mut r = StdRng::seed_from_u64(42);\n";
    for path in [
        "crates/query/src/session.rs",
        "crates/query/src/engine.rs",
        "crates/data/src/synthetic.rs",
        "crates/bench/src/bin/b.rs",
        "tests/t.rs",
        "examples/e.rs",
    ] {
        assert!(denied(path, src).is_empty(), "seeding allowed in {path}");
    }
    let in_test = "#[cfg(test)]\nmod tests {\n    fn t() { let r = StdRng::seed_from_u64(1); }\n}\n";
    assert!(denied("crates/core/src/x.rs", in_test).is_empty(), "unit tests may seed");
}

// -------------------------------------------------------------- wall_clock

#[test]
fn wall_clock_positive_in_library_and_tests() {
    let src = "let t = std::time::Instant::now();\n";
    assert_eq!(denied("crates/core/src/x.rs", src), vec![("wall_clock".to_string(), 1)]);
    assert_eq!(denied("tests/t.rs", src), vec![("wall_clock".to_string(), 1)], "tests not exempt");
    let sys = "let t = SystemTime::now();\n";
    assert_eq!(denied("crates/data/src/x.rs", sys).len(), 1);
}

#[test]
fn wall_clock_negative_in_bench_bin_example() {
    let src = "let t = std::time::Instant::now();\n";
    for path in ["crates/bench/src/x.rs", "src/bin/abae-cli.rs", "examples/e.rs", "crates/lint/src/main.rs"] {
        assert!(denied(path, src).is_empty(), "clock allowed in {path}");
    }
}

// ------------------------------------------------------------- float_order

#[test]
fn float_order_positive_sum_in_parallel_module() {
    let src = "fn f(xs: &[f64]) -> f64 {\n    std::thread::scope(|s| { s.spawn(|| ()); });\n    xs.iter().sum()\n}\n";
    let d = denied("crates/core/src/x.rs", src);
    assert_eq!(d, vec![("float_order".to_string(), 3)]);
}

#[test]
fn float_order_negative_sequential_pinned_or_elsewhere() {
    let seq = "fn f(xs: &[f64]) -> f64 { xs.iter().sum() }\n";
    assert!(denied("crates/core/src/x.rs", seq).is_empty(), "no parallelism, no finding");
    let par = "fn f(xs: &[f64]) -> f64 {\n    std::thread::scope(|s| { s.spawn(|| ()); });\n    xs.iter().sum()\n}\n";
    assert!(denied("crates/stats/src/x.rs", par).is_empty(), "pinned kernel modules exempt");
    assert!(denied("crates/core/src/stratum_stats.rs", par).is_empty());
    assert!(denied("crates/bench/src/x.rs", par).is_empty(), "outside result path");
}

// --------------------------------------------------- unsafe_safety_comment

#[test]
fn unsafe_safety_positive_without_comment() {
    let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
    let d = denied("crates/core/src/x.rs", src);
    assert_eq!(d, vec![("unsafe_safety_comment".to_string(), 1)]);
}

#[test]
fn unsafe_safety_negative_with_comment() {
    let above = "// SAFETY: the caller proved the invariant\nunsafe { go() }\n";
    assert!(denied("crates/core/src/x.rs", above).is_empty());
    let same_line = "unsafe { go() } // SAFETY: justified inline\n";
    assert!(denied("crates/core/src/x.rs", same_line).is_empty());
    let too_far = "// SAFETY: stale, five lines up\n\n\n\n\nunsafe { go() }\n";
    assert_eq!(denied("crates/core/src/x.rs", too_far).len(), 1, "comment must be within 3 lines");
}

// ---------------------------------------------------------------- allowlist

#[test]
fn allowlist_suppresses_with_reason_attached() {
    let src = "// abae-lint: allow(hash_iter) -- lookup-only cache, never iterated\nuse std::collections::HashMap;\n";
    assert!(denied("crates/core/src/x.rs", src).is_empty());
    let a = allowed("crates/core/src/x.rs", src);
    assert_eq!(a.len(), 1);
    assert_eq!(a[0].allowed.as_deref(), Some("lookup-only cache, never iterated"));
}

#[test]
fn allowlist_without_reason_is_denied_and_suppresses_nothing() {
    let src = "// abae-lint: allow(hash_iter)\nuse std::collections::HashMap;\n";
    let d = denied("crates/core/src/x.rs", src);
    assert_eq!(
        d,
        vec![("bad_allowlist".to_string(), 1), ("hash_iter".to_string(), 2)],
        "the malformed entry is itself a finding and the violation stays denied"
    );
}

#[test]
fn allowlist_unknown_rule_is_denied() {
    let src = "// abae-lint: allow(hash_itre) -- typo\nuse std::collections::HashMap;\n";
    let rules: Vec<String> = denied("crates/core/src/x.rs", src).into_iter().map(|(r, _)| r).collect();
    assert_eq!(rules, vec!["bad_allowlist".to_string(), "hash_iter".to_string()]);
}

#[test]
fn allowlist_only_covers_named_rule_and_adjacent_line() {
    let wrong_rule = "// abae-lint: allow(wall_clock) -- unrelated\nuse std::collections::HashMap;\n";
    assert_eq!(denied("crates/core/src/x.rs", wrong_rule).len(), 1, "other rules unaffected");
    let too_far = "// abae-lint: allow(hash_iter) -- meant for something else\nlet a = 1;\nuse std::collections::HashMap;\n";
    assert_eq!(denied("crates/core/src/x.rs", too_far).len(), 1, "coverage is one code line");
}

#[test]
fn allowlist_reaches_past_intervening_comments_and_multiple_rules() {
    let src = "// abae-lint: allow(hash_iter, wall_clock) -- one entry, two rules\n// more prose about why\nfn f() { let t: (HashMap<u8, u8>, _) = todo(Instant::now()); }\n";
    assert!(denied("crates/core/src/x.rs", src).is_empty(), "comment lines are skipped; both rules suppressed");
    assert_eq!(allowed("crates/core/src/x.rs", src).len(), 2);
}
