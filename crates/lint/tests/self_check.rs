//! Self-check: the linter lints the workspace it ships in — including its
//! own crate — and the tree is clean: zero denied diagnostics, and every
//! allowlist suppression carries a written reason.

use abae_lint::{lint_root, workspace_root};

#[test]
fn workspace_is_clean_and_lints_its_own_crate() {
    let report = lint_root(&workspace_root()).expect("workspace scan succeeds");
    let denied: Vec<String> = report.denied().map(|d| d.render()).collect();
    assert!(denied.is_empty(), "workspace has denied diagnostics:\n{}", denied.join("\n"));

    // The scan must have included the linter's own source (self-lint) and
    // a representative spread of the workspace. `lint_root` scans exactly
    // the files `collect_rs_files` returns, so asserting on that list
    // proves this crate was in the scan.
    assert!(report.files_scanned > 100, "scanned only {} files", report.files_scanned);
    let files = abae_lint::scan::collect_rs_files(&workspace_root()).expect("file walk succeeds");
    assert_eq!(files.len(), report.files_scanned, "report counts the walked files");
    for own in ["crates/lint/src/lib.rs", "crates/lint/src/rules/mod.rs"] {
        assert!(files.iter().any(|f| f == own), "self-lint: {own} missing from scan: {files:?}");
    }

    // Known allowlisted sites survive as *allowed* diagnostics with
    // non-empty reasons (the parser enforces the reason; double-check the
    // report carries it through).
    let allowed: Vec<_> = report.allowed().collect();
    assert!(!allowed.is_empty(), "expected the documented allowlist sites to be visible");
    for d in &allowed {
        let reason = d.allowed.as_deref().unwrap_or("");
        assert!(!reason.trim().is_empty(), "allowlist without reason at {}:{}", d.path, d.line);
    }
    assert!(
        allowed.iter().any(|d| d.path == "crates/data/src/oracle.rs"),
        "the PredicateCache hot-path allowlist should be reported"
    );
}

#[test]
fn report_json_is_well_formed_enough() {
    let report = lint_root(&workspace_root()).expect("workspace scan succeeds");
    let json = report.to_json(Some(12.5));
    assert!(json.starts_with('{') && json.ends_with('}'));
    for key in ["\"files_scanned\":", "\"denied\":0", "\"rule_counts\":", "\"hash_iter\":", "\"wall_ms\":"] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count(), "balanced braces");
}

#[test]
fn injected_violation_is_caught() {
    // The CI canary in depth: linting a source string with a violation
    // under a result-path virtual path must produce a denied finding, so
    // the `--deny-all` gate can only pass on a genuinely clean tree.
    let diags = abae_lint::lint_source("crates/core/src/injected.rs", "use std::collections::HashMap;\n");
    assert!(diags.iter().any(|d| d.rule == "hash_iter" && d.allowed.is_none()));
}
