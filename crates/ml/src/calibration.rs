//! Proxy-score calibration.
//!
//! ABae-MultiPred's score-combination rules (`∧ → product`, `∨ → max`,
//! `¬ → 1−s`) "will return exact results if the proxies are perfectly
//! calibrated and perfectly sharp" (§3.3). This module provides Platt
//! scaling — a 1-D logistic regression mapping raw scores to calibrated
//! probabilities — plus reliability-diagram bins and the expected
//! calibration error (ECE) used to quantify proxy quality in the harness.

use crate::logistic::{LogisticRegression, TrainError, TrainOptions};

/// A fitted Platt scaler: `P(y=1 | s) = σ(a·s + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlattScaler {
    model: LogisticRegression,
}

impl PlattScaler {
    /// Fits the scaler on raw scores and binary outcomes.
    pub fn fit(scores: &[f64], labels: &[bool]) -> Result<Self, TrainError> {
        let x: Vec<Vec<f64>> = scores.iter().map(|&s| vec![s]).collect();
        let model = LogisticRegression::fit(
            &x,
            labels,
            TrainOptions { max_iters: 1000, l2: 1e-8, ..Default::default() },
        )?;
        Ok(Self { model })
    }

    /// Maps a raw score to a calibrated probability.
    pub fn calibrate(&self, score: f64) -> f64 {
        self.model.predict_proba(&[score])
    }

    /// Slope `a` of the fitted logistic.
    pub fn slope(&self) -> f64 {
        self.model.weights()[0]
    }

    /// Intercept `b` of the fitted logistic.
    pub fn intercept(&self) -> f64 {
        self.model.intercept()
    }
}

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityBin {
    /// Mean predicted score of samples in the bin.
    pub mean_score: f64,
    /// Empirical positive rate of samples in the bin.
    pub positive_rate: f64,
    /// Number of samples in the bin.
    pub count: usize,
}

/// Buckets `(score, label)` pairs into `bins` equal-width score bins over
/// `[0, 1]` and reports mean score vs. empirical positive rate per bin.
/// Empty bins are omitted.
pub fn reliability_bins(scores: &[f64], labels: &[bool], bins: usize) -> Vec<ReliabilityBin> {
    assert!(bins > 0, "need at least one bin");
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let mut sum_score = vec![0.0; bins];
    let mut positives = vec![0usize; bins];
    let mut counts = vec![0usize; bins];
    for (&s, &y) in scores.iter().zip(labels) {
        let idx = ((s.clamp(0.0, 1.0) * bins as f64) as usize).min(bins - 1);
        sum_score[idx] += s;
        counts[idx] += 1;
        if y {
            positives[idx] += 1;
        }
    }
    (0..bins)
        .filter(|&i| counts[i] > 0)
        .map(|i| ReliabilityBin {
            mean_score: sum_score[i] / counts[i] as f64,
            positive_rate: positives[i] as f64 / counts[i] as f64,
            count: counts[i],
        })
        .collect()
}

/// Expected calibration error: the count-weighted mean absolute gap between
/// predicted score and empirical positive rate across bins. 0 means
/// perfectly calibrated.
pub fn expected_calibration_error(scores: &[f64], labels: &[bool], bins: usize) -> f64 {
    let rel = reliability_bins(scores, labels, bins);
    let total: usize = rel.iter().map(|b| b.count).sum();
    if total == 0 {
        return 0.0;
    }
    rel.iter()
        .map(|b| (b.mean_score - b.positive_rate).abs() * b.count as f64)
        .sum::<f64>()
        / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn platt_fixes_a_systematically_overconfident_score() {
        // Raw score s, true probability s/2 (overconfident by 2x).
        let mut rng = StdRng::seed_from_u64(11);
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..6000 {
            let s: f64 = rng.gen();
            scores.push(s);
            labels.push(rng.gen::<f64>() < s / 2.0);
        }
        let scaler = PlattScaler::fit(&scores, &labels).unwrap();
        // Calibrated scores should track s/2 far better than raw scores.
        let ece_raw = expected_calibration_error(&scores, &labels, 10);
        let cal: Vec<f64> = scores.iter().map(|&s| scaler.calibrate(s)).collect();
        let ece_cal = expected_calibration_error(&cal, &labels, 10);
        assert!(ece_cal < ece_raw / 2.0, "raw {ece_raw}, calibrated {ece_cal}");
    }

    #[test]
    fn calibrated_score_is_monotone_in_raw_score() {
        let scores: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let labels: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let scaler = PlattScaler::fit(&scores, &labels).unwrap();
        // Slope sign determines monotonicity; check sequential ordering.
        let c0 = scaler.calibrate(0.1);
        let c1 = scaler.calibrate(0.9);
        if scaler.slope() >= 0.0 {
            assert!(c1 >= c0);
        } else {
            assert!(c1 <= c0);
        }
    }

    #[test]
    fn reliability_bins_perfectly_calibrated_scores() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..20_000 {
            let s: f64 = rng.gen();
            scores.push(s);
            labels.push(rng.gen::<f64>() < s);
        }
        let ece = expected_calibration_error(&scores, &labels, 10);
        assert!(ece < 0.02, "ece {ece}");
        let bins = reliability_bins(&scores, &labels, 10);
        assert_eq!(bins.len(), 10);
        for b in bins {
            assert!((b.mean_score - b.positive_rate).abs() < 0.06);
        }
    }

    #[test]
    fn reliability_bins_skip_empty() {
        let scores = [0.05, 0.06, 0.95];
        let labels = [false, true, true];
        let bins = reliability_bins(&scores, &labels, 10);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].count, 2);
        assert_eq!(bins[1].count, 1);
    }

    #[test]
    fn ece_of_empty_input_is_zero() {
        assert_eq!(expected_calibration_error(&[], &[], 10), 0.0);
    }

    #[test]
    fn out_of_range_scores_are_clamped_into_bins() {
        let scores = [-0.5, 1.5];
        let labels = [false, true];
        let bins = reliability_bins(&scores, &labels, 4);
        assert_eq!(bins.iter().map(|b| b.count).sum::<usize>(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = reliability_bins(&[0.5], &[], 4);
    }
}
