//! Text tokenization and feature hashing.
//!
//! The emulated trec05p corpus carries synthetic token streams; the keyword
//! proxy and the logistic combiner need a fixed-width numeric representation
//! of them. [`HashingVectorizer`] implements the standard feature-hashing
//! trick (FNV-1a into `dim` buckets with a sign hash) so no vocabulary has
//! to be materialized.

/// Splits text into lowercase alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Feature-hashing vectorizer: maps token multisets into a fixed-width
/// dense vector using a bucket hash and an independent sign hash (which
/// makes collisions cancel in expectation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashingVectorizer {
    dim: usize,
    signed: bool,
}

impl HashingVectorizer {
    /// Creates a vectorizer with `dim` output buckets.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "vectorizer needs at least one bucket");
        Self { dim, signed: true }
    }

    /// Disables the sign hash (all contributions positive).
    pub fn unsigned(mut self) -> Self {
        self.signed = false;
        self
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vectorizes a token slice into bucket counts (L2-normalized so
    /// documents of different lengths are comparable).
    pub fn transform_tokens<S: AsRef<str>>(&self, tokens: &[S]) -> Vec<f64> {
        let mut v = vec![0.0; self.dim];
        for tok in tokens {
            let h = fnv1a(tok.as_ref().as_bytes());
            let bucket = (h % self.dim as u64) as usize;
            let sign = if self.signed && (h >> 63) == 1 { -1.0 } else { 1.0 };
            v[bucket] += sign;
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in v.iter_mut() {
                *x /= norm;
            }
        }
        v
    }

    /// Tokenizes then vectorizes raw text.
    pub fn transform_text(&self, text: &str) -> Vec<f64> {
        self.transform_tokens(&tokenize(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(tokenize("Hello, World! x2"), vec!["hello", "world", "x2"]);
        assert_eq!(tokenize("  "), Vec::<String>::new());
        assert_eq!(tokenize("a-b_c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // Known FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn transform_is_deterministic_and_normalized() {
        let v = HashingVectorizer::new(32);
        let a = v.transform_text("spam money please click");
        let b = v.transform_text("spam money please click");
        assert_eq!(a, b);
        let norm: f64 = a.iter().map(|x| x * x).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn different_texts_differ() {
        let v = HashingVectorizer::new(64);
        let a = v.transform_text("completely ordinary newsletter");
        let b = v.transform_text("wire transfer lottery winner");
        assert_ne!(a, b);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let v = HashingVectorizer::new(8);
        assert_eq!(v.transform_text(""), vec![0.0; 8]);
    }

    #[test]
    fn unsigned_mode_has_no_negative_entries() {
        let v = HashingVectorizer::new(16).unsigned();
        let out = v.transform_text("one two three four five six seven eight");
        assert!(out.iter().all(|&x| x >= 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_dim_panics() {
        let _ = HashingVectorizer::new(0);
    }

    #[test]
    fn repeated_tokens_increase_magnitude_before_normalization() {
        let v = HashingVectorizer::new(4).unsigned();
        let single = v.transform_tokens(&["money"]);
        let double = v.transform_tokens(&["money", "money"]);
        // Same direction after L2 normalization.
        for (a, b) in single.iter().zip(&double) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
