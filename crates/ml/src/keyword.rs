//! Keyword-count proxies.
//!
//! The paper's trec05p proxy is "a manual, keyword-based proxy based on the
//! presence of words (e.g., 'money', 'please')" (§5.1). [`KeywordProxy`]
//! scores a token stream by a weighted keyword hit count squashed through a
//! logistic, yielding the `[0, 1]` proxy score ABae expects.

use std::collections::BTreeMap;

/// A proxy scoring text by weighted keyword occurrences.
///
/// ```
/// use abae_ml::KeywordProxy;
///
/// let proxy = KeywordProxy::uniform(["money", "lottery", "winner"]);
/// let spammy = proxy.score_text("claim your lottery money now");
/// let plain = proxy.score_text("meeting notes attached");
/// assert!(spammy > plain);
/// assert!((0.0..=1.0).contains(&spammy));
/// ```
#[derive(Debug, Clone)]
pub struct KeywordProxy {
    weights: BTreeMap<String, f64>,
    bias: f64,
    scale: f64,
}

impl KeywordProxy {
    /// Builds a proxy from `(keyword, weight)` pairs. Keywords are matched
    /// case-insensitively against whole tokens. `bias` shifts the logistic
    /// and `scale` sharpens it.
    pub fn new<I, S>(keywords: I, bias: f64, scale: f64) -> Self
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        let weights = keywords
            .into_iter()
            .map(|(k, w)| (k.into().to_lowercase(), w))
            .collect();
        Self { weights, bias, scale }
    }

    /// A proxy with unit weight per keyword, bias −1 and scale 1 — a
    /// reasonable default for "any of these words suggests spam".
    pub fn uniform<I, S>(keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::new(keywords.into_iter().map(|k| (k, 1.0)), -1.0, 1.0)
    }

    /// Scores pre-tokenized text in `[0, 1]`.
    pub fn score_tokens<S: AsRef<str>>(&self, tokens: &[S]) -> f64 {
        let mut activation = self.bias;
        for tok in tokens {
            if let Some(w) = self.weights.get(&tok.as_ref().to_lowercase()) {
                activation += w;
            }
        }
        let z = self.scale * activation;
        if z >= 0.0 {
            1.0 / (1.0 + (-z).exp())
        } else {
            let e = z.exp();
            e / (1.0 + e)
        }
    }

    /// Tokenizes then scores raw text.
    pub fn score_text(&self, text: &str) -> f64 {
        self.score_tokens(&crate::features::tokenize(text))
    }

    /// Number of keywords in the proxy.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the proxy has no keywords.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_keywords_score_higher() {
        let proxy = KeywordProxy::uniform(["money", "lottery", "winner"]);
        let none = proxy.score_text("regular weekly meeting notes");
        let one = proxy.score_text("you won money");
        let all = proxy.score_text("money lottery winner claim now");
        assert!(none < one && one < all, "{none} {one} {all}");
    }

    #[test]
    fn scores_are_probabilities() {
        let proxy = KeywordProxy::new([("spam", 10.0), ("ham", -10.0)], 0.0, 5.0);
        for text in ["spam spam spam", "ham ham", "", "unrelated words"] {
            let s = proxy.score_text(text);
            assert!((0.0..=1.0).contains(&s), "score {s} for {text:?}");
        }
    }

    #[test]
    fn matching_is_case_insensitive() {
        let proxy = KeywordProxy::uniform(["Money"]);
        assert_eq!(proxy.score_text("MONEY"), proxy.score_text("money"));
    }

    #[test]
    fn negative_weights_push_score_down() {
        let proxy = KeywordProxy::new([("unsubscribe", 2.0), ("meeting", -2.0)], 0.0, 1.0);
        assert!(proxy.score_text("please unsubscribe") > 0.5);
        assert!(proxy.score_text("team meeting agenda") < 0.5);
    }

    #[test]
    fn repeated_keywords_accumulate() {
        let proxy = KeywordProxy::new([("free", 1.0)], -2.0, 1.0);
        let once = proxy.score_text("free");
        let thrice = proxy.score_text("free free free");
        assert!(thrice > once);
    }

    #[test]
    fn empty_proxy_is_constant() {
        let proxy = KeywordProxy::uniform(Vec::<String>::new());
        assert!(proxy.is_empty());
        assert_eq!(proxy.score_text("anything"), proxy.score_text("else"));
    }
}
