//! Proxy-model toolkit for the ABae reproduction.
//!
//! The paper's proxies are cheap ML models: specialized MobileNetV2
//! classifiers, NLTK's rule-based sentiment scorer, and hand-written keyword
//! rules. Rust has no equivalent ecosystem (the calibration note for this
//! reproduction flags the "thin ML ecosystem for proxy models"), so this
//! crate implements the pieces ABae actually needs from scratch:
//!
//! * [`logistic`] — L2-regularized logistic regression trained with
//!   full-batch gradient descent; used to combine multiple proxies into one
//!   (paper §3.4, Figure 12).
//! * [`features`] — tokenization and feature hashing for text records, the
//!   substrate for keyword proxies over the emulated spam corpus.
//! * [`keyword`] — keyword-count proxies ("money", "please", ...) like the
//!   paper's trec05p proxy.
//! * [`calibration`] — Platt scaling and reliability/ECE diagnostics; the
//!   multi-predicate combination rules assume roughly calibrated proxies
//!   (§3.3), and this module measures how far a proxy deviates.
//! * [`metrics`] — AUC (Mann–Whitney with tie correction), Brier score,
//!   accuracy.
//! * [`proxy`] — the trainable [`ProxyModel`] interface the query engine
//!   serves (`CREATE PROXY`): learned keyword lists, logistic regression
//!   over hashed features, and Platt-calibrated wrappers, all scoring
//!   deterministically in batches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibration;
pub mod features;
pub mod keyword;
pub mod logistic;
pub mod metrics;
pub mod naive_bayes;
pub mod proxy;

pub use calibration::{expected_calibration_error, reliability_bins, PlattScaler};
pub use features::{tokenize, HashingVectorizer};
pub use keyword::KeywordProxy;
pub use logistic::{LogisticRegression, TrainOptions};
pub use metrics::{accuracy, auc, brier_score};
pub use naive_bayes::NaiveBayes;
pub use proxy::{Calibrated, KeywordModel, LogisticModel, ModelSummary, ProxyModel};
