//! L2-regularized logistic regression, trained with full-batch gradient
//! descent and a backtracking step size.
//!
//! ABae uses logistic regression in two places:
//! * §3.4 "Selecting Proxies": combine several candidate proxies by training
//!   on the Stage-1 pilot samples with the proxy scores as features and the
//!   oracle predicate as the target (Figure 12).
//! * Platt calibration of a single raw score ([`crate::calibration`]).
//!
//! The feature count is tiny (one per proxy), and the sample count is the
//! pilot budget (hundreds to thousands), so a dense full-batch solver is
//! both simple and fast.

/// Options controlling training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOptions {
    /// Maximum gradient-descent iterations.
    pub max_iters: usize,
    /// L2 regularization strength on the weights (not the intercept).
    pub l2: f64,
    /// Initial learning rate; adapted by backtracking.
    pub learning_rate: f64,
    /// Stop when the gradient's infinity norm falls below this.
    pub grad_tol: f64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self { max_iters: 500, l2: 1e-4, learning_rate: 1.0, grad_tol: 1e-6 }
    }
}

/// A trained logistic-regression model `P(y=1|x) = σ(w·x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    intercept: f64,
}

/// Error returned when training inputs are malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// No training rows were provided.
    EmptyTrainingSet,
    /// Rows have inconsistent feature counts.
    RaggedFeatures,
    /// Labels and features have different lengths.
    LengthMismatch,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyTrainingSet => write!(f, "empty training set"),
            TrainError::RaggedFeatures => write!(f, "rows have inconsistent feature counts"),
            TrainError::LengthMismatch => write!(f, "labels and features differ in length"),
        }
    }
}

impl std::error::Error for TrainError {}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Trains on rows of features `x` with boolean labels `y`.
    pub fn fit(x: &[Vec<f64>], y: &[bool], opts: TrainOptions) -> Result<Self, TrainError> {
        if x.is_empty() {
            return Err(TrainError::EmptyTrainingSet);
        }
        if x.len() != y.len() {
            return Err(TrainError::LengthMismatch);
        }
        let dim = x[0].len();
        if x.iter().any(|row| row.len() != dim) {
            return Err(TrainError::RaggedFeatures);
        }
        let n = x.len() as f64;

        let mut w = vec![0.0; dim];
        let mut b = 0.0;
        let mut lr = opts.learning_rate;

        let loss = |w: &[f64], b: f64| -> f64 {
            let mut total = 0.0;
            for (row, &label) in x.iter().zip(y) {
                let z = row.iter().zip(w).map(|(xi, wi)| xi * wi).sum::<f64>() + b;
                // Numerically stable log-loss: log(1 + e^{-|z|}) + max(z,0) - z*y
                let t = if label { 1.0 } else { 0.0 };
                total += z.max(0.0) - z * t + (-z.abs()).exp().ln_1p();
            }
            total / n + 0.5 * opts.l2 * w.iter().map(|wi| wi * wi).sum::<f64>()
        };

        let mut current = loss(&w, b);
        for _ in 0..opts.max_iters {
            // Gradient.
            let mut gw = vec![0.0; dim];
            let mut gb = 0.0;
            for (row, &label) in x.iter().zip(y) {
                let z = row.iter().zip(&w).map(|(xi, wi)| xi * wi).sum::<f64>() + b;
                let err = sigmoid(z) - if label { 1.0 } else { 0.0 };
                for (g, xi) in gw.iter_mut().zip(row) {
                    *g += err * xi;
                }
                gb += err;
            }
            for (g, wi) in gw.iter_mut().zip(&w) {
                *g = *g / n + opts.l2 * wi;
            }
            gb /= n;

            let grad_norm = gw.iter().chain(std::iter::once(&gb)).fold(0.0f64, |m, g| m.max(g.abs()));
            if grad_norm < opts.grad_tol {
                break;
            }

            // Backtracking line search on the descent step.
            loop {
                let wt: Vec<f64> = w.iter().zip(&gw).map(|(wi, gi)| wi - lr * gi).collect();
                let bt = b - lr * gb;
                let next = loss(&wt, bt);
                if next <= current || lr < 1e-12 {
                    w = wt;
                    b = bt;
                    current = next;
                    // Gentle growth so we re-probe larger steps.
                    lr *= 1.1;
                    break;
                }
                lr *= 0.5;
            }
        }
        Ok(Self { weights: w, intercept: b })
    }

    /// Predicted probability `P(y = 1 | x)` for one feature row.
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the trained feature count.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature count mismatch");
        let z = x.iter().zip(&self.weights).map(|(xi, wi)| xi * wi).sum::<f64>() + self.intercept;
        sigmoid(z)
    }

    /// Predicted probabilities for many rows.
    pub fn predict_proba_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict_proba(x)).collect()
    }

    /// Learned weights (one per feature).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fit_rejects_bad_inputs() {
        assert_eq!(
            LogisticRegression::fit(&[], &[], TrainOptions::default()),
            Err(TrainError::EmptyTrainingSet)
        );
        assert_eq!(
            LogisticRegression::fit(&[vec![1.0]], &[true, false], TrainOptions::default()),
            Err(TrainError::LengthMismatch)
        );
        assert_eq!(
            LogisticRegression::fit(
                &[vec![1.0], vec![1.0, 2.0]],
                &[true, false],
                TrainOptions::default()
            ),
            Err(TrainError::RaggedFeatures)
        );
    }

    #[test]
    fn learns_linearly_separable_data() {
        // y = 1 iff x > 0.
        let x: Vec<Vec<f64>> = (-50..50).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<bool> = (-50..50).map(|i| i > 0).collect();
        let model = LogisticRegression::fit(&x, &y, TrainOptions::default()).unwrap();
        assert!(model.predict_proba(&[2.0]) > 0.9);
        assert!(model.predict_proba(&[-2.0]) < 0.1);
        assert!(model.weights()[0] > 0.0);
    }

    #[test]
    fn recovers_probabilities_of_a_logistic_ground_truth() {
        // Data generated from a known logistic model; predictions should be
        // close to the true probabilities.
        let mut rng = StdRng::seed_from_u64(9);
        let (w_true, b_true) = ([2.0, -1.0], 0.5);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..4000 {
            let row = vec![rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)];
            let z = w_true[0] * row[0] + w_true[1] * row[1] + b_true;
            let p = 1.0 / (1.0 + (-z as f64).exp());
            y.push(rng.gen::<f64>() < p);
            x.push(row);
        }
        let model = LogisticRegression::fit(
            &x,
            &y,
            TrainOptions { max_iters: 2000, l2: 1e-6, ..Default::default() },
        )
        .unwrap();
        for probe in [[0.0, 0.0], [1.0, 1.0], [-1.0, 0.5], [1.5, -1.5]] {
            let z = w_true[0] * probe[0] + w_true[1] * probe[1] + b_true;
            let want = 1.0 / (1.0 + (-z).exp());
            let got = model.predict_proba(&probe);
            assert!((got - want).abs() < 0.06, "probe {probe:?}: {got} vs {want}");
        }
    }

    #[test]
    fn ignores_uninformative_noise_feature() {
        // Feature 0 decides the label, feature 1 is pure noise: |w1| should
        // be much smaller than |w0|. This is exactly the "ignore low-quality
        // proxies" behaviour Figure 12 relies on.
        let mut rng = StdRng::seed_from_u64(10);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..3000 {
            let signal = rng.gen_range(-1.0..1.0);
            let noise = rng.gen_range(-1.0..1.0);
            x.push(vec![signal, noise]);
            y.push(signal > 0.0);
        }
        let model = LogisticRegression::fit(&x, &y, TrainOptions::default()).unwrap();
        assert!(
            model.weights()[0].abs() > 5.0 * model.weights()[1].abs(),
            "weights {:?}",
            model.weights()
        );
    }

    #[test]
    fn constant_labels_predict_extreme_probability() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y = vec![true; 100];
        let model = LogisticRegression::fit(&x, &y, TrainOptions::default()).unwrap();
        assert!(model.predict_proba(&[50.0]) > 0.9);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn predict_with_wrong_dim_panics() {
        let model =
            LogisticRegression::fit(&[vec![1.0], vec![0.0]], &[true, false], TrainOptions::default())
                .unwrap();
        let _ = model.predict_proba(&[1.0, 2.0]);
    }

    #[test]
    fn batch_prediction_matches_single() {
        let model =
            LogisticRegression::fit(&[vec![1.0], vec![-1.0]], &[true, false], TrainOptions::default())
                .unwrap();
        let rows = vec![vec![0.3], vec![-0.7]];
        let batch = model.predict_proba_batch(&rows);
        assert_eq!(batch[0], model.predict_proba(&rows[0]));
        assert_eq!(batch[1], model.predict_proba(&rows[1]));
    }
}
