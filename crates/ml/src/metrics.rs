//! Classifier metrics for proxy-quality reporting.
//!
//! Table 2 of this reproduction reports the measured AUC of each emulated
//! proxy against its oracle, and the proxy-quality ablation sweeps AUC from
//! 0.5 (useless) to 1.0 (perfect). AUC is computed exactly via the
//! Mann–Whitney U statistic with midrank tie handling.

/// Area under the ROC curve of `scores` against boolean `labels`.
///
/// Computed as the Mann–Whitney U statistic normalized by the number of
/// positive/negative pairs, with midranks for ties. Returns `None` when
/// either class is absent (AUC is undefined).
pub fn auc(scores: &[f64], labels: &[bool]) -> Option<f64> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return None;
    }
    // Sort indices by score; assign midranks to tied runs.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // Ranks are 1-based; midrank of the tied run [i, j].
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            if labels[k] {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - pos as f64 * (pos as f64 + 1.0) / 2.0;
    Some(u / (pos as f64 * neg as f64))
}

/// Brier score: mean squared error of probabilistic predictions. Lower is
/// better; 0 is perfect.
pub fn brier_score(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    if scores.is_empty() {
        return 0.0;
    }
    scores
        .iter()
        .zip(labels)
        .map(|(&s, &y)| {
            let t = if y { 1.0 } else { 0.0 };
            (s - t) * (s - t)
        })
        .sum::<f64>()
        / scores.len() as f64
}

/// Classification accuracy at a score threshold.
pub fn accuracy(scores: &[f64], labels: &[bool], threshold: f64) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    if scores.is_empty() {
        return 0.0;
    }
    scores
        .iter()
        .zip(labels)
        .filter(|(&s, &y)| (s >= threshold) == y)
        .count() as f64
        / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_auc_one() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert_eq!(auc(&scores, &labels), Some(1.0));
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [false, false, true, true];
        assert_eq!(auc(&scores, &labels), Some(0.0));
    }

    #[test]
    fn all_tied_scores_give_half() {
        let scores = [0.5; 6];
        let labels = [true, false, true, false, true, false];
        let a = auc(&scores, &labels).unwrap();
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn known_mixed_case() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
        // Pairs: (0.8 > 0.6), (0.8 > 0.2), (0.4 < 0.6), (0.4 > 0.2) → 3/4.
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [true, true, false, false];
        assert!((auc(&scores, &labels).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes_return_none() {
        assert_eq!(auc(&[0.5, 0.6], &[true, true]), None);
        assert_eq!(auc(&[0.5, 0.6], &[false, false]), None);
        assert_eq!(auc(&[], &[]), None);
    }

    #[test]
    fn auc_is_invariant_to_monotone_transform() {
        let scores = [0.1, 0.5, 0.3, 0.9, 0.7];
        let labels = [false, true, false, true, true];
        let squashed: Vec<f64> = scores.iter().map(|s| s * s).collect();
        assert_eq!(auc(&scores, &labels), auc(&squashed, &labels));
    }

    #[test]
    fn brier_perfect_and_worst() {
        assert_eq!(brier_score(&[1.0, 0.0], &[true, false]), 0.0);
        assert_eq!(brier_score(&[0.0, 1.0], &[true, false]), 1.0);
        assert_eq!(brier_score(&[], &[]), 0.0);
    }

    #[test]
    fn accuracy_at_threshold() {
        let scores = [0.9, 0.2, 0.6, 0.4];
        let labels = [true, false, false, true];
        // At 0.5: predictions T,F,T,F → 2 correct out of 4.
        assert!((accuracy(&scores, &labels, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(accuracy(&[], &[], 0.5), 0.0);
    }
}
