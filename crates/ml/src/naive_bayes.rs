//! Bernoulli naive Bayes over hashed token features.
//!
//! A second *learned* proxy family beyond logistic regression: the classic
//! spam-filter model. Where the paper's trec05p proxy is a hand-written
//! keyword list, a user with a few labeled emails can train this instead;
//! the spam example and the proxy-selection tests use it as an additional
//! candidate proxy.

use crate::features::tokenize;
use std::collections::BTreeMap;

/// A trained Bernoulli naive Bayes classifier over token presence.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    log_prior_pos: f64,
    log_prior_neg: f64,
    /// Per-token log-likelihood ratios `log P(t|+)/P(t|−)` with Laplace
    /// smoothing; tokens unseen at training time contribute nothing.
    token_llr: BTreeMap<String, f64>,
}

/// Training errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NbError {
    /// No documents provided.
    EmptyTrainingSet,
    /// Labels/documents length mismatch.
    LengthMismatch,
    /// Training requires at least one document of each class.
    SingleClass,
}

impl std::fmt::Display for NbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NbError::EmptyTrainingSet => write!(f, "empty training set"),
            NbError::LengthMismatch => write!(f, "documents and labels differ in length"),
            NbError::SingleClass => write!(f, "training needs both classes"),
        }
    }
}

impl std::error::Error for NbError {}

impl NaiveBayes {
    /// Trains on pre-tokenized documents with boolean labels.
    pub fn fit_tokens<S: AsRef<str>>(docs: &[Vec<S>], labels: &[bool]) -> Result<Self, NbError> {
        if docs.is_empty() {
            return Err(NbError::EmptyTrainingSet);
        }
        if docs.len() != labels.len() {
            return Err(NbError::LengthMismatch);
        }
        let pos = labels.iter().filter(|&&l| l).count();
        let neg = labels.len() - pos;
        if pos == 0 || neg == 0 {
            return Err(NbError::SingleClass);
        }

        // Document frequency of each token per class (Bernoulli model:
        // presence, not counts).
        let mut df_pos: BTreeMap<String, usize> = BTreeMap::new();
        let mut df_neg: BTreeMap<String, usize> = BTreeMap::new();
        let mut seen: Vec<&str> = Vec::new();
        for (doc, &label) in docs.iter().zip(labels) {
            seen.clear();
            for tok in doc {
                let t = tok.as_ref();
                if !seen.contains(&t) {
                    seen.push(t);
                    let map = if label { &mut df_pos } else { &mut df_neg };
                    *map.entry(t.to_lowercase()).or_insert(0) += 1;
                }
            }
        }

        let mut token_llr = BTreeMap::new();
        let vocab: std::collections::BTreeSet<&String> =
            df_pos.keys().chain(df_neg.keys()).collect();
        for tok in vocab {
            let p_pos =
                (*df_pos.get(tok).unwrap_or(&0) as f64 + 1.0) / (pos as f64 + 2.0);
            let p_neg =
                (*df_neg.get(tok).unwrap_or(&0) as f64 + 1.0) / (neg as f64 + 2.0);
            token_llr.insert(tok.clone(), (p_pos / p_neg).ln());
        }

        Ok(Self {
            log_prior_pos: (pos as f64 / labels.len() as f64).ln(),
            log_prior_neg: (neg as f64 / labels.len() as f64).ln(),
            token_llr,
        })
    }

    /// Trains on raw text documents.
    pub fn fit_text(docs: &[&str], labels: &[bool]) -> Result<Self, NbError> {
        let tokenized: Vec<Vec<String>> = docs.iter().map(|d| tokenize(d)).collect();
        Self::fit_tokens(&tokenized, labels)
    }

    /// Posterior probability of the positive class for a token stream.
    pub fn score_tokens<S: AsRef<str>>(&self, tokens: &[S]) -> f64 {
        let mut log_odds = self.log_prior_pos - self.log_prior_neg;
        let mut counted: Vec<String> = Vec::new();
        for tok in tokens {
            let t = tok.as_ref().to_lowercase();
            if counted.contains(&t) {
                continue; // presence model
            }
            if let Some(&llr) = self.token_llr.get(&t) {
                log_odds += llr;
            }
            counted.push(t);
        }
        // Clamp to avoid overflow in exp.
        let z = log_odds.clamp(-500.0, 500.0);
        1.0 / (1.0 + (-z).exp())
    }

    /// Posterior probability for raw text.
    pub fn score_text(&self, text: &str) -> f64 {
        self.score_tokens(&tokenize(text))
    }

    /// Number of tokens with learned likelihood ratios.
    pub fn vocabulary_size(&self) -> usize {
        self.token_llr.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_set() -> (Vec<&'static str>, Vec<bool>) {
        (
            vec![
                "win money now claim prize",
                "free lottery winner click",
                "cheap pills money back guarantee",
                "meeting agenda for tomorrow",
                "project review notes attached",
                "lunch plans this week",
            ],
            vec![true, true, true, false, false, false],
        )
    }

    #[test]
    fn separates_spam_from_ham() {
        let (docs, labels) = training_set();
        let nb = NaiveBayes::fit_text(&docs, &labels).unwrap();
        assert!(nb.score_text("claim your free money prize") > 0.8);
        assert!(nb.score_text("agenda for the project meeting") < 0.2);
        assert!(nb.vocabulary_size() > 10);
    }

    #[test]
    fn unseen_tokens_fall_back_to_prior() {
        let (docs, labels) = training_set();
        let nb = NaiveBayes::fit_text(&docs, &labels).unwrap();
        let s = nb.score_text("zzz qqq xxx");
        // Balanced priors → near 0.5.
        assert!((s - 0.5).abs() < 0.05, "score {s}");
    }

    #[test]
    fn presence_model_ignores_repetition() {
        let (docs, labels) = training_set();
        let nb = NaiveBayes::fit_text(&docs, &labels).unwrap();
        let once = nb.score_text("money");
        let many = nb.score_text("money money money money");
        assert!((once - many).abs() < 1e-12);
    }

    #[test]
    fn scores_are_probabilities() {
        let (docs, labels) = training_set();
        let nb = NaiveBayes::fit_text(&docs, &labels).unwrap();
        for text in ["money money", "", "meeting", "win win win meeting"] {
            let s = nb.score_text(text);
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn training_errors() {
        assert!(matches!(
            NaiveBayes::fit_text(&[], &[]),
            Err(NbError::EmptyTrainingSet)
        ));
        assert!(matches!(
            NaiveBayes::fit_text(&["a"], &[true, false]),
            Err(NbError::LengthMismatch)
        ));
        assert!(matches!(
            NaiveBayes::fit_text(&["a", "b"], &[true, true]),
            Err(NbError::SingleClass)
        ));
    }

    #[test]
    fn beats_chance_on_the_emulated_spam_corpus() {
        // Train on a slice of the emulated trec05p-style text and check
        // AUC on held-out records.
        use crate::metrics::auc;
        let spam_words = ["money", "free", "winner", "click", "prize"];
        let ham_words = ["meeting", "report", "project", "thanks", "notes"];
        let mut docs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..400 {
            let spam = i % 2 == 0;
            let vocab: &[&str] = if spam { &spam_words } else { &ham_words };
            let mut text = String::new();
            for j in 0..12 {
                text.push_str(vocab[(i + j) % vocab.len()]);
                text.push(' ');
                // Mix in neutral tokens.
                text.push_str(["the", "a", "and"][(i * 7 + j) % 3]);
                text.push(' ');
            }
            docs.push(text);
            labels.push(spam);
        }
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let nb = NaiveBayes::fit_text(&doc_refs[..300], &labels[..300]).unwrap();
        let scores: Vec<f64> = doc_refs[300..].iter().map(|d| nb.score_text(d)).collect();
        let a = auc(&scores, &labels[300..]).unwrap();
        assert!(a > 0.95, "AUC {a}");
    }
}
