//! Trainable proxy models behind one interface.
//!
//! The paper's proxies are cheap trained models (specialized MobileNets,
//! keyword rules, sentiment scorers) evaluated exhaustively over the
//! dataset before sampling begins (§2.1, §5.1). [`ProxyModel`] is the
//! engine-facing abstraction for that family: fit on a labeled training
//! draw, score record payloads in batches, and describe the fitted
//! artifact with a serializable [`ModelSummary`]. Three implementations
//! cover the paper's text workloads:
//!
//! * [`KeywordModel`] — learns a weighted keyword list by per-token
//!   log-odds (the trainable version of the hand-written trec05p proxy),
//!   squashed through a fitted 1-D logistic so scores are probabilities;
//! * [`LogisticModel`] — logistic regression over hash-vectorized tokens
//!   ([`crate::features::HashingVectorizer`]), the strongest text family
//!   here;
//! * [`Calibrated`] — wraps any model with Platt scaling fitted on the
//!   training labels; the calibrated map is monotone in the raw score, so
//!   stratification (and therefore ABae's allocation) is unchanged while
//!   the §3.3 combination rules get scores closer to true probabilities.
//!
//! All scoring is deterministic per input, which is what lets the query
//! engine fan full-table scoring across threads and still produce
//! bit-identical proxy columns.

use crate::calibration::PlattScaler;
use crate::features::{tokenize, HashingVectorizer};
use crate::logistic::{LogisticRegression, TrainError, TrainOptions};
use std::collections::BTreeMap;
use std::fmt;

/// A serializable description of a fitted proxy model: the family name
/// plus the scalar parameters worth surfacing (`EXPLAIN`, `SHOW PROXIES`,
/// logs). Rendering is stable and compact: `family(k1=v1, k2=v2)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSummary {
    /// Model family (e.g. `"keyword"`, `"logistic"`, `"platt(keyword)"`).
    pub family: String,
    /// Named scalar parameters, in a stable order.
    pub params: Vec<(String, f64)>,
}

impl fmt::Display for ModelSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.family)?;
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v:.4}")?;
        }
        write!(f, ")")
    }
}

/// A trainable proxy model over text payloads.
///
/// Contract: after a successful [`ProxyModel::fit`], [`ProxyModel::score_batch`]
/// returns one finite score in `[0, 1]` per input, deterministically — the
/// same input always yields the same score, so batch scoring may be
/// scheduled across threads freely. `Send + Sync` is required because the
/// query engine owns fitted models behind a shared catalog.
pub trait ProxyModel: Send + Sync + fmt::Debug {
    /// Fits the model on labeled texts. `texts` and `labels` must have the
    /// same non-zero length.
    fn fit(&mut self, texts: &[&str], labels: &[bool]) -> Result<(), TrainError>;

    /// Scores a batch of texts, one `[0, 1]` score per input.
    ///
    /// # Panics
    /// May panic if the model was never fitted.
    fn score_batch(&self, texts: &[&str]) -> Vec<f64>;

    /// Scores one text (a one-element batch).
    fn score(&self, text: &str) -> f64 {
        self.score_batch(&[text]).pop().expect("score_batch returns one score per input")
    }

    /// Serializable summary of the fitted artifact.
    fn summary(&self) -> ModelSummary;
}

/// Validates the shared `fit` preconditions.
fn check_training_set(texts: &[&str], labels: &[bool]) -> Result<(), TrainError> {
    if texts.is_empty() {
        return Err(TrainError::EmptyTrainingSet);
    }
    if texts.len() != labels.len() {
        return Err(TrainError::LengthMismatch);
    }
    Ok(())
}

/// A learned keyword proxy: token weights are smoothed per-class log-odds
/// (the top `max_keywords` by magnitude), and the per-document activation
/// (sum of matched weights) is mapped to a probability by a 1-D logistic
/// fitted on the training labels.
#[derive(Debug, Clone, Default)]
pub struct KeywordModel {
    /// Keyword cap; tokens beyond the top-N by |log-odds| are dropped.
    max_keywords: usize,
    weights: BTreeMap<String, f64>,
    link: Option<LogisticRegression>,
}

impl KeywordModel {
    /// Default keyword-list size.
    pub const DEFAULT_MAX_KEYWORDS: usize = 32;

    /// A model keeping at most [`Self::DEFAULT_MAX_KEYWORDS`] keywords.
    pub fn new() -> Self {
        Self { max_keywords: Self::DEFAULT_MAX_KEYWORDS, weights: BTreeMap::new(), link: None }
    }

    /// A model keeping at most `max_keywords` keywords.
    ///
    /// # Panics
    /// Panics if `max_keywords == 0`.
    pub fn with_max_keywords(max_keywords: usize) -> Self {
        assert!(max_keywords > 0, "need at least one keyword");
        Self { max_keywords, ..Self::new() }
    }

    /// The learned `(keyword, log-odds weight)` pairs, best first.
    pub fn keywords(&self) -> Vec<(&str, f64)> {
        let mut kw: Vec<(&str, f64)> =
            self.weights.iter().map(|(k, &w)| (k.as_str(), w)).collect();
        kw.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then(a.0.cmp(b.0)));
        kw
    }

    fn activation(&self, text: &str) -> f64 {
        tokenize(text).iter().filter_map(|t| self.weights.get(t)).sum()
    }
}

impl ProxyModel for KeywordModel {
    fn fit(&mut self, texts: &[&str], labels: &[bool]) -> Result<(), TrainError> {
        check_training_set(texts, labels)?;
        // Per-token counts per class.
        let mut pos_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut neg_counts: BTreeMap<String, usize> = BTreeMap::new();
        let (mut pos_tokens, mut neg_tokens) = (0usize, 0usize);
        for (&text, &label) in texts.iter().zip(labels) {
            let counts = if label { &mut pos_counts } else { &mut neg_counts };
            for tok in tokenize(text) {
                *counts.entry(tok).or_insert(0) += 1;
                if label {
                    pos_tokens += 1;
                } else {
                    neg_tokens += 1;
                }
            }
        }
        // Smoothed log-odds per token; keep the strongest `max_keywords`.
        let vocab: std::collections::BTreeSet<&String> =
            pos_counts.keys().chain(neg_counts.keys()).collect();
        let v = vocab.len().max(1) as f64;
        let mut scored: Vec<(String, f64)> = vocab
            .into_iter()
            .map(|tok| {
                let p = (pos_counts.get(tok).copied().unwrap_or(0) as f64 + 1.0)
                    / (pos_tokens as f64 + v);
                let q = (neg_counts.get(tok).copied().unwrap_or(0) as f64 + 1.0)
                    / (neg_tokens as f64 + v);
                (tok.clone(), (p / q).ln())
            })
            .collect();
        scored.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then(a.0.cmp(&b.0)));
        scored.truncate(self.max_keywords);
        self.weights = scored.into_iter().collect();
        // Link function: 1-D logistic mapping activation → probability.
        let activations: Vec<Vec<f64>> =
            texts.iter().map(|t| vec![self.activation(t)]).collect();
        self.link = Some(LogisticRegression::fit(
            &activations,
            labels,
            TrainOptions { max_iters: 300, ..Default::default() },
        )?);
        Ok(())
    }

    fn score_batch(&self, texts: &[&str]) -> Vec<f64> {
        let link = self.link.as_ref().expect("KeywordModel must be fitted before scoring");
        texts.iter().map(|t| link.predict_proba(&[self.activation(t)])).collect()
    }

    fn summary(&self) -> ModelSummary {
        ModelSummary {
            family: "keyword".to_string(),
            params: vec![
                ("keywords".to_string(), self.weights.len() as f64),
                (
                    "link_slope".to_string(),
                    self.link.as_ref().map_or(0.0, |l| l.weights()[0]),
                ),
                (
                    "link_intercept".to_string(),
                    self.link.as_ref().map_or(0.0, LogisticRegression::intercept),
                ),
            ],
        }
    }
}

/// Logistic regression over hash-vectorized tokens: the
/// feature-hashing trick keeps the model dense and vocabulary-free, so
/// fitting cost is `O(train × dim)` and scoring is one dot product.
#[derive(Debug, Clone)]
pub struct LogisticModel {
    vectorizer: HashingVectorizer,
    options: TrainOptions,
    model: Option<LogisticRegression>,
}

impl LogisticModel {
    /// Default hashed-feature dimensionality.
    pub const DEFAULT_DIM: usize = 256;

    /// A model hashing tokens into [`Self::DEFAULT_DIM`] buckets.
    pub fn new() -> Self {
        Self::with_dim(Self::DEFAULT_DIM)
    }

    /// A model hashing tokens into `dim` buckets.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn with_dim(dim: usize) -> Self {
        Self {
            vectorizer: HashingVectorizer::new(dim),
            options: TrainOptions { max_iters: 200, l2: 1e-3, ..Default::default() },
            model: None,
        }
    }

    /// Hashed-feature dimensionality.
    pub fn dim(&self) -> usize {
        self.vectorizer.dim()
    }
}

impl Default for LogisticModel {
    fn default() -> Self {
        Self::new()
    }
}

impl ProxyModel for LogisticModel {
    fn fit(&mut self, texts: &[&str], labels: &[bool]) -> Result<(), TrainError> {
        check_training_set(texts, labels)?;
        let rows: Vec<Vec<f64>> =
            texts.iter().map(|t| self.vectorizer.transform_text(t)).collect();
        self.model = Some(LogisticRegression::fit(&rows, labels, self.options)?);
        Ok(())
    }

    fn score_batch(&self, texts: &[&str]) -> Vec<f64> {
        let model = self.model.as_ref().expect("LogisticModel must be fitted before scoring");
        texts
            .iter()
            .map(|t| model.predict_proba(&self.vectorizer.transform_text(t)))
            .collect()
    }

    fn summary(&self) -> ModelSummary {
        let norm = self.model.as_ref().map_or(0.0, |m| {
            m.weights().iter().map(|w| w * w).sum::<f64>().sqrt()
        });
        ModelSummary {
            family: "logistic".to_string(),
            params: vec![
                ("dim".to_string(), self.vectorizer.dim() as f64),
                ("weight_norm".to_string(), norm),
                (
                    "intercept".to_string(),
                    self.model.as_ref().map_or(0.0, LogisticRegression::intercept),
                ),
            ],
        }
    }
}

/// Platt-calibrated wrapper: fits the inner model, then fits a
/// [`PlattScaler`] mapping the inner model's *training* scores to the
/// training labels. Calibration is a monotone map (`σ(a·s + b)`), so the
/// order of scores — and with it every quantile stratification and
/// allocation ABae derives from them — is preserved whenever the fitted
/// slope is positive (the case for any informative inner model).
#[derive(Debug, Clone)]
pub struct Calibrated<M> {
    inner: M,
    scaler: Option<PlattScaler>,
}

impl<M: ProxyModel> Calibrated<M> {
    /// Wraps an (unfitted) inner model.
    pub fn new(inner: M) -> Self {
        Self { inner, scaler: None }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The fitted Platt scaler, after [`ProxyModel::fit`].
    pub fn scaler(&self) -> Option<&PlattScaler> {
        self.scaler.as_ref()
    }
}

impl<M: ProxyModel> ProxyModel for Calibrated<M> {
    fn fit(&mut self, texts: &[&str], labels: &[bool]) -> Result<(), TrainError> {
        check_training_set(texts, labels)?;
        self.inner.fit(texts, labels)?;
        let raw = self.inner.score_batch(texts);
        self.scaler = Some(PlattScaler::fit(&raw, labels)?);
        Ok(())
    }

    fn score_batch(&self, texts: &[&str]) -> Vec<f64> {
        let scaler =
            self.scaler.as_ref().expect("Calibrated model must be fitted before scoring");
        self.inner.score_batch(texts).into_iter().map(|s| scaler.calibrate(s)).collect()
    }

    fn summary(&self) -> ModelSummary {
        let inner = self.inner.summary();
        let mut params = vec![
            (
                "platt_slope".to_string(),
                self.scaler.as_ref().map_or(0.0, PlattScaler::slope),
            ),
            (
                "platt_intercept".to_string(),
                self.scaler.as_ref().map_or(0.0, PlattScaler::intercept),
            ),
        ];
        params.extend(inner.params);
        ModelSummary { family: format!("platt({})", inner.family), params }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::expected_calibration_error;
    use crate::metrics::auc;

    /// A tiny deterministic spam-ish corpus: spam drawn from one
    /// vocabulary, ham from another, with a controllable overlap.
    fn corpus(n: usize) -> (Vec<String>, Vec<bool>) {
        let spam = ["money", "winner", "claim", "free", "lottery"];
        let ham = ["meeting", "report", "agenda", "notes", "budget"];
        let mut texts = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let is_spam = i % 3 == 0;
            let (main, other) = if is_spam { (&spam, &ham) } else { (&ham, &spam) };
            // Mostly class vocabulary, with a rotating off-class token.
            let mut toks = vec![
                main[i % main.len()],
                main[(i / 2) % main.len()],
                main[(i / 3) % main.len()],
            ];
            if i % 4 == 0 {
                toks.push(other[i % other.len()]);
            }
            texts.push(toks.join(" "));
            labels.push(is_spam);
        }
        (texts, labels)
    }

    fn fit_on_corpus<M: ProxyModel>(model: &mut M, n: usize) -> (Vec<f64>, Vec<bool>) {
        let (texts, labels) = corpus(n);
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        model.fit(&refs, &labels).expect("fit succeeds");
        (model.score_batch(&refs), labels)
    }

    #[test]
    fn keyword_model_learns_discriminative_tokens() {
        let mut model = KeywordModel::new();
        let (scores, labels) = fit_on_corpus(&mut model, 600);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        let a = auc(&scores, &labels).expect("both classes present");
        assert!(a > 0.9, "keyword AUC {a}");
        // The learned list is dominated by class vocabulary with
        // positive weight on spam tokens.
        let kw = model.keywords();
        assert!(!kw.is_empty() && kw.len() <= KeywordModel::DEFAULT_MAX_KEYWORDS);
        let money = kw.iter().find(|(k, _)| *k == "money").expect("spam token kept");
        assert!(money.1 > 0.0, "spam token weight {}", money.1);
    }

    #[test]
    fn logistic_model_beats_chance_and_is_deterministic() {
        let mut model = LogisticModel::with_dim(64);
        let (scores, labels) = fit_on_corpus(&mut model, 600);
        let a = auc(&scores, &labels).expect("both classes present");
        assert!(a > 0.9, "logistic AUC {a}");
        // Deterministic batch scoring, and score == one-element batch.
        let (texts, _) = corpus(600);
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        assert_eq!(model.score_batch(&refs), scores);
        assert_eq!(model.score(refs[0]), scores[0]);
    }

    #[test]
    fn fit_rejects_bad_inputs_across_families() {
        for model in [
            &mut KeywordModel::new() as &mut dyn ProxyModel,
            &mut LogisticModel::new(),
            &mut Calibrated::new(LogisticModel::new()),
        ] {
            assert_eq!(model.fit(&[], &[]), Err(TrainError::EmptyTrainingSet));
            assert_eq!(model.fit(&["a"], &[true, false]), Err(TrainError::LengthMismatch));
        }
    }

    #[test]
    fn summaries_render_compactly() {
        let mut model = Calibrated::new(KeywordModel::with_max_keywords(8));
        fit_on_corpus(&mut model, 300);
        let summary = model.summary();
        assert_eq!(summary.family, "platt(keyword)");
        let rendered = summary.to_string();
        assert!(rendered.starts_with("platt(keyword)("), "{rendered}");
        assert!(rendered.contains("platt_slope="), "{rendered}");
        assert!(rendered.contains("keywords="), "{rendered}");
    }

    #[test]
    fn calibration_improves_a_miscalibrated_model_without_reordering() {
        // The raw logistic model over this corpus is overconfident (tiny
        // training loss → scores near 0/1); deliberately miscalibrate
        // further by fitting on a corpus whose labels are noisy at the
        // boundary, then check the Platt wrapper tracks empirical rates
        // better while preserving the score order.
        let (texts, labels) = corpus(900);
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let mut raw = KeywordModel::new();
        raw.fit(&refs, &labels).unwrap();
        let mut cal = Calibrated::new(KeywordModel::new());
        cal.fit(&refs, &labels).unwrap();

        let raw_scores = raw.score_batch(&refs);
        let cal_scores = cal.score_batch(&refs);
        let ece_raw = expected_calibration_error(&raw_scores, &labels, 10);
        let ece_cal = expected_calibration_error(&cal_scores, &labels, 10);
        assert!(ece_cal <= ece_raw + 1e-9, "raw {ece_raw}, calibrated {ece_cal}");

        // Monotone: pairwise order of scores is preserved.
        assert!(cal.scaler().unwrap().slope() > 0.0);
        for i in 1..raw_scores.len() {
            let raw_cmp = raw_scores[i - 1].total_cmp(&raw_scores[i]);
            let cal_cmp = cal_scores[i - 1].total_cmp(&cal_scores[i]);
            if raw_cmp != std::cmp::Ordering::Equal {
                assert_eq!(raw_cmp, cal_cmp, "order flipped at {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be fitted")]
    fn scoring_before_fit_panics() {
        let _ = LogisticModel::new().score("anything");
    }
}

#[cfg(test)]
mod properties {
    use crate::calibration::{expected_calibration_error, PlattScaler};
    use proptest::prelude::*;

    proptest! {
        /// Platt calibration is a monotone map: for any fitted scaler,
        /// the calibrated scores of an increasing grid are themselves
        /// monotone (non-decreasing when the slope is non-negative,
        /// non-increasing otherwise). Stratum order — and therefore
        /// ABae's allocation — is preserved whenever the slope is
        /// positive.
        #[test]
        fn platt_calibration_is_monotone(
            // Raw scores with a positive-rate gradient: the label rule
            // makes positives more common at high scores, but arbitrary
            // cut/noise parameters vary how miscalibrated the raw score
            // is.
            n in 20usize..200,
            cut in 0.1f64..0.9,
            flip_every in 3usize..17,
        ) {
            let scores: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
            let labels: Vec<bool> = (0..n)
                .map(|i| {
                    let base = scores[i] > cut;
                    if i % flip_every == 0 { !base } else { base }
                })
                .collect();
            prop_assume!(labels.iter().any(|&l| l) && labels.iter().any(|&l| !l));
            let scaler = PlattScaler::fit(&scores, &labels).expect("fit succeeds");
            let grid: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
            let cal: Vec<f64> = grid.iter().map(|&s| scaler.calibrate(s)).collect();
            let increasing = scaler.slope() >= 0.0;
            for w in cal.windows(2) {
                if increasing {
                    prop_assert!(w[1] >= w[0] - 1e-12, "not monotone up: {w:?}");
                } else {
                    prop_assert!(w[1] <= w[0] + 1e-12, "not monotone down: {w:?}");
                }
            }
            // All calibrated values are probabilities.
            for &c in &cal {
                prop_assert!((0.0..=1.0).contains(&c));
            }
        }

        /// Calibrating a deliberately miscalibrated proxy reduces the
        /// expected calibration error: the synthetic proxy reports `s`
        /// while the true positive rate is `s^2` (overconfident at the
        /// low end), with the positives placed deterministically inside
        /// each score bucket.
        #[test]
        fn calibration_reduces_ece_of_overconfident_proxy(
            buckets in 8usize..16,
            per_bucket in 40usize..120,
        ) {
            let mut scores = Vec::new();
            let mut labels = Vec::new();
            for b in 0..buckets {
                let s = (b as f64 + 0.5) / buckets as f64;
                // True rate s^2 < s: the raw score is overconfident.
                let positives =
                    ((s * s) * per_bucket as f64).round() as usize;
                for i in 0..per_bucket {
                    scores.push(s);
                    labels.push(i < positives);
                }
            }
            let ece_raw = expected_calibration_error(&scores, &labels, buckets);
            prop_assume!(ece_raw > 0.02); // genuinely miscalibrated
            let scaler = PlattScaler::fit(&scores, &labels).expect("fit succeeds");
            let cal: Vec<f64> = scores.iter().map(|&s| scaler.calibrate(s)).collect();
            let ece_cal = expected_calibration_error(&cal, &labels, buckets);
            prop_assert!(
                ece_cal < ece_raw,
                "ECE should drop: raw {ece_raw}, calibrated {ece_cal}"
            );
        }
    }
}
