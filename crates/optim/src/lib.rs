//! Numerical optimization substrate for the ABae reproduction.
//!
//! ABae-GroupBy allocates Stage-2 samples across per-group stratifications
//! by minimizing a minimax mean-squared-error objective over the probability
//! simplex (paper Eq. 10 and Eq. 11), solved with "the Nelder-Mead simplex
//! algorithm" (§3.2). The paper's implementation reaches for
//! `scipy.optimize`; this crate rebuilds the solver from scratch:
//!
//! * [`nelder_mead`] — the derivative-free Nelder–Mead downhill simplex
//!   method with adaptive parameters and domain-shrink convergence tests.
//! * [`simplex`] — a softmax reparametrization that turns constrained
//!   minimization over `{Λ ∈ [0,1]^G : Σ Λ = 1}` into unconstrained
//!   minimization, plus helpers shared by the group-by allocator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod nelder_mead;
pub mod simplex;

pub use nelder_mead::{minimize, NelderMeadOptions, OptimResult};
pub use simplex::{minimize_on_simplex, softmax, SimplexOptions};
