//! Nelder–Mead downhill simplex minimization.
//!
//! A faithful implementation of the classic derivative-free method with the
//! adaptive parameter schedule of Gao & Han (2012), which improves behaviour
//! in higher dimensions (the group-by objectives have one dimension per
//! group). Convergence is declared when both the function-value spread and
//! the simplex diameter fall below tolerances, or the evaluation budget is
//! exhausted.

/// Options controlling the Nelder–Mead run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Convergence tolerance on the spread of simplex function values.
    pub f_tol: f64,
    /// Convergence tolerance on the simplex diameter.
    pub x_tol: f64,
    /// Size of the initial simplex around the starting point.
    pub initial_step: f64,
    /// Use the Gao–Han adaptive coefficients (recommended for dim ≥ 2).
    pub adaptive: bool,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        Self { max_evals: 20_000, f_tol: 1e-10, x_tol: 1e-10, initial_step: 0.1, adaptive: true }
    }
}

/// Result of a minimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of objective evaluations used.
    pub evals: usize,
    /// True when the tolerance test passed before the budget ran out.
    pub converged: bool,
}

/// Minimizes `f` starting from `x0` with the Nelder–Mead simplex method.
///
/// `f` may return non-finite values (e.g. +∞ for infeasible points); they
/// are ordered to the bad end of the simplex, so penalty-style constraint
/// handling works out of the box.
///
/// ```
/// use abae_optim::{minimize, NelderMeadOptions};
///
/// let result = minimize(
///     |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
///     &[0.0, 0.0],
///     NelderMeadOptions::default(),
/// );
/// assert!(result.converged);
/// assert!((result.x[0] - 3.0).abs() < 1e-4);
/// assert!((result.x[1] + 1.0).abs() < 1e-4);
/// ```
///
/// # Panics
/// Panics if `x0` is empty — a zero-dimensional problem is a caller bug.
pub fn minimize<F>(mut f: F, x0: &[f64], opts: NelderMeadOptions) -> OptimResult
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(!x0.is_empty(), "Nelder-Mead needs at least one dimension");
    let dim = x0.len();
    let n = dim as f64;

    // Gao–Han adaptive coefficients (fall back to the textbook constants).
    let (alpha, gamma, rho, sigma) = if opts.adaptive && dim >= 2 {
        (1.0, 1.0 + 2.0 / n, 0.75 - 1.0 / (2.0 * n), 1.0 - 1.0 / n)
    } else {
        (1.0, 2.0, 0.5, 0.5)
    };

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(dim + 1);
    simplex.push(x0.to_vec());
    for i in 0..dim {
        let mut v = x0.to_vec();
        let step = if v[i].abs() > 1e-12 { opts.initial_step * v[i].abs() } else { opts.initial_step };
        v[i] += step;
        simplex.push(v);
    }

    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    let mut fvals: Vec<f64> = simplex.iter().map(|v| eval(v, &mut evals)).collect();

    let order_indices = |fvals: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..fvals.len()).collect();
        idx.sort_by(|&a, &b| fvals[a].total_cmp(&fvals[b]));
        idx
    };

    let mut converged = false;
    while evals < opts.max_evals {
        // Sort the simplex: best ... worst.
        let idx = order_indices(&fvals);
        let reordered: Vec<Vec<f64>> = idx.iter().map(|&i| simplex[i].clone()).collect();
        let reordered_f: Vec<f64> = idx.iter().map(|&i| fvals[i]).collect();
        simplex = reordered;
        fvals = reordered_f;

        // Convergence: function spread and simplex diameter.
        let f_spread = fvals[dim] - fvals[0];
        let x_spread = simplex[1..]
            .iter()
            .map(|v| {
                v.iter()
                    .zip(&simplex[0])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        if f_spread.abs() <= opts.f_tol && x_spread <= opts.x_tol {
            converged = true;
            break;
        }

        // Centroid of all points but the worst.
        let mut centroid = vec![0.0; dim];
        for v in &simplex[..dim] {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x;
            }
        }
        for c in centroid.iter_mut() {
            *c /= n;
        }

        let worst = simplex[dim].clone();
        let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
        };

        // Reflection.
        let xr = lerp(&centroid, &worst, -alpha);
        let fr = eval(&xr, &mut evals);
        if fr < fvals[0] {
            // Expansion.
            let xe = lerp(&centroid, &worst, -alpha * gamma);
            let fe = eval(&xe, &mut evals);
            if fe < fr {
                simplex[dim] = xe;
                fvals[dim] = fe;
            } else {
                simplex[dim] = xr;
                fvals[dim] = fr;
            }
            continue;
        }
        if fr < fvals[dim - 1] {
            simplex[dim] = xr;
            fvals[dim] = fr;
            continue;
        }
        // Contraction (outside if the reflection improved on the worst,
        // inside otherwise).
        let (xc, fc) = if fr < fvals[dim] {
            let xc = lerp(&centroid, &xr, rho);
            let fc = eval(&xc, &mut evals);
            (xc, fc)
        } else {
            let xc = lerp(&centroid, &worst, rho);
            let fc = eval(&xc, &mut evals);
            (xc, fc)
        };
        if fc < fvals[dim].min(fr) {
            simplex[dim] = xc;
            fvals[dim] = fc;
            continue;
        }
        // Shrink toward the best vertex.
        let best = simplex[0].clone();
        for i in 1..=dim {
            simplex[i] = lerp(&best, &simplex[i], sigma);
            fvals[i] = eval(&simplex[i], &mut evals);
        }
    }

    let idx = order_indices(&fvals);
    OptimResult {
        x: simplex[idx[0]].clone(),
        fx: fvals[idx[0]],
        evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_1d_quadratic() {
        let r = minimize(|x| (x[0] - 3.0).powi(2), &[0.0], NelderMeadOptions::default());
        assert!(r.converged);
        assert!((r.x[0] - 3.0).abs() < 1e-4, "x = {:?}", r.x);
    }

    #[test]
    fn minimizes_shifted_sphere_5d() {
        let target = [1.0, -2.0, 0.5, 3.0, -0.25];
        let r = minimize(
            |x| x.iter().zip(&target).map(|(a, b)| (a - b).powi(2)).sum(),
            &[0.0; 5],
            NelderMeadOptions { max_evals: 50_000, ..Default::default() },
        );
        for (got, want) in r.x.iter().zip(&target) {
            assert!((got - want).abs() < 1e-3, "x = {:?}", r.x);
        }
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = minimize(
            rosen,
            &[-1.2, 1.0],
            NelderMeadOptions { max_evals: 50_000, ..Default::default() },
        );
        assert!((r.x[0] - 1.0).abs() < 1e-3, "x = {:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 1e-3, "x = {:?}", r.x);
        assert!(r.fx < 1e-6);
    }

    #[test]
    fn handles_infinite_penalty_regions() {
        // Constrained problem via penalty: minimize x^2 subject to x >= 1.
        let f = |x: &[f64]| if x[0] < 1.0 { f64::INFINITY } else { x[0] * x[0] };
        let r = minimize(f, &[5.0], NelderMeadOptions::default());
        assert!((r.x[0] - 1.0).abs() < 1e-3, "x = {:?}", r.x);
    }

    #[test]
    fn nan_objective_is_treated_as_infinity() {
        let f = |x: &[f64]| if x[0] < 0.0 { f64::NAN } else { (x[0] - 2.0).powi(2) };
        let r = minimize(f, &[1.0], NelderMeadOptions::default());
        assert!((r.x[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn respects_eval_budget() {
        let mut count = 0usize;
        let r = minimize(
            |x| {
                count += 1;
                x[0].powi(2)
            },
            &[100.0],
            NelderMeadOptions { max_evals: 10, ..Default::default() },
        );
        assert!(!r.converged);
        assert!(count <= 12, "count {count}"); // initial simplex + a step
        assert_eq!(r.evals, count);
    }

    #[test]
    fn starts_at_minimum_converges_immediately() {
        let r = minimize(|x| (x[0]).powi(2) + x[1].powi(2), &[0.0, 0.0], NelderMeadOptions::default());
        assert!(r.converged);
        assert!(r.fx < 1e-8);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_start_panics() {
        let _ = minimize(|_| 0.0, &[], NelderMeadOptions::default());
    }

    #[test]
    fn non_adaptive_mode_also_converges() {
        let r = minimize(
            |x| (x[0] - 1.0).powi(2) + (x[1] + 1.0).powi(2),
            &[4.0, 4.0],
            NelderMeadOptions { adaptive: false, ..Default::default() },
        );
        assert!((r.x[0] - 1.0).abs() < 1e-4);
        assert!((r.x[1] + 1.0).abs() < 1e-4);
    }
}
