//! Minimization over the probability simplex.
//!
//! The group-by objectives (paper Eq. 10/11) constrain the allocation to
//! `Λ ∈ [0,1]^G` with `Σ_l Λ_l = 1`. We reparametrize through a softmax —
//! `Λ = softmax(z)`, `z ∈ ℝ^G` — so Nelder–Mead can run unconstrained. The
//! map is smooth and surjective onto the open simplex; the redundant degree
//! of freedom (softmax is shift-invariant) is harmless for a direct-search
//! method.

use crate::nelder_mead::{minimize, NelderMeadOptions, OptimResult};

/// Options for simplex-constrained minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexOptions {
    /// Underlying Nelder–Mead options.
    pub nm: NelderMeadOptions,
    /// Lower bound applied to each coordinate after optimization, to keep
    /// allocations strictly positive (a zero allocation would divide by zero
    /// in the error objectives). The result is re-normalized.
    pub min_weight: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self { nm: NelderMeadOptions::default(), min_weight: 1e-6 }
    }
}

/// Numerically stable softmax.
pub fn softmax(z: &[f64]) -> Vec<f64> {
    let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = z.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    if sum == 0.0 || !sum.is_finite() {
        return vec![1.0 / z.len() as f64; z.len()];
    }
    exps.iter().map(|&e| e / sum).collect()
}

/// Minimizes `f(Λ)` over the probability simplex of dimension `g`, starting
/// from the uniform allocation.
///
/// Returns the optimal weights (summing to 1, each at least
/// `opts.min_weight` before re-normalization) together with the raw
/// optimizer result.
///
/// # Panics
/// Panics if `g == 0`.
pub fn minimize_on_simplex<F>(mut f: F, g: usize, opts: SimplexOptions) -> (Vec<f64>, OptimResult)
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(g > 0, "simplex minimization needs at least one coordinate");
    if g == 1 {
        let lambda = vec![1.0];
        let fx = f(&lambda);
        return (
            lambda.clone(),
            OptimResult { x: lambda, fx, evals: 1, converged: true },
        );
    }
    let result = minimize(|z| f(&softmax(z)), &vec![0.0; g], opts.nm);
    let mut lambda = softmax(&result.x);
    // Clamp away zeros, then re-normalize.
    for w in lambda.iter_mut() {
        *w = w.max(opts.min_weight);
    }
    let total: f64 = lambda.iter().sum();
    for w in lambda.iter_mut() {
        *w /= total;
    }
    (lambda, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one_and_is_monotone() {
        let s = softmax(&[0.0, 1.0, 2.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[0] < s[1] && s[1] < s[2]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_handles_extreme_values() {
        let s = softmax(&[1e308, 0.0]);
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn single_group_is_trivially_one() {
        let (lambda, r) = minimize_on_simplex(|l| l[0] * 2.0, 1, SimplexOptions::default());
        assert_eq!(lambda, vec![1.0]);
        assert!(r.converged);
    }

    #[test]
    fn minimax_ratio_objective_recovers_proportional_allocation() {
        // minimize max_g (a_g / Λ_g): at the optimum all a_g/Λ_g are equal,
        // so Λ_g ∝ a_g. This is exactly the structure of paper Eq. 11.
        let a = [4.0, 1.0, 2.0, 1.0];
        let (lambda, _) = minimize_on_simplex(
            |l| {
                a.iter()
                    .zip(l)
                    .map(|(ai, li)| ai / li.max(1e-12))
                    .fold(f64::NEG_INFINITY, f64::max)
            },
            a.len(),
            SimplexOptions::default(),
        );
        let total: f64 = a.iter().sum();
        for (got, ai) in lambda.iter().zip(&a) {
            let want = ai / total;
            assert!((got - want).abs() < 5e-3, "lambda {lambda:?}");
        }
    }

    #[test]
    fn weighted_sum_objective_puts_mass_on_cheapest_group() {
        // minimize Σ c_g Λ_g → all mass on argmin c (up to the min_weight
        // clamp).
        let c = [5.0, 1.0, 3.0];
        let (lambda, _) = minimize_on_simplex(
            |l| c.iter().zip(l).map(|(ci, li)| ci * li).sum(),
            3,
            SimplexOptions::default(),
        );
        assert!(lambda[1] > 0.95, "lambda {lambda:?}");
    }

    #[test]
    fn inverse_sum_objective_matches_sqrt_rule() {
        // minimize Σ a_g / Λ_g has the closed form Λ_g ∝ √a_g.
        let a = [9.0, 4.0, 1.0];
        let (lambda, _) = minimize_on_simplex(
            |l| a.iter().zip(l).map(|(ai, li)| ai / li.max(1e-12)).sum(),
            3,
            SimplexOptions::default(),
        );
        let sqrt_sum: f64 = a.iter().map(|v| v.sqrt()).sum();
        for (got, ai) in lambda.iter().zip(&a) {
            let want = ai.sqrt() / sqrt_sum;
            assert!((got - want).abs() < 5e-3, "lambda {lambda:?}");
        }
    }

    proptest! {
        #[test]
        fn result_is_always_a_distribution(
            coeffs in proptest::collection::vec(0.1f64..10.0, 2..6),
        ) {
            let g = coeffs.len();
            let (lambda, _) = minimize_on_simplex(
                |l| coeffs.iter().zip(l).map(|(c, li)| c / li.max(1e-12)).sum(),
                g,
                SimplexOptions::default(),
            );
            prop_assert!((lambda.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(lambda.iter().all(|&w| w > 0.0 && w <= 1.0));
        }
    }
}
