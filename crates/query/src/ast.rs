//! Abstract syntax tree for the ABae SQL dialect.

/// Aggregate functions of Figure 1 (`PERCENTAGE` is the paper's celeba
/// query sugar: an `AVG` over a 0/1 indicator, reported in percent —
/// both the estimate and its CI are scaled by 100, unconditionally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `AVG(expr)`
    Avg,
    /// `SUM(expr)`
    Sum,
    /// `COUNT(expr | *)`
    Count,
    /// `PERCENTAGE(expr)` — executed as `AVG`, scaled to percent.
    Percentage,
}

impl AggFunc {
    /// Maps to the core aggregate.
    pub fn to_core(self) -> abae_core::Aggregate {
        match self {
            AggFunc::Avg | AggFunc::Percentage => abae_core::Aggregate::Avg,
            AggFunc::Sum => abae_core::Aggregate::Sum,
            AggFunc::Count => abae_core::Aggregate::Count,
        }
    }
}

/// A predicate atom: a named expensive predicate, possibly written as a
/// function call and/or compared to a literal. The atom's *canonical key*
/// is what the catalog resolves:
///
/// * `is_spam(text)` → `is_spam`
/// * `hair_color(img) = 'blonde'` → `hair_color=blonde`
/// * `count_cars(frame) > 0` → `count_cars>0`
#[derive(Debug, Clone, PartialEq)]
pub struct PredAtom {
    /// Function or column name.
    pub name: String,
    /// Call arguments (recorded for display; resolution uses the key).
    pub args: Vec<String>,
    /// Optional comparison suffix, e.g. `=blonde` or `>0`.
    pub comparison: Option<String>,
}

impl PredAtom {
    /// The canonical key used for catalog resolution.
    pub fn key(&self) -> String {
        match &self.comparison {
            Some(c) => format!("{}{}", self.name, c),
            None => self.name.clone(),
        }
    }
}

/// Boolean filter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolExpr {
    /// An expensive predicate atom.
    Atom(PredAtom),
    /// Logical negation.
    Not(Box<BoolExpr>),
    /// Logical conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Logical disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// Collects the distinct atom keys, left to right.
    pub fn atom_keys(&self) -> Vec<String> {
        let mut keys = Vec::new();
        self.collect_keys(&mut keys);
        keys
    }

    fn collect_keys(&self, out: &mut Vec<String>) {
        match self {
            BoolExpr::Atom(a) => {
                let key = a.key();
                if !out.contains(&key) {
                    out.push(key);
                }
            }
            BoolExpr::Not(e) => e.collect_keys(out),
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                a.collect_keys(out);
                b.collect_keys(out);
            }
        }
    }

    /// Lowers to a core predicate expression given the atom-key → predicate
    /// index mapping produced by the binder.
    pub fn to_pred_expr(&self, index_of: &dyn Fn(&str) -> usize) -> abae_core::multipred::PredExpr {
        use abae_core::multipred::PredExpr;
        match self {
            BoolExpr::Atom(a) => PredExpr::Pred(index_of(&a.key())),
            BoolExpr::Not(e) => PredExpr::not(e.to_pred_expr(index_of)),
            BoolExpr::And(a, b) => {
                PredExpr::and(a.to_pred_expr(index_of), b.to_pred_expr(index_of))
            }
            BoolExpr::Or(a, b) => {
                PredExpr::or(a.to_pred_expr(index_of), b.to_pred_expr(index_of))
            }
        }
    }
}

/// One aggregate of a `SELECT` list: the function and the aggregated
/// expression as written (`views`, `count_cars(frame)`, `*`). The dataset
/// substrate carries one statistic column per table; the expression is
/// validated for display but not re-computed.
#[derive(Debug, Clone, PartialEq)]
pub struct AggItem {
    /// Aggregate function.
    pub func: AggFunc,
    /// Aggregated expression as written.
    pub expr: String,
}

/// Which tunable clauses were written as `?` placeholders instead of
/// literals. A placeholder query cannot be executed directly — it must be
/// prepared and the parameter bound (`Prepared::with_budget` /
/// `Prepared::with_probability`), which is how a dashboard re-runs one
/// parsed-and-planned statement under many budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Placeholders {
    /// The query was written `ORACLE LIMIT ?`.
    pub oracle_limit: bool,
    /// The query was written `WITH PROBABILITY ?`.
    pub probability: bool,
    /// The query was written `UNTIL CI WIDTH < ?`.
    pub until_width: bool,
}

impl Placeholders {
    /// Whether any clause is an unbound placeholder.
    pub fn any(&self) -> bool {
        self.oracle_limit || self.probability || self.until_width
    }
}

/// A parsed ABae query (Figure 1), extended with multi-aggregate `SELECT`
/// lists: `SELECT COUNT(*), SUM(views), AVG(views) FROM ...` answers every
/// aggregate from one shared labeling pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Aggregates of the `SELECT` list, in query order (at least one).
    pub aggs: Vec<AggItem>,
    /// Source table name.
    pub table: String,
    /// Filter over expensive predicates.
    pub predicate: BoolExpr,
    /// Optional group-by key expression.
    pub group_by: Option<String>,
    /// Early-stop CI width target (`UNTIL CI WIDTH < x MAX`): the query
    /// stops spending oracle budget once the confidence interval is
    /// narrower than `x`, capped by the `ORACLE LIMIT` that follows.
    /// `None` when the clause is absent (blocking execution); `Some(0.0)`
    /// when written as the `?` placeholder — check [`Query::placeholders`].
    pub until_width: Option<f64>,
    /// Oracle budget (`ORACLE LIMIT o`; `0` when written as the `?`
    /// placeholder — check [`Query::placeholders`]).
    pub oracle_limit: usize,
    /// Proxy name (`USING proxy`); `None` lets the executor use each
    /// predicate's own proxy column.
    pub proxy: Option<String>,
    /// Success probability (`WITH PROBABILITY p`; the `0.95` default when
    /// written as the `?` placeholder — check [`Query::placeholders`]).
    pub probability: f64,
    /// Which clauses were written as `?` placeholders. Placeholder values
    /// must be bound before execution; the literal fields above hold inert
    /// defaults for them.
    pub placeholders: Placeholders,
}

impl Query {
    /// The first (primary) aggregate of the `SELECT` list.
    pub fn primary_agg(&self) -> &AggItem {
        self.aggs.first().expect("the parser guarantees at least one aggregate")
    }
}

/// Trainable proxy-model family named in `CREATE PROXY ... USING <family>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyFamily {
    /// Learned keyword list (`abae_ml::KeywordModel`).
    Keyword,
    /// Logistic regression over hashed token features
    /// (`abae_ml::LogisticModel`).
    Logistic,
}

impl ProxyFamily {
    /// The family's SQL keyword, lowercase.
    pub fn keyword(self) -> &'static str {
        match self {
            ProxyFamily::Keyword => "keyword",
            ProxyFamily::Logistic => "logistic",
        }
    }
}

/// A parsed `CREATE PROXY` statement:
///
/// ```text
/// CREATE PROXY <name> ON <table>(<predicate>)
///     [USING {keyword | logistic}] [CALIBRATED] [TRAIN LIMIT n]
/// ```
///
/// Execution draws `TRAIN LIMIT` records, labels them through the oracle
/// (charging the budget), fits the named family — or, with `USING`
/// omitted, fits every family and keeps the §3.4 predicted-MSE winner —
/// scores the whole table in parallel batches, and registers the artifact
/// with the engine's catalog so later queries can name it with `USING`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateProxyStmt {
    /// Artifact name later queries reference with `USING <name>`.
    pub name: String,
    /// Table to train and score on.
    pub table: String,
    /// Predicate atom key supplying the training labels (resolved through
    /// the catalog like a `WHERE` atom).
    pub predicate: String,
    /// Model family; `None` auto-selects by predicted MSE (§3.4).
    pub family: Option<ProxyFamily>,
    /// Whether to Platt-calibrate the fitted model on the training draw.
    pub calibrated: bool,
    /// Training labels to buy; `None` uses the engine default.
    pub train_limit: Option<usize>,
}

/// One parsed statement of the dialect: a Figure-1 query, or one of the
/// proxy-management statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` query.
    Select(Query),
    /// `CREATE PROXY ...` — train and register a proxy model in-engine.
    CreateProxy(CreateProxyStmt),
    /// `SHOW PROXIES [FROM table]` — list registered trained proxies.
    ShowProxies(Option<String>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_keys_are_canonical() {
        let plain = PredAtom { name: "is_spam".into(), args: vec!["text".into()], comparison: None };
        assert_eq!(plain.key(), "is_spam");
        let eq = PredAtom {
            name: "hair_color".into(),
            args: vec!["img".into()],
            comparison: Some("=blonde".into()),
        };
        assert_eq!(eq.key(), "hair_color=blonde");
    }

    #[test]
    fn atom_keys_deduplicate() {
        let atom = |n: &str| {
            BoolExpr::Atom(PredAtom { name: n.into(), args: vec![], comparison: None })
        };
        let expr = BoolExpr::And(
            Box::new(atom("a")),
            Box::new(BoolExpr::Or(Box::new(atom("b")), Box::new(atom("a")))),
        );
        assert_eq!(expr.atom_keys(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn lowering_preserves_structure() {
        use abae_core::multipred::PredExpr;
        let atom = |n: &str| {
            BoolExpr::Atom(PredAtom { name: n.into(), args: vec![], comparison: None })
        };
        let expr = BoolExpr::Not(Box::new(BoolExpr::And(
            Box::new(atom("x")),
            Box::new(atom("y")),
        )));
        let lowered = expr.to_pred_expr(&|key| if key == "x" { 0 } else { 1 });
        assert_eq!(
            lowered,
            PredExpr::not(PredExpr::and(PredExpr::Pred(0), PredExpr::Pred(1)))
        );
    }

    #[test]
    fn percentage_maps_to_avg() {
        assert_eq!(AggFunc::Percentage.to_core(), abae_core::Aggregate::Avg);
        assert_eq!(AggFunc::Count.to_core(), abae_core::Aggregate::Count);
    }
}
