//! Catalog: table registry and predicate-atom bindings.
//!
//! A query's predicate atoms (`hair_color(img) = 'blonde'`) must resolve to
//! predicate columns of the target table (`blonde_hair`). Resolution is by
//! exact column name first, then by explicit bindings the application
//! registers — the moral equivalent of the paper's setup step where the
//! user supplies the oracle and proxy for each predicate.

use abae_data::{LabelStore, ProxyRegistry, Table};
use std::collections::BTreeMap;

/// A registry of tables and atom-key bindings, optionally carrying a
/// cross-query [`LabelStore`] so repeated queries reuse oracle verdicts,
/// and always carrying a [`ProxyRegistry`] of in-engine-trained proxy
/// artifacts (`CREATE PROXY`).
///
/// Shared-ownership contract: a catalog is `Send + Sync` (tables and
/// bindings are plain immutable data; the label store and proxy registry
/// synchronize internally), which is what lets [`crate::Engine`] freeze
/// one catalog behind an `Arc` and serve it to any number of concurrent
/// sessions. Structural mutation (`register_table`, `bind_predicate`, the
/// cache toggles) is `&mut self` and therefore happens-before the engine
/// is built; proxy registration goes through the internally-locked
/// registry, so sessions can train proxies against a frozen catalog.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    bindings: BTreeMap<(String, String), String>,
    label_store: Option<LabelStore>,
    proxies: ProxyRegistry,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table under its own name. Replaces any previous table
    /// with the same name, dropping any label-cache verdicts *and* trained
    /// proxy artifacts bought against the replaced table's data — both
    /// would otherwise answer queries over the new data.
    pub fn register_table(&mut self, table: Table) {
        if let Some(store) = &self.label_store {
            store.invalidate_table(table.name());
        }
        self.proxies.invalidate_table(table.name());
        self.tables.insert(table.name().to_string(), table);
    }

    /// Binds a predicate atom key (e.g. `hair_color=blonde`) to a predicate
    /// column (e.g. `blonde_hair`) of `table`.
    pub fn bind_predicate(
        &mut self,
        table: impl Into<String>,
        atom_key: impl Into<String>,
        column: impl Into<String>,
    ) {
        self.bindings.insert((table.into(), atom_key.into()), column.into());
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Resolves an atom key to a predicate column name for `table`.
    pub fn resolve(&self, table: &str, atom_key: &str) -> Option<String> {
        if let Some(t) = self.tables.get(table) {
            if t.predicate(atom_key).is_ok() {
                return Some(atom_key.to_string());
            }
        }
        self.bindings.get(&(table.to_string(), atom_key.to_string())).cloned()
    }

    /// Atom keys explicitly bound for `table`, sorted (deterministic
    /// error listings).
    pub fn bound_keys(&self, table: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .bindings
            .keys()
            .filter(|(t, _)| t == table)
            .map(|(_, key)| key.clone())
            .collect();
        keys.sort();
        keys
    }

    /// Names of all registered tables (unordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Enables the cross-query oracle label cache: scalar queries executed
    /// against this catalog memoize every oracle verdict by `(table,
    /// predicate expression, record index)`, so repeated or overlapping
    /// queries spend oracle budget only on unseen records. Idempotent —
    /// calling it again keeps the existing store and its verdicts.
    pub fn enable_label_cache(&mut self) {
        if self.label_store.is_none() {
            self.label_store = Some(LabelStore::new());
        }
    }

    /// Drops the label cache (and every cached verdict), returning queries
    /// to always-fresh labeling.
    pub fn disable_label_cache(&mut self) {
        self.label_store = None;
    }

    /// The label store, when [`Catalog::enable_label_cache`] was called.
    pub fn label_store(&self) -> Option<&LabelStore> {
        self.label_store.as_ref()
    }

    /// The registry of in-engine-trained proxy artifacts. Internally
    /// synchronized: `CREATE PROXY` registers through a shared reference,
    /// so trained proxies appear on a catalog an engine has already
    /// frozen.
    pub fn proxy_registry(&self) -> &ProxyRegistry {
        &self.proxies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::builder("t", vec![1.0, 2.0])
            .predicate("is_spam", vec![true, false], vec![0.9, 0.1])
            .build()
            .unwrap()
    }

    #[test]
    fn exact_column_name_resolves_without_binding() {
        let mut cat = Catalog::new();
        cat.register_table(table());
        assert_eq!(cat.resolve("t", "is_spam"), Some("is_spam".to_string()));
    }

    #[test]
    fn bindings_resolve_canonical_atom_keys() {
        let mut cat = Catalog::new();
        cat.register_table(table());
        cat.bind_predicate("t", "sentiment=strongly positive", "is_spam");
        assert_eq!(
            cat.resolve("t", "sentiment=strongly positive"),
            Some("is_spam".to_string())
        );
    }

    #[test]
    fn unknown_keys_and_tables_resolve_to_none() {
        let mut cat = Catalog::new();
        cat.register_table(table());
        assert_eq!(cat.resolve("t", "nope"), None);
        assert_eq!(cat.resolve("unknown", "is_spam"), None);
        assert!(cat.table("unknown").is_none());
    }

    #[test]
    fn label_cache_knob_is_idempotent_and_droppable() {
        use abae_data::{CachedOracle, FnOracle, Labeled, Oracle as _};
        let mut cat = Catalog::new();
        assert!(cat.label_store().is_none());
        cat.enable_label_cache();
        {
            let store = cat.label_store().unwrap();
            let oracle = CachedOracle::new(
                FnOracle::new(|i| Labeled { matches: true, value: i as f64 }),
                store,
                "t",
                "p",
            );
            oracle.label_batch(&[1, 2, 3]);
        }
        // Re-enabling keeps the store and its verdicts.
        cat.enable_label_cache();
        assert_eq!(cat.label_store().unwrap().cached_verdicts("t", "p"), 3);
        cat.disable_label_cache();
        assert!(cat.label_store().is_none());
    }

    #[test]
    fn catalog_is_send_sync_for_engine_sharing() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Catalog>();
    }

    #[test]
    fn re_registering_replaces() {
        let mut cat = Catalog::new();
        cat.register_table(table());
        let other = Table::builder("t", vec![9.0]).build().unwrap();
        cat.register_table(other);
        assert_eq!(cat.table("t").unwrap().len(), 1);
        assert_eq!(cat.table_names(), vec!["t"]);
    }

    #[test]
    fn re_registering_drops_trained_proxies_of_that_table_only() {
        use abae_data::TrainedProxy;
        use abae_ml::ModelSummary;
        let trained = |tbl: &str, name: &str| TrainedProxy {
            name: name.to_string(),
            table: tbl.to_string(),
            predicate: "is_spam".to_string(),
            summary: ModelSummary { family: "keyword".to_string(), params: vec![] },
            calibrated: false,
            scores: vec![0.5, 0.5],
            train_limit: 2,
            oracle_spend: 2,
            ece: 0.0,
            auto_selected: false,
        };
        let mut cat = Catalog::new();
        cat.register_table(table());
        cat.register_table(Table::builder("u", vec![1.0]).build().unwrap());
        cat.proxy_registry().register(trained("t", "a"));
        cat.proxy_registry().register(trained("u", "b"));
        cat.register_table(table()); // replace `t`
        assert!(cat.proxy_registry().get("t", "a").is_none(), "stale scores must drop");
        assert!(cat.proxy_registry().get("u", "b").is_some(), "other tables unaffected");
    }
}
