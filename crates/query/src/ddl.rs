//! Proxy-management statements: `CREATE PROXY` and `SHOW PROXIES`.
//!
//! `CREATE PROXY` closes the loop the paper leaves outside the system:
//! instead of shipping a precomputed proxy column with the dataset, the
//! engine *trains* one. Execution, in order:
//!
//! 1. draw `TRAIN LIMIT` records uniformly without replacement with the
//!    session's RNG stream (so train-then-query replays bit-identically);
//! 2. label the draw through the predicate's oracle — charging the budget
//!    exactly like a query's labeling pass, and routed through the
//!    engine's label store when enabled, so training verdicts are the same
//!    cache entries later queries hit for free;
//! 3. fit the requested [`abae_ml::ProxyModel`] family (wrapped in
//!    [`abae_ml::Calibrated`] when `CALIBRATED` was asked for) — or, with
//!    `USING` omitted, fit *every* family on the same draw and keep the
//!    §3.4 predicted-MSE winner ([`abae_core::proxy_select`]), which costs
//!    no extra oracle calls because the pilot labels are shared;
//! 4. score the whole table in batches through
//!    [`abae_core::pipeline::map_batched`] — scoring parallelizes across
//!    `ABAE_THREADS` workers and reassembles in record order, so the
//!    materialized score column is bit-identical at any thread count;
//! 5. measure the expected calibration error of the fitted scores on the
//!    training draw and register the [`TrainedProxy`] artifact with the
//!    catalog, where `USING <name>` and `EXPLAIN` find it.

use crate::ast::{CreateProxyStmt, ProxyFamily};
use crate::catalog::Catalog;
use crate::engine::EngineOptions;
use crate::exec::QueryError;
use crate::plan::{governor_key, predicate_key, ExecCtx};
use abae_core::batcher::GovernedOracle;
use abae_core::multipred::{expression_oracle, PredExpr};
use abae_core::pipeline;
use abae_core::proxy_select::{rank_proxies, PilotSample};
use abae_data::columnar::StrColumn;
use abae_data::{CachedOracle, Labeled, Oracle, TrainedProxy};
use abae_ml::calibration::expected_calibration_error;
use abae_ml::proxy::{Calibrated, KeywordModel, LogisticModel, ProxyModel};
use abae_sampling::wor::sample_without_replacement;
use rand::Rng;
use std::sync::Arc;

/// Training labels bought when `TRAIN LIMIT` is omitted.
pub const DEFAULT_TRAIN_LIMIT: usize = 1_000;

/// Reliability bins used for the artifact's recorded ECE.
const ECE_BINS: usize = 10;

/// Fits one family (optionally Platt-calibrated) on the training draw.
fn fit_family(
    family: ProxyFamily,
    calibrated: bool,
    texts: &[&str],
    labels: &[bool],
) -> Result<Box<dyn ProxyModel>, QueryError> {
    fn boxed<M: ProxyModel + 'static>(
        mut model: M,
        texts: &[&str],
        labels: &[bool],
    ) -> Result<Box<dyn ProxyModel>, QueryError> {
        model.fit(texts, labels).map_err(QueryError::Train)?;
        Ok(Box::new(model))
    }
    match (family, calibrated) {
        (ProxyFamily::Keyword, false) => boxed(KeywordModel::new(), texts, labels),
        (ProxyFamily::Keyword, true) => {
            boxed(Calibrated::new(KeywordModel::new()), texts, labels)
        }
        (ProxyFamily::Logistic, false) => boxed(LogisticModel::new(), texts, labels),
        (ProxyFamily::Logistic, true) => {
            boxed(Calibrated::new(LogisticModel::new()), texts, labels)
        }
    }
}

/// Scores every record of the table through the batch pipeline, reading
/// texts straight out of the columnar string arena (zero-copy `&str`
/// views; no per-record `String` is materialized). Proxy scores must land
/// in `[0, 1]` (the table builder's invariant); the models emit sigmoid
/// outputs, and the clamp only guards float edges.
fn score_table(
    model: &dyn ProxyModel,
    texts: &StrColumn,
    opts: &EngineOptions,
) -> Vec<f64> {
    let all: Vec<usize> = (0..texts.len()).collect();
    pipeline::map_batched(&all, &opts.exec, |chunk| {
        let batch: Vec<&str> = chunk.iter().map(|&i| texts.get(i)).collect();
        model.score_batch(&batch).into_iter().map(|s| s.clamp(0.0, 1.0)).collect()
    })
}

/// Executes `CREATE PROXY`, registering the artifact with the catalog.
/// The RNG is the calling session's stream; everything else is
/// deterministic, so results are bit-identical for any thread count.
pub(crate) fn run_create_proxy<R: Rng + ?Sized>(
    catalog: &Catalog,
    stmt: &CreateProxyStmt,
    opts: &EngineOptions,
    rng: &mut R,
    ctx: &ExecCtx<'_>,
) -> Result<Arc<TrainedProxy>, QueryError> {
    let table = catalog
        .table(&stmt.table)
        .ok_or_else(|| QueryError::UnknownTable(stmt.table.clone()))?;
    // `USING <name>` resolution gives columns and bindings priority over
    // trained artifacts, so a shadowed artifact would be unreachable —
    // paid for but never used. Reject the name up front.
    if catalog.resolve(&stmt.table, &stmt.name).is_some() {
        return Err(QueryError::Unsupported(format!(
            "proxy name `{}` is already a predicate column or binding of `{}` — \
             queries would resolve `USING {}` to it instead of the trained model; \
             pick another name",
            stmt.name, stmt.table, stmt.name
        )));
    }
    let column = catalog.resolve(&stmt.table, &stmt.predicate).ok_or_else(|| {
        QueryError::UnresolvedPredicate {
            atom: stmt.predicate.clone(),
            table: stmt.table.clone(),
        }
    })?;
    let pred_idx = table.predicate_index(&column).map_err(QueryError::Table)?;
    let texts = table.texts().ok_or_else(|| {
        QueryError::Unsupported(format!(
            "table `{}` has no text payloads to train a proxy on",
            stmt.table
        ))
    })?;
    let limit = stmt.train_limit.unwrap_or(DEFAULT_TRAIN_LIMIT).min(table.len());
    if limit == 0 {
        return Err(QueryError::Unsupported("TRAIN LIMIT must be positive".to_string()));
    }

    // Draw and label the training sample. The label-store key is the same
    // one a single-atom query over this predicate uses, so training
    // verdicts and query verdicts share cache entries.
    let expr = PredExpr::Pred(pred_idx);
    let pred_key = predicate_key(&expr);
    let ids = sample_without_replacement(table.len(), limit, rng);
    // Same governor key as a single-atom query over this predicate: the
    // training labeling pass shares oracle invocations with concurrent
    // queries over the same (table, predicate).
    let oracle = GovernedOracle::new(
        expression_oracle(table, &expr).map_err(QueryError::Table)?,
        ctx.batcher,
        governor_key(&stmt.table, &pred_key),
        ctx.session,
    );
    let (labeled, oracle_spend): (Vec<Labeled>, u64) = match catalog.label_store() {
        Some(store) => {
            let cached = CachedOracle::new(oracle, store, &stmt.table, &pred_key);
            let labeled = pipeline::label_all(&cached, &ids, &opts.exec);
            (labeled, cached.calls())
        }
        None => {
            let labeled = pipeline::label_all(&oracle, &ids, &opts.exec);
            (labeled, oracle.calls())
        }
    };
    let labels: Vec<bool> = labeled.iter().map(|l| l.matches).collect();
    let train_texts: Vec<&str> = ids.iter().map(|&i| texts.get(i)).collect();

    // Fit the named family, or fit every family on the shared draw and
    // keep the §3.4 predicted-MSE winner (no extra oracle cost: the pilot
    // labels are reused across candidates, exactly as the paper's proxy
    // selection shares its Stage-1 samples).
    let (model, scores, auto_selected) = match stmt.family {
        Some(family) => {
            let model = fit_family(family, stmt.calibrated, &train_texts, &labels)?;
            let scores = score_table(model.as_ref(), texts, opts);
            (model, scores, false)
        }
        None => {
            let families = [ProxyFamily::Keyword, ProxyFamily::Logistic];
            let mut fitted = Vec::with_capacity(families.len());
            for family in families {
                let model = fit_family(family, stmt.calibrated, &train_texts, &labels)?;
                let scores = score_table(model.as_ref(), texts, opts);
                fitted.push((model, scores));
            }
            let pilot: Vec<PilotSample> = ids
                .iter()
                .zip(&labeled)
                .map(|(&index, &labeled)| PilotSample { index, labeled })
                .collect();
            let candidates: Vec<&[f64]> =
                fitted.iter().map(|(_, s)| s.as_slice()).collect();
            let ranking = rank_proxies(&candidates, &pilot, opts.strata, limit);
            let (model, scores) = fitted.swap_remove(ranking.best());
            (model, scores, true)
        }
    };

    // Calibration diagnostic on the training draw.
    let train_scores: Vec<f64> = ids.iter().map(|&i| scores[i]).collect();
    let ece = expected_calibration_error(&train_scores, &labels, ECE_BINS);

    Ok(catalog.proxy_registry().register(TrainedProxy {
        name: stmt.name.clone(),
        table: stmt.table.clone(),
        predicate: column,
        summary: model.summary(),
        calibrated: stmt.calibrated,
        scores,
        train_limit: limit,
        oracle_spend,
        ece,
        auto_selected,
    }))
}

/// Executes `SHOW PROXIES [FROM table]` against the catalog's registry.
pub(crate) fn run_show_proxies(
    catalog: &Catalog,
    table: Option<&str>,
) -> Result<Vec<Arc<TrainedProxy>>, QueryError> {
    match table {
        Some(name) => {
            if catalog.table(name).is_none() {
                return Err(QueryError::UnknownTable(name.to_string()));
            }
            Ok(catalog.proxy_registry().list(name))
        }
        None => Ok(catalog.proxy_registry().list_all()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CreateProxyStmt;
    use abae_data::Table;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A text table whose spam class uses a distinct vocabulary; the
    /// precomputed proxy column is deliberately uninformative so tests can
    /// tell trained scores from the column.
    fn text_table(n: usize) -> Table {
        let spam = ["money", "winner", "claim", "free"];
        let ham = ["meeting", "report", "agenda", "notes"];
        let mut texts = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let is_spam = i % 4 == 0;
            let vocab = if is_spam { &spam } else { &ham };
            texts.push(format!("{} {}", vocab[i % 4], vocab[(i / 4) % 4]));
            labels.push(is_spam);
        }
        let values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        Table::builder("emails", values)
            .predicate("is_spam", labels, vec![0.5; n])
            .texts(texts)
            .build()
            .unwrap()
    }

    fn stmt(family: Option<ProxyFamily>) -> CreateProxyStmt {
        CreateProxyStmt {
            name: "spamnet".to_string(),
            table: "emails".to_string(),
            predicate: "is_spam".to_string(),
            family,
            calibrated: true,
            train_limit: Some(400),
        }
    }

    #[test]
    fn create_proxy_trains_scores_and_registers() {
        let mut catalog = Catalog::new();
        catalog.register_table(text_table(2000));
        let mut rng = StdRng::seed_from_u64(1);
        let opts = EngineOptions::default();
        let proxy =
            run_create_proxy(&catalog, &stmt(Some(ProxyFamily::Logistic)), &opts, &mut rng, &ExecCtx::detached())
                .unwrap();
        assert_eq!(proxy.scores.len(), 2000);
        assert_eq!(proxy.train_limit, 400);
        assert_eq!(proxy.oracle_spend, 400, "every training label charges the oracle");
        assert!(proxy.scores.iter().all(|s| (0.0..=1.0).contains(s)));
        assert!(proxy.summary.family.contains("logistic"), "{}", proxy.summary);
        // Registered and discoverable.
        assert_eq!(catalog.proxy_registry().get("emails", "spamnet").unwrap(), proxy);
        // The trained scores separate the classes (the column is flat 0.5).
        let labels = catalog.table("emails").unwrap().predicate("is_spam").unwrap().labels_vec();
        let auc = abae_ml::auc(&proxy.scores, &labels).expect("both classes");
        assert!(auc > 0.95, "trained proxy AUC {auc}");
    }

    #[test]
    fn omitted_family_is_auto_selected_by_predicted_mse() {
        let mut catalog = Catalog::new();
        catalog.register_table(text_table(2000));
        let mut rng = StdRng::seed_from_u64(2);
        let proxy =
            run_create_proxy(&catalog, &stmt(None), &EngineOptions::default(), &mut rng, &ExecCtx::detached())
                .unwrap();
        assert!(proxy.auto_selected);
        // Whatever won must be informative on this separable corpus.
        let labels = catalog.table("emails").unwrap().predicate("is_spam").unwrap().labels_vec();
        let auc = abae_ml::auc(&proxy.scores, &labels).expect("both classes");
        assert!(auc > 0.9, "auto-selected proxy AUC {auc} ({})", proxy.summary);
    }

    #[test]
    fn training_is_deterministic_across_thread_counts() {
        use abae_core::pipeline::ExecOptions;
        let run = |threads: usize, batch: usize| {
            let mut catalog = Catalog::new();
            catalog.register_table(text_table(1500));
            let opts = EngineOptions {
                exec: ExecOptions::new(threads, batch),
                ..EngineOptions::default()
            };
            let mut rng = StdRng::seed_from_u64(7);
            run_create_proxy(&catalog, &stmt(Some(ProxyFamily::Keyword)), &opts, &mut rng, &ExecCtx::detached())
                .unwrap()
        };
        let reference = run(1, 64);
        for (threads, batch) in [(8, 7), (2, 1024)] {
            let got = run(threads, batch);
            assert_eq!(got.scores, reference.scores, "threads={threads} batch={batch}");
            assert_eq!(got.ece, reference.ece);
            assert_eq!(got.oracle_spend, reference.oracle_spend);
        }
    }

    #[test]
    fn training_shares_label_store_entries_with_queries() {
        let mut catalog = Catalog::new();
        catalog.register_table(text_table(1000));
        catalog.enable_label_cache();
        let mut rng = StdRng::seed_from_u64(3);
        let proxy = run_create_proxy(
            &catalog,
            &CreateProxyStmt { train_limit: Some(300), ..stmt(Some(ProxyFamily::Keyword)) },
            &EngineOptions::default(),
            &mut rng,
            &ExecCtx::detached(),
        )
        .unwrap();
        assert_eq!(proxy.oracle_spend, 300);
        let store = catalog.label_store().unwrap();
        assert_eq!(store.misses(), 300, "training verdicts land in the store");
        // Re-training over the same draw is free: the verdicts are cached.
        let mut rng = StdRng::seed_from_u64(3);
        let again = run_create_proxy(
            &catalog,
            &CreateProxyStmt { train_limit: Some(300), ..stmt(Some(ProxyFamily::Keyword)) },
            &EngineOptions::default(),
            &mut rng,
            &ExecCtx::detached(),
        )
        .unwrap();
        assert_eq!(again.oracle_spend, 0, "warm store answers the training draw");
        assert_eq!(again.scores, proxy.scores);
    }

    #[test]
    fn error_paths_name_the_problem() {
        let mut catalog = Catalog::new();
        catalog.register_table(text_table(100));
        let opts = EngineOptions::default();
        let mut rng = StdRng::seed_from_u64(4);
        let missing_table =
            CreateProxyStmt { table: "nowhere".to_string(), ..stmt(None) };
        assert!(matches!(
            run_create_proxy(&catalog, &missing_table, &opts, &mut rng, &ExecCtx::detached()),
            Err(QueryError::UnknownTable(t)) if t == "nowhere"
        ));
        let missing_pred =
            CreateProxyStmt { predicate: "mystery".to_string(), ..stmt(None) };
        assert!(matches!(
            run_create_proxy(&catalog, &missing_pred, &opts, &mut rng, &ExecCtx::detached()),
            Err(QueryError::UnresolvedPredicate { atom, .. }) if atom == "mystery"
        ));
        let zero = CreateProxyStmt { train_limit: Some(0), ..stmt(None) };
        assert!(matches!(
            run_create_proxy(&catalog, &zero, &opts, &mut rng, &ExecCtx::detached()),
            Err(QueryError::Unsupported(msg)) if msg.contains("TRAIN LIMIT")
        ));
        // A name that a column or binding already answers would shadow the
        // trained artifact at USING-resolution time — rejected up front.
        let shadowing = CreateProxyStmt { name: "is_spam".to_string(), ..stmt(None) };
        assert!(matches!(
            run_create_proxy(&catalog, &shadowing, &opts, &mut rng, &ExecCtx::detached()),
            Err(QueryError::Unsupported(msg)) if msg.contains("already a predicate column")
        ));
        let mut bound = Catalog::new();
        bound.register_table(text_table(100));
        bound.bind_predicate("emails", "spamish", "is_spam");
        let shadowing_binding = CreateProxyStmt { name: "spamish".to_string(), ..stmt(None) };
        assert!(matches!(
            run_create_proxy(&bound, &shadowing_binding, &opts, &mut rng, &ExecCtx::detached()),
            Err(QueryError::Unsupported(msg)) if msg.contains("binding")
        ));
        // A table without texts cannot train.
        let mut no_texts = Catalog::new();
        no_texts.register_table(
            Table::builder("emails", vec![1.0; 10])
                .predicate("is_spam", vec![true; 10], vec![0.5; 10])
                .build()
                .unwrap(),
        );
        assert!(matches!(
            run_create_proxy(&no_texts, &stmt(None), &opts, &mut rng, &ExecCtx::detached()),
            Err(QueryError::Unsupported(msg)) if msg.contains("text payloads")
        ));
    }

    #[test]
    fn show_proxies_lists_and_validates_the_table() {
        let mut catalog = Catalog::new();
        catalog.register_table(text_table(500));
        let opts = EngineOptions::default();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(run_show_proxies(&catalog, None).unwrap().is_empty());
        run_create_proxy(&catalog, &stmt(Some(ProxyFamily::Keyword)), &opts, &mut rng, &ExecCtx::detached())
            .unwrap();
        let listed = run_show_proxies(&catalog, Some("emails")).unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].name, "spamnet");
        assert!(matches!(
            run_show_proxies(&catalog, Some("nope")),
            Err(QueryError::UnknownTable(t)) if t == "nope"
        ));
    }
}
