//! SQL rendering and `EXPLAIN`.
//!
//! [`Query`] and [`BoolExpr`] render back to the dialect's syntax (so
//! programmatically built queries can be logged and re-parsed), and
//! [`crate::exec::Executor::explain`] describes the physical plan — which
//! algorithm will run, the resolved predicate columns, and how the oracle
//! budget splits across stages — without spending any oracle calls.

use crate::ast::{AggFunc, BoolExpr, CreateProxyStmt, ProxyFamily, Query, Statement};
use std::fmt;

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AggFunc::Avg => "AVG",
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Percentage => "PERCENTAGE",
        };
        write!(f, "{name}")
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Atom(a) => {
                write!(f, "{}", a.name)?;
                if !a.args.is_empty() {
                    write!(f, "({})", a.args.join(", "))?;
                }
                if let Some(cmp) = &a.comparison {
                    // Comparison suffixes store e.g. "=blonde" / ">0";
                    // string literals re-quote for valid SQL.
                    let (op, value) = split_comparison(cmp);
                    if value.parse::<f64>().is_ok() {
                        write!(f, " {op} {value}")?;
                    } else {
                        write!(f, " {op} '{value}'")?;
                    }
                }
                Ok(())
            }
            BoolExpr::Not(e) => write!(f, "NOT ({e})"),
            BoolExpr::And(a, b) => write!(f, "({a} AND {b})"),
            BoolExpr::Or(a, b) => write!(f, "({a} OR {b})"),
        }
    }
}

fn split_comparison(cmp: &str) -> (&str, &str) {
    for op in ["!=", ">=", "<=", "=", ">", "<"] {
        if let Some(rest) = cmp.strip_prefix(op) {
            return (op, rest);
        }
    }
    ("=", cmp)
}

impl fmt::Display for crate::ast::AggItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.func, self.expr)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.aggs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if let Some(key) = &self.group_by {
            write!(f, ", {key}")?;
        }
        write!(f, " FROM {} WHERE {}", self.table, self.predicate)?;
        if let Some(key) = &self.group_by {
            write!(f, " GROUP BY {key}")?;
        }
        if self.placeholders.until_width {
            write!(f, " UNTIL CI WIDTH < ? MAX")?;
        } else if let Some(w) = self.until_width {
            write!(f, " UNTIL CI WIDTH < {w} MAX")?;
        }
        if self.placeholders.oracle_limit {
            write!(f, " ORACLE LIMIT ?")?;
        } else {
            write!(f, " ORACLE LIMIT {}", self.oracle_limit)?;
        }
        if let Some(p) = &self.proxy {
            write!(f, " USING {p}")?;
        }
        if self.placeholders.probability {
            write!(f, " WITH PROBABILITY ?")
        } else {
            write!(f, " WITH PROBABILITY {}", self.probability)
        }
    }
}

impl fmt::Display for ProxyFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.keyword())
    }
}

impl fmt::Display for CreateProxyStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE PROXY {} ON {}({})", self.name, self.table, self.predicate)?;
        if let Some(family) = self.family {
            write!(f, " USING {family}")?;
        }
        if self.calibrated {
            write!(f, " CALIBRATED")?;
        }
        if let Some(limit) = self.train_limit {
            write!(f, " TRAIN LIMIT {limit}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(q) => write!(f, "{q}"),
            Statement::CreateProxy(c) => write!(f, "{c}"),
            Statement::ShowProxies(None) => write!(f, "SHOW PROXIES"),
            Statement::ShowProxies(Some(table)) => write!(f, "SHOW PROXIES FROM {table}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_query, parse_statement};

    fn roundtrip(sql: &str) {
        let q1 = parse_query(sql).expect("valid input");
        let rendered = format!("{q1}");
        let q2 = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("rendered `{rendered}` failed to parse: {e}"));
        // Semantic equivalence: everything except argument formatting.
        assert_eq!(q1.aggs, q2.aggs);
        assert_eq!(q1.table, q2.table);
        assert_eq!(q1.oracle_limit, q2.oracle_limit);
        assert_eq!(q1.probability, q2.probability);
        assert_eq!(q1.placeholders, q2.placeholders);
        assert_eq!(q1.group_by, q2.group_by);
        assert_eq!(q1.until_width, q2.until_width);
        assert_eq!(q1.predicate.atom_keys(), q2.predicate.atom_keys());
    }

    #[test]
    fn single_predicate_roundtrips() {
        roundtrip("SELECT AVG(views) FROM news WHERE is_spam ORACLE LIMIT 100");
    }

    #[test]
    fn complex_predicates_roundtrip() {
        roundtrip(
            "SELECT AVG(count_cars(frame)) FROM video \
             WHERE count_cars(frame) > 0 AND (red_light(frame) OR NOT fog(frame)) \
             ORACLE LIMIT 1,000 USING proxy WITH PROBABILITY 0.9",
        );
    }

    #[test]
    fn string_comparisons_roundtrip() {
        roundtrip(
            "SELECT PERCENTAGE(smiles(img)), hair FROM faces \
             WHERE hair_color(img) = 'strongly blond' GROUP BY hair_color(img) \
             ORACLE LIMIT 500",
        );
    }

    #[test]
    fn multi_aggregate_lists_roundtrip() {
        roundtrip(
            "SELECT COUNT(*), SUM(views), AVG(views) FROM news WHERE interesting \
             ORACLE LIMIT 2,000 WITH PROBABILITY 0.9",
        );
    }

    #[test]
    fn placeholder_queries_roundtrip() {
        roundtrip("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT ? WITH PROBABILITY ?");
        roundtrip("SELECT COUNT(*) FROM t WHERE p ORACLE LIMIT ?");
        roundtrip("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT 100 WITH PROBABILITY ?");
        let q = parse_query("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT ?").unwrap();
        assert!(format!("{q}").contains("ORACLE LIMIT ?"), "{q}");
    }

    #[test]
    fn until_ci_width_queries_roundtrip() {
        roundtrip("SELECT AVG(x) FROM t WHERE p UNTIL CI WIDTH < 0.5 MAX ORACLE LIMIT 1000");
        roundtrip(
            "SELECT COUNT(frame), person FROM news WHERE seen(frame) GROUP BY person \
             UNTIL CI WIDTH < 2 MAX ORACLE LIMIT 500",
        );
        roundtrip("SELECT AVG(x) FROM t WHERE p UNTIL CI WIDTH < ? MAX ORACLE LIMIT ?");
        let q = crate::parser::parse_query(
            "select avg(x) from t where p until ci width < 0.5 max oracle limit 1000",
        )
        .unwrap();
        assert_eq!(
            format!("{q}"),
            "SELECT AVG(x) FROM t WHERE p UNTIL CI WIDTH < 0.5 MAX \
             ORACLE LIMIT 1000 WITH PROBABILITY 0.95"
        );
        let q = crate::parser::parse_query(
            "SELECT AVG(x) FROM t WHERE p UNTIL CI WIDTH < ? MAX ORACLE LIMIT 10",
        )
        .unwrap();
        assert!(format!("{q}").contains("UNTIL CI WIDTH < ? MAX"), "{q}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let q = parse_query("SELECT SUM(x) FROM t WHERE a AND b OR c ORACLE LIMIT 7").unwrap();
        assert_eq!(format!("{q}"), format!("{q}"));
    }

    fn roundtrip_statement(sql: &str) {
        let s1 = parse_statement(sql).expect("valid input");
        let rendered = format!("{s1}");
        let s2 = parse_statement(&rendered)
            .unwrap_or_else(|e| panic!("rendered `{rendered}` failed to parse: {e}"));
        assert_eq!(s1, s2, "statement roundtrip changed `{sql}` → `{rendered}`");
    }

    #[test]
    fn create_proxy_statements_roundtrip() {
        roundtrip_statement(
            "CREATE PROXY spamnet ON trec05p(is_spam) USING logistic CALIBRATED \
             TRAIN LIMIT 2,000",
        );
        roundtrip_statement("CREATE PROXY kw ON emails(is_spam) USING keyword");
        roundtrip_statement("create proxy auto_pick on emails(is_spam) calibrated");
        roundtrip_statement("CREATE PROXY p ON t(is_spam) TRAIN LIMIT 50;");
    }

    #[test]
    fn show_proxies_statements_roundtrip() {
        roundtrip_statement("SHOW PROXIES");
        roundtrip_statement("show proxies from trec05p");
    }

    #[test]
    fn select_statements_roundtrip_through_the_statement_parser() {
        roundtrip_statement(
            "SELECT AVG(links) FROM trec05p WHERE is_spam ORACLE LIMIT 100 \
             USING spamnet WITH PROBABILITY 0.9",
        );
    }
}
