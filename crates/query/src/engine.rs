//! The shared, thread-safe query engine.
//!
//! An [`Engine`] is the process-wide answer service the paper's analysts
//! query: it owns the tables, the predicate bindings, the cross-query
//! label store, and the tuning defaults, all behind an `Arc` so cloning a
//! handle is one reference-count bump. The engine is `Send + Sync` —
//! any number of threads can serve [`crate::Session`]s against one engine
//! concurrently, and the label store (internally locked, with hit/miss
//! accounting) is shared by all of them.
//!
//! Determinism contract: every session's RNG stream is derived from the
//! engine seed and the session id alone, so a session's results depend
//! only on *its own* statement sequence — never on how other sessions'
//! work interleaves with it (`tests/engine_sessions.rs` pins 8 concurrent
//! sessions against a serial replay, bit for bit).
//!
//! Build one with [`EngineBuilder`]:
//!
//! ```
//! use abae_query::Engine;
//! use abae_data::Table;
//!
//! let n = 400;
//! let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
//! let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.9 } else { 0.1 }).collect();
//! let table = Table::builder("emails", (0..n).map(|i| (i % 7) as f64).collect::<Vec<_>>())
//!     .predicate("is_spam", labels, proxy)
//!     .build()
//!     .unwrap();
//! let engine = Engine::builder().table(table).label_cache(true).seed(7).build();
//! let mut session = engine.session();
//! let r = session
//!     .execute("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT 100")
//!     .unwrap();
//! assert!(!r.rows.is_empty());
//! ```

use crate::catalog::Catalog;
use crate::session::Session;
use abae_core::batcher::{BatcherOptions, BatcherStats, OracleBatcher};
use abae_core::pipeline::ExecOptions;
use abae_data::{LabelStore, Table};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Engine-owned tuning defaults, applied to every statement a session
/// executes. The seed's `Executor` read `ABAE_THREADS`/`ABAE_BATCH` from
/// the environment at each call site; the engine resolves [`ExecOptions`]
/// **once** at build time and owns the value from then on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOptions {
    /// Strata count `K` for every query (Figure 10 default: 5).
    pub strata: usize,
    /// Stage-1 fraction `C` (Figure 11 default: 0.5).
    pub stage1_fraction: f64,
    /// Bootstrap resamples `β` per CI.
    pub bootstrap_trials: usize,
    /// Oracle-labeling execution knobs (worker threads, batch size).
    /// Results are identical for any value.
    pub exec: ExecOptions,
    /// Oracle batcher (cross-session governor) configuration: coalescing
    /// on/off, simulated per-invocation overhead, batch capacity, and the
    /// default per-session fair-share quota. Results are identical for
    /// any value — the batcher changes invocation grouping and timing
    /// only, never what a session labels.
    pub batcher: BatcherOptions,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            strata: 5,
            stage1_fraction: 0.5,
            bootstrap_trials: 1000,
            exec: ExecOptions::default(),
            batcher: BatcherOptions::default(),
        }
    }
}

/// SplitMix64-style finalizer used to derive independent RNG streams from
/// (engine seed, stream tag, index) without any shared state. The same
/// mixing constants as the workspace PRNG's seeder, applied per component,
/// so nearby ids land in unrelated streams.
fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stream tags keep session streams and prepared-statement streams from
/// ever colliding, whatever the ids.
const SESSION_STREAM: u64 = 0x5E55_1001;
const PREPARED_STREAM: u64 = 0x5E55_2002;

#[derive(Debug)]
struct EngineInner {
    catalog: Catalog,
    options: EngineOptions,
    seed: u64,
    /// Next auto-assigned session id.
    sessions: AtomicU64,
    /// The process-wide oracle admission controller every session's
    /// labeling routes through.
    batcher: OracleBatcher,
}

/// One engine-wide observability snapshot: session count, the batcher's
/// lifetime counters, the label store's lifetime hit/miss totals, and the
/// per-session oracle spend ledger. Returned by [`Engine::stats`]; the
/// benches serialize it into their artifacts and `EXPLAIN` prints the
/// batcher portion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Sessions auto-assigned by [`Engine::session`] so far.
    pub sessions_opened: u64,
    /// The oracle batcher's lifetime counters (requests, invocations,
    /// shared batches, coalesced requests, cache-served records).
    pub batcher: BatcherStats,
    /// Lifetime label-store hits (0 when the store is disabled).
    pub label_hits: u64,
    /// Lifetime label-store misses (0 when the store is disabled).
    pub label_misses: u64,
    /// Records labeled through admission per session, in session-id
    /// order — the fair-share spend ledger.
    pub per_session_spend: Vec<(u64, u64)>,
}

/// A shareable, thread-safe query engine: tables, bindings, label store,
/// and tuning defaults behind an `Arc`. Clone handles freely — all clones
/// serve the same catalog and the same label cache. See the
/// [module docs](self) for the determinism contract and an example.
#[derive(Debug, Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Opens a session with the next auto-assigned id (0, 1, 2, … in
    /// creation order). Each session owns a deterministic RNG stream
    /// derived from the engine seed and its id.
    pub fn session(&self) -> Session {
        let id = self.inner.sessions.fetch_add(1, Ordering::Relaxed);
        Session::new(self.clone(), id)
    }

    /// Opens a session with an explicit id. Two sessions with the same id
    /// (on this engine or an identically seeded one) replay identical RNG
    /// streams — the reproducibility hook tests and debuggers use.
    pub fn session_with_id(&self, id: u64) -> Session {
        Session::new(self.clone(), id)
    }

    /// The engine's catalog (tables, bindings, label store). Immutable
    /// after build; the label store inside is internally synchronized.
    pub fn catalog(&self) -> &Catalog {
        &self.inner.catalog
    }

    /// The engine's label store, when built with `label_cache(true)`.
    pub fn label_store(&self) -> Option<&LabelStore> {
        self.inner.catalog.label_store()
    }

    /// The engine-owned tuning defaults.
    pub fn options(&self) -> &EngineOptions {
        &self.inner.options
    }

    /// The engine seed every session/prepared stream derives from.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// How many sessions [`Engine::session`] has auto-assigned so far.
    pub fn sessions_opened(&self) -> u64 {
        self.inner.sessions.load(Ordering::Relaxed)
    }

    /// The engine's oracle batcher — the cross-session admission
    /// controller every session's labeling routes through. Exposed for
    /// observability (counters, per-session spend) and for the quota
    /// knob; queries go through it automatically.
    pub fn batcher(&self) -> &OracleBatcher {
        &self.inner.batcher
    }

    /// Overrides the per-batch fair-share record quota for one session
    /// (`0` restores the engine default). A larger quota is a larger
    /// guaranteed share of every contended batch — the priority knob for
    /// multi-tenant deployments.
    pub fn set_session_quota(&self, session: u64, records: usize) {
        self.inner.batcher.set_session_quota(session, records);
    }

    /// One observability snapshot: sessions opened, batcher counters,
    /// label-store totals, and the per-session oracle spend ledger.
    pub fn stats(&self) -> EngineStats {
        let (label_hits, label_misses) = self
            .label_store()
            .map_or((0, 0), |store| (store.hits(), store.misses()));
        EngineStats {
            sessions_opened: self.sessions_opened(),
            batcher: self.inner.batcher.stats(),
            label_hits,
            label_misses,
            per_session_spend: self.inner.batcher.per_session_spend(),
        }
    }

    /// RNG seed for session `id`'s stream.
    pub(crate) fn session_seed(&self, id: u64) -> u64 {
        mix_seed(mix_seed(self.inner.seed, SESSION_STREAM), id)
    }

    /// RNG base seed for prepared statement number `statement` of session
    /// `session`. Every `Prepared::run` restarts from this seed, which is
    /// what makes an identical re-run redraw the same records (and, with a
    /// warm label cache, cost zero oracle calls).
    pub(crate) fn prepared_seed(&self, session: u64, statement: u64) -> u64 {
        mix_seed(mix_seed(mix_seed(self.inner.seed, PREPARED_STREAM), session), statement)
    }
}

/// Builds an [`Engine`]: tables, predicate bindings, label-cache policy,
/// tuning defaults, and the seed policy, then freezes them behind an
/// `Arc`. Adopt an existing [`Catalog`] wholesale with
/// [`EngineBuilder::from_catalog`] when migrating from the deprecated
/// `Executor`.
#[derive(Debug)]
pub struct EngineBuilder {
    catalog: Catalog,
    options: EngineOptions,
    label_cache: bool,
    seed: u64,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineBuilder {
    /// A builder with the paper's default knobs, no tables, the label
    /// cache off, and seed `0xABAE`.
    pub fn new() -> Self {
        Self {
            catalog: Catalog::new(),
            options: EngineOptions::default(),
            label_cache: false,
            seed: 0xABAE,
        }
    }

    /// Adopts an existing catalog (tables, bindings, and — if enabled —
    /// its label store and cached verdicts).
    pub fn from_catalog(catalog: Catalog) -> Self {
        let label_cache = catalog.label_store().is_some();
        Self { catalog, label_cache, ..Self::new() }
    }

    /// Registers a table under its own name (replacing any previous table
    /// with that name).
    pub fn table(mut self, table: Table) -> Self {
        self.catalog.register_table(table);
        self
    }

    /// Binds a predicate atom key (e.g. `hair_color=blonde`) to a
    /// predicate column of `table`.
    pub fn bind_predicate(
        mut self,
        table: impl Into<String>,
        atom_key: impl Into<String>,
        column: impl Into<String>,
    ) -> Self {
        self.catalog.bind_predicate(table, atom_key, column);
        self
    }

    /// Enables (or disables) the cross-query oracle label cache shared by
    /// every session of the engine.
    pub fn label_cache(mut self, on: bool) -> Self {
        self.label_cache = on;
        self
    }

    /// Strata count `K`.
    pub fn strata(mut self, k: usize) -> Self {
        self.options.strata = k;
        self
    }

    /// Stage-1 budget fraction `C`.
    pub fn stage1_fraction(mut self, c: f64) -> Self {
        self.options.stage1_fraction = c;
        self
    }

    /// Bootstrap resamples `β` per CI.
    pub fn bootstrap_trials(mut self, trials: usize) -> Self {
        self.options.bootstrap_trials = trials;
        self
    }

    /// Oracle-labeling execution knobs. When not set, the builder resolves
    /// [`ExecOptions::default`] (which honors `ABAE_THREADS`/`ABAE_BATCH`)
    /// once at build time.
    pub fn exec(mut self, exec: ExecOptions) -> Self {
        self.options.exec = exec;
        self
    }

    /// Turns cross-session coalescing of oracle invocations on or off
    /// (off by default). Concurrent sessions labeling the same
    /// `(table, predicate)` then share device invocations; per-session
    /// results are bit-identical either way.
    pub fn governor(mut self, on: bool) -> Self {
        self.options.batcher.coalesce = on;
        self
    }

    /// Simulated fixed cost per oracle invocation, charged once per
    /// (possibly shared) batch and serialized across invocations — the
    /// `with_latency`-style knob for the *dispatch* side of the cost
    /// model. Zero (the default) charges nothing.
    pub fn oracle_overhead(mut self, overhead: Duration) -> Self {
        self.options.batcher.invocation_overhead = overhead;
        self
    }

    /// Replaces the whole batcher options bundle (coalescing, overhead,
    /// batch capacity, default fair-share quota).
    pub fn batcher(mut self, batcher: BatcherOptions) -> Self {
        self.options.batcher = batcher;
        self
    }

    /// Replaces the whole options bundle.
    pub fn options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// The engine seed; every session and prepared-statement RNG stream
    /// derives from it deterministically.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Freezes the configuration into a shareable [`Engine`].
    pub fn build(mut self) -> Engine {
        if self.label_cache {
            self.catalog.enable_label_cache();
        } else {
            self.catalog.disable_label_cache();
        }
        Engine {
            inner: Arc::new(EngineInner {
                batcher: OracleBatcher::new(self.options.batcher),
                catalog: self.catalog,
                options: self.options,
                seed: self.seed,
                sessions: AtomicU64::new(0),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let labels = vec![true, false, true, false];
        let proxy = vec![0.9, 0.1, 0.8, 0.2];
        Table::builder("t", vec![1.0, 2.0, 3.0, 4.0])
            .predicate("p", labels, proxy)
            .build()
            .unwrap()
    }

    #[test]
    fn engine_is_send_sync_and_cheaply_clonable() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<Engine>();
        let engine = Engine::builder().table(table()).build();
        let clone = engine.clone();
        // Clones share the inner state, not copies of it.
        assert!(Arc::ptr_eq(&engine.inner, &clone.inner));
    }

    #[test]
    fn sessions_get_sequential_ids_and_distinct_streams() {
        let engine = Engine::builder().table(table()).seed(1).build();
        let s0 = engine.session();
        let s1 = engine.session();
        assert_eq!((s0.id(), s1.id()), (0, 1));
        assert_eq!(engine.sessions_opened(), 2);
        assert_ne!(engine.session_seed(0), engine.session_seed(1));
        // Session and prepared streams never collide, even for equal ids.
        assert_ne!(engine.session_seed(3), engine.prepared_seed(3, 0));
    }

    #[test]
    fn builder_adopts_a_catalog_with_its_label_store() {
        let mut cat = Catalog::new();
        cat.register_table(table());
        cat.bind_predicate("t", "spamish", "p");
        cat.enable_label_cache();
        let engine = EngineBuilder::from_catalog(cat).build();
        assert!(engine.label_store().is_some(), "adopted store must survive build");
        assert_eq!(engine.catalog().resolve("t", "spamish"), Some("p".to_string()));
        // And label_cache(false) drops it explicitly.
        let mut cat = Catalog::new();
        cat.register_table(table());
        cat.enable_label_cache();
        let engine = EngineBuilder::from_catalog(cat).label_cache(false).build();
        assert!(engine.label_store().is_none());
    }

    #[test]
    fn mix_seed_separates_nearby_inputs() {
        let s: Vec<u64> = (0..64).map(|i| mix_seed(0xABAE, i)).collect();
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), s.len(), "64 consecutive ids must map to 64 distinct seeds");
    }

    #[test]
    fn engine_options_defaults_match_the_paper() {
        let o = EngineOptions::default();
        assert_eq!(o.strata, 5);
        assert!((o.stage1_fraction - 0.5).abs() < 1e-12);
        assert_eq!(o.bootstrap_trials, 1000);
    }
}
