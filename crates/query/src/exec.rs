//! The deprecated borrow-based executor shim (and the query result types).
//!
//! Historically this module *was* the query layer: [`Executor`] borrowed a
//! [`Catalog`], re-parsed its SQL on every call, and threaded a
//! caller-owned RNG. The engine redesign moved planning and execution into
//! the crate's shared `plan` module (one planner feeding `EXPLAIN`,
//! [`crate::Session`],
//! [`crate::Prepared`], and this shim); `Executor` survives as a thin
//! deprecated adapter so existing call sites keep compiling and keep their
//! exact RNG streams. New code should build an [`crate::Engine`] and open
//! [`crate::Session`]s — see the crate docs for the migration note.

use crate::ast::{AggFunc, Query};
use crate::catalog::Catalog;
use crate::engine::EngineOptions;
use crate::parser::{parse_query, ParseError};
use abae_core::config::ConfigError;
use abae_core::groupby::GroupByError;
use abae_core::pipeline::ExecOptions;
use abae_data::TableError;
use abae_stats::bootstrap::ConfidenceInterval;
use rand::Rng;

/// One answered aggregate of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggRow {
    /// Aggregate function.
    pub func: AggFunc,
    /// Aggregated expression as written in the query.
    pub expr: String,
    /// Point estimate (percent for `PERCENTAGE`).
    pub estimate: f64,
    /// Bootstrap CI at the query's probability, on the same scale as the
    /// estimate (scalar queries only).
    pub ci: Option<ConfidenceInterval>,
}

/// Per-group result row.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Group name (from the table's group key).
    pub name: String,
    /// Estimated per-group aggregate.
    pub estimate: f64,
    /// Per-group bootstrap CI, on the same scale as the estimate.
    pub ci: Option<ConfidenceInterval>,
}

/// Result of executing a query: one [`AggRow`] per `SELECT`-list
/// aggregate — all answered from a single labeling pass, so a
/// three-aggregate query spends exactly the oracle budget of a
/// one-aggregate query — plus cache accounting and, for `GROUP BY`
/// queries, the per-group rows.
///
/// Invariant: `rows` is **never empty** — the parser guarantees at least
/// one aggregate and the only constructor asserts it — so
/// [`QueryResult::estimate`] and [`QueryResult::ci`] are total. The struct
/// is `#[non_exhaustive]`: it can only be built by the query layer, which
/// is what makes the invariant enforceable.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct QueryResult {
    /// Answered aggregates, in `SELECT`-list order (never empty).
    pub rows: Vec<AggRow>,
    /// Oracle invocations actually spent (cache hits are free).
    pub oracle_calls: u64,
    /// Records answered from the catalog's label store without an oracle
    /// invocation (0 when the store is disabled).
    pub cache_hits: u64,
    /// Records that reached the real oracle (equals `oracle_calls` when
    /// the store is enabled; 0 only if every draw was cached).
    pub cache_misses: u64,
    /// Group rows for `GROUP BY` queries.
    pub groups: Option<Vec<GroupRow>>,
}

impl QueryResult {
    /// The one constructor: asserts the never-empty `rows` invariant the
    /// accessors rely on.
    pub(crate) fn new(
        rows: Vec<AggRow>,
        oracle_calls: u64,
        cache_hits: u64,
        cache_misses: u64,
        groups: Option<Vec<GroupRow>>,
    ) -> Self {
        assert!(!rows.is_empty(), "QueryResult invariant: rows is never empty");
        Self { rows, oracle_calls, cache_hits, cache_misses, groups }
    }

    /// The primary (first) aggregate's estimate. For group-by queries
    /// this is the mean of the group estimates; inspect
    /// [`QueryResult::groups`] for the rows.
    pub fn estimate(&self) -> f64 {
        self.rows.first().expect("QueryResult invariant: rows is never empty").estimate
    }

    /// The primary (first) aggregate's CI.
    pub fn ci(&self) -> Option<ConfidenceInterval> {
        self.rows.first().expect("QueryResult invariant: rows is never empty").ci
    }
}

/// One progressive snapshot of an executing query: a statistically valid
/// intermediate answer emitted after a labeling chunk. Rows mirror
/// [`QueryResult::rows`] (same `PERCENTAGE` scaling, same CI semantics);
/// `budget_spent` counts oracle labels actually charged so far. The final
/// snapshot of a run that exhausts its budget (`done == true`) carries the
/// same estimates and CIs as the blocking answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySnapshot {
    /// Intermediate per-aggregate answers, in `SELECT`-list order.
    pub rows: Vec<AggRow>,
    /// Intermediate group rows for `GROUP BY` queries.
    pub groups: Option<Vec<GroupRow>>,
    /// Oracle labels charged up to and including this snapshot's chunk.
    pub budget_spent: u64,
    /// `true` on the run's last snapshot — budget exhausted or the
    /// `UNTIL CI WIDTH` target reached.
    pub done: bool,
}

impl QuerySnapshot {
    /// The primary (first) aggregate's estimate as of this snapshot.
    pub fn estimate(&self) -> Option<f64> {
        self.rows.first().map(|r| r.estimate)
    }

    /// The primary (first) aggregate's CI as of this snapshot.
    pub fn ci(&self) -> Option<ConfidenceInterval> {
        self.rows.first().and_then(|r| r.ci)
    }
}

/// Result of executing one statement through [`crate::Session::run`]: the
/// rows of a `SELECT`, or the proxy-management statements' artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementOutcome {
    /// A `SELECT`'s answer.
    Rows(QueryResult),
    /// `CREATE PROXY` trained and registered this artifact.
    ProxyCreated(std::sync::Arc<abae_data::TrainedProxy>),
    /// `SHOW PROXIES` listing, in deterministic (table, registration)
    /// order.
    Proxies(Vec<std::sync::Arc<abae_data::TrainedProxy>>),
}

impl StatementOutcome {
    /// The query rows, if the statement was a `SELECT`.
    pub fn rows(&self) -> Option<&QueryResult> {
        match self {
            StatementOutcome::Rows(r) => Some(r),
            _ => None,
        }
    }
}

/// Errors from query execution.
#[derive(Debug)]
pub enum QueryError {
    /// Parsing failed.
    Parse(ParseError),
    /// The `FROM` table is not in the catalog.
    UnknownTable(String),
    /// A predicate atom could not be resolved to a column.
    UnresolvedPredicate {
        /// The atom's canonical key.
        atom: String,
        /// The table searched.
        table: String,
    },
    /// `USING <proxy>` named something that is neither a predicate column,
    /// a registered binding, nor a trained proxy of the table.
    UnknownProxy {
        /// The proxy name from the query.
        proxy: String,
        /// The table searched.
        table: String,
        /// Every proxy name the table *does* have (predicate columns first,
        /// then trained artifacts), so the error is self-correcting.
        available: Vec<String>,
    },
    /// The query has a `?` placeholder that was never bound (the payload
    /// names the clause). Bind it with `Prepared::with_budget` /
    /// `Prepared::with_probability`, or write a literal.
    UnboundParameter(&'static str),
    /// Proxy training failed (`CREATE PROXY`).
    Train(abae_ml::logistic::TrainError),
    /// Table-level failure.
    Table(TableError),
    /// Invalid ABae configuration derived from the query.
    Config(ConfigError),
    /// Group-by execution failure.
    GroupBy(GroupByError),
    /// The query shape is not supported.
    Unsupported(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            QueryError::UnresolvedPredicate { atom, table } => {
                write!(f, "predicate `{atom}` is not a column or binding of `{table}`")
            }
            QueryError::UnknownProxy { proxy, table, available } => {
                write!(
                    f,
                    "USING proxy `{proxy}` is not a column, binding, or trained proxy \
                     of `{table}`"
                )?;
                if available.is_empty() {
                    write!(f, " (the table has no proxies)")
                } else {
                    write!(f, " (available: {})", available.join(", "))
                }
            }
            QueryError::UnboundParameter(clause) => {
                write!(
                    f,
                    "unbound parameter `{clause}`: bind it through a prepared statement \
                     or write a literal value"
                )
            }
            QueryError::Train(e) => write!(f, "proxy training: {e}"),
            QueryError::Table(e) => write!(f, "table: {e}"),
            QueryError::Config(e) => write!(f, "config: {e}"),
            QueryError::GroupBy(e) => write!(f, "group-by: {e}"),
            QueryError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

/// Executes ABae queries against a borrowed catalog.
///
/// Deprecated: this is the seed's single-client API — it re-parses and
/// re-plans every call and cannot be shared across threads. It is kept as
/// a thin adapter over the same planner the engine uses, so behavior
/// (including exact RNG streams) is unchanged; new code should use
/// [`crate::Engine`] + [`crate::Session`].
#[deprecated(
    since = "0.2.0",
    note = "use Engine::builder() to build a shared engine and open Sessions \
            (Prepared statements replace repeated execute calls)"
)]
#[derive(Debug)]
pub struct Executor<'a> {
    catalog: &'a Catalog,
    /// Strata count `K` for every query (Figure 10 default: 5).
    pub strata: usize,
    /// Stage-1 fraction `C` (Figure 11 default: 0.5).
    pub stage1_fraction: f64,
    /// Bootstrap resamples `β` per CI.
    pub bootstrap_trials: usize,
    /// Oracle-labeling execution knobs (worker threads, batch size),
    /// forwarded to every algorithm the executor routes to. Defaults honor
    /// `ABAE_THREADS` / `ABAE_BATCH`; results are identical for any value.
    pub exec: ExecOptions,
}

#[allow(deprecated)]
impl<'a> Executor<'a> {
    /// Creates an executor with the paper's default knobs.
    pub fn new(catalog: &'a Catalog) -> Self {
        let defaults = EngineOptions::default();
        Self {
            catalog,
            strata: defaults.strata,
            stage1_fraction: defaults.stage1_fraction,
            bootstrap_trials: defaults.bootstrap_trials,
            exec: defaults.exec,
        }
    }

    /// The executor's knobs as the planner's options bundle. The shim
    /// never batches: its oracle requests run detached from any engine
    /// governor, exactly as the seed behaved.
    fn options(&self) -> EngineOptions {
        EngineOptions {
            strata: self.strata,
            stage1_fraction: self.stage1_fraction,
            bootstrap_trials: self.bootstrap_trials,
            exec: self.exec,
            batcher: abae_core::batcher::BatcherOptions::default(),
        }
    }

    /// Parses and executes `sql`.
    pub fn execute<R: Rng + ?Sized>(
        &self,
        sql: &str,
        rng: &mut R,
    ) -> Result<QueryResult, QueryError> {
        let query = parse_query(sql)?;
        self.execute_parsed(&query, rng)
    }

    /// `EXPLAIN`: describes the physical plan for `sql` — the chosen
    /// algorithm, the resolved predicate columns, the budget split, and
    /// the label-cache state — without spending any oracle calls. The
    /// rendering consumes the same plan `execute` runs
    /// (the shared `plan` module), so the output cannot drift from
    /// execution.
    pub fn explain(&self, sql: &str) -> Result<String, QueryError> {
        let query = parse_query(sql)?;
        let plan = crate::plan::plan_query(self.catalog, &query)?;
        crate::plan::explain_plan(
            self.catalog,
            &plan,
            &self.options(),
            &crate::plan::Bindings::default(),
            &crate::plan::ExecCtx::detached(),
        )
    }

    /// Executes an already-parsed query.
    pub fn execute_parsed<R: Rng + ?Sized>(
        &self,
        query: &Query,
        rng: &mut R,
    ) -> Result<QueryResult, QueryError> {
        let plan = crate::plan::plan_query(self.catalog, query)?;
        crate::plan::run_plan(
            self.catalog,
            &plan,
            &self.options(),
            &crate::plan::Bindings::default(),
            rng,
            &crate::plan::ExecCtx::detached(),
        )
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use abae_data::Table;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spam_table(n: usize) -> Table {
        let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
        Table::builder("emails", values)
            .predicate("is_spam", labels, proxy)
            .build()
            .unwrap()
    }

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register_table(spam_table(20_000));
        cat
    }

    #[test]
    fn executes_single_predicate_avg() {
        let cat = catalog();
        let table = cat.table("emails").unwrap();
        let exact = table.exact_avg("is_spam").unwrap();
        let exec = Executor { bootstrap_trials: 200, ..Executor::new(&cat) };
        let mut rng = StdRng::seed_from_u64(1);
        let r = exec
            .execute(
                "SELECT AVG(nb_links) FROM emails WHERE is_spam \
                 ORACLE LIMIT 3000 WITH PROBABILITY 0.95",
                &mut rng,
            )
            .unwrap();
        assert!((r.estimate() - exact).abs() < 0.3, "{} vs {exact}", r.estimate());
        let ci = r.ci().unwrap();
        assert!((ci.confidence - 0.95).abs() < 1e-9);
        assert!(ci.lo <= r.estimate() && r.estimate() <= ci.hi);
        assert!(r.oracle_calls <= 3000);
        // No label store: cache accounting is all zeros.
        assert_eq!((r.cache_hits, r.cache_misses), (0, 0));
    }

    #[test]
    fn executes_count_query() {
        let cat = catalog();
        let exec = Executor { bootstrap_trials: 100, ..Executor::new(&cat) };
        let mut rng = StdRng::seed_from_u64(2);
        let r = exec
            .execute("SELECT COUNT(*) FROM emails WHERE is_spam ORACLE LIMIT 4000", &mut rng)
            .unwrap();
        assert!((r.estimate() - 5000.0).abs() < 400.0, "{}", r.estimate());
    }

    #[test]
    fn multi_aggregate_query_answers_all_for_one_budget() {
        let cat = catalog();
        let exec = Executor { bootstrap_trials: 100, ..Executor::new(&cat) };
        let sql_multi = "SELECT COUNT(*), SUM(nb_links), AVG(nb_links) FROM emails \
                         WHERE is_spam ORACLE LIMIT 3000";
        let sql_single = "SELECT COUNT(*) FROM emails WHERE is_spam ORACLE LIMIT 3000";
        let mut rng = StdRng::seed_from_u64(7);
        let multi = exec.execute(sql_multi, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let single = exec.execute(sql_single, &mut rng).unwrap();
        // Shared labeling pass: 3 aggregates cost exactly 1 budget.
        assert_eq!(multi.oracle_calls, single.oracle_calls);
        assert_eq!(multi.rows.len(), 3);
        assert_eq!(multi.rows[0].estimate, single.rows[0].estimate);
        assert_eq!(multi.rows[0].ci, single.rows[0].ci);
        assert_eq!(multi.rows[0].func, AggFunc::Count);
        assert_eq!(multi.rows[1].expr, "nb_links");
        for row in &multi.rows {
            let ci = row.ci.expect("scalar rows carry CIs");
            assert!(ci.lo <= row.estimate && row.estimate <= ci.hi, "{row:?}");
        }
        // COUNT ≈ 5000 positives, AVG within the statistic's range.
        assert!((multi.rows[0].estimate - 5000.0).abs() < 400.0);
        assert!(multi.rows[2].estimate > 0.0 && multi.rows[2].estimate < 9.0);
    }

    #[test]
    fn binds_atoms_through_the_catalog() {
        let mut cat = catalog();
        cat.bind_predicate("emails", "sentiment=spamish", "is_spam");
        let exec = Executor { bootstrap_trials: 50, ..Executor::new(&cat) };
        let mut rng = StdRng::seed_from_u64(3);
        let r = exec
            .execute(
                "SELECT AVG(x) FROM emails WHERE sentiment(text) = 'spamish' ORACLE LIMIT 1000",
                &mut rng,
            )
            .unwrap();
        assert!(r.estimate() > 0.0);
    }

    #[test]
    fn error_paths_are_reported() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            exec.execute("SELECT AVG(x) FROM nowhere WHERE p ORACLE LIMIT 10", &mut rng),
            Err(QueryError::UnknownTable(t)) if t == "nowhere"
        ));
        assert!(matches!(
            exec.execute("SELECT AVG(x) FROM emails WHERE mystery ORACLE LIMIT 10", &mut rng),
            Err(QueryError::UnresolvedPredicate { atom, .. }) if atom == "mystery"
        ));
        assert!(matches!(
            exec.execute("SELECT oops", &mut rng),
            Err(QueryError::Parse(_))
        ));
        // Group-by on a table without a group key.
        assert!(matches!(
            exec.execute(
                "SELECT AVG(x) FROM emails WHERE is_spam GROUP BY kind ORACLE LIMIT 100",
                &mut rng
            ),
            Err(QueryError::Unsupported(_))
        ));
    }

    #[test]
    fn malformed_with_probability_is_a_parse_error() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut rng = StdRng::seed_from_u64(40);
        // Non-numeric probability.
        assert!(matches!(
            exec.execute(
                "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 100 \
                 WITH PROBABILITY banana",
                &mut rng
            ),
            Err(QueryError::Parse(_))
        ));
        // Clause cut off before the number.
        assert!(matches!(
            exec.execute(
                "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 100 WITH PROBABILITY",
                &mut rng
            ),
            Err(QueryError::Parse(_))
        ));
        // `WITH` without `PROBABILITY`.
        assert!(matches!(
            exec.execute(
                "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 100 WITH 0.95",
                &mut rng
            ),
            Err(QueryError::Parse(_))
        ));
    }

    #[test]
    fn out_of_range_probability_is_a_config_error() {
        // Parses fine, but 1 − p falls outside (0, 1) and config validation
        // reports it rather than panicking inside the bootstrap.
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut rng = StdRng::seed_from_u64(41);
        for p in ["1.5", "0", "1"] {
            let sql = format!(
                "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 100 WITH PROBABILITY {p}"
            );
            assert!(
                matches!(exec.execute(&sql, &mut rng), Err(QueryError::Config(_))),
                "probability {p} should be rejected as a config error"
            );
        }
    }

    #[test]
    fn using_a_missing_proxy_column_errors_instead_of_falling_back() {
        let cat = catalog();
        let exec = Executor { bootstrap_trials: 50, ..Executor::new(&cat) };
        let mut rng = StdRng::seed_from_u64(42);
        let err = exec
            .execute(
                "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 500 USING mystery_scores",
                &mut rng,
            )
            .unwrap_err();
        match err {
            QueryError::UnknownProxy { proxy, table, available } => {
                assert_eq!(proxy, "mystery_scores");
                assert_eq!(table, "emails");
                assert_eq!(available, vec!["is_spam".to_string()]);
                let msg = QueryError::UnknownProxy { proxy, table, available }.to_string();
                assert!(msg.contains("mystery_scores") && msg.contains("emails"), "{msg}");
                assert!(msg.contains("available: is_spam"), "{msg}");
            }
            other => panic!("expected UnknownProxy, got {other:?}"),
        }
        // Positive control: a resolvable proxy still executes.
        let r = exec
            .execute(
                "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 500 USING is_spam",
                &mut rng,
            )
            .unwrap();
        assert!(r.oracle_calls <= 500);
    }

    fn grouped_table(n: usize) -> Table {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(99);
        let mut key = Vec::with_capacity(n);
        let mut labels: Vec<Vec<bool>> = vec![Vec::new(); 2];
        let mut proxies: Vec<Vec<f64>> = vec![Vec::new(); 2];
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let u: f64 = rng.gen();
            let g = if u < 0.1 {
                Some(0u16)
            } else if u < 0.3 {
                Some(1)
            } else {
                None
            };
            key.push(g);
            for j in 0..2 {
                let member = g == Some(j as u16);
                labels[j].push(member);
                proxies[j].push(if member { 0.8 } else { 0.2 });
            }
            values.push(match g {
                Some(0) => 30.0,
                Some(1) => 60.0,
                _ => 0.0,
            });
        }
        Table::builder("images", values)
            .predicate("is_gray", std::mem::take(&mut labels[0]), std::mem::take(&mut proxies[0]))
            .predicate("is_blond", std::mem::take(&mut labels[1]), std::mem::take(&mut proxies[1]))
            .group_key(vec!["gray".into(), "blond".into()], key)
            .build()
            .unwrap()
    }

    #[test]
    fn executes_group_by_query() {
        let mut cat = Catalog::new();
        cat.register_table(grouped_table(20_000));
        cat.bind_predicate("images", "hair=gray", "is_gray");
        cat.bind_predicate("images", "hair=blond", "is_blond");
        let exec = Executor::new(&cat);
        let mut rng = StdRng::seed_from_u64(5);
        let r = exec
            .execute(
                "SELECT AVG(smile), hair FROM images \
                 WHERE hair(img) = 'gray' OR hair(img) = 'blond' \
                 GROUP BY hair(img) ORACLE LIMIT 3000",
                &mut rng,
            )
            .unwrap();
        let rows = r.groups.unwrap();
        assert_eq!(rows.len(), 2);
        let gray = rows.iter().find(|g| g.name == "gray").unwrap();
        let blond = rows.iter().find(|g| g.name == "blond").unwrap();
        assert!((gray.estimate - 30.0).abs() < 3.0, "gray {}", gray.estimate);
        assert!((blond.estimate - 60.0).abs() < 3.0, "blond {}", blond.estimate);
        assert!(r.oracle_calls <= 3000);
        // Each group row carries a CI bracketing its estimate — grouped
        // queries keep the WITH PROBABILITY guarantee.
        for row in [gray, blond] {
            let ci = row.ci.expect("per-group bootstrap CI");
            assert!((ci.confidence - 0.95).abs() < 1e-9);
            assert!(
                ci.lo <= row.estimate && row.estimate <= ci.hi,
                "{}: [{}, {}] vs {}",
                row.name,
                ci.lo,
                ci.hi,
                row.estimate
            );
        }
    }

    #[test]
    fn group_by_rejects_multi_aggregate_select_lists() {
        let mut cat = Catalog::new();
        cat.register_table(grouped_table(1_000));
        cat.bind_predicate("images", "hair=gray", "is_gray");
        cat.bind_predicate("images", "hair=blond", "is_blond");
        let exec = Executor::new(&cat);
        let mut rng = StdRng::seed_from_u64(50);
        assert!(matches!(
            exec.execute(
                "SELECT AVG(smile), COUNT(*), hair FROM images \
                 WHERE hair(img) = 'gray' OR hair(img) = 'blond' \
                 GROUP BY hair(img) ORACLE LIMIT 500",
                &mut rng,
            ),
            Err(QueryError::Unsupported(_))
        ));
    }

    #[test]
    fn percentage_scales_estimate_and_ci_together() {
        // Statistic in {0, 1}: PERCENTAGE reports percent, and the CI is
        // scaled identically so it still brackets the estimate.
        let n = 10_000;
        let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.9 } else { 0.1 }).collect();
        let values: Vec<f64> = (0..n).map(|i| f64::from(i % 3 == 0)).collect();
        let t = Table::builder("faces", values).predicate("p", labels, proxy).build().unwrap();
        let mut cat = Catalog::new();
        cat.register_table(t);
        let exec = Executor { bootstrap_trials: 50, ..Executor::new(&cat) };
        let mut rng = StdRng::seed_from_u64(6);
        let r = exec
            .execute("SELECT PERCENTAGE(is_smiling(img)) FROM faces WHERE p ORACLE LIMIT 2000", &mut rng)
            .unwrap();
        assert!(r.estimate() > 20.0 && r.estimate() < 50.0, "{}", r.estimate());
        let ci = r.ci().expect("scalar query CI");
        assert!(
            ci.lo <= r.estimate() && r.estimate() <= ci.hi,
            "PERCENTAGE CI [{}, {}] must bracket {}",
            ci.lo,
            ci.hi,
            r.estimate()
        );
        // The CI is on the percent scale too, not the raw 0–1 scale.
        assert!(ci.hi > 1.0, "CI upper bound {} still on the unscaled scale", ci.hi);
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod explain_tests {
    use super::*;
    use abae_data::Table;
    use rand::SeedableRng;

    #[test]
    fn explain_describes_plan_without_oracle_calls() {
        let labels = vec![true, false, true, false];
        let proxy = vec![0.9, 0.1, 0.8, 0.2];
        let t = Table::builder("emails", vec![1.0, 2.0, 3.0, 4.0])
            .predicate("is_spam", labels, proxy)
            .build()
            .unwrap();
        let mut cat = Catalog::new();
        cat.register_table(t);
        let exec = Executor::new(&cat);
        let plan = exec
            .explain("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT 1000")
            .unwrap();
        assert!(plan.contains("two-stage"), "{plan}");
        assert!(plan.contains("is_spam"), "{plan}");
        assert!(plan.contains("1000"), "{plan}");
        assert!(plan.contains("stage 1"), "{plan}");
        assert!(plan.contains("label store disabled"), "{plan}");
    }

    #[test]
    fn explain_budget_split_comes_from_stage_split() {
        // The printed split must be stage_split's, for any knob setting —
        // not a re-derived formula that can drift from execution.
        let t = Table::builder("t", vec![1.0; 100])
            .predicate("p", vec![true; 100], vec![0.5; 100])
            .build()
            .unwrap();
        let mut cat = Catalog::new();
        cat.register_table(t);
        for (strata, frac, limit) in [(5, 0.5, 1000), (7, 0.3, 999), (3, 0.9, 10)] {
            let exec =
                Executor { strata, stage1_fraction: frac, ..Executor::new(&cat) };
            let plan = exec
                .explain(&format!("SELECT AVG(x) FROM t WHERE p ORACLE LIMIT {limit}"))
                .unwrap();
            let split = abae_sampling::budget::stage_split(limit, frac, strata);
            let expected = format!(
                "budget : {limit} oracle calls = stage 1 ({strata} strata x {}) + stage 2 ({})",
                split.n1_per_stratum, split.n2_total
            );
            assert!(plan.contains(&expected), "{plan}\nexpected line: {expected}");
        }
    }

    #[test]
    fn explain_reports_multi_aggregate_plans_and_cache_state() {
        let n = 100;
        let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.9 } else { 0.1 }).collect();
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let t = Table::builder("emails", values)
            .predicate("is_spam", labels, proxy)
            .build()
            .unwrap();
        let mut cat = Catalog::new();
        cat.register_table(t);
        cat.enable_label_cache();
        let exec = Executor { bootstrap_trials: 20, ..Executor::new(&cat) };
        let sql = "SELECT COUNT(*), AVG(links) FROM emails WHERE is_spam ORACLE LIMIT 50";
        let plan = exec.explain(sql).unwrap();
        assert!(plan.contains("2 aggregates"), "{plan}");
        assert!(plan.contains("label store enabled — 0 verdicts"), "{plan}");
        // Execute once, then EXPLAIN reflects the warm cache.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = exec.execute(sql, &mut rng).unwrap();
        assert!(r.cache_misses > 0);
        let plan = exec.explain(sql).unwrap();
        assert!(
            plan.contains(&format!("label store enabled — {} verdicts", r.cache_misses)),
            "{plan}"
        );
    }

    #[test]
    fn explain_does_not_promise_cache_reuse_for_group_by() {
        // GROUP BY execution never consults the cross-query store; the
        // plan must say so instead of printing entry occupancy.
        let n = 1000;
        let key: Vec<Option<u16>> = (0..n).map(|i| (i % 3 == 0).then_some(0)).collect();
        let labels: Vec<bool> = key.iter().map(Option::is_some).collect();
        let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
        let t = Table::builder("images", vec![1.0; n])
            .predicate("is_gray", labels, proxy)
            .group_key(vec!["gray".into()], key)
            .build()
            .unwrap();
        let mut cat = Catalog::new();
        cat.register_table(t);
        cat.bind_predicate("images", "hair=gray", "is_gray");
        cat.enable_label_cache();
        let exec = Executor::new(&cat);
        let plan = exec
            .explain(
                "SELECT AVG(smile), hair FROM images WHERE hair(img) = 'gray' \
                 GROUP BY hair(img) ORACLE LIMIT 100",
            )
            .unwrap();
        assert!(plan.contains("not used by GROUP BY"), "{plan}");
        assert!(!plan.contains("verdicts cached"), "{plan}");
    }

    #[test]
    fn explain_reports_multipred_and_errors() {
        let t = Table::builder("t", vec![1.0])
            .predicate("a", vec![true], vec![0.5])
            .predicate("b", vec![false], vec![0.5])
            .build()
            .unwrap();
        let mut cat = Catalog::new();
        cat.register_table(t);
        let exec = Executor::new(&cat);
        let plan = exec.explain("SELECT AVG(x) FROM t WHERE a AND b ORACLE LIMIT 10").unwrap();
        assert!(plan.contains("MultiPred"), "{plan}");
        assert!(exec.explain("SELECT AVG(x) FROM nope WHERE a ORACLE LIMIT 10").is_err());
        assert!(exec.explain("SELECT AVG(x) FROM t WHERE zzz ORACLE LIMIT 10").is_err());
    }
}
