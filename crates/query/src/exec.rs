//! Query executor: routes parsed queries to the ABae algorithms.
//!
//! * Single- or multi-predicate `WHERE` → [`abae_core::multipred`] (a lone
//!   atom is just a one-leaf expression) with a bootstrap CI honoring the
//!   query's `WITH PROBABILITY`.
//! * `GROUP BY` → [`abae_core::groupby`] in the single-oracle setting (the
//!   table's group key plays the oracle); per-group predicates must be
//!   registered in group order, mirroring the paper's assumption that each
//!   group has its own proxy.
//! * `ORACLE LIMIT` is the total oracle budget; `USING <proxy>` may name a
//!   predicate column whose proxy stratifies the query (otherwise each
//!   predicate's own proxy is combined per §3.3).

use crate::ast::{AggFunc, Query};
use crate::catalog::Catalog;
use crate::parser::{parse_query, ParseError};
use abae_core::config::{AbaeConfig, BootstrapConfig, ConfigError};
use abae_core::groupby::{groupby_single_oracle, GroupByConfig, GroupByError};
use abae_core::multipred::expression_oracle;
use abae_core::pipeline::ExecOptions;
use abae_core::two_stage::run_abae_with_ci;
use abae_data::{Oracle as _, SingleGroupOracle, TableError};
use abae_stats::bootstrap::ConfidenceInterval;
use rand::Rng;

/// Per-group result row.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Group name (from the table's group key).
    pub name: String,
    /// Estimated per-group aggregate.
    pub estimate: f64,
}

/// Result of executing a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Scalar estimate (for group-by queries, the mean of group
    /// estimates; inspect `groups` for the rows).
    pub estimate: f64,
    /// Bootstrap CI at the query's probability (scalar queries only).
    pub ci: Option<ConfidenceInterval>,
    /// Oracle invocations actually spent.
    pub oracle_calls: u64,
    /// Group rows for `GROUP BY` queries.
    pub groups: Option<Vec<GroupRow>>,
}

/// Errors from query execution.
#[derive(Debug)]
pub enum QueryError {
    /// Parsing failed.
    Parse(ParseError),
    /// The `FROM` table is not in the catalog.
    UnknownTable(String),
    /// A predicate atom could not be resolved to a column.
    UnresolvedPredicate {
        /// The atom's canonical key.
        atom: String,
        /// The table searched.
        table: String,
    },
    /// `USING <proxy>` named something that is neither a predicate column
    /// nor a registered binding of the table.
    UnknownProxy {
        /// The proxy name from the query.
        proxy: String,
        /// The table searched.
        table: String,
    },
    /// Table-level failure.
    Table(TableError),
    /// Invalid ABae configuration derived from the query.
    Config(ConfigError),
    /// Group-by execution failure.
    GroupBy(GroupByError),
    /// The query shape is not supported.
    Unsupported(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            QueryError::UnresolvedPredicate { atom, table } => {
                write!(f, "predicate `{atom}` is not a column or binding of `{table}`")
            }
            QueryError::UnknownProxy { proxy, table } => {
                write!(f, "USING proxy `{proxy}` is not a column or binding of `{table}`")
            }
            QueryError::Table(e) => write!(f, "table: {e}"),
            QueryError::Config(e) => write!(f, "config: {e}"),
            QueryError::GroupBy(e) => write!(f, "group-by: {e}"),
            QueryError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

/// Executes ABae queries against a catalog.
#[derive(Debug)]
pub struct Executor<'a> {
    catalog: &'a Catalog,
    /// Strata count `K` for every query (Figure 10 default: 5).
    pub strata: usize,
    /// Stage-1 fraction `C` (Figure 11 default: 0.5).
    pub stage1_fraction: f64,
    /// Bootstrap resamples `β` per CI.
    pub bootstrap_trials: usize,
    /// Oracle-labeling execution knobs (worker threads, batch size),
    /// forwarded to every algorithm the executor routes to. Defaults honor
    /// `ABAE_THREADS` / `ABAE_BATCH`; results are identical for any value.
    pub exec: ExecOptions,
}

impl<'a> Executor<'a> {
    /// Creates an executor with the paper's default knobs.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            strata: 5,
            stage1_fraction: 0.5,
            bootstrap_trials: 1000,
            exec: ExecOptions::default(),
        }
    }

    /// Parses and executes `sql`.
    pub fn execute<R: Rng + ?Sized>(
        &self,
        sql: &str,
        rng: &mut R,
    ) -> Result<QueryResult, QueryError> {
        let query = parse_query(sql)?;
        self.execute_parsed(&query, rng)
    }

    /// `EXPLAIN`: describes the physical plan for `sql` — the chosen
    /// algorithm, the resolved predicate columns, and the budget split —
    /// without spending any oracle calls.
    pub fn explain(&self, sql: &str) -> Result<String, QueryError> {
        let query = parse_query(sql)?;
        let table = self
            .catalog
            .table(&query.table)
            .ok_or_else(|| QueryError::UnknownTable(query.table.clone()))?;
        let keys = query.predicate.atom_keys();
        let mut lines = Vec::new();
        lines.push(format!("query  : {query}"));
        lines.push(format!("table  : {} ({} records)", table.name(), table.len()));
        for key in &keys {
            let col = self.catalog.resolve(&query.table, key).ok_or_else(|| {
                QueryError::UnresolvedPredicate { atom: key.clone(), table: query.table.clone() }
            })?;
            lines.push(format!("atom   : {key} -> predicate column `{col}`"));
        }
        let strategy = if query.group_by.is_some() {
            format!(
                "ABae-GroupBy (single oracle, minimax allocation over {} groups)",
                table.group_key().map(|g| g.names.len()).unwrap_or(0)
            )
        } else if keys.len() > 1 {
            "ABae-MultiPred (combined proxy scores, one oracle call per record)".to_string()
        } else {
            "ABae two-stage stratified sampling".to_string()
        };
        lines.push(format!("plan   : {strategy}"));
        let n1 = ((self.stage1_fraction * query.oracle_limit as f64) / self.strata as f64)
            .floor() as usize;
        lines.push(format!(
            "budget : {} oracle calls = stage 1 ({} strata x {}) + stage 2 ({})",
            query.oracle_limit,
            self.strata,
            n1,
            query.oracle_limit.saturating_sub(n1 * self.strata),
        ));
        lines.push(format!(
            "ci     : percentile bootstrap, {} resamples, confidence {}",
            self.bootstrap_trials, query.probability
        ));
        Ok(lines.join("\n"))
    }

    /// Executes an already-parsed query.
    pub fn execute_parsed<R: Rng + ?Sized>(
        &self,
        query: &Query,
        rng: &mut R,
    ) -> Result<QueryResult, QueryError> {
        let table = self
            .catalog
            .table(&query.table)
            .ok_or_else(|| QueryError::UnknownTable(query.table.clone()))?;

        // Resolve every atom to a predicate column index.
        let keys = query.predicate.atom_keys();
        let mut columns = Vec::with_capacity(keys.len());
        for key in &keys {
            let col = self.catalog.resolve(&query.table, key).ok_or_else(|| {
                QueryError::UnresolvedPredicate { atom: key.clone(), table: query.table.clone() }
            })?;
            columns.push(table.predicate_index(&col).map_err(QueryError::Table)?);
        }
        let index_of = |key: &str| -> usize {
            let pos = keys.iter().position(|k| k == key).expect("key collected above");
            columns[pos]
        };

        if query.group_by.is_some() {
            return self.execute_groupby(query, table, &columns, rng);
        }

        let expr = query.predicate.to_pred_expr(&index_of);
        // Stratification scores: the `USING <column>` proxy when one is
        // named (an unresolvable name is an error, not a silent fallback),
        // otherwise the §3.3 combination of the predicates' own proxies.
        let scores = match query.proxy.as_deref() {
            Some(p) => {
                let col = self.catalog.resolve(&query.table, p).ok_or_else(|| {
                    QueryError::UnknownProxy { proxy: p.to_string(), table: query.table.clone() }
                })?;
                table.predicate(&col).map_err(QueryError::Table)?.proxy.clone()
            }
            None => abae_core::multipred::table_combined_scores(table, &expr)
                .map_err(QueryError::Table)?,
        };
        let oracle = expression_oracle(table, &expr).map_err(QueryError::Table)?;
        let config = AbaeConfig {
            strata: self.strata,
            budget: query.oracle_limit,
            stage1_fraction: self.stage1_fraction,
            bootstrap: BootstrapConfig {
                trials: self.bootstrap_trials,
                alpha: 1.0 - query.probability,
            },
            exec: self.exec,
            ..Default::default()
        };
        let agg = query.agg.to_core();
        let result =
            run_abae_with_ci(&scores, &oracle, &config, agg, rng).map_err(QueryError::Config)?;
        let estimate = scale_percentage(query.agg, result.estimate);
        Ok(QueryResult {
            estimate,
            ci: result.ci,
            oracle_calls: result.oracle_calls,
            groups: None,
        })
    }

    fn execute_groupby<R: Rng + ?Sized>(
        &self,
        query: &Query,
        table: &abae_data::Table,
        columns: &[usize],
        rng: &mut R,
    ) -> Result<QueryResult, QueryError> {
        let group_key = table.group_key().ok_or_else(|| {
            QueryError::Unsupported(format!("table `{}` has no group key", query.table))
        })?;
        let groups = group_key.names.clone();
        if columns.len() != groups.len() {
            return Err(QueryError::Unsupported(format!(
                "group-by query names {} predicates but table `{}` has {} groups",
                columns.len(),
                query.table,
                groups.len()
            )));
        }
        // Per-group proxies in group order: the atom resolved for position
        // g must be the per-group predicate of group g.
        let proxies: Vec<&[f64]> = columns
            .iter()
            .map(|&c| table.predicates()[c].proxy.as_slice())
            .collect();
        let oracle = SingleGroupOracle::new(table)
            .expect("group key presence checked above");
        let cfg = GroupByConfig {
            strata: self.strata,
            budget: query.oracle_limit,
            stage1_fraction: self.stage1_fraction,
            exec: self.exec,
            ..Default::default()
        };
        let estimates =
            groupby_single_oracle(&proxies, &oracle, &cfg, rng).map_err(QueryError::GroupBy)?;
        let rows: Vec<GroupRow> = estimates
            .iter()
            .map(|e| GroupRow {
                name: groups[e.group as usize].clone(),
                estimate: scale_percentage(query.agg, e.estimate),
            })
            .collect();
        let mean =
            rows.iter().map(|r| r.estimate).sum::<f64>() / rows.len().max(1) as f64;
        Ok(QueryResult {
            estimate: mean,
            ci: None,
            oracle_calls: oracle.calls(),
            groups: Some(rows),
        })
    }
}

/// `PERCENTAGE` is executed as `AVG`; when the statistic is a 0/1
/// indicator the result is scaled to percent. Statistics already scaled to
/// 0/100 (as the celeba emulator stores them) pass through unchanged, so
/// the scaling applies only to sub-unit averages.
fn scale_percentage(agg: AggFunc, estimate: f64) -> f64 {
    if agg == AggFunc::Percentage && estimate <= 1.0 {
        estimate * 100.0
    } else {
        estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abae_data::Table;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spam_table(n: usize) -> Table {
        let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.8 } else { 0.2 }).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
        Table::builder("emails", values)
            .predicate("is_spam", labels, proxy)
            .build()
            .unwrap()
    }

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register_table(spam_table(20_000));
        cat
    }

    #[test]
    fn executes_single_predicate_avg() {
        let cat = catalog();
        let table = cat.table("emails").unwrap();
        let exact = table.exact_avg("is_spam").unwrap();
        let exec = Executor { bootstrap_trials: 200, ..Executor::new(&cat) };
        let mut rng = StdRng::seed_from_u64(1);
        let r = exec
            .execute(
                "SELECT AVG(nb_links) FROM emails WHERE is_spam \
                 ORACLE LIMIT 3000 WITH PROBABILITY 0.95",
                &mut rng,
            )
            .unwrap();
        assert!((r.estimate - exact).abs() < 0.3, "{} vs {exact}", r.estimate);
        let ci = r.ci.unwrap();
        assert!((ci.confidence - 0.95).abs() < 1e-9);
        assert!(ci.lo <= r.estimate && r.estimate <= ci.hi);
        assert!(r.oracle_calls <= 3000);
    }

    #[test]
    fn executes_count_query() {
        let cat = catalog();
        let exec = Executor { bootstrap_trials: 100, ..Executor::new(&cat) };
        let mut rng = StdRng::seed_from_u64(2);
        let r = exec
            .execute("SELECT COUNT(*) FROM emails WHERE is_spam ORACLE LIMIT 4000", &mut rng)
            .unwrap();
        assert!((r.estimate - 5000.0).abs() < 400.0, "{}", r.estimate);
    }

    #[test]
    fn binds_atoms_through_the_catalog() {
        let mut cat = catalog();
        cat.bind_predicate("emails", "sentiment=spamish", "is_spam");
        let exec = Executor { bootstrap_trials: 50, ..Executor::new(&cat) };
        let mut rng = StdRng::seed_from_u64(3);
        let r = exec
            .execute(
                "SELECT AVG(x) FROM emails WHERE sentiment(text) = 'spamish' ORACLE LIMIT 1000",
                &mut rng,
            )
            .unwrap();
        assert!(r.estimate > 0.0);
    }

    #[test]
    fn error_paths_are_reported() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            exec.execute("SELECT AVG(x) FROM nowhere WHERE p ORACLE LIMIT 10", &mut rng),
            Err(QueryError::UnknownTable(t)) if t == "nowhere"
        ));
        assert!(matches!(
            exec.execute("SELECT AVG(x) FROM emails WHERE mystery ORACLE LIMIT 10", &mut rng),
            Err(QueryError::UnresolvedPredicate { atom, .. }) if atom == "mystery"
        ));
        assert!(matches!(
            exec.execute("SELECT oops", &mut rng),
            Err(QueryError::Parse(_))
        ));
        // Group-by on a table without a group key.
        assert!(matches!(
            exec.execute(
                "SELECT AVG(x) FROM emails WHERE is_spam GROUP BY kind ORACLE LIMIT 100",
                &mut rng
            ),
            Err(QueryError::Unsupported(_))
        ));
    }

    #[test]
    fn malformed_with_probability_is_a_parse_error() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut rng = StdRng::seed_from_u64(40);
        // Non-numeric probability.
        assert!(matches!(
            exec.execute(
                "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 100 \
                 WITH PROBABILITY banana",
                &mut rng
            ),
            Err(QueryError::Parse(_))
        ));
        // Clause cut off before the number.
        assert!(matches!(
            exec.execute(
                "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 100 WITH PROBABILITY",
                &mut rng
            ),
            Err(QueryError::Parse(_))
        ));
        // `WITH` without `PROBABILITY`.
        assert!(matches!(
            exec.execute(
                "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 100 WITH 0.95",
                &mut rng
            ),
            Err(QueryError::Parse(_))
        ));
    }

    #[test]
    fn out_of_range_probability_is_a_config_error() {
        // Parses fine, but 1 − p falls outside (0, 1) and config validation
        // reports it rather than panicking inside the bootstrap.
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut rng = StdRng::seed_from_u64(41);
        for p in ["1.5", "0", "1"] {
            let sql = format!(
                "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 100 WITH PROBABILITY {p}"
            );
            assert!(
                matches!(exec.execute(&sql, &mut rng), Err(QueryError::Config(_))),
                "probability {p} should be rejected as a config error"
            );
        }
    }

    #[test]
    fn using_a_missing_proxy_column_errors_instead_of_falling_back() {
        let cat = catalog();
        let exec = Executor { bootstrap_trials: 50, ..Executor::new(&cat) };
        let mut rng = StdRng::seed_from_u64(42);
        let err = exec
            .execute(
                "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 500 USING mystery_scores",
                &mut rng,
            )
            .unwrap_err();
        match err {
            QueryError::UnknownProxy { proxy, table } => {
                assert_eq!(proxy, "mystery_scores");
                assert_eq!(table, "emails");
                let msg = QueryError::UnknownProxy { proxy, table }.to_string();
                assert!(msg.contains("mystery_scores") && msg.contains("emails"), "{msg}");
            }
            other => panic!("expected UnknownProxy, got {other:?}"),
        }
        // Positive control: a resolvable proxy still executes.
        let r = exec
            .execute(
                "SELECT AVG(x) FROM emails WHERE is_spam ORACLE LIMIT 500 USING is_spam",
                &mut rng,
            )
            .unwrap();
        assert!(r.oracle_calls <= 500);
    }

    fn grouped_table(n: usize) -> Table {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(99);
        let mut key = Vec::with_capacity(n);
        let mut labels: Vec<Vec<bool>> = vec![Vec::new(); 2];
        let mut proxies: Vec<Vec<f64>> = vec![Vec::new(); 2];
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let u: f64 = rng.gen();
            let g = if u < 0.1 {
                Some(0u16)
            } else if u < 0.3 {
                Some(1)
            } else {
                None
            };
            key.push(g);
            for j in 0..2 {
                let member = g == Some(j as u16);
                labels[j].push(member);
                proxies[j].push(if member { 0.8 } else { 0.2 });
            }
            values.push(match g {
                Some(0) => 30.0,
                Some(1) => 60.0,
                _ => 0.0,
            });
        }
        Table::builder("images", values)
            .predicate("is_gray", std::mem::take(&mut labels[0]), std::mem::take(&mut proxies[0]))
            .predicate("is_blond", std::mem::take(&mut labels[1]), std::mem::take(&mut proxies[1]))
            .group_key(vec!["gray".into(), "blond".into()], key)
            .build()
            .unwrap()
    }

    #[test]
    fn executes_group_by_query() {
        let mut cat = Catalog::new();
        cat.register_table(grouped_table(20_000));
        cat.bind_predicate("images", "hair=gray", "is_gray");
        cat.bind_predicate("images", "hair=blond", "is_blond");
        let exec = Executor::new(&cat);
        let mut rng = StdRng::seed_from_u64(5);
        let r = exec
            .execute(
                "SELECT AVG(smile), hair FROM images \
                 WHERE hair(img) = 'gray' OR hair(img) = 'blond' \
                 GROUP BY hair(img) ORACLE LIMIT 3000",
                &mut rng,
            )
            .unwrap();
        let rows = r.groups.unwrap();
        assert_eq!(rows.len(), 2);
        let gray = rows.iter().find(|g| g.name == "gray").unwrap();
        let blond = rows.iter().find(|g| g.name == "blond").unwrap();
        assert!((gray.estimate - 30.0).abs() < 3.0, "gray {}", gray.estimate);
        assert!((blond.estimate - 60.0).abs() < 3.0, "blond {}", blond.estimate);
        assert!(r.oracle_calls <= 3000);
    }

    #[test]
    fn percentage_scales_unit_indicators() {
        // Statistic in {0, 1}: PERCENTAGE should report percent.
        let n = 10_000;
        let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let proxy: Vec<f64> = labels.iter().map(|&l| if l { 0.9 } else { 0.1 }).collect();
        let values: Vec<f64> = (0..n).map(|i| f64::from(i % 3 == 0)).collect();
        let t = Table::builder("faces", values).predicate("p", labels, proxy).build().unwrap();
        let mut cat = Catalog::new();
        cat.register_table(t);
        let exec = Executor { bootstrap_trials: 50, ..Executor::new(&cat) };
        let mut rng = StdRng::seed_from_u64(6);
        let r = exec
            .execute("SELECT PERCENTAGE(is_smiling(img)) FROM faces WHERE p ORACLE LIMIT 2000", &mut rng)
            .unwrap();
        assert!(r.estimate > 20.0 && r.estimate < 50.0, "{}", r.estimate);
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use abae_data::Table;

    #[test]
    fn explain_describes_plan_without_oracle_calls() {
        let labels = vec![true, false, true, false];
        let proxy = vec![0.9, 0.1, 0.8, 0.2];
        let t = Table::builder("emails", vec![1.0, 2.0, 3.0, 4.0])
            .predicate("is_spam", labels, proxy)
            .build()
            .unwrap();
        let mut cat = Catalog::new();
        cat.register_table(t);
        let exec = Executor::new(&cat);
        let plan = exec
            .explain("SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT 1000")
            .unwrap();
        assert!(plan.contains("two-stage"), "{plan}");
        assert!(plan.contains("is_spam"), "{plan}");
        assert!(plan.contains("1000"), "{plan}");
        assert!(plan.contains("stage 1"), "{plan}");
    }

    #[test]
    fn explain_reports_multipred_and_errors() {
        let t = Table::builder("t", vec![1.0])
            .predicate("a", vec![true], vec![0.5])
            .predicate("b", vec![false], vec![0.5])
            .build()
            .unwrap();
        let mut cat = Catalog::new();
        cat.register_table(t);
        let exec = Executor::new(&cat);
        let plan = exec.explain("SELECT AVG(x) FROM t WHERE a AND b ORACLE LIMIT 10").unwrap();
        assert!(plan.contains("MultiPred"), "{plan}");
        assert!(exec.explain("SELECT AVG(x) FROM nope WHERE a ORACLE LIMIT 10").is_err());
        assert!(exec.explain("SELECT AVG(x) FROM t WHERE zzz ORACLE LIMIT 10").is_err());
    }
}
