//! Hand-written lexer for the ABae SQL dialect.

/// A lexical token with its source position (byte offset).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the input (for error messages).
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Numeric literal (integers may use `_` or `,` separators: `10,000`).
    Number(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
    /// `?` — a prepared-statement parameter placeholder (valid after
    /// `ORACLE LIMIT` and `WITH PROBABILITY`; bound at run time through
    /// `Prepared::with_budget` / `Prepared::with_probability`).
    Question,
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes the input.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, offset: i });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, offset: i });
                i += 1;
            }
            ',' => {
                // A comma may be a numeric separator (`10,000`) when the
                // previous token is a number and a digit follows. We treat
                // it as a separator only in that case.
                if let (Some(Token { kind: TokenKind::Number(_), .. }), Some(next)) =
                    (tokens.last(), bytes.get(i + 1))
                {
                    if next.is_ascii_digit() {
                        // Merge: re-lex the digits and fold into the number.
                        let start = i + 1;
                        let mut j = start;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                        let group: &str = &input[start..j];
                        if group.len() == 3 {
                            if let Some(Token { kind: TokenKind::Number(n), .. }) =
                                tokens.last_mut()
                            {
                                *n = *n * 1000.0 + group.parse::<f64>().unwrap();
                                i = j;
                                continue;
                            }
                        }
                        tokens.push(Token { kind: TokenKind::Comma, offset: i });
                        i += 1;
                        continue;
                    }
                }
                tokens.push(Token { kind: TokenKind::Comma, offset: i });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, offset: i });
                i += 1;
            }
            ';' => {
                tokens.push(Token { kind: TokenKind::Semicolon, offset: i });
                i += 1;
            }
            '?' => {
                tokens.push(Token { kind: TokenKind::Question, offset: i });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Eq, offset: i });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Neq, offset: i });
                    i += 2;
                } else {
                    return Err(LexError { offset: i, message: "expected `!=`".into() });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token { kind: TokenKind::Le, offset: i });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token { kind: TokenKind::Neq, offset: i });
                    i += 2;
                }
                _ => {
                    tokens.push(Token { kind: TokenKind::Lt, offset: i });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, offset: i });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, offset: i });
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError { offset: i, message: "unterminated string".into() });
                }
                tokens.push(Token {
                    kind: TokenKind::Str(input[start..j].trim().to_string()),
                    offset: i,
                });
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut j = i;
                let mut seen_dot = false;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_digit() || b == '_' {
                        j += 1;
                    } else if b == '.' && !seen_dot {
                        seen_dot = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text: String = input[start..j].chars().filter(|&ch| ch != '_').collect();
                let value: f64 = text.parse().map_err(|_| LexError {
                    offset: start,
                    message: format!("bad number `{text}`"),
                })?;
                tokens.push(Token { kind: TokenKind::Number(value), offset: start });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    // Hyphens are identifier characters (dataset names like
                    // `night-street`); the dialect has no minus operator.
                    if b.is_ascii_alphanumeric() || b == '_' || b == '.' || b == '-' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_a_full_query() {
        let toks = kinds(
            "SELECT AVG(views) FROM news WHERE contains_candidate(frame, 'Biden') \
             ORACLE LIMIT 10,000 USING proxy WITH PROBABILITY 0.95",
        );
        assert!(toks.contains(&TokenKind::Ident("SELECT".into())));
        assert!(toks.contains(&TokenKind::Str("Biden".into())));
        assert!(toks.contains(&TokenKind::Number(10_000.0)));
        assert!(toks.contains(&TokenKind::Number(0.95)));
    }

    #[test]
    fn numeric_separators() {
        assert_eq!(kinds("10,000"), vec![TokenKind::Number(10_000.0)]);
        assert_eq!(kinds("1_000_000"), vec![TokenKind::Number(1_000_000.0)]);
        // A comma followed by a non-3-digit group is a real comma.
        assert_eq!(
            kinds("10,25"),
            vec![TokenKind::Number(10.0), TokenKind::Comma, TokenKind::Number(25.0)]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a >= 1 b <= 2 c <> 3 d != 4 e < 5 f > 6 g = 7"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ge,
                TokenKind::Number(1.0),
                TokenKind::Ident("b".into()),
                TokenKind::Le,
                TokenKind::Number(2.0),
                TokenKind::Ident("c".into()),
                TokenKind::Neq,
                TokenKind::Number(3.0),
                TokenKind::Ident("d".into()),
                TokenKind::Neq,
                TokenKind::Number(4.0),
                TokenKind::Ident("e".into()),
                TokenKind::Lt,
                TokenKind::Number(5.0),
                TokenKind::Ident("f".into()),
                TokenKind::Gt,
                TokenKind::Number(6.0),
                TokenKind::Ident("g".into()),
                TokenKind::Eq,
                TokenKind::Number(7.0),
            ]
        );
    }

    #[test]
    fn string_literals_preserve_interior_and_trim_padding() {
        // The paper's examples write 'Biden ' with trailing space.
        assert_eq!(kinds("'Biden '"), vec![TokenKind::Str("Biden".into())]);
        assert_eq!(kinds("'strongly positive'"), vec![TokenKind::Str("strongly positive".into())]);
    }

    #[test]
    fn errors_carry_offsets() {
        let err = tokenize("SELECT @").unwrap_err();
        assert_eq!(err.offset, 7);
        let err = tokenize("'unterminated").unwrap_err();
        assert_eq!(err.offset, 0);
        let err = tokenize("a ! b").unwrap_err();
        assert!(err.message.contains("!="));
    }

    #[test]
    fn dotted_identifiers() {
        assert_eq!(kinds("video.frame"), vec![TokenKind::Ident("video.frame".into())]);
    }

    #[test]
    fn hyphenated_identifiers() {
        assert_eq!(kinds("night-street"), vec![TokenKind::Ident("night-street".into())]);
    }

    #[test]
    fn question_mark_is_a_placeholder_token() {
        assert_eq!(
            kinds("LIMIT ? PROBABILITY ?"),
            vec![
                TokenKind::Ident("LIMIT".into()),
                TokenKind::Question,
                TokenKind::Ident("PROBABILITY".into()),
                TokenKind::Question,
            ]
        );
    }
}
