//! SQL-dialect frontend for ABae (paper Figure 1).
//!
//! ```sql
//! SELECT {AVG | SUM | COUNT | PERCENTAGE} ({field | EXPR(field) | *})
//! FROM table_name WHERE filter_predicate
//! [GROUP BY key]
//! ORACLE LIMIT o USING proxy
//! WITH PROBABILITY p
//! ```
//!
//! The `WHERE` clause is a boolean expression (`NOT` / `AND` / `OR`,
//! parentheses) over *expensive predicate atoms* such as
//! `contains_candidate(frame, 'Biden')` or `hair_color(img) = 'blonde'`.
//! Atoms are resolved against a [`catalog::Catalog`]: first by exact
//! predicate-column name, then through explicit bindings registered by the
//! application (e.g. binding the atom `hair_color=blonde` to the table's
//! `blonde_hair` column).
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast::Query`] → [`exec::Executor`],
//! which routes to `abae-core` (single predicate, multi-predicate, or
//! group-by) and returns estimates with bootstrap CIs.

#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod display;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{AggFunc, BoolExpr, Query};
pub use catalog::Catalog;
pub use exec::{Executor, QueryError, QueryResult};
pub use parser::parse_query;
