//! SQL-dialect frontend for ABae (paper Figure 1).
//!
//! ```sql
//! SELECT agg [, agg ...] FROM table_name WHERE filter_predicate
//! [GROUP BY key]
//! ORACLE LIMIT o USING proxy
//! WITH PROBABILITY p
//! -- agg := {AVG | SUM | COUNT | PERCENTAGE} ({field | EXPR(field) | *})
//! ```
//!
//! The `SELECT` list may name several aggregates; all of them are answered
//! from **one** shared sampling-and-labeling pass, so a three-aggregate
//! query spends exactly the oracle budget of a one-aggregate query
//! ([`exec::QueryResult::rows`] carries one row per aggregate). When the
//! catalog's cross-query label cache is on ([`Catalog::enable_label_cache`]),
//! repeated queries over the same table and predicate reuse cached oracle
//! verdicts and spend budget only on unseen records.
//!
//! The `WHERE` clause is a boolean expression (`NOT` / `AND` / `OR`,
//! parentheses) over *expensive predicate atoms* such as
//! `contains_candidate(frame, 'Biden')` or `hair_color(img) = 'blonde'`.
//! Atoms are resolved against a [`catalog::Catalog`]: first by exact
//! predicate-column name, then through explicit bindings registered by the
//! application (e.g. binding the atom `hair_color=blonde` to the table's
//! `blonde_hair` column).
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast::Query`] → [`exec::Executor`],
//! which routes to `abae-core` (single predicate, multi-predicate, or
//! group-by) and returns estimates with bootstrap CIs.

#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod display;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{AggFunc, AggItem, BoolExpr, Query};
pub use catalog::Catalog;
pub use exec::{AggRow, Executor, GroupRow, QueryError, QueryResult};
pub use parser::parse_query;
