//! SQL-dialect frontend for ABae (paper Figure 1).
//!
//! ```sql
//! SELECT agg [, agg ...] FROM table_name WHERE filter_predicate
//! [GROUP BY key]
//! ORACLE LIMIT o USING proxy
//! WITH PROBABILITY p
//! -- agg := {AVG | SUM | COUNT | PERCENTAGE} ({field | EXPR(field) | *})
//! ```
//!
//! The `SELECT` list may name several aggregates; all of them are answered
//! from **one** shared sampling-and-labeling pass, so a three-aggregate
//! query spends exactly the oracle budget of a one-aggregate query
//! ([`exec::QueryResult::rows`] carries one row per aggregate). When the
//! catalog's cross-query label cache is on ([`Catalog::enable_label_cache`]),
//! repeated queries over the same table and predicate reuse cached oracle
//! verdicts and spend budget only on unseen records.
//!
//! The `WHERE` clause is a boolean expression (`NOT` / `AND` / `OR`,
//! parentheses) over *expensive predicate atoms* such as
//! `contains_candidate(frame, 'Biden')` or `hair_color(img) = 'blonde'`.
//! Atoms are resolved against a [`catalog::Catalog`]: first by exact
//! predicate-column name, then through explicit bindings registered by the
//! application (e.g. binding the atom `hair_color=blonde` to the table's
//! `blonde_hair` column).
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast::Query`] → one shared planner
//! (`plan`) → `abae-core` (single predicate, multi-predicate, or group-by)
//! → estimates with bootstrap CIs.
//!
//! # The proxy subsystem
//!
//! Stratification scores come from a [`ScoreSource`], not a hardwired
//! proxy column: a precomputed column, the §3.3 combination of the
//! predicates' own columns, or a model trained **in-engine**:
//!
//! ```sql
//! CREATE PROXY spamnet ON emails(is_spam) USING logistic CALIBRATED TRAIN LIMIT 1000;
//! SELECT AVG(links) FROM emails WHERE is_spam ORACLE LIMIT 5000 USING spamnet;
//! SHOW PROXIES FROM emails;
//! ```
//!
//! `CREATE PROXY` draws and labels a training sample through the oracle
//! (charging the budget, and sharing the engine's label store so queries
//! reuse the verdicts), fits the named [`abae_ml::ProxyModel`] family —
//! or auto-selects one by the paper's §3.4 predicted-MSE rule when
//! `USING` is omitted — scores the whole table in parallel batches, and
//! registers the artifact with the engine's catalog. `EXPLAIN` reports
//! the proxy provenance (column vs model, training spend, ECE). These
//! statements run through [`Session::run`], which answers with a
//! [`StatementOutcome`].
//!
//! # The Engine/Session API
//!
//! The serving surface is a shareable [`Engine`] (built once via
//! [`EngineBuilder`]: tables, bindings, label-cache policy, tuning
//! defaults, seed) and per-client [`Session`] handles:
//!
//! * [`Engine`] is `Send + Sync` and cheaply clonable — one engine serves
//!   any number of concurrent sessions, all sharing the cross-query label
//!   store (hit/miss accounted).
//! * [`Session::execute`] / [`Session::explain`] run one statement;
//!   each session owns a deterministic RNG stream derived from the engine
//!   seed and session id, so per-session results are bit-identical
//!   however sessions interleave.
//! * [`Session::prepare`] parses and plans **once**; the returned
//!   [`Prepared`] re-executes via [`Prepared::run`] with no re-parsing,
//!   binding `?` placeholders (`ORACLE LIMIT ?`, `WITH PROBABILITY ?`,
//!   `UNTIL CI WIDTH < ?`) through [`Prepared::with_budget`] /
//!   [`Prepared::with_probability`] / [`Prepared::with_ci_width`].
//!
//! # Anytime queries
//!
//! `UNTIL CI WIDTH < x MAX ORACLE LIMIT n` makes a query *anytime*:
//! labeling proceeds in budget chunks and stops at the first chunk
//! boundary where the answer's CI is narrower than `x`, spending at most
//! `n` oracle calls. [`Prepared::run_progressive`] and
//! [`Session::execute_progressive`] additionally surface every
//! intermediate answer as a [`QuerySnapshot`] stream; without an early
//! stop, the final snapshot is bit-identical to the blocking answer for
//! any thread count or chunk size.
//!
//! Migration from the seed API: `Executor::new(&catalog)` + caller RNG
//! becomes `EngineBuilder::from_catalog(catalog).seed(s).build()` +
//! `engine.session()`. The old borrow-based [`Executor`] remains as a
//! deprecated shim with unchanged behavior.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod catalog;
mod ddl;
pub mod display;
pub mod engine;
pub mod exec;
pub mod lexer;
pub mod parser;
mod plan;
pub mod prepared;
pub mod session;

pub use ast::{
    AggFunc, AggItem, BoolExpr, CreateProxyStmt, Placeholders, ProxyFamily, Query, Statement,
};
pub use catalog::Catalog;
pub use ddl::DEFAULT_TRAIN_LIMIT;
pub use abae_core::batcher::{BatcherOptions, BatcherStats, OracleBatcher};
pub use engine::{Engine, EngineBuilder, EngineOptions, EngineStats};
#[allow(deprecated)]
pub use exec::Executor;
pub use exec::{AggRow, GroupRow, QueryError, QueryResult, QuerySnapshot, StatementOutcome};
pub use parser::{parse_query, parse_statement};
pub use plan::ScoreSource;
pub use prepared::{Prepared, ProgressiveRun};
pub use session::Session;
